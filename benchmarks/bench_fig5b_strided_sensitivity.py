"""Fig. 5b: strided-read utilization vs element size and bank count."""

from conftest import run_once

from repro.analysis.fig5 import figure_5b


def test_fig5b_strided_sensitivity(benchmark):
    table = run_once(
        benchmark, figure_5b,
        elem_sizes_bits=(32, 64, 128),
        bank_counts=(8, 16, 17, 31),
        strides=range(0, 64, 2),
        num_beats=8,
    )
    print()
    print(table.render())
    util = {(row[0], row[1]): row[2] for row in table.rows}
    # Prime bank counts beat the neighbouring power-of-two counts on strided
    # accesses (17 vs 16, 31 vs 16): the paper's central Fig. 5b message.
    for elem in (32, 64, 128):
        assert util[(elem, 17)] > util[(elem, 16)]
        assert util[(elem, 31)] > util[(elem, 16)]
    # Larger elements reduce conflicts (fewer aligned elements per line).
    assert util[(128, 8)] >= util[(32, 8)]
    # More banks never hurt.
    for elem in (32, 64, 128):
        assert util[(elem, 16)] >= util[(elem, 8)] - 0.02
