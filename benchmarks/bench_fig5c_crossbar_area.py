"""Fig. 5c: bank crossbar area versus bank count."""

from conftest import run_once

from repro.analysis.fig5 import figure_5c


def test_fig5c_crossbar_area(benchmark):
    table = run_once(benchmark, figure_5c)
    print()
    print(table.render())
    rows = {row[0]: row for row in table.rows}
    # Power-of-two bank counts need no modulo/divider hardware.
    for banks in (8, 16, 32):
        assert rows[banks][2] == 0.0 and rows[banks][3] == 0.0
    # Prime bank counts pay for modulo and divide units.
    for banks in (11, 17, 31):
        assert rows[banks][2] > 0.0 and rows[banks][3] > 0.0
    # Crossbar area grows with the bank count.
    assert rows[32][1] > rows[16][1] > rows[8][1]
    # The prime overhead shrinks relative to the crossbar as banks increase.
    overhead_11 = (rows[11][2] + rows[11][3]) / rows[11][4]
    overhead_31 = (rows[31][2] + rows[31][3]) / rows[31][4]
    assert overhead_31 < overhead_11
    # Totals stay in the paper's 0-45 kGE range.
    assert all(row[4] < 50 for row in table.rows)
