"""Fig. 3b: gemv row- versus column-wise dataflow on the three systems."""

from conftest import run_once

from repro.analysis.fig3 import figure_3b


def test_fig3b_gemv_dataflows(benchmark):
    # Medium scale: the row/column crossover on BASE needs streams long
    # enough that narrow strided accesses dominate the reduction cost.
    table = run_once(benchmark, figure_3b, scale="medium", verify=True)
    print()
    print(table.render())
    cycles = {(row[0], row[1]): row[2] for row in table.rows}
    # Row-wise flows use only contiguous accesses, so BASE and PACK perform
    # almost identically (paper: identical bars in Fig. 3b).
    base_row, pack_row = cycles[("row", "base")], cycles[("row", "pack")]
    assert abs(base_row - pack_row) / base_row < 0.1
    # Column-wise needs packed strided accesses: it loses badly on BASE but
    # wins on PACK.
    assert cycles[("col", "base")] > cycles[("row", "base")]
    assert cycles[("col", "pack")] < cycles[("row", "pack")]
