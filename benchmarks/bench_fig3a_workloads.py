"""Fig. 3a: speedups and R-bus utilizations for all six workloads."""

from conftest import run_once

from repro.analysis.fig3 import figure_3a


def test_fig3a_workload_speedups(benchmark):
    table = run_once(benchmark, figure_3a, scale="small", verify=True)
    print()
    print(table.render())
    rows = {row[0]: row for row in table.rows}
    # Every workload must be functionally correct on every system.
    assert all(row[-1] for row in table.rows)
    # AXI-Pack speeds up every workload (paper: 1.4x .. 5.4x).
    for name, row in rows.items():
        pack_speedup = row[4]
        assert pack_speedup > 1.0, f"{name} shows no PACK speedup"
    # PACK raises the read-bus utilization over BASE on every workload.
    for name, row in rows.items():
        assert row[7] > row[6], f"{name} PACK utilization not above BASE"
    # Strided workloads profit more than indirect ones at equal stream length.
    assert rows["gemv"][4] > rows["spmv"][4]
