"""Fig. 4c: benchmark power and energy-efficiency improvement."""

from conftest import run_once

from repro.analysis.fig4 import figure_4c


def test_fig4c_energy_efficiency(benchmark):
    table = run_once(benchmark, figure_4c, scale="small")
    print()
    print(table.render())
    rows = {row[0]: row for row in table.rows}
    for name, row in rows.items():
        base_power, pack_power = row[1], row[2]
        power_increase, improvement = row[3], row[5]
        # Benchmark powers land in the paper's 100-300 mW range.
        assert 80 < base_power < 330, name
        assert 80 < pack_power < 360, name
        # PACK may draw more power, but only moderately (paper: at most +31%).
        assert power_increase < 0.45, name
        # Every workload improves its energy efficiency (paper: 1.4x .. 5.3x).
        assert improvement > 1.0, name
    # Strided workloads show larger efficiency gains than indirect ones.
    assert rows["gemv"][5] > rows["sssp"][5]
