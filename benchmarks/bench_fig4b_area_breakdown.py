"""Fig. 4b: adapter area breakdown by converter."""

from conftest import run_once

from repro.analysis.fig4 import figure_4b


def test_fig4b_area_breakdown(benchmark):
    table = run_once(benchmark, figure_4b)
    print()
    print(table.render())
    shares = {row[0]: row[2] for row in table.rows if row[0] != "total"}
    areas = {row[0]: row[1] for row in table.rows if row[0] != "total"}
    total = next(row[1] for row in table.rows if row[0] == "total")
    # The paper's breakdown: indirect converters dominate (~29% each), the
    # strided converters are ~14% each, the base AXI4 converter ~10%.
    assert 0.25 < shares["indirect_read_converter"] < 0.32
    assert 0.25 < shares["indirect_write_converter"] < 0.32
    assert 0.11 < shares["strided_read_converter"] < 0.17
    assert 0.08 < shares["axi4_converter"] < 0.13
    # Read and write converters of the same type are nearly the same size.
    assert abs(areas["strided_read_converter"] - areas["strided_write_converter"]) < 3
    assert abs(areas["indirect_read_converter"] - areas["indirect_write_converter"]) < 3
    # Total matches the paper's 258 kGE within a few percent.
    assert abs(total - 258) < 8
