"""Headline numbers of the paper (abstract / §III): one combined check.

The paper's headline claims, at a reduced problem scale:

* AXI-Pack achieves high bus utilizations on strided workloads and clearly
  improved utilizations on indirect workloads;
* speedups over the AXI4 baseline on every irregular workload;
* energy-efficiency improvements on every workload;
* the controller costs a few percent of Ara's area.
"""

from conftest import run_once

from repro.analysis.fig3 import collect_figure_3a_comparisons
from repro.analysis.fig4 import figure_4c
from repro.hw import AdapterAreaModel
from repro.hw.technology import GF22FDX


def _headline(scale: str = "small"):
    comparisons = collect_figure_3a_comparisons(scale=scale, verify=True)
    energy = figure_4c(comparisons=comparisons)
    area_fraction = AdapterAreaModel().fraction_of_ara(256, 1000.0, GF22FDX.ara_area_kge)
    return comparisons, energy, area_fraction


def test_headline_results(benchmark):
    comparisons, energy, area_fraction = run_once(benchmark, _headline)
    print()
    strided = ["ismt", "gemv", "trmv"]
    indirect = ["spmv", "prank", "sssp"]
    best_strided = max(comparisons[n].pack_speedup for n in strided)
    best_indirect = max(comparisons[n].pack_speedup for n in indirect)
    best_strided_util = max(comparisons[n].pack.r_utilization for n in strided)
    best_indirect_util = max(comparisons[n].pack.r_utilization for n in indirect)
    print(f"peak strided speedup   : {best_strided:.2f}x (paper: 5.4x at full scale)")
    print(f"peak indirect speedup  : {best_indirect:.2f}x (paper: 2.4x at full scale)")
    print(f"peak strided R util    : {best_strided_util:.1%} (paper: 87%)")
    print(f"peak indirect R util   : {best_indirect_util:.1%} (paper: 39%)")
    improvements = {row[0]: row[5] for row in energy.rows}
    print(f"energy efficiency gains: {improvements}")
    print(f"adapter / Ara area     : {area_fraction:.1%} (paper: 6.2%)")

    # Every workload is correct, faster, and more energy-efficient with PACK.
    for name, comparison in comparisons.items():
        assert comparison.base.verified and comparison.pack.verified
        assert comparison.pack_speedup > 1.0
        assert improvements[name] > 1.0
    # Strided workloads reach higher utilization and speedups than indirect
    # ones, as in the paper (87%/5.4x vs 39%/2.4x).
    assert best_strided_util > best_indirect_util
    assert best_strided > best_indirect
    # The controller area overhead stays small.
    assert area_fraction < 0.10
