"""Headline numbers of the paper (abstract / §III), plus the engine benchmark.

Two things live here:

1. ``test_headline_results`` — the paper's headline claims at a reduced
   problem scale (speedups, utilizations, energy, area), unchanged from the
   seed benchmark suite.

2. The **engine headline benchmark**: run the full workload × system grid
   (the paper's six kernels plus the streaming ``csrspmv``) on both an
   SRAM-class memory (``memory_latency=1``, the paper's evaluation
   systems) and a DRAM-class memory (``memory_latency=100``), under both
   data policies (``DataPolicy.FULL`` and the timing-only
   ``DataPolicy.ELIDE``), for FULL once more on the seed-behaviour
   tick-every-cycle engine (``event_driven=False``), and in both policies
   once more on the seed scalar datapath (``REPRO_SIM_DATAPATH=scalar``).
   On top of the single-engine grid, ``MULTI_ENGINE_GRID`` adds contention
   points (rows sharded across 2 engines behind the cycle-level AXI mux,
   BASE and PACK, SRAM class), each A/B'd across the policy and engine
   axes.  Every grid point asserts that cycle counts, statistics and
   engine measurements are byte-identical across all compared axes, and
   the run emits a machine-readable ``BENCH_headline.json`` with
   per-policy cycles/sec and wall time per figure grid point, plus — with
   ``--history BENCH_history.jsonl``, which CI passes — one JSONL line
   appended to the cross-PR perf trajectory.  CI uploads both as artifacts
   and gates on per-policy cycles/sec regressions *and per-point cycle
   identity in both directions* against ``benchmarks/baseline.json`` (see
   ``check_bench_regression.py``) — the cycle-identity gate is what pins
   the ``num_engines=1`` topology bit-identical to the committed tree on
   every grid point.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_headline.py --output BENCH_headline.json

Measured on the seed commit (tick-every-cycle engine, before PR 2) the same
grid took 3.6x longer wall-clock than the event-driven engine emits here;
the in-tree ``--compare-naive`` A/B understates that because the
compatibility mode shares this tree's cheaper component models.

On ELIDE wall-clock: profiling this tree shows payload movement is ~12% of
grid wall time after PR 2's hot-path work (per-cycle control flow and
per-word request routing dominate, and those are timing-relevant in both
policies), so whole-grid elision lands around 1.15-1.25x with the largest
wins on the IDEAL-system points (~1.4-2x, whose FULL mode pays per-element
Python scatter/gathers).  The ``--elide-speedup-floor`` gate (default
``$REPRO_ELIDE_SPEEDUP_FLOOR`` or 1.05) asserts the elision never loses
money; the ISSUE's original ≥2x whole-grid target is not reachable without
rewriting the shared per-cycle machinery and is documented as such in
``docs/simulation.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from conftest import run_once

from repro.analysis.fig3 import collect_figure_3a_comparisons
from repro.analysis.fig4 import figure_4c
from repro.analysis.headline import (
    MEMORY_LATENCY,
    point_system_config,
    workload_spec_kwargs,
)
from repro.hw import AdapterAreaModel
from repro.hw.technology import GF22FDX


def _headline(scale: str = "small"):
    comparisons = collect_figure_3a_comparisons(scale=scale, verify=True)
    energy = figure_4c(comparisons=comparisons)
    area_fraction = AdapterAreaModel().fraction_of_ara(256, 1000.0, GF22FDX.ara_area_kge)
    return comparisons, energy, area_fraction


def test_headline_results(benchmark):
    comparisons, energy, area_fraction = run_once(benchmark, _headline)
    print()
    strided = ["ismt", "gemv", "trmv"]
    indirect = ["spmv", "prank", "sssp"]
    best_strided = max(comparisons[n].pack_speedup for n in strided)
    best_indirect = max(comparisons[n].pack_speedup for n in indirect)
    best_strided_util = max(comparisons[n].pack.r_utilization for n in strided)
    best_indirect_util = max(comparisons[n].pack.r_utilization for n in indirect)
    print(f"peak strided speedup   : {best_strided:.2f}x (paper: 5.4x at full scale)")
    print(f"peak indirect speedup  : {best_indirect:.2f}x (paper: 2.4x at full scale)")
    print(f"peak strided R util    : {best_strided_util:.1%} (paper: 87%)")
    print(f"peak indirect R util   : {best_indirect_util:.1%} (paper: 39%)")
    improvements = {row[0]: row[5] for row in energy.rows}
    print(f"energy efficiency gains: {improvements}")
    print(f"adapter / Ara area     : {area_fraction:.1%} (paper: 6.2%)")

    # Every workload is correct, faster, and more energy-efficient with PACK.
    for name, comparison in comparisons.items():
        assert comparison.base.verified and comparison.pack.verified
        assert comparison.pack_speedup > 1.0
        assert improvements[name] > 1.0
    # Strided workloads reach higher utilization and speedups than indirect
    # ones, as in the paper (87%/5.4x vs 39%/2.4x).
    assert best_strided_util > best_indirect_util
    assert best_strided > best_indirect
    # The controller area overhead stays small.
    assert area_fraction < 0.10


# --------------------------------------------------------------------------
# Engine headline benchmark (BENCH_headline.json emission + regression gate)
# --------------------------------------------------------------------------

#: The two memory classes of the headline grid (name, memory_latency) —
#: shared with the `repro profile` subcommand via repro.analysis.headline.
LATENCY_GRID = tuple(MEMORY_LATENCY.items())


def calibration_score(duration: float = 0.25) -> float:
    """Machine-speed score: pure-Python loop iterations per second.

    The regression gate normalizes cycles/sec by this score so a checked-in
    baseline from one machine transfers to CI runners of different speeds
    (both the simulator and this loop are plain CPython bytecode).
    """
    total = 0
    best = 0.0
    deadline = time.perf_counter() + duration
    while time.perf_counter() < deadline:
        t0 = time.perf_counter()
        acc = 0
        for i in range(100_000):
            acc += i & 7
        dt = time.perf_counter() - t0
        total += acc  # defeat optimizers; acc is deterministic
        if dt > 0:
            best = max(best, 100_000 / dt)
    assert total >= 0
    return best


#: Extra (non-paper-figure) workloads that ride in the headline grid.
#: ``csrspmv`` streams the whole nonzero set through the indirect-read path
#: in maximum-length chunks, exercising the batch kernels with long
#: irregular index streams (the row-wise kernels only issue short ones).
EXTRA_GRID_WORKLOADS = ("csrspmv",)


def _grid_points(scale: str):
    from repro.system.config import SystemKind
    from repro.workloads.registry import WORKLOAD_ORDER

    for workload in WORKLOAD_ORDER + EXTRA_GRID_WORKLOADS:
        spec_kwargs = workload_spec_kwargs(workload, scale)
        for kind in (SystemKind.BASE, SystemKind.PACK, SystemKind.IDEAL):
            for mem_name, latency in LATENCY_GRID:
                yield workload, spec_kwargs, kind, mem_name, latency


#: Default floor for the whole-grid ELIDE-vs-FULL wall-clock speedup gate.
DEFAULT_ELIDE_SPEEDUP_FLOOR = float(
    os.environ.get("REPRO_ELIDE_SPEEDUP_FLOOR", "1.05")
)


def _run_point(workload, spec_kwargs, kind, latency, event_driven, verify,
               data_policy="full", datapath=None, engines=1):
    """One grid point: build, simulate, return (cycles, stats, result, wall).

    ``engines > 1`` runs the point on the multi-engine topology (the
    workload's rows sharded behind the cycle-level mux); ``result`` is then
    the list of per-engine measurements.
    """
    from dataclasses import replace

    from repro.axi.transaction import reset_txn_ids
    from repro.orchestrate.spec import WorkloadSpec
    from repro.sim.datapath import DATAPATH_ENV
    from repro.system.soc import build_system

    reset_txn_ids()
    saved_datapath = os.environ.get(DATAPATH_ENV)
    if datapath is not None:
        os.environ[DATAPATH_ENV] = datapath
    try:
        instance = WorkloadSpec.create(workload, **spec_kwargs).build()
        config = point_system_config(kind, latency, data_policy)
        if engines != 1:
            config = replace(config, num_engines=engines)
        soc = build_system(config)
        instance.initialize(soc.storage)
        if engines == 1:
            program = instance.build_program(config.lowering,
                                             config.vector_config())
            start = time.perf_counter()
            cycles, result = soc.run_program(program, event_driven=event_driven)
        else:
            programs = instance.build_sharded_programs(
                config.lowering, config.vector_config(), engines
            )
            start = time.perf_counter()
            cycles, result = soc.run_programs(programs,
                                              event_driven=event_driven)
        wall = time.perf_counter() - start
        verified = instance.verify(soc.storage) if verify else None
        return cycles, dict(soc.stats.as_dict()), result, wall, verified
    finally:
        if datapath is not None:
            if saved_datapath is None:
                os.environ.pop(DATAPATH_ENV, None)
            else:
                os.environ[DATAPATH_ENV] = saved_datapath


def supervised_sweep_counters(jobs: int = 2) -> dict:
    """Run a small fault-free supervised sweep; return its counters.

    The supervised runner (see ``docs/orchestration.md``) promises it never
    perturbs the happy path: with no faults injected, no spec ever retries,
    times out, loses a worker or degrades to serial.  This runs a tiny
    pooled sweep under a generous per-spec timeout and asserts every
    supervision counter is zero — the counters land in the bench payload
    and the cross-PR history so the regression gate pins the promise.
    """
    from repro.orchestrate.cache import MemoryCache
    from repro.orchestrate.faults import FaultPlan
    from repro.orchestrate.parallel import ParallelRunner
    from repro.orchestrate.spec import RunSpec, WorkloadSpec
    from repro.orchestrate.supervisor import RetryPolicy
    from repro.system.config import SystemKind

    specs = [RunSpec(workload=WorkloadSpec.create("gemv", size=16 + i),
                     kind=SystemKind.PACK)
             for i in range(4)]
    # An explicit empty plan: the zero-assert is about supervision overhead,
    # not whatever $REPRO_FAULTS happens to say in this shell.
    runner = ParallelRunner(jobs=jobs, cache=MemoryCache(),
                            policy=RetryPolicy(timeout_s=300.0),
                            faults=FaultPlan())
    try:
        results = runner.run(specs)
    finally:
        runner.close()
    assert len(results) == len(specs)
    counters = runner.counters.to_json()
    if runner.counters.any_activity():
        raise AssertionError(
            f"supervision perturbed a fault-free sweep: {counters}"
        )
    return counters


#: Multi-engine grid points: (workload, engines) x systems, SRAM class.
#: One packed-strided kernel that is bus-bound under PACK plus two indirect
#: kernels with contention headroom (see repro.analysis.contention).
MULTI_ENGINE_GRID = (("gemv", 2), ("spmv", 2), ("csrspmv", 2))

#: Systems the multi-engine points cover (IDEAL's exclusive memory is
#: contention-free by definition).
MULTI_ENGINE_KINDS = ("base", "pack")


def run_engine_benchmark(
    scale: str = "small",
    compare_naive: bool = True,
    compare_scalar: bool = True,
    verify: bool = False,
    elide_speedup_floor: float = DEFAULT_ELIDE_SPEEDUP_FLOOR,
) -> dict:
    """Run the headline grid; return the BENCH_headline.json payload.

    Every grid point runs under both data policies on the event-driven
    engine and asserts cycle counts, statistics and engine measurements
    byte-identical — the core ELIDE invariant.  With ``compare_naive`` the
    FULL point is also run on the tick-every-cycle compatibility engine,
    and with ``compare_scalar`` under the seed scalar datapath
    (``REPRO_SIM_DATAPATH=scalar``) in both policies — all asserted
    identical: neither the event-driven scheduler nor the batch
    struct-of-arrays datapath may ever change simulated behaviour, only
    wall time.  (The remaining scalar×naive corners of the full
    scalar/batch × event/naive × FULL/ELIDE cube are pinned by
    ``tests/test_datapath_parity.py``.)  The aggregate ELIDE-vs-FULL
    wall-clock speedup is asserted to be at least ``elide_speedup_floor``.
    """
    grid = []
    total_full_wall = 0.0
    total_full_wall_single = 0.0  #: engines=1 points only (scalar A/B basis)
    total_elide_wall = 0.0
    total_naive_wall = 0.0
    total_scalar_wall = 0.0
    total_scalar_elide_wall = 0.0
    total_cycles = 0
    for workload, spec_kwargs, kind, mem_name, latency in _grid_points(scale):
        cycles, stats, result, wall, verified = _run_point(
            workload, spec_kwargs, kind, latency, True, verify
        )
        e_cycles, e_stats, e_result, e_wall, _ = _run_point(
            workload, spec_kwargs, kind, latency, True, False, data_policy="elide"
        )
        identical_policies = (
            e_cycles == cycles and e_stats == stats and e_result == result
        )
        point = {
            "workload": workload,
            "system": kind.value,
            "memory": mem_name,
            "memory_latency": latency,
            "engines": 1,
            "cycles": cycles,
            "wall_s": round(wall, 6),
            "cycles_per_sec": round(cycles / wall, 1) if wall > 0 else None,
            "elide_wall_s": round(e_wall, 6),
            "elide_cycles_per_sec": (
                round(cycles / e_wall, 1) if e_wall > 0 else None
            ),
            "elide_speedup": round(wall / e_wall, 3) if e_wall > 0 else None,
            "identical_to_full": identical_policies,
        }
        if verify:
            point["verified"] = bool(verified)
        total_full_wall += wall
        total_full_wall_single += wall
        total_elide_wall += e_wall
        total_cycles += cycles
        if not identical_policies:
            raise AssertionError(
                f"ELIDE run diverged from FULL run for "
                f"{workload}/{kind.value}/{mem_name}: "
                f"cycles {cycles} vs {e_cycles}"
            )
        if compare_naive:
            n_cycles, n_stats, n_result, n_wall, _ = _run_point(
                workload, spec_kwargs, kind, latency, False, False
            )
            identical = n_cycles == cycles and n_stats == stats and n_result == result
            point["naive_wall_s"] = round(n_wall, 6)
            point["speedup_vs_naive"] = round(n_wall / wall, 3) if wall > 0 else None
            point["identical_to_naive"] = identical
            total_naive_wall += n_wall
            if not identical:
                raise AssertionError(
                    f"event-driven run diverged from tick-every-cycle run for "
                    f"{workload}/{kind.value}/{mem_name}: "
                    f"cycles {cycles} vs {n_cycles}"
                )
        if compare_scalar:
            s_cycles, s_stats, s_result, s_wall, _ = _run_point(
                workload, spec_kwargs, kind, latency, True, False,
                datapath="scalar",
            )
            se_cycles, se_stats, se_result, se_wall, _ = _run_point(
                workload, spec_kwargs, kind, latency, True, False,
                data_policy="elide", datapath="scalar",
            )
            identical_scalar = (
                s_cycles == cycles and s_stats == stats and s_result == result
                and se_cycles == cycles and se_stats == stats
                and se_result == result
            )
            point["scalar_wall_s"] = round(s_wall, 6)
            point["scalar_elide_wall_s"] = round(se_wall, 6)
            point["datapath_speedup"] = (
                round(s_wall / wall, 3) if wall > 0 else None
            )
            point["identical_to_scalar"] = identical_scalar
            total_scalar_wall += s_wall
            total_scalar_elide_wall += se_wall
            if not identical_scalar:
                raise AssertionError(
                    f"scalar-datapath run diverged from batch run for "
                    f"{workload}/{kind.value}/{mem_name}: "
                    f"cycles {cycles} vs {s_cycles}/{se_cycles}"
                )
        grid.append(point)
    # ---------------------------------------------------------- multi-engine
    # Contention points: rows sharded across N engines behind the cycle-level
    # mux, SRAM memory class.  The policy and engine axes are asserted
    # identical exactly like the single-engine points; the scalar-datapath
    # axis is covered suite-wide by the scalar-parity CI job instead.
    from repro.system.config import SystemKind

    for workload, engines in MULTI_ENGINE_GRID:
        spec_kwargs = workload_spec_kwargs(workload, scale)
        for system in MULTI_ENGINE_KINDS:
            kind = SystemKind(system)
            latency = MEMORY_LATENCY["sram"]
            cycles, stats, result, wall, verified = _run_point(
                workload, spec_kwargs, kind, latency, True, verify,
                engines=engines,
            )
            e_cycles, e_stats, e_result, e_wall, _ = _run_point(
                workload, spec_kwargs, kind, latency, True, False,
                data_policy="elide", engines=engines,
            )
            identical_policies = (
                e_cycles == cycles and e_stats == stats and e_result == result
            )
            point = {
                "workload": workload,
                "system": system,
                "memory": "sram",
                "memory_latency": latency,
                "engines": engines,
                "cycles": cycles,
                "wall_s": round(wall, 6),
                "cycles_per_sec": round(cycles / wall, 1) if wall > 0 else None,
                "elide_wall_s": round(e_wall, 6),
                "elide_cycles_per_sec": (
                    round(cycles / e_wall, 1) if e_wall > 0 else None
                ),
                "elide_speedup": round(wall / e_wall, 3) if e_wall > 0 else None,
                "identical_to_full": identical_policies,
            }
            if verify:
                point["verified"] = bool(verified)
            total_full_wall += wall
            total_elide_wall += e_wall
            total_cycles += cycles
            if not identical_policies:
                raise AssertionError(
                    f"ELIDE run diverged from FULL run for "
                    f"{workload}/{system}/sram/engines={engines}: "
                    f"cycles {cycles} vs {e_cycles}"
                )
            if compare_naive:
                n_cycles, n_stats, n_result, n_wall, _ = _run_point(
                    workload, spec_kwargs, kind, latency, False, False,
                    engines=engines,
                )
                identical = (
                    n_cycles == cycles and n_stats == stats
                    and n_result == result
                )
                point["naive_wall_s"] = round(n_wall, 6)
                point["speedup_vs_naive"] = (
                    round(n_wall / wall, 3) if wall > 0 else None
                )
                point["identical_to_naive"] = identical
                total_naive_wall += n_wall
                if not identical:
                    raise AssertionError(
                        f"event-driven run diverged from tick-every-cycle run "
                        f"for {workload}/{system}/sram/engines={engines}: "
                        f"cycles {cycles} vs {n_cycles}"
                    )
            grid.append(point)
    elide_speedup = (
        total_full_wall / total_elide_wall if total_elide_wall > 0 else None
    )
    payload = {
        "meta": {
            "benchmark": "headline",
            "scale": scale,
            "latency_grid": dict(LATENCY_GRID),
            "python": sys.version.split()[0],
        },
        "calibration_score": round(calibration_score(), 1),
        "grid": grid,
        "totals": {
            "grid_points": len(grid),
            "cycles": total_cycles,
            "event_wall_s": round(total_full_wall, 6),
            "cycles_per_sec": round(total_cycles / total_full_wall, 1),
            "elide_wall_s": round(total_elide_wall, 6),
            "elide_cycles_per_sec": round(total_cycles / total_elide_wall, 1),
            "elide_speedup": round(elide_speedup, 3),
        },
    }
    if compare_naive:
        payload["totals"]["naive_wall_s"] = round(total_naive_wall, 6)
        payload["totals"]["speedup_vs_naive"] = round(
            total_naive_wall / total_full_wall, 3
        )
    if compare_scalar:
        payload["totals"]["scalar_wall_s"] = round(total_scalar_wall, 6)
        payload["totals"]["scalar_elide_wall_s"] = round(
            total_scalar_elide_wall, 6
        )
        # The scalar A/B only covers the engines=1 points, so its speedup is
        # measured against the single-engine FULL wall time alone.
        payload["totals"]["datapath_speedup"] = round(
            total_scalar_wall / total_full_wall_single, 3
        )
    if elide_speedup is not None and elide_speedup < elide_speedup_floor:
        raise AssertionError(
            f"ELIDE wall-clock speedup {elide_speedup:.3f}x fell below the "
            f"{elide_speedup_floor:.2f}x floor (FULL {total_full_wall:.3f}s, "
            f"ELIDE {total_elide_wall:.3f}s)"
        )
    payload["supervision"] = supervised_sweep_counters()
    return payload


def test_engine_benchmark_parity_and_speedup(benchmark):
    """Engine, policy and datapath A/B: identical results, faster wall clock.

    The strict headline targets are measured against the seed engine and
    enforced by the CI bench gate via cycles/sec; the in-process assertions
    use conservative floors because the in-tree naive mode shares this
    tree's optimized component models, tiny-scale points are tiny, and CI
    machines are noisy.  The parity assertions (policy axis, engine axis
    and datapath axis) are exact.
    """
    payload = run_once(benchmark, run_engine_benchmark, scale="tiny",
                       elide_speedup_floor=0.8)
    print()
    print(f"grid points          : {payload['totals']['grid_points']}")
    print(f"event wall (FULL)    : {payload['totals']['event_wall_s']:.3f}s")
    print(f"event wall (ELIDE)   : {payload['totals']['elide_wall_s']:.3f}s")
    print(f"naive wall           : {payload['totals']['naive_wall_s']:.3f}s")
    print(f"scalar-datapath wall : {payload['totals']['scalar_wall_s']:.3f}s")
    print(f"speedup vs naive mode: {payload['totals']['speedup_vs_naive']:.2f}x")
    print(f"ELIDE speedup        : {payload['totals']['elide_speedup']:.2f}x")
    print(f"datapath speedup     : {payload['totals']['datapath_speedup']:.2f}x")
    assert all(point["identical_to_naive"] for point in payload["grid"])
    assert all(point["identical_to_full"] for point in payload["grid"])
    # Multi-engine points skip the scalar A/B (scalar-parity CI covers it):
    # absent keys default to passing.
    assert all(point.get("identical_to_scalar", True)
               for point in payload["grid"])
    multi = [point for point in payload["grid"] if point.get("engines", 1) > 1]
    assert len(multi) == len(MULTI_ENGINE_GRID) * len(MULTI_ENGINE_KINDS)
    assert payload["totals"]["speedup_vs_naive"] > 1.2
    # Supervision must not perturb the happy path (see docs/orchestration.md).
    assert not any(payload["supervision"].values())


def append_history(payload: dict, history_path: str) -> dict:
    """Append one JSONL trajectory entry for this run to ``history_path``.

    The trajectory file makes the perf trend across PRs queryable (one line
    per bench run: commit, date, calibration score, per-policy totals)
    instead of a single overwritten snapshot.
    """
    import datetime
    import subprocess

    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        commit = "unknown"
    entry = {
        "date": datetime.datetime.now(datetime.timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        ),
        "commit": commit,
        "scale": payload["meta"]["scale"],
        "python": payload["meta"]["python"],
        "calibration_score": payload["calibration_score"],
        "totals": payload["totals"],
    }
    if "supervision" in payload:
        entry["supervision"] = payload["supervision"]
    with open(history_path, "a") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the headline engine benchmark and emit BENCH_headline.json"
    )
    parser.add_argument("--output", default="BENCH_headline.json",
                        help="where to write the JSON payload")
    parser.add_argument("--scale", default="small",
                        help="problem scale (tiny/small/medium/paper)")
    parser.add_argument("--no-compare-naive", action="store_true",
                        help="skip the tick-every-cycle A/B runs")
    parser.add_argument("--no-compare-scalar", action="store_true",
                        help="skip the scalar-datapath A/B runs")
    parser.add_argument("--verify", action="store_true",
                        help="also verify workload results against references")
    parser.add_argument("--history", metavar="PATH", default=None,
                        help="append this run's totals as one JSONL line to "
                             "PATH (the cross-PR trajectory; CI passes "
                             "BENCH_history.jsonl — ad-hoc local runs should "
                             "leave it off so laptop noise stays out of the "
                             "committed trend)")
    parser.add_argument("--elide-speedup-floor", type=float,
                        default=DEFAULT_ELIDE_SPEEDUP_FLOOR,
                        help="minimum aggregate ELIDE-vs-FULL wall-clock "
                             "speedup (default: $REPRO_ELIDE_SPEEDUP_FLOOR "
                             "or 1.05)")
    args = parser.parse_args(argv)
    payload = run_engine_benchmark(
        scale=args.scale, compare_naive=not args.no_compare_naive,
        compare_scalar=not args.no_compare_scalar,
        verify=args.verify, elide_speedup_floor=args.elide_speedup_floor,
    )
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    totals = payload["totals"]
    print(f"wrote {args.output}: {totals['grid_points']} grid points, "
          f"{totals['cycles']} cycles in {totals['event_wall_s']:.3f}s FULL "
          f"({totals['cycles_per_sec']:.0f} cycles/sec), "
          f"{totals['elide_wall_s']:.3f}s ELIDE "
          f"({totals['elide_cycles_per_sec']:.0f} cycles/sec)")
    print(f"ELIDE speedup over FULL: {totals['elide_speedup']:.2f}x "
          "(byte-identical cycles and stats)")
    if "speedup_vs_naive" in totals:
        print(f"speedup vs tick-every-cycle mode: {totals['speedup_vs_naive']:.2f}x "
              "(byte-identical results)")
    if "datapath_speedup" in totals:
        print(f"speedup vs scalar datapath: {totals['datapath_speedup']:.2f}x "
              "(byte-identical results)")
    print("supervised fault-free sweep: all counters zero "
          f"({payload['supervision']})")
    if args.history:
        entry = append_history(payload, args.history)
        print(f"appended {entry['commit']} @ {entry['date']} to {args.history}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
