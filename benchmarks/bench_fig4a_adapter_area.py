"""Fig. 4a: adapter area versus clock constraint and bus width."""

from conftest import run_once

from repro.analysis.fig4 import figure_4a


def test_fig4a_adapter_area(benchmark):
    table = run_once(benchmark, figure_4a)
    print()
    print(table.render())
    at_1ghz = {row[0]: row[2] for row in table.rows if row[1] == 1000}
    # Calibration: the 1 GHz areas match the paper's 69 / 130 / 257 kGE.
    assert abs(at_1ghz[64] - 69) < 3
    assert abs(at_1ghz[128] - 130) < 4
    assert abs(at_1ghz[256] - 257) < 6
    # Area grows monotonically with bus width at every clock constraint.
    for clock in {row[1] for row in table.rows}:
        widths = sorted(row[0] for row in table.rows if row[1] == clock)
        areas = [row[2] for width in widths for row in table.rows
                 if row[1] == clock and row[0] == width]
        assert areas == sorted(areas)
