"""CI bench gate: fail when simulation throughput regresses.

Compares a freshly emitted ``BENCH_headline.json`` against the checked-in
``benchmarks/baseline.json``.  Raw cycles/sec is machine-dependent, so both
files carry a *calibration score* (a fixed pure-Python loop, see
``bench_headline.calibration_score``); the expected throughput on the
current machine is the baseline throughput scaled by the ratio of
calibration scores.  The gate fails when the measured aggregate cycles/sec
falls more than ``--threshold-pct`` (default 20, override with
``$REPRO_BENCH_GATE_PCT``) below that expectation, or when any grid point
diverged from the tick-every-cycle engine.

Usage::

    python benchmarks/check_bench_regression.py BENCH_headline.json benchmarks/baseline.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly emitted BENCH_headline.json")
    parser.add_argument("baseline", help="checked-in baseline.json")
    parser.add_argument(
        "--threshold-pct",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_GATE_PCT", "20")),
        help="maximum allowed regression in percent (default 20)",
    )
    args = parser.parse_args(argv)

    current = load(args.current)
    baseline = load(args.baseline)

    failures = []

    # Correctness gate: the event-driven engine must match the seed behaviour.
    diverged = [
        f"{p['workload']}/{p['system']}/{p['memory']}"
        for p in current.get("grid", [])
        if p.get("identical_to_naive") is False
    ]
    if diverged:
        failures.append(f"results diverged from the seed-behaviour engine: {diverged}")

    cur_cps = current["totals"]["cycles_per_sec"]
    base_cps = baseline["totals"]["cycles_per_sec"]
    cur_cal = current["calibration_score"]
    base_cal = baseline["calibration_score"]
    machine_ratio = cur_cal / base_cal
    expected_cps = base_cps * machine_ratio
    change_pct = 100.0 * (cur_cps - expected_cps) / expected_cps

    print(f"baseline : {base_cps:12.0f} cycles/sec (calibration {base_cal:.0f})")
    print(f"current  : {cur_cps:12.0f} cycles/sec (calibration {cur_cal:.0f})")
    print(f"machine speed ratio      : {machine_ratio:.3f}x")
    print(f"expected on this machine : {expected_cps:12.0f} cycles/sec")
    print(f"throughput vs expectation: {change_pct:+.1f}% "
          f"(gate: -{args.threshold_pct:.0f}%)")

    if cur_cps < expected_cps * (1.0 - args.threshold_pct / 100.0):
        failures.append(
            f"cycles/sec regressed {-change_pct:.1f}% vs calibrated baseline "
            f"(allowed: {args.threshold_pct:.0f}%)"
        )

    if failures:
        for failure in failures:
            print(f"BENCH GATE FAILURE: {failure}", file=sys.stderr)
        return 1
    print("bench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
