"""CI bench gate: fail when simulation throughput regresses.

Compares a freshly emitted ``BENCH_headline.json`` against the checked-in
``benchmarks/baseline.json``.  Raw cycles/sec is machine-dependent, so both
files carry a *calibration score* (a fixed pure-Python loop, see
``bench_headline.calibration_score``); the expected throughput on the
current machine is the baseline throughput scaled by the ratio of
calibration scores.  Both data policies are gated: the FULL-mode
(``cycles_per_sec``) and ELIDE-mode (``elide_cycles_per_sec``) aggregate
throughputs must each stay within ``--threshold-pct`` (default 20, override
with ``$REPRO_BENCH_GATE_PCT``) of their calibrated expectations.  The gate
also fails when any grid point diverged from the tick-every-cycle engine,
between the two data policies, or between the ``num_engines=1`` topology and
the single-program path — and when any grid point's *cycle count* differs
from the baseline's (simulated behaviour is deterministic; a cycle change
must be deliberate and come with a regenerated baseline).

Usage::

    python benchmarks/check_bench_regression.py BENCH_headline.json benchmarks/baseline.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def gate_throughput(label, current, baseline, key, machine_ratio, threshold_pct,
                    failures):
    """Gate one policy's aggregate cycles/sec against the scaled baseline."""
    cur_cps = current["totals"].get(key)
    base_cps = baseline["totals"].get(key)
    if base_cps is None:
        print(f"{label:<6s}: no baseline entry ({key}); skipping")
        return
    if cur_cps is None:
        failures.append(f"{label}: current run has no {key} total")
        return
    expected_cps = base_cps * machine_ratio
    change_pct = 100.0 * (cur_cps - expected_cps) / expected_cps
    print(f"{label:<6s}: baseline {base_cps:12.0f} cycles/sec, "
          f"current {cur_cps:12.0f}, expected here {expected_cps:12.0f} "
          f"({change_pct:+.1f}%, gate: -{threshold_pct:.0f}%)")
    if cur_cps < expected_cps * (1.0 - threshold_pct / 100.0):
        failures.append(
            f"{label} cycles/sec regressed {-change_pct:.1f}% vs calibrated "
            f"baseline (allowed: {threshold_pct:.0f}%)"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly emitted BENCH_headline.json")
    parser.add_argument("baseline", help="checked-in baseline.json")
    parser.add_argument(
        "--threshold-pct",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_GATE_PCT", "20")),
        help="maximum allowed regression in percent (default 20)",
    )
    args = parser.parse_args(argv)

    current = load(args.current)
    baseline = load(args.baseline)

    failures = []

    # Correctness gates: the event-driven engine must match the seed
    # behaviour, and the ELIDE policy must match FULL bit for bit.
    diverged = [
        f"{p['workload']}/{p['system']}/{p['memory']}"
        for p in current.get("grid", [])
        if p.get("identical_to_naive") is False
    ]
    if diverged:
        failures.append(f"results diverged from the seed-behaviour engine: {diverged}")
    policy_diverged = [
        f"{p['workload']}/{p['system']}/{p['memory']}"
        for p in current.get("grid", [])
        if p.get("identical_to_full") is False
    ]
    if policy_diverged:
        failures.append(
            f"ELIDE results diverged from FULL results: {policy_diverged}"
        )
    datapath_diverged = [
        f"{p['workload']}/{p['system']}/{p['memory']}"
        for p in current.get("grid", [])
        if p.get("identical_to_scalar") is False
    ]
    if datapath_diverged:
        failures.append(
            f"batch-datapath results diverged from the scalar datapath: "
            f"{datapath_diverged}"
        )
    # Cycle-identity gate: simulated cycle counts are deterministic, so any
    # change on a grid point present in the baseline means the simulated
    # behaviour changed — which must be deliberate (regenerate the baseline)
    # rather than an accidental side effect of a perf or topology change.
    # The gate is bidirectional: a baseline point missing from the current
    # grid means coverage was (probably accidentally) lost, and fails too.
    def point_key(p):
        return (p["workload"], p["system"], p["memory"], p.get("engines", 1))

    baseline_cycles = {point_key(p): p["cycles"]
                      for p in baseline.get("grid", [])}
    changed = []
    matched = 0
    for p in current.get("grid", []):
        expect = baseline_cycles.pop(point_key(p), None)
        if expect is None:
            continue  # a new grid point; it enters the gate on regeneration
        matched += 1
        if p["cycles"] != expect:
            changed.append(f"{'/'.join(map(str, point_key(p)))}: "
                           f"{expect} -> {p['cycles']}")
    print(f"cycle identity: {matched} grid points matched against baseline")
    if changed:
        failures.append(f"simulated cycle counts changed vs baseline: {changed}")
    if baseline_cycles:  # keys never popped: points that vanished
        missing = sorted("/".join(map(str, key)) for key in baseline_cycles)
        failures.append(
            f"baseline grid points missing from the current run: {missing}"
        )

    cur_cal = current["calibration_score"]
    base_cal = baseline["calibration_score"]
    machine_ratio = cur_cal / base_cal
    print(f"machine speed ratio: {machine_ratio:.3f}x "
          f"(calibration {cur_cal:.0f} vs baseline {base_cal:.0f})")
    gate_throughput("FULL", current, baseline, "cycles_per_sec",
                    machine_ratio, args.threshold_pct, failures)
    gate_throughput("ELIDE", current, baseline, "elide_cycles_per_sec",
                    machine_ratio, args.threshold_pct, failures)

    # Supervision gate: the bench run's fault-free supervised sweep must
    # record zero retries/timeouts/rebuilds (supervision never perturbs the
    # happy path).  Older payloads predate the counters; skip them.
    supervision = current.get("supervision")
    if supervision is not None:
        active = {key: value for key, value in supervision.items() if value}
        if active:
            failures.append(
                f"fault-free sweep recorded supervision activity: {active}"
            )
        else:
            print("supervision: fault-free sweep, all counters zero")

    elide_speedup = current["totals"].get("elide_speedup")
    if elide_speedup is not None:
        print(f"ELIDE speedup over FULL: {elide_speedup:.2f}x")
    datapath_speedup = current["totals"].get("datapath_speedup")
    if datapath_speedup is not None:
        print(f"batch-datapath speedup over scalar: {datapath_speedup:.2f}x")

    if failures:
        for failure in failures:
            print(f"BENCH GATE FAILURE: {failure}", file=sys.stderr)
        return 1
    print("bench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
