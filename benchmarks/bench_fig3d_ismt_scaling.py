"""Fig. 3d: ismt PACK speedup scaling with matrix dimension and bus width."""

from conftest import run_once

from repro.analysis.fig3 import figure_3d


def test_fig3d_ismt_scaling(benchmark):
    table = run_once(
        benchmark, figure_3d, dimensions=[8, 16, 32, 64], bus_bits=(64, 128, 256)
    )
    print()
    print(table.render())
    speedups = {(row[0], row[1]): row[4] for row in table.rows}
    dims = sorted({row[1] for row in table.rows})
    # Speedups grow with matrix dimension (longer streams amortize overhead).
    for bus in (64, 128, 256):
        assert speedups[(bus, dims[-1])] > speedups[(bus, dims[0])]
    # Wider buses make BASE's narrow accesses relatively worse, so the
    # largest-dimension speedup grows with bus width (paper: 1.9/3.2/5.4x).
    assert speedups[(256, dims[-1])] > speedups[(128, dims[-1])] > speedups[(64, dims[-1])]
    # AXI-Pack never slows a workload down, no matter how short the streams.
    assert all(value > 0.95 for value in speedups.values())
