"""Fig. 3c: trmv row- versus column-wise dataflow on the three systems."""

from conftest import run_once

from repro.analysis.fig3 import figure_3c


def test_fig3c_trmv_dataflows(benchmark):
    # Medium scale for the same reason as Fig. 3b: the dataflow crossover on
    # BASE only appears once the per-row streams are long enough.
    table = run_once(benchmark, figure_3c, scale="medium", verify=True)
    print()
    print(table.render())
    cycles = {(row[0], row[1]): row[2] for row in table.rows}
    utils = {(row[0], row[1]): row[3] for row in table.rows}
    # Column-wise only wins when strided accesses are packed.
    assert cycles[("col", "base")] > cycles[("row", "base")]
    assert cycles[("col", "pack")] < cycles[("row", "pack")]
    # Column-wise PACK reaches a much higher utilization than row-wise BASE
    # (paper: 72% vs 23%).
    assert utils[("col", "pack")] > 2 * utils[("row", "base")]
