"""Shared helpers for the benchmark harness.

Every benchmark regenerates one figure of the paper at a reduced problem
size (so the whole suite runs in minutes) and prints the resulting table, so
``pytest benchmarks/ --benchmark-only -s`` doubles as the artifact that
produces EXPERIMENTS.md's measured numbers.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture(autouse=True)
def _print_tables(capsys):
    """Let experiment tables reach the terminal when -s is used."""
    yield
