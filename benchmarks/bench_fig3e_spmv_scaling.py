"""Fig. 3e: spmv PACK speedup scaling with nonzeros per row and bus width."""

from conftest import run_once

from repro.analysis.fig3 import figure_3e


def test_fig3e_spmv_scaling(benchmark):
    table = run_once(
        benchmark, figure_3e, nnz_per_row=[2, 8, 24, 48], bus_bits=(64, 128, 256),
        num_rows=48,
    )
    print()
    print(table.render())
    speedups = {(row[0], row[1]): row[4] for row in table.rows}
    nnzs = sorted({row[1] for row in table.rows})
    # Longer rows (more nonzeros) amortize the per-row overhead and increase
    # the speedup (paper: converging to 1.4/1.8/2.4x).  The 64-bit-bus curve
    # is nearly flat in the paper too, so the growth check applies to the
    # wider buses only.
    for bus in (128, 256):
        assert speedups[(bus, nnzs[-1])] > speedups[(bus, nnzs[0])]
    assert speedups[(64, nnzs[-1])] > 1.0
    # The widest bus shows the largest converged speedup.
    assert speedups[(256, nnzs[-1])] >= speedups[(64, nnzs[-1])]
    # Request bundling means AXI-Pack never loses, even at 2 nonzeros per row.
    assert all(value > 0.9 for value in speedups.values())
