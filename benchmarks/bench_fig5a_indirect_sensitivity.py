"""Fig. 5a: indirect-read utilization vs element/index size and bank count."""

from conftest import run_once

from repro.analysis.fig5 import figure_5a


SIZE_PAIRS = ((32, 32), (32, 16), (32, 8), (64, 32), (128, 32), (256, 32))
BANKS = (8, 17, 32)


def test_fig5a_indirect_sensitivity(benchmark):
    table = run_once(
        benchmark, figure_5a, size_pairs=SIZE_PAIRS, bank_counts=BANKS, num_beats=32
    )
    print()
    print(table.render())
    util = {(row[0], row[1], row[2]): row[3] for row in table.rows}
    bound = {(row[0], row[1]): row[4] for row in table.rows}
    # More banks help single-word elements, where every gathered word is an
    # independent random bank access (the paper's dominant case).
    for elem, idx in SIZE_PAIRS:
        if elem == 32:
            assert util[(elem, idx, 8)] <= util[(elem, idx, 17)] + 0.02
            assert util[(elem, idx, 17)] <= util[(elem, idx, 32)] + 0.02
        else:
            # Multi-word elements are bank-aligned runs; bank count matters
            # far less, but more banks must never hurt significantly.
            assert util[(elem, idx, 32)] >= util[(elem, idx, 8)] - 0.08
        # The conflict-free memory approaches the r/(r+1) port-sharing bound.
        assert util[(elem, idx, "ideal")] <= bound[(elem, idx)] + 0.02
        assert util[(elem, idx, "ideal")] > 0.6 * bound[(elem, idx)]
    # Larger element/index ratios give higher utilization (paper's main trend).
    assert util[(32, 8, 17)] > util[(32, 16, 17)] > util[(32, 32, 17)]
    assert util[(256, 32, 17)] > util[(64, 32, 17)] > util[(32, 32, 17)]
