#!/usr/bin/env python3
"""Dense linear algebra scenario: dataflow choice for matrix-vector kernels.

Reproduces the insight of Figs. 3b/3c in miniature: the column-wise gemv
dataflow eliminates reductions but relies on strided accesses, so it only
pays off when the bus packs strided elements (the PACK and IDEAL systems).
The example prints a small decision table a kernel developer could use.

Run with::

    python examples/dense_linear_algebra.py
"""

from repro.analysis.report import format_table
from repro.system import SystemConfig, SystemKind, run_workload
from repro.workloads import GemvWorkload, IsmtWorkload


def main() -> None:
    config = SystemConfig()
    n = 96
    rows = []
    for dataflow in ("row", "col"):
        for kind in (SystemKind.BASE, SystemKind.PACK):
            result = run_workload(
                GemvWorkload(n=n, dataflow=dataflow), config, kind=kind, verify=True
            )
            rows.append([
                dataflow, kind.value, result.cycles,
                f"{result.r_utilization:.1%}",
                "ok" if result.verified else "WRONG",
            ])
    print(f"gemv ({n}x{n}) dataflow comparison:")
    print(format_table(rows, ["dataflow", "system", "cycles", "R util", "check"]))

    best_base = min((r for r in rows if r[1] == "base"), key=lambda r: r[2])
    best_pack = min((r for r in rows if r[1] == "pack"), key=lambda r: r[2])
    print(f"\nBest dataflow on BASE: {best_base[0]}-wise "
          f"(strided accesses are too expensive without AXI-Pack)")
    print(f"Best dataflow on PACK: {best_pack[0]}-wise "
          f"(packed strided bursts make the reduction-free flow win)")

    # The in-place transpose shows the same effect for a pure data-movement
    # kernel with no arithmetic to hide behind.
    ismt_base = run_workload(IsmtWorkload(n=n), config, kind=SystemKind.BASE, verify=True)
    ismt_pack = run_workload(IsmtWorkload(n=n), config, kind=SystemKind.PACK, verify=True)
    print(f"\nismt ({n}x{n}) in-place transpose: "
          f"BASE {ismt_base.cycles} cycles -> PACK {ismt_pack.cycles} cycles "
          f"({ismt_base.cycles / ismt_pack.cycles:.2f}x)")


if __name__ == "__main__":
    main()
