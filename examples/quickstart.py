#!/usr/bin/env python3
"""Quickstart: run one irregular kernel on all three evaluation systems.

This example reproduces the core claim of the paper in miniature: a sparse
matrix-vector multiply (an indirect, gather-heavy kernel) runs much faster
and uses the read bus far more efficiently when the vector processor and the
memory controller speak AXI-Pack.

Run with::

    python examples/quickstart.py
"""

from repro.system import SystemConfig, SystemKind, compare_systems, run_workload
from repro.workloads import SpmvWorkload


def main() -> None:
    # The paper's system configuration: 256-bit bus, 8 lanes, 17 banks.
    config = SystemConfig()
    print(f"System: {config.bus_bits}-bit bus, {config.lanes} lanes, "
          f"{config.num_banks} banks\n")

    # A small synthetic CSR matrix (64 rows, ~48 nonzeros per row) standing in
    # for the SuiteSparse inputs of the paper.
    def make_workload() -> SpmvWorkload:
        return SpmvWorkload(num_rows=64, avg_nnz_per_row=48)

    # Run the same kernel on the BASE, PACK and IDEAL systems and compare.
    comparison = compare_systems(make_workload, config, verify=True)

    print("spmv on the three evaluation systems:")
    for result in (comparison.base, comparison.pack, comparison.ideal):
        print("  " + result.summary())

    print(f"\nPACK speedup over BASE : {comparison.pack_speedup:.2f}x")
    print(f"IDEAL speedup over BASE: {comparison.ideal_speedup:.2f}x")
    print(f"PACK reaches {comparison.pack_fraction_of_ideal:.0%} of IDEAL performance")

    # A single run also exposes the full measurement record.
    single = run_workload(make_workload(), config, kind=SystemKind.PACK)
    engine = single.engine
    print(f"\nPACK detail: {engine.r_beats} R beats carrying "
          f"{engine.r_useful_bytes} useful bytes over {single.cycles} cycles "
          f"-> {single.r_utilization:.1%} R bus utilization")
    print("Indices never crossed the bus on PACK: "
          f"{engine.r_index_bytes} index bytes transferred")


if __name__ == "__main__":
    main()
