#!/usr/bin/env python3
"""Design-space exploration: choosing the bank count for an AXI-Pack memory.

The paper settles on 17 banks after studying how bank count affects strided
and indirect read utilization (Figs. 5a/5b) and how much area prime bank
counts cost in modulo/divide hardware (Fig. 5c).  This example runs a scaled
down version of that study with the same controller model and prints a
cost/benefit table for a system architect.

Run with::

    python examples/design_space_exploration.py
"""

from repro.analysis.fig5 import (
    measure_indirect_utilization,
    measure_strided_utilization,
)
from repro.analysis.report import format_table
from repro.hw import AdapterAreaModel, BankCrossbarAreaModel, TimingModel


def main() -> None:
    bank_counts = (8, 11, 16, 17, 31, 32)
    strides = range(0, 32)
    area_model = BankCrossbarAreaModel(num_ports=8)

    rows = []
    for banks in bank_counts:
        strided = sum(
            measure_strided_utilization(32, stride, banks, num_beats=8)
            for stride in strides
        ) / len(list(strides))
        indirect = measure_indirect_utilization(32, 32, banks, num_beats=32)
        breakdown = area_model.breakdown(banks)
        rows.append([
            banks,
            f"{strided:.1%}",
            f"{indirect:.1%}",
            f"{breakdown.crossbar_kge:.1f}",
            f"{breakdown.modulo_kge + breakdown.divider_kge:.1f}",
            f"{breakdown.total_kge:.1f}",
        ])

    print("Bank-count design space (8 word ports, 32-bit words, FP32 elements):")
    print(format_table(rows, [
        "banks", "strided R util", "indirect R util",
        "crossbar kGE", "mod/div kGE", "total kGE",
    ]))
    print("\nThe paper picks 17 banks: near-prime-best utilization on strided "
          "accesses at a modest area premium over 16 banks.")

    # Adapter cost summary for the chosen configuration.
    adapter = AdapterAreaModel()
    timing = TimingModel()
    for bus in (64, 128, 256):
        print(f"adapter @ {bus:>3}-bit bus: {adapter.total_area_kge(bus):6.1f} kGE at 1 GHz, "
              f"min period {timing.min_period_ps(bus):.0f} ps")
    print(f"256-bit adapter is {adapter.fraction_of_ara(256):.1%} of Ara's area "
          "(paper: 6.2%)")


if __name__ == "__main__":
    main()
