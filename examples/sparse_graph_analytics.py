#!/usr/bin/env python3
"""Graph analytics scenario: PageRank and shortest paths on a sparse graph.

The paper motivates AXI-Pack with graph analytics: both PageRank and SSSP
walk a sparse adjacency matrix and gather per-neighbour data through an index
array.  This example builds one synthetic graph, runs one PageRank sweep and
one Bellman-Ford relaxation sweep on the BASE and PACK systems, verifies the
results against numpy references, and reports the bandwidth the AXI-Pack
controller saves by resolving indices next to the banks.

Run with::

    python examples/sparse_graph_analytics.py
"""

from repro.hw import EnergyModel
from repro.system import SystemConfig, SystemKind, run_workload
from repro.workloads import PageRankWorkload, SsspWorkload, random_csr


def run_kernel(name: str, factory, config: SystemConfig) -> None:
    base = run_workload(factory(), config, kind=SystemKind.BASE, verify=True)
    pack = run_workload(factory(), config, kind=SystemKind.PACK, verify=True)
    energy = EnergyModel().compare(base, pack)
    print(f"{name}:")
    print(f"  BASE : {base.cycles:7d} cycles, R util {base.r_utilization:5.1%}, "
          f"results {'ok' if base.verified else 'WRONG'}")
    print(f"  PACK : {pack.cycles:7d} cycles, R util {pack.r_utilization:5.1%}, "
          f"results {'ok' if pack.verified else 'WRONG'}")
    print(f"  index bytes over the bus: BASE {base.engine.r_index_bytes:8d}, "
          f"PACK {pack.engine.r_index_bytes}")
    print(f"  speedup {energy.speedup:.2f}x, "
          f"energy efficiency improvement {energy.energy_efficiency_improvement:.2f}x\n")


def main() -> None:
    config = SystemConfig()
    # One shared synthetic graph: 96 nodes, ~64 edges per node.
    graph = random_csr(96, 96, avg_nnz_per_row=64.0, seed=42)
    print(f"Graph: {graph.num_rows} nodes, {graph.nnz} edges "
          f"({graph.avg_nnz_per_row:.1f} per node)\n")

    run_kernel("PageRank (one sweep)",
               lambda: PageRankWorkload(matrix=graph), config)
    run_kernel("SSSP (one Bellman-Ford relaxation)",
               lambda: SsspWorkload(matrix=graph, source=0), config)


if __name__ == "__main__":
    main()
