#!/usr/bin/env python
"""Documentation consistency checker — now a shim over reprolint's docs rules.

The actual checks (CLI-surface drift, dead relative links) moved into
:mod:`tools.reprolint.rules.docs` as rules ``DOC01`` / ``DOC02`` so the docs
gate and the rest of the static-analysis battery share one driver, one
suppression story and one JSON report.  This entry point remains because the
CI ``docs-check`` job and older muscle memory invoke it directly::

    PYTHONPATH=src python tools/check_docs.py

and it keeps the original helper API (``DOC_FILES``,
``check_cli_documented``, ``check_links``) for the tier-1 wrapper test.
Exit status is non-zero when anything is missing.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint.rules.docs import (  # noqa: E402
    DEFAULT_IGNORED_FLAGS as _IGNORED_FLAGS,
)
from tools.reprolint.rules.docs import (  # noqa: E402
    check_cli_documented as _check_cli_documented,
)
from tools.reprolint.rules.docs import check_links as _check_links  # noqa: E402
from tools.reprolint.rules.docs import doc_files as _doc_files  # noqa: E402

#: The documentation set the checker searches (kept for importers).
DOC_FILES = tuple(_doc_files(REPO_ROOT))

#: Options argparse adds on its own, or that are deliberately undocumented.
IGNORED_FLAGS = set(_IGNORED_FLAGS)


def check_cli_documented(parser, corpus):
    """Problem strings for undocumented parser surface (legacy signature)."""
    return _check_cli_documented(parser, corpus, tuple(IGNORED_FLAGS))


def check_links(doc_files):
    """Legacy signature: broken-link problem strings for ``doc_files``."""
    return [
        f"{doc}: broken link -> {target}"
        for doc, _line, target in _check_links(REPO_ROOT, list(doc_files))
    ]


def main() -> int:
    from tools.reprolint.cli import main as lint_main

    return lint_main(["--root", str(REPO_ROOT), "--rules", "docs"])


if __name__ == "__main__":
    raise SystemExit(main())
