#!/usr/bin/env python
"""Documentation consistency checker (the CI ``docs-check`` job).

Two classes of rot this catches:

1. **CLI drift** — every ``repro`` subcommand and every long option it
   accepts must be mentioned somewhere in the documentation set (README.md
   plus docs/*.md).  The subcommands and flags are introspected from the
   live argparse parser, so adding a flag without documenting it fails CI.
2. **Dead links** — every intra-repository markdown link (``[x](docs/y.md)``
   or ``[x](../README.md#anchor)``) must resolve to an existing file.

Run from the repository root::

    PYTHONPATH=src python tools/check_docs.py

Exit status is non-zero when anything is missing; the offenders are listed
one per line so the failure is actionable.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: The documentation set the checker searches.
DOC_FILES = ("README.md",) + tuple(
    str(path.relative_to(REPO_ROOT))
    for path in sorted((REPO_ROOT / "docs").glob("*.md"))
)

#: Options argparse adds on its own, or that are deliberately undocumented.
IGNORED_FLAGS = {"--help", "--version"}

#: ``[text](target)`` — target split from any title, anchors kept.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)[^)]*\)")


def _iter_parser_surface(parser: argparse.ArgumentParser):
    """Yield (subcommand, flag) pairs; flag is None for the command itself."""
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for name, sub in action.choices.items():
                yield name, None
                for sub_action in sub._actions:
                    for option in sub_action.option_strings:
                        if option.startswith("--"):
                            yield name, option


def check_cli_documented(parser: argparse.ArgumentParser, corpus: str):
    missing = []
    for command, flag in _iter_parser_surface(parser):
        if flag is None:
            # Documented as "repro <command>".
            if not re.search(rf"repro(?:\.cli)?\s+{re.escape(command)}\b",
                             corpus):
                missing.append(f"subcommand 'repro {command}' not documented")
        elif flag not in IGNORED_FLAGS and flag not in corpus:
            missing.append(f"flag '{flag}' (repro {command}) not documented")
    return missing


def check_links(doc_files):
    broken = []
    for doc in doc_files:
        path = REPO_ROOT / doc
        for target in _LINK_RE.findall(path.read_text(encoding="utf-8")):
            if re.match(r"[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                broken.append(f"{doc}: broken link -> {target}")
    return broken


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.cli import _build_parser

    corpus = "\n".join(
        (REPO_ROOT / doc).read_text(encoding="utf-8") for doc in DOC_FILES
    )
    problems = check_cli_documented(_build_parser(), corpus)
    problems += check_links(DOC_FILES)
    for problem in problems:
        print(problem)
    if problems:
        print(f"docs-check: {len(problems)} problem(s) "
              f"across {len(DOC_FILES)} documentation files")
        return 1
    print(f"docs-check: OK ({len(DOC_FILES)} documentation files)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
