"""Repository-local developer tools (not part of the installed package)."""
