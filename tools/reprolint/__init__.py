"""reprolint: repo-native static analysis for the AXI-Pack reproduction.

The simulator's correctness story rests on invariants that used to be
enforced only by reviewer vigilance: bit-identical determinism across the
event/naive x scalar/batch x FULL/ELIDE cube, cache fingerprints that cover
every ``SystemConfig`` field, ``__slots__`` discipline on hot-path records,
and a lane-kernel twin for every scalar planner.  This package turns each of
those hand-kept rules into a machine-checked analysis pass:

* :mod:`tools.reprolint.core` — the driver: file contexts, the rule
  registry, per-line ``# reprolint: disable=RULE[: reason]`` suppressions
  (themselves reported), human and ``--json`` output, stable exit codes.
* :mod:`tools.reprolint.rules` — the rule battery (determinism, ordering,
  fingerprint completeness, hot-path contracts, twin coverage, deprecation,
  documentation drift).
* ``manifest.json`` / ``fingerprint_manifest.json`` — committed manifests:
  the explicit allowlists and the fingerprint field-set pin, kept in the
  tree so every exemption shows up in diff review.

Entry points::

    python -m tools.reprolint [--json]     # from the repository root
    repro lint [--json]                    # the CLI subcommand

Exit codes: 0 clean, 1 violations found, 2 configuration/internal error.
"""

from tools.reprolint.core import (  # public API re-export
    LintConfig,
    LintResult,
    RepoContext,
    Violation,
    run_lint,
)
