"""reprolint driver: file contexts, suppressions, rule registry, reporting.

Design
------
Every rule is *repo-level*: it receives a :class:`RepoContext` (parsed ASTs
of every file in scope plus the committed manifests) and yields
:class:`Violation` records.  Per-file rules simply loop over
``repo.files`` internally; repo-level rules (fingerprint completeness, twin
coverage, docs drift) read the specific modules they govern through the
same context.  Keeping one rule signature makes registration, suppression
handling and JSON reporting uniform — and makes adding a rule a one-file
change (see ``docs/testing.md``, "Adding a rule").

Suppressions
------------
A violation on line *L* is suppressed by a trailing comment on that line::

    claims.items()  # reprolint: disable=ORD01: bank keys, order-independent

Suppressions are never silent: used ones are echoed in the report (and in
``--json``) so reviewers see every active exemption; a suppression without
a reason is itself a violation (``SUP01``), as is one that suppresses
nothing (``SUP02``).  Repo-level rules are exempted through the committed
manifests instead of inline comments, for the same diff-visibility reason.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple

#: ``# reprolint: disable=CODE[,CODE...][: reason]``
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s-]+?)(?::\s*(.+?))?\s*$"
)

#: Code of the "suppression without a reason" meta-violation.
SUP_NO_REASON = "SUP01"
#: Code of the "suppression that suppresses nothing" meta-violation.
SUP_UNUSED = "SUP02"

META_RULE_DOCS = {
    SUP_NO_REASON: "inline suppression carries no reason",
    SUP_UNUSED: "inline suppression matches no violation on its line",
}


@dataclass
class Violation:
    """One finding: a rule code anchored to a file and line."""

    code: str
    path: str  # repo-relative posix path
    line: int
    message: str
    suppressed: bool = False
    reason: Optional[str] = None

    def render(self) -> str:
        tag = f" [suppressed: {self.reason}]" if self.suppressed else ""
        return f"{self.path}:{self.line}: {self.code}{tag} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }
        if self.suppressed:
            data["suppressed"] = True
            data["reason"] = self.reason
        return data


@dataclass
class Suppression:
    """One parsed ``# reprolint: disable=...`` comment."""

    line: int
    codes: Tuple[str, ...]
    reason: Optional[str]
    used: List[str] = field(default_factory=list)


class FileContext:
    """One parsed source file: path, text, AST and suppressions."""

    def __init__(self, root: Path, rel: str) -> None:
        self.rel = rel
        self.path = root / rel
        self.source = self.path.read_text(encoding="utf-8")
        self.lines = self.source.splitlines()
        self.tree = ast.parse(self.source, filename=rel)
        self.suppressions: List[Suppression] = []
        for lineno, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            codes = tuple(
                code.strip() for code in match.group(1).split(",") if code.strip()
            )
            reason = match.group(2)
            self.suppressions.append(
                Suppression(line=lineno, codes=codes, reason=reason)
            )

    def suppression_at(self, line: int, code: str) -> Optional[Suppression]:
        for supp in self.suppressions:
            if supp.line == line and code in supp.codes:
                return supp
        return None


class LintConfig:
    """The committed manifests plus the paths the rules govern.

    Tests override individual attributes to point rules at fixture files;
    the real configuration is loaded from ``tools/reprolint/manifest.json``
    and ``tools/reprolint/fingerprint_manifest.json``.
    """

    def __init__(self, manifest: Dict, fingerprint: Dict) -> None:
        self.src_globs: List[str] = manifest.get("src_globs", ["src/repro/**/*.py"])
        self.hot_modules: List[str] = manifest.get("hot_modules", [])
        self.env_allowlist: Dict[str, Dict] = manifest.get("env_allowlist", {})
        self.wallclock_allowlist: Dict[str, str] = manifest.get(
            "wallclock_allowlist", {}
        )
        self.deprecated: Dict[str, str] = manifest.get("deprecated_names", {})
        self.twins: Dict = manifest.get("twins", {})
        self.docs: Dict = manifest.get("docs", {})
        self.fingerprint: Dict = fingerprint

    @classmethod
    def load(cls, root: Path) -> "LintConfig":
        base = root / "tools" / "reprolint"
        manifest = json.loads((base / "manifest.json").read_text(encoding="utf-8"))
        fingerprint = json.loads(
            (base / "fingerprint_manifest.json").read_text(encoding="utf-8")
        )
        return cls(manifest, fingerprint)


class RepoContext:
    """Everything a rule may look at: parsed files, config, repo root."""

    def __init__(
        self,
        root: Path,
        config: LintConfig,
        rel_paths: Optional[Iterable[str]] = None,
    ) -> None:
        self.root = Path(root)
        self.config = config
        if rel_paths is None:
            rel_paths = sorted(
                str(path.relative_to(self.root)).replace("\\", "/")
                for pattern in config.src_globs
                for path in self.root.glob(pattern)
                if path.suffix == ".py"
            )
        self.files: List[FileContext] = [
            FileContext(self.root, rel) for rel in rel_paths
        ]
        self._by_rel = {ctx.rel: ctx for ctx in self.files}

    def get_file(self, rel: str) -> Optional[FileContext]:
        """The context for ``rel``, parsing it on demand if out of scope.

        Only Python sources get a context — violations anchored to other
        files (markdown, JSON) have no AST and no inline suppressions.
        """
        ctx = self._by_rel.get(rel)
        if ctx is None and rel.endswith(".py") and (self.root / rel).exists():
            ctx = FileContext(self.root, rel)
            self._by_rel[rel] = ctx
        return ctx


#: rule-group name -> check function(repo) -> iterable of violations
RULES: Dict[str, Callable[[RepoContext], Iterable[Violation]]] = {}
#: violation code -> one-line description (the rule catalog)
RULE_DOCS: Dict[str, str] = dict(META_RULE_DOCS)
#: violation code -> owning rule-group name
RULE_GROUPS: Dict[str, str] = {}


def rule(name: str, codes: Dict[str, str]):
    """Register a rule group under ``name`` documenting its ``codes``."""

    def decorator(func: Callable[[RepoContext], Iterable[Violation]]):
        RULES[name] = func
        RULE_DOCS.update(codes)
        for code in codes:
            RULE_GROUPS[code] = name
        return func

    return decorator


@dataclass
class LintResult:
    """The outcome of one lint run."""

    violations: List[Violation]  # active (unsuppressed) findings
    suppressed: List[Violation]  # findings silenced by an explained comment

    @property
    def exit_code(self) -> int:
        return 1 if self.violations else 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "violations": [v.to_dict() for v in self.violations],
            "suppressed": [v.to_dict() for v in self.suppressed],
            "counts": {
                "violations": len(self.violations),
                "suppressed": len(self.suppressed),
            },
            "exit_code": self.exit_code,
        }


def run_rules(
    repo: RepoContext, rule_names: Optional[Iterable[str]] = None
) -> LintResult:
    """Run the selected rule groups (default: all) and apply suppressions."""
    names = list(rule_names) if rule_names is not None else sorted(RULES)
    unknown = [name for name in names if name not in RULES]
    if unknown:
        raise KeyError(f"unknown rule group(s): {', '.join(unknown)}")
    raw: List[Violation] = []
    for name in names:
        raw.extend(RULES[name](repo))

    active: List[Violation] = []
    suppressed: List[Violation] = []
    for violation in raw:
        ctx = repo.get_file(violation.path)
        supp = (
            ctx.suppression_at(violation.line, violation.code) if ctx else None
        )
        if supp is not None:
            supp.used.append(violation.code)
            violation.suppressed = True
            violation.reason = supp.reason
            suppressed.append(violation)
        else:
            active.append(violation)

    # Meta-rule: suppressions must carry a reason and must actually suppress.
    # A suppression is only judged against rule groups that ran this pass —
    # a partial `--rules` run cannot call a HOT01 suppression unused when
    # the hot-path rule never looked.
    ran = set(names)
    for ctx in repo.files:
        for supp in ctx.suppressions:
            in_scope = any(
                RULE_GROUPS.get(code) in ran for code in supp.codes
            )
            if not in_scope:
                continue
            if not supp.used:
                active.append(
                    Violation(
                        code=SUP_UNUSED,
                        path=ctx.rel,
                        line=supp.line,
                        message=(
                            f"suppression of {','.join(supp.codes)} matches no "
                            "violation on this line — remove it"
                        ),
                    )
                )
            elif not supp.reason:
                active.append(
                    Violation(
                        code=SUP_NO_REASON,
                        path=ctx.rel,
                        line=supp.line,
                        message=(
                            f"suppression of {','.join(sorted(set(supp.used)))} "
                            "has no reason — explain it: "
                            "# reprolint: disable=CODE: why"
                        ),
                    )
                )

    active.sort(key=lambda v: (v.path, v.line, v.code))
    suppressed.sort(key=lambda v: (v.path, v.line, v.code))
    return LintResult(violations=active, suppressed=suppressed)


def run_lint(
    root: Path,
    config: Optional[LintConfig] = None,
    rule_names: Optional[Iterable[str]] = None,
) -> LintResult:
    """Lint the repository at ``root`` (imports rules on first use)."""
    from tools.reprolint import rules  # noqa: F401  (registers the battery)

    if config is None:
        config = LintConfig.load(Path(root))
    repo = RepoContext(Path(root), config)
    return run_rules(repo, rule_names)


# ----------------------------------------------------------- AST utilities
def qualified_name(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Dotted name of an attribute/name chain, resolved through imports.

    ``np.random.default_rng`` with ``import numpy as np`` resolves to
    ``numpy.random.default_rng``; ``environ.get`` with ``from os import
    environ`` resolves to ``os.environ.get``.  Returns None for anything
    that is not a plain dotted chain.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(imports.get(node.id, node.id))
    return ".".join(reversed(parts))


def import_table(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the dotted origin they were imported as."""
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                table[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    table[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return table


def class_fields(class_node: ast.ClassDef) -> List[str]:
    """Names of the annotated (dataclass) fields declared in a class body."""
    names: List[str] = []
    for item in class_node.body:
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            annotation = ast.dump(item.annotation)
            if "ClassVar" in annotation:
                continue
            names.append(item.target.id)
    return names


def find_class(tree: ast.AST, name: str) -> Optional[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def base_names(class_node: ast.ClassDef) -> List[str]:
    """The (tail) names of a class's bases: ``enum.Enum`` -> ``Enum``."""
    names: List[str] = []
    for base in class_node.bases:
        while isinstance(base, ast.Subscript):  # Generic[ItemT]
            base = base.value
        if isinstance(base, ast.Attribute):
            names.append(base.attr)
        elif isinstance(base, ast.Name):
            names.append(base.id)
    return names


def component_classes(tree: ast.AST) -> List[ast.ClassDef]:
    """``Component`` subclasses in ``tree``, transitively within the module."""
    known = {"Component"}
    classes = [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]
    # Two passes so a subclass-of-a-subclass defined before its parent in
    # the file is still found (rare, but cheap to get right).
    for _ in range(2):
        for node in classes:
            if known.intersection(base_names(node)):
                known.add(node.name)
    return [n for n in classes if n.name in known and n.name != "Component"]
