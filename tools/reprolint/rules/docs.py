"""Documentation-drift rules (the former ``tools/check_docs.py``).

``DOC01`` — CLI drift: a ``repro`` subcommand or long option introspected
    from the live argparse parser is not mentioned anywhere in the
    documentation set (README.md plus docs/*.md).
``DOC02`` — a relative markdown link in the documentation set points at a
    file that does not exist.

Unlike the AST rules, this one imports :mod:`repro.cli` to read the real
parser — documenting a flag that argparse does not accept is drift in the
other direction, so the parser is the single source of truth.  The doc file
set and ignored flags live under ``docs`` in the manifest.
"""

from __future__ import annotations

import argparse
import re
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from tools.reprolint.core import RepoContext, Violation, rule

DOCS = {
    "DOC01": "CLI subcommand or flag missing from the documentation",
    "DOC02": "broken relative link in a documentation file",
}

#: ``[text](target)`` — target split from any title, anchors kept.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)[^)]*\)")

#: Options argparse adds on its own, or that are deliberately undocumented.
DEFAULT_IGNORED_FLAGS = ("--help", "--version")


def doc_files(root: Path, config: Optional[dict] = None) -> List[str]:
    """The documentation set: README.md plus every docs/*.md, repo-relative."""
    if config and "files" in config:
        return list(config["files"])
    return ["README.md"] + sorted(
        str(path.relative_to(root)).replace("\\", "/")
        for path in (root / "docs").glob("*.md")
    )


def iter_parser_surface(
    parser: argparse.ArgumentParser,
) -> Iterator[Tuple[str, Optional[str]]]:
    """Yield (subcommand, flag) pairs; flag is None for the command itself."""
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for name, sub in action.choices.items():
                yield name, None
                for sub_action in sub._actions:
                    for option in sub_action.option_strings:
                        if option.startswith("--"):
                            yield name, option


def check_cli_documented(
    parser: argparse.ArgumentParser,
    corpus: str,
    ignored_flags: Tuple[str, ...] = DEFAULT_IGNORED_FLAGS,
) -> List[str]:
    """Problem strings for undocumented parser surface (empty when clean)."""
    missing = []
    for command, flag in iter_parser_surface(parser):
        if flag is None:
            # Documented as "repro <command>".
            if not re.search(
                rf"repro(?:\.cli)?\s+{re.escape(command)}\b", corpus
            ):
                missing.append(f"subcommand 'repro {command}' not documented")
        elif flag not in ignored_flags and flag not in corpus:
            missing.append(f"flag '{flag}' (repro {command}) not documented")
    return missing


def check_links(root: Path, docs: List[str]) -> List[Tuple[str, int, str]]:
    """(doc, line, target) for every relative link that resolves nowhere."""
    broken = []
    for doc in docs:
        path = root / doc
        if not path.exists():
            broken.append((doc, 1, doc))
            continue
        for lineno, text in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            for target in _LINK_RE.findall(text):
                if re.match(r"[a-z][a-z0-9+.-]*:", target):  # http:, mailto:
                    continue
                if target.startswith("#"):  # same-file anchor
                    continue
                resolved = (path.parent / target.split("#", 1)[0]).resolve()
                if not resolved.exists():
                    broken.append((doc, lineno, target))
    return broken


def _build_parser(root: Path) -> Optional[argparse.ArgumentParser]:
    """The live repro CLI parser, or None when repro is not importable."""
    import sys

    src = str(root / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    try:
        from repro.cli import _build_parser as build
    except ImportError:
        return None
    return build()


@rule("docs", DOCS)
def check(repo: RepoContext) -> Iterator[Violation]:
    config = repo.config.docs
    docs = doc_files(repo.root, config)
    ignored = tuple(config.get("ignored_flags", DEFAULT_IGNORED_FLAGS))

    corpus = "\n".join(
        (repo.root / doc).read_text(encoding="utf-8")
        for doc in docs
        if (repo.root / doc).exists()
    )
    parser = _build_parser(repo.root)
    if parser is not None:
        for problem in check_cli_documented(parser, corpus, ignored):
            yield Violation(
                "DOC01", docs[0] if docs else "README.md", 1,
                f"{problem} — mention it in one of: {', '.join(docs)}",
            )
    for doc, lineno, target in check_links(repo.root, docs):
        yield Violation(
            "DOC02", doc, lineno,
            f"broken link -> {target}",
        )
