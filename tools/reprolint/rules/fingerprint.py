"""Fingerprint-completeness rules: cache keys must cover every spec field.

The result cache is sound only if every field that can change a measurement
is part of the cache key.  That property is easy to break invisibly: add a
field to ``SystemConfig`` or ``RunSpec``, forget the fingerprint, and stale
cached results silently impersonate the new configuration.  These rules pin
the covered field-set in a committed manifest
(``tools/reprolint/fingerprint_manifest.json``) so any drift is loud:

``FPR01`` — a dataclass field exists in code but is neither listed as
    covered nor named on the manifest's ``exempt`` map (with a reason).
``FPR02`` — the manifest lists a field the class no longer declares
    (stale manifest).
``FPR03`` — the manifest's ``schema_version`` differs from
    ``CACHE_SCHEMA_VERSION`` in the spec module.
``FPR04`` — a field the manifest claims is covered with ``explicit``
    coverage is never referenced as ``self.<field>`` inside the class's
    ``fingerprint`` method.  (``wholesale`` coverage — the whole dataclass
    passed through ``canonicalize`` — covers every field by construction
    and needs no per-field check.)
``FPR05`` — the digest of the *actual* covered field-sets does not match
    ``digest_history`` for the current schema version: the fingerprint's
    field-set changed without a ``CACHE_SCHEMA_VERSION`` bump.  Bumping the
    version and recording the new digest is a deliberate, diff-visible act.
"""

from __future__ import annotations

import ast
import hashlib
import json
from typing import Dict, Iterator, List, Optional, Tuple

from tools.reprolint.core import RepoContext, Violation, find_class, rule

DOCS = {
    "FPR01": "dataclass field missing from the fingerprint manifest",
    "FPR02": "fingerprint manifest lists a field the class no longer has",
    "FPR03": "fingerprint manifest schema_version != CACHE_SCHEMA_VERSION",
    "FPR04": "manifest-covered field not referenced in fingerprint()",
    "FPR05": "fingerprint field-set changed without a schema version bump",
}


def _annotated_fields(class_node: ast.ClassDef) -> List[Tuple[str, int]]:
    """(name, line) of each dataclass field declared in the class body."""
    fields: List[Tuple[str, int]] = []
    for item in class_node.body:
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            if "ClassVar" in ast.dump(item.annotation):
                continue
            fields.append((item.target.id, item.lineno))
    return fields


def _self_attrs_in_fingerprint(class_node: ast.ClassDef) -> Optional[set]:
    """Names referenced as ``self.X`` inside the class's fingerprint method."""
    for item in class_node.body:
        if isinstance(item, ast.FunctionDef) and item.name == "fingerprint":
            return {
                node.attr
                for node in ast.walk(item)
                if isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            }
    return None


def _schema_version(tree: ast.AST) -> Optional[Tuple[int, int]]:
    """(value, line) of the ``CACHE_SCHEMA_VERSION = N`` assignment."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "CACHE_SCHEMA_VERSION"
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, int)
                ):
                    return node.value.value, node.lineno
    return None


def field_set_digest(covered: Dict[str, List[str]]) -> str:
    """Stable digest of the covered field-sets, as pinned in digest_history."""
    payload = json.dumps(
        {name: sorted(fields) for name, fields in covered.items()},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@rule("fingerprint", DOCS)
def check(repo: RepoContext) -> Iterator[Violation]:
    manifest = repo.config.fingerprint
    if not manifest:
        return
    spec_rel = manifest.get("spec_module", "src/repro/orchestrate/spec.py")
    spec_ctx = repo.get_file(spec_rel)

    # --- FPR03: manifest pinned to the live schema version ----------------
    spec_version = _schema_version(spec_ctx.tree) if spec_ctx else None
    manifest_version = manifest.get("schema_version")
    if spec_version is not None and manifest_version != spec_version[0]:
        yield Violation(
            "FPR03", spec_rel, spec_version[1],
            f"CACHE_SCHEMA_VERSION is {spec_version[0]} but the fingerprint "
            f"manifest pins schema_version {manifest_version} — update "
            "tools/reprolint/fingerprint_manifest.json alongside the bump",
        )

    # --- FPR01/FPR02/FPR04: per-class field coverage ----------------------
    actual_covered: Dict[str, List[str]] = {}
    for class_name, entry in sorted(manifest.get("classes", {}).items()):
        rel = entry.get("module", spec_rel)
        ctx = repo.get_file(rel)
        class_node = find_class(ctx.tree, class_name) if ctx else None
        if class_node is None:
            yield Violation(
                "FPR02", rel, 1,
                f"fingerprint manifest covers class `{class_name}` which "
                f"does not exist in {rel} — remove the stale entry",
            )
            continue
        declared = dict(_annotated_fields(class_node))
        listed = set(entry.get("fields", []))
        exempt = entry.get("exempt", {})
        coverage = entry.get("coverage", "wholesale")

        for name, lineno in sorted(declared.items()):
            if name not in listed and name not in exempt:
                yield Violation(
                    "FPR01", rel, lineno,
                    f"`{class_name}.{name}` is not covered by the cache "
                    "fingerprint — add it to the fingerprint (and bump "
                    "CACHE_SCHEMA_VERSION) or exempt it with a reason in "
                    "tools/reprolint/fingerprint_manifest.json",
                )
        for name in sorted(listed.union(exempt)):
            if name not in declared:
                yield Violation(
                    "FPR02", rel, class_node.lineno,
                    f"fingerprint manifest lists `{class_name}.{name}` but "
                    "the class no longer declares it — remove the stale "
                    "manifest entry",
                )
        if coverage == "explicit":
            referenced = _self_attrs_in_fingerprint(class_node)
            if referenced is None:
                yield Violation(
                    "FPR04", rel, class_node.lineno,
                    f"`{class_name}` is manifested with explicit coverage "
                    "but defines no fingerprint() method",
                )
            else:
                for name in sorted(listed):
                    if name in declared and name not in referenced:
                        yield Violation(
                            "FPR04", rel, class_node.lineno,
                            f"`{class_name}.{name}` is claimed covered but "
                            "fingerprint() never reads self."
                            f"{name} — cover it or exempt it",
                        )
        # Digest over what the code actually covers (declared minus exempt),
        # so code drift is caught even if the manifest was edited to match.
        actual_covered[class_name] = sorted(
            name for name in declared if name not in exempt
        )

    # --- FPR05: field-set changes require a version bump ------------------
    if spec_version is not None and actual_covered:
        digest = field_set_digest(actual_covered)
        history = manifest.get("digest_history", {})
        pinned = history.get(str(spec_version[0]))
        if pinned != digest:
            yield Violation(
                "FPR05", spec_rel, spec_version[1],
                "fingerprint field-set changed without a schema bump: "
                f"digest is {digest[:16]}… but digest_history[{spec_version[0]}] "
                f"pins {str(pinned)[:16]}… — bump CACHE_SCHEMA_VERSION and "
                "record the new digest in "
                "tools/reprolint/fingerprint_manifest.json",
            )
