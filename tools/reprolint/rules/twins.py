"""Twin-coverage rule: every scalar planner has a lane-kernel counterpart.

The simulator carries each traffic pattern twice — a scalar, beat-at-a-time
planner in ``controller/planners.py`` (the readable reference) and a batched
lane kernel in ``controller/lanes.py`` (the fast path).  The parity suite
asserts they agree bit for bit, but only for pairs it knows about; a new
planner without a twin silently runs scalar-only and never gets a parity
check.  Naming convention: ``plan_<stem>[_beats]`` twins ``batch_<stem>``.

``TWN01`` — a ``plan_*`` function in the planners module has no
    ``batch_*`` counterpart in the lanes module.
``TWN02`` — a ``batch_*`` kernel has no ``plan_*`` counterpart (a fast
    path with no scalar reference to check against).

The module pair and any deliberate singletons live under ``twins`` in
``tools/reprolint/manifest.json``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator

from tools.reprolint.core import RepoContext, Violation, rule

DOCS = {
    "TWN01": "scalar planner without a batched lane-kernel twin",
    "TWN02": "batched lane kernel without a scalar planner twin",
}


def _functions(tree: ast.AST, prefix: str) -> Dict[str, int]:
    """Module-level ``prefix*`` function names mapped to their def line."""
    return {
        node.name: node.lineno
        for node in tree.body  # type: ignore[attr-defined]
        if isinstance(node, ast.FunctionDef) and node.name.startswith(prefix)
    }


def _stem(name: str, prefix: str) -> str:
    """``plan_strided_beats`` -> ``strided``; ``batch_strided`` -> ``strided``."""
    stem = name[len(prefix):]
    if stem.endswith("_beats"):
        stem = stem[: -len("_beats")]
    return stem


@rule("twin-coverage", DOCS)
def check(repo: RepoContext) -> Iterator[Violation]:
    config = repo.config.twins
    if not config:
        return
    planners_rel = config.get("planners", "src/repro/controller/planners.py")
    lanes_rel = config.get("lanes", "src/repro/controller/lanes.py")
    exempt = config.get("exempt", {})
    planners_ctx = repo.get_file(planners_rel)
    lanes_ctx = repo.get_file(lanes_rel)
    if planners_ctx is None or lanes_ctx is None:
        return

    plans = _functions(planners_ctx.tree, "plan_")
    batches = _functions(lanes_ctx.tree, "batch_")
    plan_stems = {_stem(name, "plan_"): name for name in plans}
    batch_stems = {_stem(name, "batch_"): name for name in batches}

    for stem, name in sorted(plan_stems.items()):
        if stem not in batch_stems and name not in exempt:
            yield Violation(
                "TWN01", planners_rel, plans[name],
                f"scalar planner `{name}` has no `batch_{stem}*` twin in "
                f"{lanes_rel} — add the lane kernel (and a parity test) or "
                "exempt it with a reason under twins.exempt in "
                "tools/reprolint/manifest.json",
            )
    for stem, name in sorted(batch_stems.items()):
        if stem not in plan_stems and name not in exempt:
            yield Violation(
                "TWN02", lanes_rel, batches[name],
                f"lane kernel `{name}` has no `plan_{stem}*` twin in "
                f"{planners_rel} — a fast path with no scalar reference "
                "cannot be parity-checked",
            )
