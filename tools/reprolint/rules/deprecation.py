"""Deprecation rule: names retired from the codebase must stay retired.

``DEP01`` — any reference (definition, import, attribute access, or plain
    use) to a name on the manifest's ``deprecated_names`` map.  Each entry
    carries the replacement/reason, which is echoed in the message.

Deleting a deprecated alias is only half the job — without a tripwire it
drifts back in via copy-paste from old branches or stale snippets.  The
manifest keeps the tombstone after the body is gone.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.core import RepoContext, Violation, rule

DOCS = {
    "DEP01": "reference to a deprecated name",
}


@rule("deprecation", DOCS)
def check(repo: RepoContext) -> Iterator[Violation]:
    deprecated = repo.config.deprecated
    if not deprecated:
        return
    for ctx in repo.files:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Name) and node.id in deprecated:
                name = node.id
            elif isinstance(node, ast.Attribute) and node.attr in deprecated:
                name = node.attr
            elif isinstance(node, ast.ImportFrom):
                hit = next(
                    (
                        alias.name
                        for alias in node.names
                        if alias.name in deprecated
                    ),
                    None,
                )
                if hit is None:
                    continue
                name = hit
            else:
                continue
            yield Violation(
                "DEP01", ctx.rel, node.lineno,
                f"`{name}` is deprecated — {deprecated[name]}",
            )
