"""Determinism rules: no ambient nondeterminism in the simulation core.

Every correctness claim in this reproduction is an *identity* claim —
event/naive, scalar/batch and FULL/ELIDE runs must agree bit for bit, and a
cached result must be reproducible from its spec alone.  Ambient inputs
(wall-clock time, unseeded RNGs, environment variables) are the ways that
property silently rots:

``DET01`` — wall-clock reads (``time.time``, ``time.monotonic``,
    ``datetime.now``, ...).  Allowed only in modules on the committed
    ``wallclock_allowlist`` (the sweep supervisor's timeout machinery is
    wall-clock *by design* and never touches simulated results).
``DET02`` — unseeded randomness: the ``random`` module's global functions,
    ``random.Random()`` with no seed, ``numpy.random.default_rng()`` with
    no seed, or the legacy ``numpy.random.*`` global generator.  Workload
    generators must take an explicit seed (they do — this rule keeps it so).
``DET03`` — environment reads (``os.environ``, ``os.getenv``) outside the
    committed ``env_allowlist``.  Environment seams are config-resolution
    points (``$REPRO_DATA_POLICY``, ``$REPRO_SIM_DATAPATH``, ...); each one
    is named in the manifest with the variable it may read and why.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from tools.reprolint.core import (
    RepoContext,
    Violation,
    import_table,
    qualified_name,
    rule,
)

DOCS = {
    "DET01": "wall-clock read outside the wallclock allowlist",
    "DET02": "unseeded random number generator",
    "DET03": "environment read outside the env allowlist",
}

#: Wall-clock call targets (resolved through the import table).
_WALLCLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: ``random`` module globals that use the shared, unseeded generator.
_GLOBAL_RANDOM = {
    "random.random",
    "random.randint",
    "random.randrange",
    "random.uniform",
    "random.choice",
    "random.choices",
    "random.sample",
    "random.shuffle",
    "random.gauss",
    "random.seed",
}

#: Constructors that are deterministic only when given an explicit seed.
_SEEDED_CTORS = {"random.Random", "numpy.random.default_rng"}

#: Legacy numpy global-state generator namespace.
_NUMPY_GLOBAL_PREFIX = "numpy.random."
_NUMPY_GLOBAL_OK = {"numpy.random.default_rng", "numpy.random.Generator",
                    "numpy.random.SeedSequence", "numpy.random.PCG64"}


def _module_str_constants(tree: ast.AST) -> dict:
    """Top-level ``NAME = "literal"`` assignments (env-var name constants)."""
    consts = {}
    for node in getattr(tree, "body", []):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            consts[node.targets[0].id] = node.value.value
    return consts


def _env_var_literal(call: ast.AST, consts: dict) -> Optional[str]:
    """The variable name an environ access names, when extractable.

    Resolves both string literals and module-level constants
    (``os.environ.get(DATAPATH_ENV)``).
    """
    key: Optional[ast.AST] = None
    if isinstance(call, ast.Call) and call.args:
        key = call.args[0]
    elif isinstance(call, ast.Subscript):
        key = call.slice
    if isinstance(key, ast.Constant) and isinstance(key.value, str):
        return key.value
    if isinstance(key, ast.Name):
        return consts.get(key.id)
    return None


def _env_allowed(rel: str, var: Optional[str], allowlist: dict) -> bool:
    entry = allowlist.get(rel)
    if entry is None:
        return False
    allowed = entry.get("vars", [])
    if allowed == "*":
        return True
    return var is not None and var in allowed


@rule("determinism", DOCS)
def check(repo: RepoContext) -> Iterator[Violation]:
    for ctx in repo.files:
        imports = import_table(ctx.tree)
        consts = _module_str_constants(ctx.tree)
        for node in ast.walk(ctx.tree):
            # --- DET01 / DET02: calls -------------------------------------
            if isinstance(node, ast.Call):
                name = qualified_name(node.func, imports)
                if name is None:
                    continue
                if name in _WALLCLOCK:
                    if ctx.rel not in repo.config.wallclock_allowlist:
                        yield Violation(
                            "DET01", ctx.rel, node.lineno,
                            f"wall-clock read `{name}()` — simulated results "
                            "must not depend on host time (allowlist it in "
                            "tools/reprolint/manifest.json if this is "
                            "supervision code)",
                        )
                elif name in _SEEDED_CTORS and not node.args and not node.keywords:
                    yield Violation(
                        "DET02", ctx.rel, node.lineno,
                        f"`{name}()` without a seed — pass an explicit seed "
                        "so results are reproducible from the spec",
                    )
                elif name in _GLOBAL_RANDOM:
                    yield Violation(
                        "DET02", ctx.rel, node.lineno,
                        f"`{name}()` uses the process-global RNG — use a "
                        "seeded `random.Random(seed)` instance instead",
                    )
                elif (
                    name.startswith(_NUMPY_GLOBAL_PREFIX)
                    and name not in _NUMPY_GLOBAL_OK
                ):
                    yield Violation(
                        "DET02", ctx.rel, node.lineno,
                        f"`{name}()` uses numpy's global RNG — use "
                        "`numpy.random.default_rng(seed)` instead",
                    )
                if name in ("os.getenv", "os.environ.get", "os.environ.pop",
                            "os.environ.setdefault", "os.putenv"):
                    var = _env_var_literal(node, consts)
                    if not _env_allowed(ctx.rel, var, repo.config.env_allowlist):
                        yield Violation(
                            "DET03", ctx.rel, node.lineno,
                            _env_message(name, var),
                        )
            # --- DET03: environ subscripts / mutation ---------------------
            elif isinstance(node, ast.Subscript):
                name = qualified_name(node.value, imports)
                if name == "os.environ":
                    var = _env_var_literal(node, consts)
                    if not _env_allowed(ctx.rel, var, repo.config.env_allowlist):
                        yield Violation(
                            "DET03", ctx.rel, node.lineno,
                            _env_message("os.environ[...]", var),
                        )


def _env_message(accessor: str, var: Optional[str]) -> str:
    named = f" of `${var}`" if var else ""
    return (
        f"environment read{named} via `{accessor}` outside the env "
        "allowlist — route config through an allowlisted seam "
        "(see tools/reprolint/manifest.json) so cached results cannot "
        "depend on unrecorded ambient state"
    )
