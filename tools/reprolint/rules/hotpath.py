"""Hot-path contract rules: slots discipline and the wake-hint protocol.

``HOT01`` — a class defined in one of the manifest's ``hot_modules`` does
    not declare ``__slots__``.  These modules hold the records created at
    bus-width rate (beats, word requests, queue cells, lane state); slotted
    layout is what keeps them cheap, and one slotless addition regresses
    every simulation.  Enum subclasses are exempt (members are class
    attributes; instances are interned singletons).
``HOT02`` — a ``tick`` override in a :class:`Component` subclass returns
    ``None`` (explicitly, or by falling off the end).  Since the wake-hint
    scheduler landed, a bare ``None`` means "poll me every cycle forever" —
    legal, but always a performance bug in new code.  Return ``IDLE`` when
    quiescent or the next cycle of interest.  ``@abstractmethod`` stubs are
    exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.core import (
    RepoContext,
    Violation,
    base_names,
    component_classes,
    import_table,
    qualified_name,
    rule,
)

DOCS = {
    "HOT01": "class in a hot module lacks __slots__",
    "HOT02": "Component.tick override returns a bare None wake hint",
}

_ENUM_BASES = {"Enum", "IntEnum", "StrEnum", "Flag", "IntFlag"}


def _declares_slots(class_node: ast.ClassDef) -> bool:
    for item in class_node.body:
        if isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        if isinstance(item, ast.AnnAssign):
            if (
                isinstance(item.target, ast.Name)
                and item.target.id == "__slots__"
            ):
                return True
    return False


def _is_enum(class_node: ast.ClassDef) -> bool:
    return bool(_ENUM_BASES.intersection(base_names(class_node)))


def _is_abstract(func: ast.FunctionDef, imports: dict) -> bool:
    for deco in func.decorator_list:
        name = qualified_name(deco, imports)
        if name in ("abc.abstractmethod", "abstractmethod"):
            return True
    return False


def _returns_none(func: ast.FunctionDef) -> Iterator[int]:
    """Line numbers where ``func`` produces a ``None`` wake hint.

    Explicit ``return`` / ``return None`` statements are flagged at their
    own line.  A body with *no* return statement at all falls through to an
    implicit ``None`` and is flagged at the ``def`` line.  (A body where
    only *some* paths fall through needs data-flow analysis; those are out
    of scope for an AST pass and caught at runtime by the scheduler's
    legacy-polling accounting instead.)
    """
    returns = _direct_returns(func)
    if not returns:
        # All-raise bodies (and ... stubs) never produce a hint at all.
        if not any(isinstance(n, ast.Raise) for n in func.body):
            yield func.lineno
        return
    for node in returns:
        if node.value is None:
            yield node.lineno
        elif isinstance(node.value, ast.Constant) and node.value.value is None:
            yield node.lineno


def _direct_returns(func: ast.FunctionDef) -> "list[ast.Return]":
    """Return statements belonging to ``func`` itself, not nested helpers."""
    result = []
    stack = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Return):
            result.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return result


@rule("hot-path", DOCS)
def check(repo: RepoContext) -> Iterator[Violation]:
    # --- HOT01: slots discipline in the manifest's hot modules ------------
    for rel in repo.config.hot_modules:
        ctx = repo.get_file(rel)
        if ctx is None:
            continue
        for node in ctx.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            if _is_enum(node) or _declares_slots(node):
                continue
            yield Violation(
                "HOT01", ctx.rel, node.lineno,
                f"class `{node.name}` in hot module lacks __slots__ — "
                "records here are created at bus-width rate; declare "
                "__slots__ (or justify with an inline suppression)",
            )

    # --- HOT02: tick overrides must return a wake hint --------------------
    for ctx in repo.files:
        imports = import_table(ctx.tree)
        for class_node in component_classes(ctx.tree):
            for item in class_node.body:
                if not isinstance(item, ast.FunctionDef) or item.name != "tick":
                    continue
                if _is_abstract(item, imports):
                    continue
                for lineno in _returns_none(item):
                    yield Violation(
                        "HOT02", ctx.rel, lineno,
                        f"`{class_node.name}.tick` returns a bare None wake "
                        "hint — return IDLE when quiescent or the next "
                        "cycle of interest; None re-polls every cycle",
                    )
