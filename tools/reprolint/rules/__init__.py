"""The reprolint rule battery.

Importing this package registers every rule group with the core registry.
To add a rule: drop a module here, decorate its check function with
``@rule("group-name", {"CODE": "description"})``, and import it below.
"""

from tools.reprolint.rules import (
    deprecation,
    determinism,
    docs,
    fingerprint,
    hotpath,
    order,
    twins,
)
