"""Ordering rule: no unordered-container iteration inside Component code.

``ORD01`` — a ``for`` loop (or comprehension) inside a
:class:`~repro.sim.component.Component` subclass iterating over
``dict.values()`` / ``dict.keys()`` / ``dict.items()``, a set literal, or a
``set(...)`` / ``frozenset(...)`` call.

Why: everything inside a Component runs on the tick path, and tick-path
iteration order feeds order-sensitive simulated state (arbitration grants,
queue pops, stat attribution).  CPython dicts iterate in insertion order and
sets in hash order — both are *accidentally* stable, which is worse than
unstable: a refactor that changes insertion order silently changes cycle
counts.  Iterate a deterministic structure instead (a list, a deque, or
``sorted(d.items())`` — a ``sorted(...)`` wrapper satisfies the rule).

Scope: classes whose bases include ``Component`` (directly, or through a
class defined earlier in the same module), in every file under analysis.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.core import RepoContext, Violation, component_classes, rule

DOCS = {
    "ORD01": "iteration over an unordered container on the tick path",
}

#: dict views whose iteration order is insertion order, not a keyed order.
_DICT_VIEWS = {"values", "keys", "items"}


def _unordered_iter(node: ast.AST) -> str:
    """Describe ``node`` if iterating it is order-unstable, else ``''``."""
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _DICT_VIEWS:
            if not node.args and not node.keywords:
                return f".{func.attr}() of a dict"
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"a {func.id}(...) call"
    if isinstance(node, ast.Set):
        return "a set literal"
    return ""


def _iter_targets(node: ast.AST) -> Iterator[ast.AST]:
    """Every expression the statement/expression ``node`` iterates over."""
    if isinstance(node, (ast.For, ast.AsyncFor)):
        yield node.iter
    elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                           ast.GeneratorExp)):
        for generator in node.generators:
            yield generator.iter


@rule("order-iteration", DOCS)
def check(repo: RepoContext) -> Iterator[Violation]:
    for ctx in repo.files:
        for class_node in component_classes(ctx.tree):
            for node in ast.walk(class_node):
                for target in _iter_targets(node):
                    what = _unordered_iter(target)
                    if what:
                        yield Violation(
                            "ORD01", ctx.rel, target.lineno,
                            f"iteration over {what} inside Component "
                            f"`{class_node.name}` — tick-path order feeds "
                            "simulated state; iterate a list/deque or wrap "
                            "in sorted(...)",
                        )
