"""Command-line front end for reprolint.

Usage (from the repository root)::

    python -m tools.reprolint                # human-readable report
    python -m tools.reprolint --json         # machine-readable (CI artifact)
    python -m tools.reprolint --rules determinism,hot-path
    python -m tools.reprolint --list-rules   # the rule catalog

Exit codes: 0 clean, 1 violations found, 2 configuration/internal error.
The ``repro lint`` subcommand delegates here (see ``repro.cli``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="Static analysis for the AXI-Pack reproduction's "
        "hand-kept invariants.",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repository root (default: auto-detect from cwd)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON report on stdout",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="GROUPS",
        help="comma-separated rule groups to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def find_root(start: Optional[Path] = None) -> Optional[Path]:
    """Walk up from ``start`` (default cwd) to the reprolint manifest."""
    here = (start or Path.cwd()).resolve()
    for candidate in (here, *here.parents):
        if (candidate / "tools" / "reprolint" / "manifest.json").exists():
            return candidate
    return None


def main(argv: Optional[List[str]] = None) -> int:
    # Imported lazily so ``--help`` works even from a broken checkout.
    from tools.reprolint.core import RULE_DOCS, run_lint

    args = build_parser().parse_args(argv)

    if args.list_rules:
        from tools.reprolint import rules  # noqa: F401  (registers the battery)
        from tools.reprolint.core import RULES

        for group in sorted(RULES):
            print(group)
        print()
        for code in sorted(RULE_DOCS):
            print(f"  {code}  {RULE_DOCS[code]}")
        return 0

    root = args.root.resolve() if args.root else find_root()
    if root is None or not (root / "tools" / "reprolint" / "manifest.json").exists():
        print(
            "reprolint: cannot find tools/reprolint/manifest.json — run from "
            "inside the repository or pass --root",
            file=sys.stderr,
        )
        return 2

    rule_names = (
        [name.strip() for name in args.rules.split(",") if name.strip()]
        if args.rules
        else None
    )
    try:
        result = run_lint(root, rule_names=rule_names)
    except KeyError as exc:
        print(f"reprolint: {exc.args[0]}", file=sys.stderr)
        return 2
    except (OSError, SyntaxError, ValueError) as exc:
        print(f"reprolint: internal error: {exc}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return result.exit_code

    for violation in result.violations:
        print(violation.render())
    if result.suppressed:
        print()
        print(f"suppressed ({len(result.suppressed)} — every active exemption):")
        for violation in result.suppressed:
            print(f"  {violation.render()}")
    print()
    if result.violations:
        print(
            f"reprolint: {len(result.violations)} violation(s), "
            f"{len(result.suppressed)} suppressed"
        )
    else:
        print(f"reprolint: OK ({len(result.suppressed)} suppressed)")
    return result.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
