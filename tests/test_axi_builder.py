"""Unit tests for stream-to-burst lowering (the VLSU's request builder)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.axi.builder import BuilderConfig, RequestBuilder
from repro.axi.pack import PackMode
from repro.axi.stream import ContiguousStream, IndirectStream, StridedStream
from repro.errors import ConfigurationError


@pytest.fixture
def builder():
    return RequestBuilder(BuilderConfig(bus_bytes=32))


class TestBuilderConfig:
    def test_rejects_non_power_of_two_bus(self):
        with pytest.raises(ConfigurationError):
            BuilderConfig(bus_bytes=24)

    def test_rejects_over_long_bursts(self):
        with pytest.raises(ConfigurationError):
            BuilderConfig(max_burst_beats=512)


class TestContiguousLowering:
    def test_single_burst(self, builder):
        stream = ContiguousStream(base=0, num_elements=256, elem_bytes=4)
        requests = builder.contiguous(stream, is_write=False)
        assert len(requests) == 1
        assert requests[0].num_beats == 32
        assert requests[0].contiguous

    def test_split_at_256_beats(self, builder):
        stream = ContiguousStream(base=0, num_elements=3000, elem_bytes=4)
        requests = builder.contiguous(stream, is_write=False)
        assert all(r.num_beats <= 256 for r in requests)
        assert sum(r.num_elements for r in requests) == 3000

    def test_split_at_4k_boundary(self, builder):
        stream = ContiguousStream(base=4096 - 64, num_elements=64, elem_bytes=4)
        requests = builder.contiguous(stream, is_write=False)
        assert len(requests) == 2
        assert requests[0].num_elements == 16
        boundary = 4096
        for request in requests:
            last = request.addr + request.payload_bytes - 1
            assert request.addr // boundary == last // boundary

    def test_write_flag_propagates(self, builder):
        stream = ContiguousStream(base=0, num_elements=8, elem_bytes=4)
        assert all(r.is_write for r in builder.contiguous(stream, is_write=True))


class TestBaseLowering:
    def test_strided_becomes_narrow_per_element(self, builder):
        stream = StridedStream(base=0, num_elements=10, elem_bytes=4, stride_elems=7)
        requests = builder.base_strided(stream, is_write=False)
        assert len(requests) == 10
        assert all(r.is_narrow and r.num_beats == 1 for r in requests)
        assert [r.addr for r in requests] == list(stream.element_addresses())

    def test_unit_stride_falls_back_to_contiguous(self, builder):
        stream = StridedStream(base=0, num_elements=64, elem_bytes=4, stride_elems=1)
        requests = builder.base_strided(stream, is_write=False)
        assert len(requests) == 1
        assert requests[0].contiguous

    def test_indexed_uses_resolved_addresses(self, builder):
        stream = IndirectStream(base=0x1000, num_elements=4, elem_bytes=4, index_base=0)
        indices = np.asarray([3, 0, 9, 1])
        requests = builder.base_indexed(stream, indices, is_write=False)
        assert [r.addr for r in requests] == [0x100C, 0x1000, 0x1024, 0x1004]

    def test_index_fetch_is_contiguous(self, builder):
        stream = IndirectStream(base=0, num_elements=100, elem_bytes=4, index_base=0x4000)
        requests = builder.index_fetch(stream)
        assert all(r.contiguous for r in requests)
        assert sum(r.payload_bytes for r in requests) == 400

    def test_lower_indexed_without_indices_rejected(self, builder):
        stream = IndirectStream(base=0, num_elements=4, elem_bytes=4, index_base=0)
        with pytest.raises(ConfigurationError):
            builder.lower(stream, is_write=False, packed=False)


class TestPackLowering:
    def test_strided_single_burst(self, builder):
        stream = StridedStream(base=0, num_elements=100, elem_bytes=4, stride_elems=5)
        requests = builder.pack_strided(stream, is_write=False)
        assert len(requests) == 1
        assert requests[0].mode is PackMode.STRIDED
        assert requests[0].num_beats == 13
        assert requests[0].pack.stride_elems == 5

    def test_strided_split_preserves_addresses(self, builder):
        stream = StridedStream(base=0x100, num_elements=5000, elem_bytes=4, stride_elems=3)
        requests = builder.pack_strided(stream, is_write=False)
        assert all(r.num_beats <= 256 for r in requests)
        assert sum(r.num_elements for r in requests) == 5000
        # The second burst must continue exactly where the first stopped.
        first = requests[0]
        expected = 0x100 + first.num_elements * stream.stride_bytes
        assert requests[1].addr == expected

    def test_indirect_split_advances_index_base(self, builder):
        stream = IndirectStream(base=0, num_elements=5000, elem_bytes=4,
                                index_base=0x8000, index_bytes=4)
        requests = builder.pack_indirect(stream, is_write=False)
        assert all(r.mode is PackMode.INDIRECT for r in requests)
        assert requests[1].index_base == 0x8000 + requests[0].num_elements * 4
        assert sum(r.num_elements for r in requests) == 5000

    def test_lower_dispatch(self, builder):
        strided = StridedStream(base=0, num_elements=8, elem_bytes=4, stride_elems=2)
        indirect = IndirectStream(base=0, num_elements=8, elem_bytes=4, index_base=0x40)
        assert builder.lower(strided, False, packed=True)[0].mode is PackMode.STRIDED
        assert builder.lower(indirect, False, packed=True)[0].mode is PackMode.INDIRECT
        contiguous = ContiguousStream(base=0, num_elements=8, elem_bytes=4)
        assert builder.lower(contiguous, False, packed=True)[0].contiguous


class TestProperties:
    @settings(max_examples=30)
    @given(st.integers(min_value=1, max_value=4000),
           st.integers(min_value=0, max_value=40),
           st.sampled_from([4, 8, 16]))
    def test_pack_strided_conserves_elements_and_beats(self, elems, stride, elem_bytes):
        builder = RequestBuilder(BuilderConfig(bus_bytes=32))
        stream = StridedStream(base=0, num_elements=elems, elem_bytes=elem_bytes,
                               stride_elems=stride)
        requests = builder.pack_strided(stream, is_write=False)
        assert sum(r.num_elements for r in requests) == elems
        total_beats = sum(r.num_beats for r in requests)
        elems_per_beat = 32 // elem_bytes
        assert total_beats >= elems // elems_per_beat
        assert all(r.num_beats <= 256 for r in requests)

    @settings(max_examples=30)
    @given(st.integers(min_value=1, max_value=5000), st.integers(min_value=0, max_value=1 << 14))
    def test_contiguous_covers_stream_exactly(self, elems, base_words):
        builder = RequestBuilder(BuilderConfig(bus_bytes=32))
        stream = ContiguousStream(base=base_words * 4, num_elements=elems, elem_bytes=4)
        requests = builder.contiguous(stream, is_write=False)
        assert sum(r.num_elements for r in requests) == elems
        # Requests tile the stream without gaps or overlaps.
        cursor = stream.base
        for request in requests:
            assert request.addr == cursor
            cursor += request.payload_bytes
        assert cursor == stream.base + stream.total_bytes
