"""Integration tests: the adapter + banked memory against the golden model.

Every burst flavour is driven through the cycle-level controller and the
resulting data is compared byte for byte with the zero-time functional model
(:mod:`repro.mem.functional`) — if packing, indirection or unpacking dropped
or reordered a single element, these tests fail.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.axi.builder import BuilderConfig, RequestBuilder
from repro.axi.stream import ContiguousStream, IndirectStream, StridedStream
from repro.controller.context import AdapterConfig
from repro.controller.testbench import ControllerTestbench
from repro.mem.banked import BankedMemoryConfig
from repro.mem.functional import read_burst_payload


def make_testbench(num_banks: int = 17, queue_depth: int = 4, bus_bytes: int = 32,
                   conflict_free: bool = False) -> ControllerTestbench:
    adapter = AdapterConfig(bus_bytes=bus_bytes, queue_depth=queue_depth)
    memory = BankedMemoryConfig(
        num_ports=adapter.bus_words, num_banks=num_banks,
        request_queue_depth=queue_depth, response_queue_depth=queue_depth,
        conflict_free=conflict_free,
    )
    return ControllerTestbench(adapter, memory, memory_bytes=1 << 21)


@pytest.fixture
def builder():
    return RequestBuilder(BuilderConfig(bus_bytes=32))


def fill(tb, count=8192, seed=3):
    data = np.random.default_rng(seed).standard_normal(count).astype(np.float32)
    tb.storage.write_array(0, data)
    return data


def run_reads(tb, requests):
    result = tb.run(requests)
    payload = b"".join(result.outcomes[r.txn_id].payload for r in requests)
    return np.frombuffer(payload, dtype=np.float32), result


class TestReadCorrectness:
    def test_contiguous_read(self, builder):
        tb = make_testbench()
        data = fill(tb)
        requests = builder.contiguous(ContiguousStream(0, 512, 4), is_write=False)
        values, result = run_reads(tb, requests)
        assert np.array_equal(values, data[:512])
        assert result.r_beats == 64

    def test_strided_read_packs_correctly(self, builder):
        tb = make_testbench()
        data = fill(tb)
        stream = StridedStream(base=0, num_elements=128, elem_bytes=4, stride_elems=7)
        values, _ = run_reads(tb, builder.pack_strided(stream, is_write=False))
        assert np.array_equal(values, data[::7][:128])

    def test_indirect_read_gathers_correctly(self, builder):
        tb = make_testbench()
        data = fill(tb)
        indices = np.random.default_rng(0).integers(0, 8192, 200).astype(np.uint32)
        tb.storage.write_array(0x20000, indices)
        stream = IndirectStream(base=0, num_elements=200, elem_bytes=4,
                                index_base=0x20000, index_bytes=4)
        values, _ = run_reads(tb, builder.pack_indirect(stream, is_write=False))
        assert np.array_equal(values, data[indices])

    def test_indirect_read_with_16bit_indices(self, builder):
        tb = make_testbench()
        data = fill(tb)
        indices = np.random.default_rng(1).integers(0, 4096, 64).astype(np.uint16)
        tb.storage.write_array(0x20000, indices)
        stream = IndirectStream(base=0, num_elements=64, elem_bytes=4,
                                index_base=0x20000, index_bytes=2)
        values, _ = run_reads(tb, builder.pack_indirect(stream, is_write=False))
        assert np.array_equal(values, data[indices])

    def test_narrow_reads_match_strided(self, builder):
        tb = make_testbench()
        data = fill(tb)
        stream = StridedStream(base=0, num_elements=64, elem_bytes=4, stride_elems=9)
        values, result = run_reads(tb, builder.base_strided(stream, is_write=False))
        assert np.array_equal(values, data[::9][:64])
        # One narrow beat per element.
        assert result.r_beats == 64

    def test_wide_elements(self, builder):
        tb = make_testbench()
        data64 = np.random.default_rng(2).standard_normal(1024)
        tb.storage.write_array(0, data64)
        stream = StridedStream(base=0, num_elements=32, elem_bytes=8, stride_elems=3)
        requests = builder.pack_strided(stream, is_write=False)
        result = tb.run(requests)
        payload = b"".join(result.outcomes[r.txn_id].payload for r in requests)
        values = np.frombuffer(payload, dtype=np.float64)
        assert np.array_equal(values, data64[::3][:32])

    def test_mixed_burst_types_interleave_correctly(self, builder):
        tb = make_testbench()
        data = fill(tb)
        indices = np.arange(100, 164, dtype=np.uint32)
        tb.storage.write_array(0x20000, indices)
        requests = []
        requests += builder.contiguous(ContiguousStream(0, 64, 4), is_write=False)
        requests += builder.pack_strided(
            StridedStream(base=0, num_elements=64, elem_bytes=4, stride_elems=5), False
        )
        requests += builder.pack_indirect(
            IndirectStream(base=0, num_elements=64, elem_bytes=4,
                           index_base=0x20000, index_bytes=4), False
        )
        result = tb.run(requests, max_outstanding=6)
        for request in requests:
            expected = read_burst_payload(tb.storage, request).tobytes()
            assert result.outcomes[request.txn_id].payload == expected


class TestWriteCorrectness:
    def test_strided_write(self, builder):
        tb = make_testbench()
        stream = StridedStream(base=0x40000, num_elements=96, elem_bytes=4, stride_elems=4)
        requests = builder.pack_strided(stream, is_write=True)
        values = np.arange(96, dtype=np.float32)
        payloads, offset = {}, 0
        for request in requests:
            payloads[request.txn_id] = values.tobytes()[offset:offset + request.payload_bytes]
            offset += request.payload_bytes
        tb.run(requests, write_payloads=payloads)
        back = tb.storage.read_array(0x40000, 96 * 4, np.float32)[::4]
        assert np.array_equal(back, values)

    def test_indirect_write_scatters(self, builder):
        tb = make_testbench()
        indices = np.random.default_rng(5).permutation(256)[:64].astype(np.uint32)
        tb.storage.write_array(0x20000, indices)
        stream = IndirectStream(base=0x40000, num_elements=64, elem_bytes=4,
                                index_base=0x20000, index_bytes=4)
        requests = builder.pack_indirect(stream, is_write=True)
        values = np.arange(64, dtype=np.float32) + 1000
        payloads = {requests[0].txn_id: values.tobytes()}
        tb.run(requests, write_payloads=payloads)
        region = tb.storage.read_array(0x40000, 256, np.float32)
        assert np.array_equal(region[indices], values)

    def test_contiguous_write(self, builder):
        tb = make_testbench()
        stream = ContiguousStream(base=0x40000, num_elements=128, elem_bytes=4)
        requests = builder.contiguous(stream, is_write=True)
        values = np.arange(128, dtype=np.float32)
        payloads, offset = {}, 0
        for request in requests:
            payloads[request.txn_id] = values.tobytes()[offset:offset + request.payload_bytes]
            offset += request.payload_bytes
        tb.run(requests, write_payloads=payloads)
        assert np.array_equal(tb.storage.read_array(0x40000, 128, np.float32), values)

    def test_read_write_concurrency(self, builder):
        tb = make_testbench()
        data = fill(tb)
        read_stream = StridedStream(base=0, num_elements=64, elem_bytes=4, stride_elems=3)
        write_stream = StridedStream(base=0x40000, num_elements=64, elem_bytes=4, stride_elems=3)
        reads = builder.pack_strided(read_stream, is_write=False)
        writes = builder.pack_strided(write_stream, is_write=True)
        values = np.arange(64, dtype=np.float32)
        payloads = {writes[0].txn_id: values.tobytes()}
        result = tb.run(reads + writes, write_payloads=payloads, max_outstanding=4)
        read_back = np.frombuffer(result.outcomes[reads[0].txn_id].payload, dtype=np.float32)
        assert np.array_equal(read_back, data[::3][:64])
        assert np.array_equal(tb.storage.read_array(0x40000, 64 * 3, np.float32)[::3], values)


class TestBandwidthBehaviour:
    def test_packed_strided_is_efficient_with_prime_banks(self, builder):
        tb = make_testbench(num_banks=17)
        fill(tb)
        stream = StridedStream(base=0, num_elements=512, elem_bytes=4, stride_elems=6)
        _, result = run_reads(tb, builder.pack_strided(stream, is_write=False))
        assert result.r_utilization > 0.7

    def test_packed_beats_narrow_by_large_factor(self, builder):
        stream = StridedStream(base=0, num_elements=256, elem_bytes=4, stride_elems=5)
        tb_pack = make_testbench()
        fill(tb_pack)
        _, packed = run_reads(tb_pack, builder.pack_strided(stream, is_write=False))
        tb_base = make_testbench()
        fill(tb_base)
        _, narrow = run_reads(tb_base, builder.base_strided(stream, is_write=False))
        assert narrow.cycles > 4 * packed.cycles
        assert packed.r_utilization > 4 * narrow.r_utilization

    def test_power_of_two_banks_suffer_on_even_strides(self, builder):
        stream = StridedStream(base=0, num_elements=256, elem_bytes=4, stride_elems=8)
        tb_po2 = make_testbench(num_banks=16)
        fill(tb_po2)
        _, po2 = run_reads(tb_po2, builder.pack_strided(stream, is_write=False))
        tb_prime = make_testbench(num_banks=17)
        fill(tb_prime)
        _, prime = run_reads(tb_prime, builder.pack_strided(stream, is_write=False))
        assert prime.r_utilization > 2 * po2.r_utilization
        assert po2.bank_conflicts > prime.bank_conflicts

    def test_backward_compatibility_plain_axi4_only(self, builder):
        """A requestor that never uses AXI-Pack sees a plain AXI4 memory."""
        tb = make_testbench()
        data = fill(tb)
        requests = builder.contiguous(ContiguousStream(0, 1024, 4), is_write=False)
        values, result = run_reads(tb, requests)
        assert np.array_equal(values, data[:1024])
        assert result.r_utilization > 0.9
        # Only the base converter should have been used.
        assert tb.stats.get("controller.base.read_bursts") == len(requests)
        assert tb.stats.get("controller.strided_read.bursts") == 0
        assert tb.stats.get("controller.indirect_read.bursts") == 0


class TestRandomizedAgainstGoldenModel:
    @settings(max_examples=12, deadline=None)
    @given(
        st.integers(min_value=1, max_value=80),
        st.integers(min_value=0, max_value=33),
        st.sampled_from([4, 8]),
    )
    def test_random_strided_reads_match_golden(self, elems, stride, elem_bytes):
        builder = RequestBuilder(BuilderConfig(bus_bytes=32))
        tb = make_testbench()
        fill(tb, count=16384)
        stream = StridedStream(base=256, num_elements=elems, elem_bytes=elem_bytes,
                               stride_elems=stride)
        requests = builder.pack_strided(stream, is_write=False)
        result = tb.run(requests)
        for request in requests:
            expected = read_burst_payload(tb.storage, request).tobytes()
            assert result.outcomes[request.txn_id].payload == expected

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=1, max_value=120), st.integers(min_value=0, max_value=1000))
    def test_random_indirect_reads_match_golden(self, elems, seed):
        builder = RequestBuilder(BuilderConfig(bus_bytes=32))
        tb = make_testbench()
        fill(tb, count=16384)
        indices = np.random.default_rng(seed).integers(0, 16384, elems).astype(np.uint32)
        tb.storage.write_array(0x30000, indices)
        stream = IndirectStream(base=0, num_elements=elems, elem_bytes=4,
                                index_base=0x30000, index_bytes=4)
        requests = builder.pack_indirect(stream, is_write=False)
        result = tb.run(requests)
        for request in requests:
            expected = read_burst_payload(tb.storage, request).tobytes()
            assert result.outcomes[request.txn_id].payload == expected
