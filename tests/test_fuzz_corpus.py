"""Deterministic regression corpus: replay every committed fuzz case.

Each file under ``tests/corpus/`` is a case the fuzzer (or a hand-written
corner) pinned down — the differential harness re-runs it across the whole
configuration cube on every test run, no hypothesis required.  A shrunk
divergence found by ``repro fuzz`` gets committed here so it can never
regress silently; see docs/testing.md.
"""

from pathlib import Path

import pytest

from repro.fuzz import load_corpus_case, run_fuzz_case

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_not_empty():
    assert len(CORPUS_FILES) >= 5


@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_corpus_case_stays_clean(path):
    case = load_corpus_case(path)
    report = run_fuzz_case(case)
    # Single-segment cases cover the 8 single-engine points; multi-segment
    # ones additionally cover the 4-point batch-only subset at each of the
    # 2-engine mux and 2-engine x 2-channel crossbar topologies.
    expected = 8 if len(case.segments) == 1 else 16
    assert len(report.points) == expected
