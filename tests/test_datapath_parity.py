"""Scalar/batch datapath parity: kernels, pipes and whole-system A/B.

The batch (struct-of-arrays) datapath of :mod:`repro.controller.lanes` is a
pure re-representation of the scalar per-object datapath: same word slots in
the same order, same regulator interaction, same cycle counts and statistics.
These tests pin that three ways:

* **kernel properties** — for random burst geometry, the flat slot arrays of
  every batch plan kernel equal the concatenated ``WordSlot`` sequences of
  its scalar generator planner;
* **stream properties** — random burst streams through the controller
  testbench produce identical cycle counts, statistics, per-burst latencies
  and (FULL-policy) payloads under both datapaths, both engines and both
  data policies — including the scalar×naive×ELIDE corners the headline
  benchmark does not run;
* **system A/B** — representative workloads on all three evaluation systems
  match between the datapaths.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.axi.pack import PackUserField
from repro.axi.transaction import BusRequest, reset_txn_ids
from repro.controller.lanes import (
    SlotBatch,
    batch_contiguous,
    batch_index_fetch,
    batch_indexed_beat,
    batch_narrow,
    batch_strided,
)
from repro.controller.planners import (
    plan_contiguous_beats,
    plan_index_fetch_beats,
    plan_indexed_beat,
    plan_narrow_beats,
    plan_strided_beats,
)
from repro.controller.testbench import ControllerTestbench
from repro.errors import ProtocolError
from repro.sim.datapath import (
    DatapathMode,
    default_datapath_mode,
    resolve_datapath_mode,
)
from repro.sim.policy import DataPolicy

WORD = 4
BUS = 32
BUS_WORDS = BUS // WORD


# --------------------------------------------------------------------------
# helpers
# --------------------------------------------------------------------------


def flatten_plans(plans):
    """Scalar planner output as (slot tuples, per-beat metadata)."""
    slots = []
    beats = []
    for index, plan in enumerate(plans):
        for slot in plan.slots:
            slots.append(
                (index, slot.port, slot.word_addr, slot.offset, slot.nbytes,
                 slot.byte_shift)
            )
        beats.append((plan.useful_bytes, plan.last))
    return slots, beats


def flatten_batch(batch: SlotBatch):
    """Batch kernel output in the same shape as :func:`flatten_plans`."""
    slots = [
        (batch.beat_of[i], batch.ports[i], batch.words[i], batch.offsets[i],
         batch.nbytes[i], batch.shifts[i])
        for i in range(batch.num_slots)
    ]
    beats = list(zip(batch.beat_useful, batch.beat_last))
    # beat_start must be a consistent prefix over beat_of.
    for beat in range(batch.num_beats):
        start, end = batch.beat_start[beat], batch.beat_start[beat + 1]
        assert all(batch.beat_of[i] == beat for i in range(start, end))
    assert batch.beat_start[-1] == batch.num_slots
    return slots, beats


def contiguous_request(addr: int, num_elements: int, elem_bytes: int,
                       is_write: bool = False) -> BusRequest:
    return BusRequest(
        addr=addr, is_write=is_write, num_elements=num_elements,
        elem_bytes=elem_bytes, bus_bytes=BUS, contiguous=True,
    )


def narrow_request(addr: int, num_elements: int, elem_bytes: int,
                   is_write: bool = False) -> BusRequest:
    return BusRequest(
        addr=addr, is_write=is_write, num_elements=num_elements,
        elem_bytes=elem_bytes, bus_bytes=BUS, contiguous=False,
    )


def strided_request(addr: int, num_elements: int, elem_bytes: int,
                    stride_elems: int, is_write: bool = False) -> BusRequest:
    return BusRequest(
        addr=addr, is_write=is_write, num_elements=num_elements,
        elem_bytes=elem_bytes, bus_bytes=BUS,
        pack=PackUserField.strided(stride_elems),
    )


def indirect_request(base: int, num_elements: int, elem_bytes: int,
                     index_base: int, index_bytes: int = 4,
                     is_write: bool = False) -> BusRequest:
    return BusRequest(
        addr=base, is_write=is_write, num_elements=num_elements,
        elem_bytes=elem_bytes, bus_bytes=BUS,
        pack=PackUserField.indirect(index_bytes, index_base),
        index_base=index_base,
    )


# --------------------------------------------------------------------------
# kernel vs scalar planner properties
# --------------------------------------------------------------------------


class TestPlanKernelEquivalence:
    @given(
        addr=st.integers(min_value=0, max_value=3000),
        num_elements=st.integers(min_value=1, max_value=250),
        elem_bytes=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=60, deadline=None)
    def test_contiguous(self, addr, num_elements, elem_bytes):
        if addr + num_elements * elem_bytes > 4096:
            num_elements = max(1, (4096 - addr) // elem_bytes)
        request = contiguous_request(addr, num_elements, elem_bytes)
        scalar = flatten_plans(plan_contiguous_beats(request, WORD, BUS_WORDS, 0))
        batch = flatten_batch(batch_contiguous(request, WORD, BUS_WORDS))
        assert scalar == batch

    @given(
        addr=st.integers(min_value=0, max_value=100_000),
        num_elements=st.integers(min_value=1, max_value=200),
        elem_bytes=st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=60, deadline=None)
    def test_narrow(self, addr, num_elements, elem_bytes):
        request = narrow_request(addr, num_elements, elem_bytes)
        scalar = flatten_plans(plan_narrow_beats(request, WORD, BUS_WORDS, 0))
        batch = flatten_batch(batch_narrow(request, WORD, BUS_WORDS))
        assert scalar == batch

    @given(
        addr_words=st.integers(min_value=0, max_value=25_000),
        num_elements=st.integers(min_value=1, max_value=300),
        elem_bytes=st.sampled_from([4, 8]),
        stride_elems=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_strided(self, addr_words, num_elements, elem_bytes, stride_elems):
        request = strided_request(
            addr_words * WORD, num_elements, elem_bytes, stride_elems
        )
        scalar = flatten_plans(plan_strided_beats(request, WORD, BUS_WORDS, 0))
        batch = flatten_batch(batch_strided(request, WORD, BUS_WORDS))
        assert scalar == batch

    @given(
        base_words=st.integers(min_value=0, max_value=25_000),
        elem_bytes=st.sampled_from([4, 8]),
        offsets=st.lists(
            st.integers(min_value=0, max_value=10_000), min_size=1, max_size=8
        ),
        beat=st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_indexed_beat(self, base_words, elem_bytes, offsets, beat):
        epb = BUS // elem_bytes
        offsets = offsets[:epb]
        count = max(len(offsets) + beat * epb, 1)
        request = indirect_request(base_words * WORD, count, elem_bytes, 0)
        beat = min(beat, request.num_beats - 1)
        plan = plan_indexed_beat(request, beat, offsets, WORD, BUS_WORDS, 0)
        scalar = flatten_plans([plan])
        batch = flatten_batch(
            batch_indexed_beat(request, beat, offsets, WORD, BUS_WORDS)
        )
        assert scalar == batch

    @given(
        index_units=st.integers(min_value=0, max_value=12_000),
        num_indices=st.integers(min_value=1, max_value=500),
        index_bytes=st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=60, deadline=None)
    def test_index_fetch(self, index_units, num_indices, index_bytes):
        index_base = index_units * index_bytes  # must be index-size aligned
        request = indirect_request(0, num_indices, 4, index_base, index_bytes)
        scalar = flatten_plans(
            plan_index_fetch_beats(
                index_base=index_base,
                num_indices=num_indices,
                index_bytes=index_bytes,
                bus_bytes=BUS,
                word_bytes=WORD,
                bus_words=BUS_WORDS,
                txn_id=request.txn_id,
                burst_seq=0,
            )
        )
        batch = flatten_batch(batch_index_fetch(request, BUS, WORD, BUS_WORDS))
        assert scalar == batch

    def test_strided_misalignment_raises_like_scalar(self):
        request = strided_request(addr=2, num_elements=4, elem_bytes=4,
                                  stride_elems=2)
        with pytest.raises(ProtocolError):
            list(plan_strided_beats(request, WORD, BUS_WORDS, 0))
        with pytest.raises(ProtocolError):
            batch_strided(request, WORD, BUS_WORDS)

    def test_indexed_misalignment_raises_like_scalar(self):
        request = indirect_request(2, 4, 4, 0)
        with pytest.raises(ProtocolError):
            plan_indexed_beat(request, 0, [0, 1], WORD, BUS_WORDS, 0)
        with pytest.raises(ProtocolError):
            batch_indexed_beat(request, 0, [0, 1], WORD, BUS_WORDS)


# --------------------------------------------------------------------------
# end-to-end stream parity through the controller testbench
# --------------------------------------------------------------------------

#: One request spec: (kind, parameters...) drawn by the stream strategy.
_request_specs = st.lists(
    st.one_of(
        st.tuples(st.just("contig"), st.integers(0, 700),
                  st.integers(1, 80), st.booleans()),
        st.tuples(st.just("narrow"), st.integers(0, 700),
                  st.integers(1, 40), st.just(False)),
        st.tuples(st.just("strided"), st.integers(0, 400),
                  st.integers(1, 48), st.integers(1, 8), st.booleans()),
        st.tuples(st.just("indirect"), st.integers(0, 400),
                  st.integers(1, 32), st.booleans()),
    ),
    min_size=1,
    max_size=5,
)

#: Index pools per indirect burst, reproducibly derived from a drawn seed.
_seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _build_stream(specs, seed):
    """Turn drawn specs into concrete requests + storage image + payloads.

    Returns ``(requests, arrays, payloads)`` where ``arrays`` is a list of
    ``(addr, numpy array)`` to write into the testbench storage before the
    run (index arrays and source data) and ``payloads`` maps write txn ids
    to W payload bytes.
    """
    rng = np.random.default_rng(seed)
    requests = []
    arrays = []
    payloads = {}
    # A data region well inside the 4 MiB testbench storage.
    data_base = 0x1000
    index_region = 0x80000
    for spec in specs:
        kind = spec[0]
        if kind == "contig":
            _, off, count, is_write = spec
            addr = data_base + off * WORD
            request = contiguous_request(addr, count, WORD, is_write)
        elif kind == "narrow":
            _, off, count, _ = spec
            addr = data_base + off * WORD
            request = narrow_request(addr, count, WORD)
        elif kind == "strided":
            _, off, count, stride, is_write = spec
            addr = data_base + off * WORD
            request = strided_request(addr, count, WORD, stride, is_write)
        else:
            _, off, count, is_write = spec
            base = data_base + off * WORD
            indices = rng.integers(0, 2048, size=count, dtype=np.uint32)
            index_base = index_region
            index_region += count * 4 + 32
            arrays.append((index_base, indices))
            request = indirect_request(base, count, WORD, index_base,
                                       is_write=is_write)
        if request.is_write:
            payload = rng.integers(
                0, 255, size=request.num_beats * BUS, dtype=np.uint8
            )
            payloads[request.txn_id] = payload.tobytes()
        requests.append(request)
    return requests, arrays, payloads


def _run_stream(requests, arrays, payloads, datapath, event_driven, policy):
    reset_txn_ids()
    bench = ControllerTestbench(
        data_policy=policy, datapath=DatapathMode(datapath)
    )
    for addr, array in arrays:
        bench.storage.write_array(addr, array)
    result = bench.run(
        requests, write_payloads=payloads, event_driven=event_driven
    )
    outcomes = {
        txn: (outcome.issue_cycle, outcome.complete_cycle,
              outcome.beats_received, outcome.payload)
        for txn, outcome in result.outcomes.items()
    }
    return (
        result.cycles,
        dict(bench.stats.as_dict()),
        result.r_beats,
        result.r_useful_bytes,
        outcomes,
    )


class TestStreamParity:
    @given(specs=_request_specs, seed=_seeds)
    @settings(max_examples=12, deadline=None)
    def test_full_policy_both_engines(self, specs, seed):
        """Random streams: scalar and batch agree, on both engines (FULL)."""
        requests, arrays, payloads = _build_stream(specs, seed)
        reference = _run_stream(requests, arrays, payloads, "scalar", True,
                                DataPolicy.FULL)
        for datapath, event in (("batch", True), ("batch", False),
                                ("scalar", False)):
            observed = _run_stream(requests, arrays, payloads, datapath,
                                   event, DataPolicy.FULL)
            assert observed == reference, (datapath, event)

    @given(specs=_request_specs, seed=_seeds)
    @settings(max_examples=8, deadline=None)
    def test_elide_policy_matches_full_geometry(self, specs, seed):
        """ELIDE runs (both datapaths, both engines) keep FULL's timing.

        This covers the scalar×naive×ELIDE corner of the parity cube, which
        the headline benchmark does not run.  Payloads are empty under
        ELIDE, so only the geometry-and-timing fields are compared.
        """
        requests, arrays, payloads = _build_stream(specs, seed)
        full = _run_stream(requests, arrays, payloads, "batch", True,
                           DataPolicy.FULL)
        full_timing = full[:4] + (
            {txn: o[:3] for txn, o in full[4].items()},
        )
        for datapath, event in (("batch", True), ("scalar", True),
                                ("batch", False), ("scalar", False)):
            observed = _run_stream(requests, arrays, payloads, datapath,
                                   event, DataPolicy.ELIDE)
            observed_timing = observed[:4] + (
                {txn: o[:3] for txn, o in observed[4].items()},
            )
            assert observed_timing == full_timing, (datapath, event)


# --------------------------------------------------------------------------
# whole-system A/B
# --------------------------------------------------------------------------


def _run_workload(name, kind, datapath, policy="full", event_driven=True):
    import os

    from repro.orchestrate.spec import WorkloadSpec
    from repro.sim.datapath import DATAPATH_ENV
    from repro.system.config import SystemConfig
    from repro.system.soc import build_system

    reset_txn_ids()
    saved = os.environ.get(DATAPATH_ENV)
    os.environ[DATAPATH_ENV] = datapath
    try:
        workload = WorkloadSpec.create(name, size=16, **(
            {} if name in ("ismt", "gemv", "trmv")
            else {"avg_nnz_per_row": 8.0}
        )).build()
        config = SystemConfig(
            memory_bytes=1 << 22, data_policy=policy
        ).with_kind(kind)
        soc = build_system(config)
        workload.initialize(soc.storage)
        program = workload.build_program(config.lowering, config.vector_config())
        cycles, result = soc.run_program(program, event_driven=event_driven)
        verified = (
            workload.verify(soc.storage)
            if policy == "full" else None
        )
        return cycles, dict(soc.stats.as_dict()), result, verified
    finally:
        if saved is None:
            os.environ.pop(DATAPATH_ENV, None)
        else:
            os.environ[DATAPATH_ENV] = saved


class TestSystemParity:
    KINDS = ("base", "pack", "ideal")

    @pytest.mark.parametrize("name", ["ismt", "spmv", "csrspmv"])
    @pytest.mark.parametrize("kind_name", KINDS)
    def test_workload_parity(self, name, kind_name):
        from repro.system.config import SystemKind

        kind = SystemKind(kind_name)
        batch = _run_workload(name, kind, "batch")
        scalar = _run_workload(name, kind, "scalar")
        assert batch[:3] == scalar[:3]
        assert batch[3] is True and scalar[3] is True

    @pytest.mark.parametrize("kind_name", KINDS)
    def test_cube_corner_scalar_naive_elide(self, kind_name):
        """spmv at the corner the bench never runs: scalar × naive × ELIDE."""
        from repro.system.config import SystemKind

        kind = SystemKind(kind_name)
        reference = _run_workload("spmv", kind, "batch")
        corner = _run_workload("spmv", kind, "scalar", policy="elide",
                               event_driven=False)
        assert corner[:3] == reference[:3]


# --------------------------------------------------------------------------
# mode plumbing
# --------------------------------------------------------------------------


class TestDatapathMode:
    def test_default_is_batch(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_DATAPATH", raising=False)
        assert default_datapath_mode() is DatapathMode.BATCH

    def test_env_selects_scalar(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_DATAPATH", "scalar")
        assert default_datapath_mode() is DatapathMode.SCALAR

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_datapath_mode("vectorised")

    def test_resolve_accepts_mode_and_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_DATAPATH", raising=False)
        assert resolve_datapath_mode(DatapathMode.SCALAR) is DatapathMode.SCALAR
        assert resolve_datapath_mode(None) is DatapathMode.BATCH
        assert resolve_datapath_mode(" Scalar ") is DatapathMode.SCALAR

    def test_adapter_exposes_mode(self):
        bench = ControllerTestbench(datapath=DatapathMode.SCALAR)
        assert bench.adapter.datapath is DatapathMode.SCALAR
        bench = ControllerTestbench()
        assert bench.adapter.datapath is default_datapath_mode()
