"""Unit tests for the word-level bank address mapping."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.mem.words import BankAddressMap, WordRequest, WordResponse


class TestBankAddressMap:
    def test_interleaving(self):
        amap = BankAddressMap(num_banks=4, word_bytes=4)
        assert [amap.bank_of(addr) for addr in (0, 4, 8, 12, 16)] == [0, 1, 2, 3, 0]

    def test_rows(self):
        amap = BankAddressMap(num_banks=4, word_bytes=4)
        assert amap.row_of(0) == 0
        assert amap.row_of(16) == 1
        assert amap.decompose(20) == (1, 1)

    def test_prime_bank_count(self):
        amap = BankAddressMap(num_banks=17, word_bytes=4)
        assert not amap.is_power_of_two
        assert amap.bank_of(17 * 4) == 0

    def test_power_of_two_detection(self):
        assert BankAddressMap(num_banks=16).is_power_of_two

    def test_vectorized_matches_scalar(self):
        amap = BankAddressMap(num_banks=11, word_bytes=4)
        words = np.arange(100)
        banks = amap.banks_of_words(words)
        assert banks.tolist() == [amap.bank_of(int(w) * 4) for w in words]

    def test_word_size_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            BankAddressMap(num_banks=8, word_bytes=3)

    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=0, max_value=1 << 20))
    def test_bank_in_range_property(self, banks, addr):
        amap = BankAddressMap(num_banks=banks, word_bytes=4)
        assert 0 <= amap.bank_of(addr) < banks

    @given(st.integers(min_value=2, max_value=64), st.integers(min_value=0, max_value=1 << 16))
    def test_decompose_is_bijective(self, banks, word):
        amap = BankAddressMap(num_banks=banks, word_bytes=4)
        bank, row = amap.decompose(word * 4)
        assert row * banks + bank == word


class TestWordRecords:
    def test_request_defaults(self):
        request = WordRequest(port=2, word_addr=100, is_write=False)
        assert request.data is None
        assert request.tag is None

    def test_response_carries_tag(self):
        response = WordResponse(port=1, tag=("x", 3), data=None, is_write=True)
        assert response.tag == ("x", 3)
