"""Tests for the analytic bandwidth model and its cross-validation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.fig5 import measure_strided_utilization
from repro.errors import ConfigurationError
from repro.perf.model import (
    average_strided_read_utilization,
    estimate_indirect_read_utilization,
    estimate_strided_read_utilization,
    ideal_indirect_utilization,
    ideal_narrow_utilization,
    strided_beat_conflict_factor,
)


class TestClosedForms:
    def test_narrow_utilization(self):
        assert ideal_narrow_utilization(4, 32) == pytest.approx(0.125)
        assert ideal_narrow_utilization(32, 32) == pytest.approx(1.0)

    def test_narrow_rejects_oversize_element(self):
        with pytest.raises(ConfigurationError):
            ideal_narrow_utilization(64, 32)

    @pytest.mark.parametrize("elem,idx,expected", [
        (4, 4, 0.5), (4, 2, 2 / 3), (4, 1, 0.8), (32, 4, 8 / 9),
    ])
    def test_indirect_bound_matches_paper(self, elem, idx, expected):
        assert ideal_indirect_utilization(elem, idx) == pytest.approx(expected)

    @given(st.sampled_from([4, 8, 16, 32]), st.sampled_from([1, 2, 4]))
    def test_indirect_bound_in_unit_interval(self, elem, idx):
        bound = ideal_indirect_utilization(elem, idx)
        assert 0.5 <= bound < 1.0


class TestStridedEstimates:
    def test_odd_stride_conflict_free_with_prime_banks(self):
        assert estimate_strided_read_utilization(5, num_banks=17) == pytest.approx(1.0)

    def test_stride_zero_fully_serializes(self):
        factor = strided_beat_conflict_factor(0, 4, 32, 4, 17)
        assert factor == pytest.approx(8.0)

    def test_power_of_two_banks_poor_on_even_strides(self):
        po2 = estimate_strided_read_utilization(8, num_banks=16)
        prime = estimate_strided_read_utilization(8, num_banks=17)
        assert po2 <= 0.3
        assert prime >= 0.9

    def test_average_over_strides(self):
        prime = average_strided_read_utilization(range(0, 16), num_banks=17)
        po2 = average_strided_read_utilization(range(0, 16), num_banks=16)
        assert prime > po2

    def test_indirect_estimate_below_bound(self):
        estimate = estimate_indirect_read_utilization(4, 4, num_banks=17)
        assert 0.2 < estimate <= 0.5


class TestCrossValidation:
    """The analytic model must agree with the cycle-level controller."""

    @pytest.mark.parametrize("stride,banks", [(1, 17), (3, 17), (8, 16), (8, 17), (4, 16)])
    def test_strided_utilization_close_to_cycle_model(self, stride, banks):
        analytic = estimate_strided_read_utilization(stride, num_banks=banks)
        measured = measure_strided_utilization(32, stride, banks, num_beats=32)
        # The cycle model includes start-up latencies, so allow a loose band.
        assert measured <= analytic + 0.05
        assert measured >= 0.55 * analytic

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=20))
    def test_prime_banks_never_below_analytic_floor(self, stride):
        measured = measure_strided_utilization(32, stride, 17, num_beats=16)
        analytic = estimate_strided_read_utilization(stride, num_banks=17)
        assert measured >= 0.5 * analytic
