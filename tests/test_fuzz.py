"""Unit tests for the fuzz package: case normalization, program lowering,
the functional oracle, program validation, and a bounded hypothesis sweep."""

import dataclasses

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.fuzz import (
    FuzzCase,
    FuzzDivergence,
    OpSpec,
    build_case_programs,
    case_from_dict,
    case_to_dict,
    initialize_image,
    interpret_program,
    plan_case,
    run_fuzz_case,
)
from repro.fuzz.case import (
    INPUT_BASE,
    INPUT_ELEMS,
    MAX_COUNT,
    OUTPUT_BASE,
)
from repro.fuzz.runner import FUZZ_MEMORY_BYTES
from repro.mem.storage import MemoryStorage
from repro.vector.builder import AraProgramBuilder
from repro.vector.config import LoweringMode, VectorEngineConfig
from repro.workloads.registry import (
    EXTRA_WORKLOADS,
    WORKLOAD_ORDER,
    WORKLOADS,
    all_workload_names,
    make_workload,
)


class TestPlanNormalization:
    def test_counts_and_offsets_are_clamped_into_the_input_region(self):
        case = FuzzCase(segments=((
            OpSpec("vle", count=10_000, offset=INPUT_ELEMS + 5),),))
        [op] = plan_case(case).segments[0]
        assert op.base == INPUT_BASE + 5 * 4
        assert 1 <= op.count <= min(MAX_COUNT, INPUT_ELEMS - 5)
        end = op.base + op.count * 4
        assert end <= INPUT_BASE + INPUT_ELEMS * 4

    def test_strided_span_never_leaves_the_input_region(self):
        case = FuzzCase(segments=((
            OpSpec("vlse", count=MAX_COUNT, offset=2000, stride=30),),))
        [op] = plan_case(case).segments[0]
        last = op.base + (op.count - 1) * op.stride * 4
        assert last < INPUT_BASE + INPUT_ELEMS * 4

    def test_gather_indices_wrap_into_the_input_region(self):
        case = FuzzCase(segments=((
            OpSpec("gather", indices=(0, INPUT_ELEMS, 3 * INPUT_ELEMS + 7)),),))
        [op] = plan_case(case).segments[0]
        assert list(op.indices) == [0, 0, 7]

    def test_scatter_indices_become_a_permutation(self):
        case = FuzzCase(segments=((
            OpSpec("scatter", indices=(3, 3, 3, 0)),),))
        [op] = plan_case(case).segments[0]
        assert sorted(op.indices) == [0, 1, 2, 3]
        assert op.indices[0] == 3  # first claim wins, duplicates advance

    def test_store_regions_are_disjoint_and_sharding_independent(self):
        case = FuzzCase(segments=(
            (OpSpec("vse", count=64), OpSpec("vsse", count=16, stride=4)),
            (OpSpec("scatter", indices=(1, 0, 2)),),
        ))
        plan = plan_case(case)
        regions = []
        for segment in plan.segments:
            for op in segment:
                if op.kind == "vse":
                    regions.append((op.base, op.base + op.count * 4))
                elif op.kind == "vsse":
                    nbytes = ((op.count - 1) * op.stride + 1) * 4
                    regions.append((op.base, op.base + nbytes))
                elif op.kind == "scatter":
                    regions.append((op.base, op.base + op.count * 4))
        regions.sort()
        assert regions[0][0] >= OUTPUT_BASE
        for (_, hi), (lo, _) in zip(regions, regions[1:]):
            assert hi <= lo

    def test_case_json_roundtrip(self):
        case = FuzzCase(kind="base", seed=99, segments=(
            (OpSpec("gather", dest=2, indices=(1, 2, 3)),
             OpSpec("scalar", cycles=3)),
            (OpSpec("fence_readback", dest=1, src=0, count=20),),
        ))
        assert case_from_dict(case_to_dict(case)) == case


class TestProgramLowering:
    def test_lowering_is_deterministic(self):
        case = FuzzCase(kind="pack", seed=1, segments=(
            (OpSpec("vle", count=33), OpSpec("vse", count=33)),))
        first, second = build_case_programs(case), build_case_programs(case)
        assert first[0].listing() == second[0].listing()

    def test_segment_emission_is_identical_across_sharding(self):
        """The same segment must lower to the same instructions whether it
        shares a program with another segment or owns one."""
        case = FuzzCase(kind="base", seed=2, segments=(
            (OpSpec("vle", dest=0, count=16), OpSpec("vse", src=0, count=16)),
            (OpSpec("add", dest=1, src=0, src2=0, count=8),
             OpSpec("vse", src=1, count=8)),
        ))
        [joint] = build_case_programs(case, num_engines=1)
        split = build_case_programs(case, num_engines=2)
        joined = "\n".join(p.listing() for p in split)
        assert joint.listing() == joined

    def test_single_segment_two_engines_gets_an_idle_shard(self):
        case = FuzzCase(segments=((OpSpec("vle"),),))
        programs = build_case_programs(case, num_engines=2)
        assert len(programs) == 2
        assert programs[1].num_instructions == 1  # the idle scalar op

    def test_gather_lowers_per_mode(self):
        case = FuzzCase(segments=((OpSpec("gather", indices=(1, 2)),),))
        pack = build_case_programs(dataclasses.replace(case, kind="pack"))[0]
        base = build_case_programs(dataclasses.replace(case, kind="base"))[0]
        assert "vlimxei32" in pack.listing()
        assert "vluxei32" in base.listing() and "vle32" in base.listing()

    def test_all_generated_programs_validate(self):
        case = FuzzCase(kind="ideal", seed=3, segments=(
            (OpSpec("vlse", count=40, stride=2),
             OpSpec("macc", dest=1, src=0, src2=0, count=12),
             OpSpec("redsum", dest=2, src=1, count=12),
             OpSpec("vse", src=2, count=1),
             OpSpec("fence_readback", dest=3, src=0, count=9)),))
        for program in build_case_programs(case):
            program.validate()  # must not raise


class TestOracle:
    def _run(self, case):
        plan = plan_case(case)
        storage = MemoryStorage(FUZZ_MEMORY_BYTES)
        initialize_image(storage, plan)
        [program] = build_case_programs(plan)
        regs = interpret_program(program, storage)
        return plan, storage, regs

    def test_contiguous_store_lands_where_planned(self):
        case = FuzzCase(kind="pack", seed=7, segments=(
            (OpSpec("vle", dest=0, count=8, offset=3),
             OpSpec("vse", src=0, count=8)),))
        plan, storage, regs = self._run(case)
        source = storage.read_array(INPUT_BASE + 12, 8, np.float32)
        stored = storage.read_array(plan.segments[0][1].base, 8, np.float32)
        assert np.array_equal(source, stored)
        assert np.array_equal(regs["s0r0"], source)

    def test_scatter_applies_the_permutation(self):
        case = FuzzCase(kind="pack", seed=8, segments=(
            (OpSpec("vle", dest=0, count=4),
             OpSpec("scatter", src=0, indices=(3, 1, 0, 2))),))
        plan, storage, regs = self._run(case)
        values = storage.read_array(INPUT_BASE, 4, np.float32)
        out = storage.read_array(plan.segments[0][1].base, 4, np.float32)
        assert np.array_equal(out[[3, 1, 0, 2]], values)

    def test_reduction_matches_numpy(self):
        case = FuzzCase(kind="ideal", seed=9, segments=(
            (OpSpec("vle", dest=0, count=100),
             OpSpec("redsum", dest=1, src=0, count=100)),))
        _, storage, regs = self._run(case)
        values = storage.read_array(INPUT_BASE, 100, np.float32)
        assert regs["s0r1"].shape == (1,)
        assert regs["s0r1"][0] == np.float32(np.sum(values, dtype=np.float32))

    def test_oracle_rejects_store_of_unwritten_register(self):
        builder = AraProgramBuilder("bad", LoweringMode.PACK,
                                    VectorEngineConfig())
        builder.vse32("never-written", OUTPUT_BASE, 4)
        with pytest.raises(WorkloadError):
            interpret_program(builder.program,
                              MemoryStorage(FUZZ_MEMORY_BYTES))


class TestProgramValidate:
    @pytest.mark.parametrize("name", all_workload_names())
    @pytest.mark.parametrize("mode", list(LoweringMode))
    def test_every_registry_workload_builds_valid_programs(self, name, mode):
        workload = make_workload(name, size=16, **(
            {} if name in ("ismt", "gemv", "trmv") else {"avg_nnz_per_row": 4.0}
        ))
        program = workload.build_program(mode, VectorEngineConfig())
        program.validate()  # must not raise

    def test_read_before_write_is_rejected(self):
        builder = AraProgramBuilder("bad", LoweringMode.PACK,
                                    VectorEngineConfig())
        builder.vle32("v0", INPUT_BASE, 8)
        builder.vfadd("v1", "v0", "v9", 8)  # v9 never written
        with pytest.raises(WorkloadError, match="v9"):
            builder.program.validate()

    def test_oversized_vl_is_rejected(self):
        builder = AraProgramBuilder("bad", LoweringMode.PACK,
                                    VectorEngineConfig())
        builder.vle32("v0", INPUT_BASE, 8)
        program = builder.program
        program.instructions[0] = dataclasses.replace(
            program.instructions[0], vl=1 << 20)
        # stream/vl mismatch (and vl overflow) — it must raise
        with pytest.raises(WorkloadError):
            program.validate()

    def test_corrupted_dependency_is_rejected(self):
        builder = AraProgramBuilder("bad", LoweringMode.PACK,
                                    VectorEngineConfig())
        builder.vle32("v0", INPUT_BASE, 8)
        builder.vse32("v0", OUTPUT_BASE, 8)
        builder.program.ops[1].deps[:] = [5]  # forward reference
        with pytest.raises(WorkloadError, match="dependency"):
            builder.program.validate()


class TestRegistryConsistency:
    def test_order_plus_extras_covers_the_registry_exactly(self):
        assert set(WORKLOADS) == set(WORKLOAD_ORDER) | set(EXTRA_WORKLOADS)
        assert not set(WORKLOAD_ORDER) & set(EXTRA_WORKLOADS)
        assert all_workload_names() == WORKLOAD_ORDER + EXTRA_WORKLOADS

    def test_paper_figure_grid_is_unchanged(self):
        # The figure sweeps key off this tuple; growing it would silently
        # change every figure (that is why csrspmv lives in EXTRA_WORKLOADS).
        assert WORKLOAD_ORDER == ("ismt", "gemv", "trmv", "spmv", "prank",
                                  "sssp")


class TestDifferentialRunner:
    def test_clean_case_reports_all_points(self):
        case = FuzzCase(kind="base", seed=5, segments=(
            (OpSpec("vle", dest=0, count=12), OpSpec("vse", src=0, count=12)),
            (OpSpec("gather", dest=0, indices=(9, 0, 9)),
             OpSpec("vse", src=0, count=3)),
        ))
        report = run_fuzz_case(case)
        assert len(report.points) == 16
        assert set(report.cycles_by_topology) == {(1, 1), (2, 1), (2, 2)}

    def test_divergence_carries_the_case_for_shrinking(self):
        # Sabotage: claim ELIDE cycles differ by asking for an absurdly low
        # cycle budget on one point is racy; instead check the exception
        # shape directly.
        case = FuzzCase(segments=((OpSpec("vle"),),))
        failure = FuzzDivergence(case, "1eng/batch/event/full", "boom")
        assert failure.case is case
        assert "boom" in str(failure) and "1eng/batch/event/full" in str(failure)


def test_bounded_hypothesis_sweep():
    pytest.importorskip("hypothesis")
    from hypothesis import HealthCheck, Phase, given, settings

    from repro.fuzz.strategies import fuzz_cases

    @settings(max_examples=10, database=None, deadline=None,
              phases=[Phase.generate],
              suppress_health_check=list(HealthCheck))
    @given(case=fuzz_cases())
    def sweep(case):
        run_fuzz_case(case)

    sweep()
