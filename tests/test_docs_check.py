"""Tier-1 wrapper around the documentation checker (CI ``docs-check``).

``tools/check_docs.py`` is now a shim over reprolint's docs rules
(``DOC01``/``DOC02`` in :mod:`tools.reprolint.rules.docs`); these tests pin
both the legacy helper API the shim preserves and the fact that the shim and
the rule agree.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

import check_docs  # noqa: E402


def test_every_cli_surface_documented():
    from repro.cli import _build_parser

    corpus = "\n".join(
        (REPO_ROOT / doc).read_text(encoding="utf-8")
        for doc in check_docs.DOC_FILES
    )
    assert check_docs.check_cli_documented(_build_parser(), corpus) == []


def test_intra_repo_links_resolve():
    assert check_docs.check_links(check_docs.DOC_FILES) == []


def test_checker_exit_status():
    assert check_docs.main() == 0


def test_doc_set_covers_readme_and_docs_tree():
    assert check_docs.DOC_FILES[0] == "README.md"
    assert "docs/testing.md" in check_docs.DOC_FILES
    assert all(doc.endswith(".md") for doc in check_docs.DOC_FILES)


def test_shim_agrees_with_reprolint_docs_rule(tmp_path):
    """A broken link is reported identically through both entry points."""
    from tools.reprolint.rules.docs import check_links as rule_check_links

    doc = tmp_path / "doc.md"
    doc.write_text("see [missing](nowhere.md) and [ok](doc.md)\n",
                   encoding="utf-8")
    broken = rule_check_links(tmp_path, ["doc.md"])
    assert broken == [("doc.md", 1, "nowhere.md")]
