"""Tier-1 wrapper around the documentation checker (CI ``docs-check``)."""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402


def test_every_cli_surface_documented():
    from repro.cli import _build_parser

    corpus = "\n".join(
        (REPO_ROOT / doc).read_text(encoding="utf-8")
        for doc in check_docs.DOC_FILES
    )
    assert check_docs.check_cli_documented(_build_parser(), corpus) == []


def test_intra_repo_links_resolve():
    assert check_docs.check_links(check_docs.DOC_FILES) == []


def test_checker_exit_status():
    assert check_docs.main() == 0
