"""Tests for the dense and sparse data generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.workloads.dense import random_matrix, random_vector, upper_triangular
from repro.workloads.sparse import CsrMatrix, banded_csr, heart1_like, random_csr


class TestDenseGenerators:
    def test_matrix_shape_and_dtype(self):
        matrix = random_matrix(17, seed=3)
        assert matrix.shape == (17, 17)
        assert matrix.dtype == np.float32

    def test_seed_reproducibility(self):
        assert np.array_equal(random_matrix(8, seed=5), random_matrix(8, seed=5))
        assert not np.array_equal(random_matrix(8, seed=5), random_matrix(8, seed=6))

    def test_vector(self):
        vector = random_vector(12)
        assert vector.shape == (12,)
        assert vector.dtype == np.float32

    def test_invalid_sizes_rejected(self):
        with pytest.raises(WorkloadError):
            random_matrix(0)
        with pytest.raises(WorkloadError):
            random_vector(-1)

    def test_upper_triangular(self):
        matrix = upper_triangular(random_matrix(6))
        assert np.all(matrix[np.tril_indices(6, k=-1)] == 0)


class TestCsrMatrix:
    def test_consistency_checks(self):
        with pytest.raises(WorkloadError):
            CsrMatrix(2, 2, row_ptr=[0, 1], col_idx=[0], values=[1.0])
        with pytest.raises(WorkloadError):
            CsrMatrix(2, 2, row_ptr=[0, 1, 3], col_idx=[0, 1], values=[1.0, 2.0])

    def test_to_dense_and_multiply_agree(self):
        matrix = random_csr(12, 12, avg_nnz_per_row=4, seed=2)
        x = random_vector(12)
        dense = matrix.to_dense()
        expected = dense.astype(np.float64) @ x.astype(np.float64)
        assert np.allclose(matrix.multiply(x), expected, rtol=1e-5)

    def test_row_slice(self):
        matrix = random_csr(6, 6, avg_nnz_per_row=3, seed=1)
        sl = matrix.row_slice(2)
        assert sl.start == int(matrix.row_ptr[2])
        assert sl.stop == int(matrix.row_ptr[3])

    def test_multiply_rejects_wrong_length(self):
        matrix = random_csr(4, 4, avg_nnz_per_row=2)
        with pytest.raises(WorkloadError):
            matrix.multiply(np.zeros(5, dtype=np.float32))


class TestGenerators:
    def test_random_csr_respects_avg_nnz(self):
        matrix = random_csr(64, 64, avg_nnz_per_row=16, seed=9)
        assert 12 <= matrix.avg_nnz_per_row <= 20

    def test_column_indices_in_range_and_sorted(self):
        matrix = random_csr(32, 24, avg_nnz_per_row=6, seed=4)
        assert matrix.col_idx.max() < 24
        for row in range(matrix.num_rows):
            sl = matrix.row_slice(row)
            cols = matrix.col_idx[sl]
            assert np.all(np.diff(cols.astype(np.int64)) > 0)

    def test_invalid_density_rejected(self):
        with pytest.raises(WorkloadError):
            random_csr(8, 8, avg_nnz_per_row=0)
        with pytest.raises(WorkloadError):
            random_csr(8, 8, avg_nnz_per_row=100)

    def test_heart1_like_properties(self):
        matrix = heart1_like(num_rows=64)
        assert matrix.num_rows == 64
        # The surrogate keeps the high per-row density of heart1 (capped by n).
        assert matrix.avg_nnz_per_row > 40

    def test_banded_csr(self):
        matrix = banded_csr(16, bandwidth=2)
        dense = matrix.to_dense()
        assert dense[0, 4] == 0
        assert np.count_nonzero(dense[8]) <= 5

    @settings(max_examples=20)
    @given(st.integers(min_value=1, max_value=64),
           st.integers(min_value=1, max_value=16),
           st.integers(min_value=0, max_value=1000))
    def test_random_csr_invariants(self, rows, nnz, seed):
        nnz = min(nnz, rows)
        matrix = random_csr(rows, rows, avg_nnz_per_row=nnz, seed=seed)
        # row_ptr is monotone, starts at 0, ends at nnz.
        assert matrix.row_ptr[0] == 0
        assert np.all(np.diff(matrix.row_ptr.astype(np.int64)) >= 0)
        assert int(matrix.row_ptr[-1]) == matrix.nnz
        assert matrix.col_idx.dtype == np.uint32
        assert matrix.values.dtype == np.float32
        if matrix.nnz:
            assert matrix.col_idx.max() < rows
