"""Tests for supervised execution: retries, timeouts, faults, resume.

The headline guarantees under test, matching ``docs/orchestration.md``:

* a sweep with injected worker kills and hangs completes with results
  bit-identical to a fault-free run;
* a SIGKILLed supervisor leaves a resumable (cache, manifest) pair behind,
  and ``repro sweep --resume`` re-runs only the incomplete points;
* supervision never perturbs the happy path (all counters zero).
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path
from random import Random

import pytest

import repro
from repro.errors import ConfigurationError
from repro.orchestrate.cache import MemoryCache, ResultCache
from repro.orchestrate.checkpoint import ManifestError, SweepManifest
from repro.orchestrate.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    TransientError,
)
from repro.orchestrate.parallel import ParallelRunner
from repro.orchestrate.spec import RunSpec, WorkloadSpec
from repro.orchestrate.supervisor import RetryPolicy, SpecTimeoutError
from repro.system.config import SystemKind


def _specs(n=6, size0=16):
    """n distinct tiny gemv RunSpecs (distinct sizes => distinct results)."""
    return [RunSpec(workload=WorkloadSpec.create("gemv", size=size0 + i),
                    kind=SystemKind.PACK)
            for i in range(n)]


def _result_dicts(specs, results):
    return [spec.result_to_json(result)
            for spec, result in zip(specs, results)]


class TestRetryPolicy:
    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0,
                             backoff_max_s=0.5, jitter=0.0)
        rng = Random(0)
        delays = [policy.backoff_s(n, rng) for n in (1, 2, 3, 4, 5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_seeded_and_bounded(self):
        policy = RetryPolicy(backoff_base_s=0.2, jitter=0.25)
        rng_a, rng_b = Random(7), Random(7)
        a = [policy.backoff_s(1, rng_a) for _ in range(3)]
        b = [policy.backoff_s(1, rng_b) for _ in range(3)]
        assert a == b  # same seed, same schedule
        assert all(0.15 <= delay <= 0.25 for delay in a)
        assert len(set(a)) > 1  # jitter actually varies across draws


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="meteor-strike")

    def test_matching_by_index_and_attempt(self):
        fault = FaultSpec(kind="transient", index=2, attempt=1)
        assert fault.matches(2, 1)
        assert not fault.matches(2, 0)
        assert not fault.matches(3, 1)
        anyf = FaultSpec(kind="transient", index=None, attempt=None)
        assert anyf.matches(0, 0) and anyf.matches(9, 9)

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(faults=(FaultSpec(kind="kill", index=1, once=True),
                                 FaultSpec(kind="hang", index=2, delay_s=9.0)),
                         seed=42, state_dir=str(tmp_path))
        again = FaultPlan.from_json(json.dumps(plan.to_json()))
        assert again == plan

    def test_from_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert FaultPlan.from_env() is None
        plan = FaultPlan(faults=(FaultSpec(kind="transient", index=0),))
        monkeypatch.setenv("REPRO_FAULTS", json.dumps(plan.to_json()))
        assert FaultPlan.from_env() == plan

    def test_random_plan_is_seeded_and_distinct(self, tmp_path):
        a = FaultPlan.random(seed=3, num_specs=8, state_dir=str(tmp_path),
                             kills=3, hangs=1)
        b = FaultPlan.random(seed=3, num_specs=8, state_dir=str(tmp_path),
                             kills=3, hangs=1)
        assert a == b
        indices = [fault.index for fault in a.faults]
        assert len(set(indices)) == 4  # distinct victims
        assert all(fault.once for fault in a.faults)
        with pytest.raises(ConfigurationError):
            FaultPlan.random(seed=0, num_specs=2, state_dir=str(tmp_path))

    def test_once_fires_exactly_once(self, tmp_path):
        plan = FaultPlan(faults=(FaultSpec(kind="transient", index=0,
                                           once=True),),
                         state_dir=str(tmp_path / "markers"))
        with pytest.raises(TransientError):
            plan.before_execute(0, 0)
        plan.before_execute(0, 1)  # marker claimed: silent on any attempt
        plan.before_execute(0, 0)

    def test_once_requires_state_dir(self):
        plan = FaultPlan(faults=(FaultSpec(kind="transient", index=0,
                                           once=True),))
        with pytest.raises(ConfigurationError):
            plan.before_execute(0, 0)


class TestChaos:
    """The headline fault-injection guarantees."""

    def test_kills_and_hang_bit_identical(self, tmp_path):
        specs = _specs(6)
        clean = _result_dicts(specs, ParallelRunner(jobs=1).run(specs))

        state = tmp_path / "faults"
        plan = FaultPlan(faults=(
            FaultSpec(kind="kill", index=0, once=True),
            FaultSpec(kind="kill", index=2, once=True),
            FaultSpec(kind="kill", index=4, once=True),
            FaultSpec(kind="hang", index=1, once=True, delay_s=60.0),
        ), state_dir=str(state))
        runner = ParallelRunner(jobs=2, faults=plan,
                                policy=RetryPolicy(timeout_s=2.0))
        with runner:
            faulty = _result_dicts(specs, runner.run(specs))
            assert faulty == clean  # bit-identical despite 3 kills + 1 hang
            # every planned fault actually fired (exactly-once markers)
            fired = sorted(p.name for p in state.iterdir())
            assert fired == ["hang-1", "kill-0", "kill-2", "kill-4"]
            assert runner.counters.worker_losses >= 3
            assert runner.counters.pool_rebuilds >= 3
            # no permanent serial latch: the pool survives for later batches
            assert not runner._pool_unavailable
            assert runner.counters.serial_degradations == 0
            again = _result_dicts(specs, runner.run(specs))
            assert again == clean

    def test_hang_times_out_and_retries(self, tmp_path):
        specs = _specs(4)
        clean = _result_dicts(specs, ParallelRunner(jobs=1).run(specs))
        plan = FaultPlan(faults=(FaultSpec(kind="hang", index=1, once=True,
                                           delay_s=60.0),),
                         state_dir=str(tmp_path / "faults"))
        runner = ParallelRunner(jobs=2, faults=plan,
                                policy=RetryPolicy(timeout_s=1.0))
        with runner:
            assert _result_dicts(specs, runner.run(specs)) == clean
        assert runner.counters.timeouts == 1
        assert runner.counters.retries == 1
        hung = runner.outcomes[1]
        assert [a.outcome for a in hung.attempts] == ["timeout", "ok"]
        assert hung.attempts[0].charged

    def test_timeout_budget_exhausts(self, tmp_path):
        # A spec that hangs on *every* attempt fails with SpecTimeoutError
        # once its charged budget is spent.
        specs = _specs(3)
        plan = FaultPlan(faults=(FaultSpec(kind="hang", index=0,
                                           attempt=None, delay_s=60.0),))
        runner = ParallelRunner(jobs=2, faults=plan,
                                policy=RetryPolicy(timeout_s=0.5,
                                                   max_attempts=2,
                                                   backoff_base_s=0.01))
        with pytest.raises(SpecTimeoutError):
            runner.run(specs)
        assert runner.counters.timeouts == 2
        assert runner.outcomes[0].status == "failed"
        assert runner._executor is None  # aborted pool was torn down

    def test_transient_retries_on_serial_path(self):
        specs = _specs(1)
        plan = FaultPlan(faults=(FaultSpec(kind="transient", index=0,
                                           attempt=0),))
        runner = ParallelRunner(jobs=1, faults=plan,
                                policy=RetryPolicy(backoff_base_s=0.01))
        results = runner.run(specs)
        assert _result_dicts(specs, results) == \
            _result_dicts(specs, ParallelRunner(jobs=1).run(specs))
        assert runner.counters.transient_errors == 1
        assert runner.counters.retries == 1
        assert [a.outcome for a in runner.outcomes[0].attempts] == \
            ["transient", "ok"]

    def test_transient_budget_exhausts(self):
        specs = _specs(1)
        plan = FaultPlan(faults=(FaultSpec(kind="transient", index=0,
                                           attempt=None),))
        runner = ParallelRunner(jobs=1, faults=plan,
                                policy=RetryPolicy(max_attempts=2,
                                                   backoff_base_s=0.01))
        with pytest.raises(TransientError):
            runner.run(specs)
        assert runner.counters.transient_errors == 2
        assert runner.outcomes[0].status == "failed"

    def test_permanent_error_propagates(self, tmp_path):
        specs = _specs(3)
        plan = FaultPlan(faults=(FaultSpec(kind="error", index=1,
                                           once=True),),
                         state_dir=str(tmp_path / "faults"))
        runner = ParallelRunner(jobs=2, faults=plan)
        with pytest.raises(InjectedFaultError):
            runner.run(specs)
        assert runner.counters.retries == 0  # permanent: never retried
        assert runner._executor is None

    def test_rebuild_budget_degrades_to_serial(self, tmp_path):
        specs = _specs(4)
        clean = _result_dicts(specs, ParallelRunner(jobs=1).run(specs))
        plan = FaultPlan(faults=(FaultSpec(kind="kill", index=0, once=True),),
                         state_dir=str(tmp_path / "faults"))
        runner = ParallelRunner(jobs=2, faults=plan,
                                policy=RetryPolicy(max_pool_rebuilds=0))
        assert _result_dicts(specs, runner.run(specs)) == clean
        assert runner.counters.serial_degradations == 1
        assert runner._pool_unavailable

    def test_corrupt_cache_fault_quarantines(self, tmp_path):
        specs = _specs(2)
        cache = ResultCache(tmp_path / "cache")
        plan = FaultPlan(faults=(FaultSpec(kind="corrupt-cache", index=0),))
        ParallelRunner(jobs=1, cache=cache, faults=plan).run(specs)
        # The corrupted entry surfaces on the next read: quarantined, counted.
        fresh = ResultCache(tmp_path / "cache")
        results = ParallelRunner(jobs=1, cache=fresh).run(specs)
        assert _result_dicts(specs, results) == \
            _result_dicts(specs, ParallelRunner(jobs=1).run(specs))
        assert fresh.stats.corrupt == 1
        assert fresh.corrupt_entries() == 1
        assert fresh.stats.hits == 1 and fresh.stats.stores == 1

    def test_happy_path_counters_stay_zero(self):
        runner = ParallelRunner(jobs=2, cache=MemoryCache(),
                                policy=RetryPolicy(timeout_s=120.0))
        with runner:
            runner.run(_specs(4))
        assert not runner.counters.any_activity()
        journal = runner.journal()
        assert journal["counters"]["retries"] == 0
        assert all(len(spec["attempts"]) == 1 for spec in journal["specs"])
        assert {spec["status"] for spec in journal["specs"]} == {"completed"}


class TestJournal:
    def test_journal_records_attempts_and_sources(self, tmp_path):
        specs = _specs(2)
        cache = MemoryCache()
        runner = ParallelRunner(jobs=1, cache=cache)
        runner.run(specs)
        runner.run(specs)  # second batch: all cached
        journal = runner.journal()
        assert journal["journal_schema"] == 1
        assert journal["policy"]["max_attempts"] == 3
        statuses = [spec["status"] for spec in journal["specs"]]
        assert statuses == ["completed", "completed", "cached", "cached"]
        first = journal["specs"][0]
        assert first["label"] == specs[0].label()
        assert first["key"] == specs[0].cache_key()
        assert first["attempts"][0]["outcome"] == "ok"
        assert first["attempts"][0]["duration_s"] >= 0


class TestManifest:
    def test_create_record_mark_done(self, tmp_path):
        path = tmp_path / "manifest.json"
        specs = _specs(3)
        manifest = SweepManifest.create(path, request={"experiments": ["x"]})
        manifest.record_specs(specs)
        assert manifest.total_count() == 3
        assert manifest.pending_count() == 3
        manifest.mark_done(specs[0])
        manifest.mark_done(specs[0])  # idempotent
        again = SweepManifest.load(path)
        assert again.done_count() == 1
        assert again.pending_count() == 2
        assert again.request == {"experiments": ["x"]}
        assert "1/3 specs done" in again.summary()

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "manifest.json"
        SweepManifest.create(path).record_specs(_specs(1))
        data = json.loads(path.read_text())
        data["version"] = "0.0.0-elsewhere"
        path.write_text(json.dumps(data))
        with pytest.raises(ManifestError, match="recorded by package version"):
            SweepManifest.load(path)

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "manifest.json"
        SweepManifest.create(path)
        data = json.loads(path.read_text())
        data["manifest_schema"] = 999
        path.write_text(json.dumps(data))
        with pytest.raises(ManifestError, match="schema"):
            SweepManifest.load(path)

    def test_torn_file_rejected(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text('{"manifest_schema": 1, "specs"')
        with pytest.raises(ManifestError, match="unreadable"):
            SweepManifest.load(path)

    def test_changed_fingerprint_rejected(self, tmp_path):
        path = tmp_path / "manifest.json"
        spec = _specs(1)[0]
        SweepManifest.create(path).record_specs([spec])
        data = json.loads(path.read_text())
        key = next(iter(data["specs"]))
        data["specs"][key]["fingerprint"]["workload"]["params"] = {"size": 99}
        path.write_text(json.dumps(data))
        manifest = SweepManifest.load(path)
        with pytest.raises(ManifestError, match="different\\s+fingerprint"):
            manifest.record_specs([spec])


class TestInterruption:
    def test_keyboard_interrupt_leaves_resumable_state(self, tmp_path):
        # Ctrl-C after the first completed spec: the pool is torn down, the
        # partial results are cached, and the manifest resumes the rest.
        specs = _specs(4)
        cache = ResultCache(tmp_path / "cache")
        manifest = SweepManifest.create(tmp_path / "manifest.json")

        def interrupt(event):
            if not event.cached:
                raise KeyboardInterrupt

        runner = ParallelRunner(jobs=2, cache=cache, progress=interrupt,
                                checkpoint=manifest)
        with pytest.raises(KeyboardInterrupt):
            runner.run(specs)
        assert runner._executor is None  # pool shut down cleanly
        stored = len(cache)
        assert 1 <= stored < len(specs)  # partial progress survived
        resumed = SweepManifest.load(tmp_path / "manifest.json")
        assert resumed.done_count() == stored
        assert resumed.pending_count() == len(specs) - stored

        fresh_cache = ResultCache(tmp_path / "cache")
        resumer = ParallelRunner(jobs=1, cache=fresh_cache, checkpoint=resumed)
        results = resumer.run(specs)
        assert _result_dicts(specs, results) == \
            _result_dicts(specs, ParallelRunner(jobs=1).run(specs))
        assert fresh_cache.stats.hits == stored  # only the rest re-ran
        assert fresh_cache.stats.stores == len(specs) - stored
        assert resumed.pending_count() == 0


class TestSigkillResume:
    """Acceptance: SIGKILL the supervisor, resume re-runs only the rest."""

    def _cli(self, args, tmp_path, env_extra=None):
        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env.pop("REPRO_FAULTS", None)
        env.update(env_extra or {})
        return subprocess.run(
            [sys.executable, "-m", "repro.cli"] + args,
            capture_output=True, text=True, env=env, cwd=str(tmp_path),
            timeout=600,
        )

    def test_sigkilled_sweep_resumes_incomplete_points_only(self, tmp_path):
        cache_dir = tmp_path / "cache"
        manifest = tmp_path / "manifest.json"
        plan = {"faults": [{"kind": "kill-supervisor", "after_results": 3}]}
        crashed = self._cli(
            ["sweep", "fig3b", "--scale", "tiny", "--jobs", "1",
             "--cache-dir", str(cache_dir), "--manifest", str(manifest)],
            tmp_path, env_extra={"REPRO_FAULTS": json.dumps(plan)},
        )
        assert crashed.returncode == -signal.SIGKILL
        assert len(list(cache_dir.glob("*.json"))) == 3
        state = SweepManifest.load(manifest)
        assert state.done_count() == 3
        assert state.pending_count() == 3

        resumed = self._cli(["sweep", "--resume", str(manifest), "--json"],
                            tmp_path)
        assert resumed.returncode == 0, resumed.stderr
        summary = json.loads(resumed.stdout)
        assert summary["cache"]["hits"] == 3      # completed points reused
        assert summary["cache"]["stores"] == 3    # only the rest re-ran
        assert summary["manifest"]["pending"] == 0
        assert len(list(cache_dir.glob("*.json"))) == 6

    def test_resume_rejects_extra_experiments(self, tmp_path):
        manifest = tmp_path / "manifest.json"
        SweepManifest.create(manifest, request={"experiments": ["fig3b"],
                                                "scale": "tiny"})
        result = self._cli(["sweep", "fig3a", "--resume", str(manifest)],
                           tmp_path)
        assert result.returncode == 2
        assert "recorded experiment list" in result.stderr
