"""Tests for the reporting helpers, experiment registry and CLI."""

import os

import pytest

from repro.analysis.experiments import EXPERIMENTS, run_experiment
from repro.analysis.fig3 import SCALES, figure_3d
from repro.analysis.report import ExperimentTable, format_table, text_bar_chart, write_csv
from repro.cli import main
from repro.errors import ConfigurationError


class TestReport:
    def test_format_table_alignment(self):
        text = format_table([[1, 2.5], [30, 4.25]], ["a", "bb"])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]

    def test_experiment_table_roundtrip(self):
        table = ExperimentTable("figX", "caption", ["x", "y"])
        table.add_row(1, 2)
        table.add_row(3, 4)
        table.add_note("a note")
        rendered = table.render()
        assert "figX" in rendered and "a note" in rendered
        assert table.to_dicts() == [{"x": 1, "y": 2}, {"x": 3, "y": 4}]

    def test_write_csv(self, tmp_path):
        table = ExperimentTable("figX", "caption", ["x", "y"])
        table.add_row(1, 2)
        path = tmp_path / "out.csv"
        write_csv(table, str(path))
        content = path.read_text().strip().splitlines()
        assert content[0] == "x,y"
        assert content[1] == "1,2"

    def test_text_bar_chart(self):
        chart = text_bar_chart(["a", "bb"], [1.0, 2.0])
        assert "a" in chart and "#" in chart
        assert text_bar_chart([], []) == "(no data)"


class TestExperimentRegistry:
    def test_all_experiments_registered(self):
        expected = {"fig3a", "fig3b", "fig3c", "fig3d", "fig3e",
                    "fig4a", "fig4b", "fig4c", "fig5a", "fig5b", "fig5c",
                    "contention", "pareto"}
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment("fig99")

    def test_unknown_scale_rejected(self):
        from repro.analysis.fig3 import _sizes

        with pytest.raises(ConfigurationError):
            _sizes("enormous")

    def test_scales_defined(self):
        assert {"tiny", "small", "medium", "paper"} <= set(SCALES)

    def test_run_analytic_experiment(self):
        table = run_experiment("fig5c")
        assert table.experiment == "fig5c"
        assert len(table.rows) == 6

    def test_run_simulated_experiment_tiny(self):
        table = figure_3d(dimensions=[8, 16], bus_bits=(256,))
        assert len(table.rows) == 2
        assert all(row[4] > 0 for row in table.rows)


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3a" in out and "fig5c" in out

    def test_run_command_with_csv(self, capsys, tmp_path):
        csv_path = str(tmp_path / "fig4b.csv")
        assert main(["run", "fig4b", "--csv", csv_path]) == 0
        assert os.path.exists(csv_path)
        out = capsys.readouterr().out
        assert "fig4b" in out

    def test_no_command_shows_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit):
            main(["--version"])

    def test_workloads_command_small(self, capsys):
        assert main(["workloads", "--size", "12", "--no-verify"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "ismt" in out and "sssp" in out
        # The full registry runs by default, with a note for the workloads
        # the paper-figure grids exclude.
        assert "csrspmv" in out
        assert "excluded from the paper-figure grids" in out

    def test_workloads_filter_selects_registry_names(self, capsys):
        assert main(["workloads", "--size", "12", "--no-verify",
                     "--workloads", "gemv", "csrspmv"]) == 0
        out = capsys.readouterr().out
        assert "gemv" in out and "csrspmv" in out
        assert "ismt" not in out

    def test_workloads_filter_rejects_unknown_name(self, capsys):
        assert main(["workloads", "--workloads", "nosuch"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_workloads_command_multi_engine(self, capsys):
        assert main(["workloads", "--size", "12", "--workloads", "spmv",
                     "--engines", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 engines" in out and "spmv" in out

    def test_run_contention_tiny(self, capsys, tmp_path):
        csv_path = str(tmp_path / "contention.csv")
        assert main(["run", "contention", "--scale", "tiny",
                     "--csv", csv_path]) == 0
        assert os.path.exists(csv_path)
        out = capsys.readouterr().out
        assert "contention" in out and "engines" in out
