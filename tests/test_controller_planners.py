"""Unit tests for the converter beat planners."""

import pytest

from repro.axi.pack import PackUserField
from repro.axi.transaction import BusRequest
from repro.controller.planners import (
    plan_contiguous_beats,
    plan_index_fetch_beats,
    plan_indexed_beat,
    plan_narrow_beats,
    plan_strided_beats,
)
from repro.errors import ProtocolError


def strided_request(elems=16, stride=3, elem_bytes=4):
    return BusRequest(addr=0x100, is_write=False, num_elements=elems,
                      elem_bytes=elem_bytes, bus_bytes=32,
                      pack=PackUserField.strided(stride))


class TestStridedPlanner:
    def test_beat_count_and_slots(self):
        plans = list(plan_strided_beats(strided_request(16, 3), 4, 8, 0))
        assert len(plans) == 2
        assert all(plan.num_words == 8 for plan in plans)
        assert plans[0].useful_bytes == 32
        assert plans[-1].last

    def test_word_addresses_follow_stride(self):
        plans = list(plan_strided_beats(strided_request(8, 5), 4, 8, 0))
        addrs = [slot.word_addr * 4 for slot in plans[0].slots]
        assert addrs == [0x100 + i * 20 for i in range(8)]

    def test_ports_are_distinct_within_beat(self):
        plans = list(plan_strided_beats(strided_request(8, 2), 4, 8, 0))
        ports = [slot.port for slot in plans[0].slots]
        assert sorted(ports) == list(range(8))

    def test_multi_word_elements(self):
        request = BusRequest(addr=0, is_write=False, num_elements=4, elem_bytes=8,
                             bus_bytes=32, pack=PackUserField.strided(2))
        plans = list(plan_strided_beats(request, 4, 8, 0))
        assert len(plans) == 1
        assert plans[0].num_words == 8
        # Each element contributes two consecutive words.
        offsets = [slot.offset for slot in plans[0].slots]
        assert offsets == [0, 4, 8, 12, 16, 20, 24, 28]

    def test_partial_last_beat(self):
        plans = list(plan_strided_beats(strided_request(11, 1), 4, 8, 0))
        assert plans[1].useful_bytes == 12
        assert plans[1].num_words == 3

    def test_unaligned_element_rejected(self):
        request = BusRequest(addr=2, is_write=False, num_elements=2, elem_bytes=4,
                             bus_bytes=32, pack=PackUserField.strided(1))
        with pytest.raises(ProtocolError):
            list(plan_strided_beats(request, 4, 8, 0))


class TestIndexedPlanner:
    def test_indexed_beat_addresses(self):
        request = BusRequest(addr=0x1000, is_write=False, num_elements=16, elem_bytes=4,
                             bus_bytes=32, pack=PackUserField.indirect(4, 0x2000),
                             index_base=0x2000)
        plan = plan_indexed_beat(request, 0, [3, 7, 1, 0, 2, 9, 4, 8], 4, 8, 0)
        addrs = [slot.word_addr * 4 for slot in plan.slots]
        assert addrs == [0x1000 + i * 4 for i in (3, 7, 1, 0, 2, 9, 4, 8)]
        assert plan.useful_bytes == 32

    def test_partial_indexed_beat(self):
        request = BusRequest(addr=0, is_write=False, num_elements=3, elem_bytes=4,
                             bus_bytes=32, pack=PackUserField.indirect(4, 0),
                             index_base=0)
        plan = plan_indexed_beat(request, 0, [5, 6, 7], 4, 8, 0)
        assert plan.useful_bytes == 12
        assert plan.last


class TestContiguousPlanner:
    def test_aligned_burst(self):
        request = BusRequest(addr=0, is_write=False, num_elements=16, elem_bytes=4,
                             bus_bytes=32, contiguous=True)
        plans = list(plan_contiguous_beats(request, 4, 8, 0))
        assert len(plans) == 2
        assert all(plan.useful_bytes == 32 for plan in plans)
        assert [slot.word_addr for slot in plans[1].slots] == list(range(8, 16))

    def test_misaligned_burst_edges(self):
        request = BusRequest(addr=8, is_write=False, num_elements=16, elem_bytes=4,
                             bus_bytes=32, contiguous=True)
        plans = list(plan_contiguous_beats(request, 4, 8, 0))
        assert plans[0].useful_bytes == 24
        assert plans[-1].useful_bytes == 8
        total = sum(plan.useful_bytes for plan in plans)
        assert total == 64


class TestNarrowPlanner:
    def test_one_element_per_beat(self):
        request = BusRequest(addr=0x40, is_write=False, num_elements=3, elem_bytes=4,
                             bus_bytes=32, contiguous=False)
        plans = list(plan_narrow_beats(request, 4, 8, 0))
        assert len(plans) == 3
        assert all(plan.num_words == 1 for plan in plans)
        assert all(plan.useful_bytes == 4 for plan in plans)


class TestIndexFetchPlanner:
    def test_index_lines_cover_index_array(self):
        plans = list(plan_index_fetch_beats(
            index_base=0x100, num_indices=40, index_bytes=4,
            bus_bytes=32, word_bytes=4, bus_words=8, txn_id=1, burst_seq=0,
        ))
        assert sum(plan.useful_bytes for plan in plans) == 160
        assert len(plans) == 5
        assert plans[-1].last

    def test_unaligned_index_base(self):
        plans = list(plan_index_fetch_beats(
            index_base=0x104, num_indices=8, index_bytes=4,
            bus_bytes=32, word_bytes=4, bus_words=8, txn_id=1, burst_seq=0,
        ))
        # 8 indices starting one word into a line need two lines.
        assert len(plans) == 2
        assert plans[0].useful_bytes == 28
        assert plans[1].useful_bytes == 4

    def test_small_index_sizes_pack_per_word(self):
        plans = list(plan_index_fetch_beats(
            index_base=0, num_indices=16, index_bytes=1,
            bus_bytes=32, word_bytes=4, bus_words=8, txn_id=0, burst_seq=0,
        ))
        assert len(plans) == 1
        assert plans[0].num_words == 4
        assert plans[0].useful_bytes == 16
