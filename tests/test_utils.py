"""Unit tests for repro.utils: bit manipulation, validation and math."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.utils.bitutils import (
    bit_length_for,
    clog2,
    extract_field,
    insert_field,
    is_power_of_two,
    mask,
    next_power_of_two,
)
from repro.utils.math import ceil_div, geometric_mean, is_prime, mean, round_up_to
from repro.utils.validation import (
    check_in_range,
    check_multiple_of,
    check_positive,
    check_power_of_two,
)


class TestMask:
    def test_small_masks(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(8) == 0xFF

    def test_negative_width_rejected(self):
        with pytest.raises(ConfigurationError):
            mask(-1)


class TestClog2:
    @pytest.mark.parametrize("value,expected", [(1, 0), (2, 1), (3, 2), (8, 3), (9, 4), (1024, 10)])
    def test_values(self, value, expected):
        assert clog2(value) == expected

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            clog2(0)

    @given(st.integers(min_value=1, max_value=1 << 30))
    def test_bound_property(self, value):
        bits = clog2(value)
        assert (1 << bits) >= value
        if value > 1:
            assert (1 << (bits - 1)) < value


class TestPowerOfTwo:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(64)
        assert not is_power_of_two(0)
        assert not is_power_of_two(12)

    def test_next_power_of_two(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(3) == 4
        assert next_power_of_two(64) == 64

    def test_next_power_of_two_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            next_power_of_two(0)


class TestFields:
    def test_insert_then_extract(self):
        word = insert_field(0, 4, 8, 0xAB)
        assert extract_field(word, 4, 8) == 0xAB
        assert extract_field(word, 0, 4) == 0

    def test_insert_preserves_other_bits(self):
        word = insert_field(0xF00F, 4, 4, 0x5)
        assert extract_field(word, 0, 4) == 0xF
        assert extract_field(word, 12, 4) == 0xF
        assert extract_field(word, 4, 4) == 0x5

    def test_insert_rejects_overflow(self):
        with pytest.raises(ConfigurationError):
            insert_field(0, 0, 4, 16)

    @given(st.integers(min_value=0, max_value=31), st.integers(min_value=1, max_value=16),
           st.integers(min_value=0))
    def test_roundtrip_property(self, offset, width, value):
        value = value & ((1 << width) - 1)
        assert extract_field(insert_field(0, offset, width, value), offset, width) == value

    def test_bit_length_for(self):
        assert bit_length_for(0) == 1
        assert bit_length_for(255) == 8
        assert bit_length_for(256) == 9


class TestMath:
    def test_ceil_div(self):
        assert ceil_div(0, 4) == 0
        assert ceil_div(1, 4) == 1
        assert ceil_div(8, 4) == 2
        assert ceil_div(9, 4) == 3

    def test_ceil_div_rejects_bad_denominator(self):
        with pytest.raises(ConfigurationError):
            ceil_div(4, 0)

    def test_round_up_to(self):
        assert round_up_to(5, 8) == 8
        assert round_up_to(16, 8) == 16

    @pytest.mark.parametrize("value,expected", [
        (1, False), (2, True), (3, True), (4, False), (11, True),
        (16, False), (17, True), (31, True), (32, False),
    ])
    def test_is_prime(self, value, expected):
        assert is_prime(value) is expected

    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0

    def test_mean_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            mean([])

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([1.0, 0.0])

    @given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=1, max_value=10**4))
    def test_ceil_div_property(self, numerator, denominator):
        result = ceil_div(numerator, denominator)
        assert result * denominator >= numerator
        assert (result - 1) * denominator < numerator or result == 0


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 3) == 3
        with pytest.raises(ConfigurationError):
            check_positive("x", 0)

    def test_check_in_range(self):
        assert check_in_range("x", 5, 0, 10) == 5
        with pytest.raises(ConfigurationError):
            check_in_range("x", 11, 0, 10)

    def test_check_power_of_two(self):
        assert check_power_of_two("x", 8) == 8
        with pytest.raises(ConfigurationError):
            check_power_of_two("x", 6)

    def test_check_multiple_of(self):
        assert check_multiple_of("x", 12, 4) == 12
        with pytest.raises(ConfigurationError):
            check_multiple_of("x", 13, 4)
        with pytest.raises(ConfigurationError):
            check_multiple_of("x", 12, 0)
