"""Unit tests for the request regulator and the generic read/write pipes."""

import pytest

from repro.axi.pack import PackUserField
from repro.axi.transaction import BusRequest
from repro.axi.types import Resp
from repro.controller.context import AdapterConfig
from repro.controller.pipes import ReadPipe, WritePipe
from repro.controller.planners import plan_strided_beats
from repro.controller.regulator import RequestRegulator
from repro.errors import SimulationError
from repro.sim.stats import StatsRegistry


class TestRegulator:
    def test_limit_enforced(self):
        regulator = RequestRegulator(num_ports=2, limit=2)
        assert regulator.can_issue(0)
        regulator.note_issue(0)
        regulator.note_issue(0)
        assert not regulator.can_issue(0)
        assert regulator.can_issue(1)

    def test_retire_frees_slot(self):
        regulator = RequestRegulator(2, 1)
        regulator.note_issue(1)
        regulator.note_retire(1)
        assert regulator.can_issue(1)

    def test_overflow_raises(self):
        regulator = RequestRegulator(1, 1)
        regulator.note_issue(0)
        with pytest.raises(SimulationError):
            regulator.note_issue(0)

    def test_underflow_raises(self):
        regulator = RequestRegulator(1, 1)
        with pytest.raises(SimulationError):
            regulator.note_retire(0)

    def test_totals(self):
        regulator = RequestRegulator(4, 8)
        regulator.note_issue(0)
        regulator.note_issue(3)
        assert regulator.total_in_flight() == 2
        assert regulator.in_flight(3) == 1
        regulator.reset()
        assert regulator.total_in_flight() == 0


def _strided_request(elems=16, stride=2):
    return BusRequest(addr=0, is_write=False, num_elements=elems, elem_bytes=4,
                      bus_bytes=32, pack=PackUserField.strided(stride))


def _config(queue_depth=4):
    return AdapterConfig(bus_bytes=32, queue_depth=queue_depth)


class TestReadPipe:
    def test_issue_respects_free_ports(self):
        pipe = ReadPipe("p", _config(), StatsRegistry())
        request = _strided_request(8)
        pipe.accept(request, plan_strided_beats(request, 4, 8, 0))
        out = []
        pipe.issue({0, 1, 2}, out)
        # In-order issue stops at the first unavailable port (port 3).
        assert len(out) == 3
        assert [r.port for r in out] == [0, 1, 2]

    def test_issue_respects_regulator(self):
        pipe = ReadPipe("p", _config(queue_depth=1), StatsRegistry())
        request = _strided_request(16)
        pipe.accept(request, plan_strided_beats(request, 4, 8, 0))
        out = []
        pipe.issue(set(range(8)), out)
        assert len(out) == 8  # one per lane
        out2 = []
        pipe.issue(set(range(8)), out2)
        assert out2 == []  # regulator full until responses retire

    def test_beat_completion_and_packing(self):
        pipe = ReadPipe("p", _config(), StatsRegistry())
        request = _strided_request(8)
        pipe.accept(request, plan_strided_beats(request, 4, 8, 0))
        out = []
        pipe.issue(set(range(8)), out)
        assert pipe.pop_ready_beat() is None
        for word in out:
            _, state, slot = word.tag
            pipe.take_response(state, slot, bytes([slot.port] * 4))
        plan, data, req, resp = pipe.pop_ready_beat()
        assert req is request
        assert plan.useful_bytes == 32
        assert data == bytes(sum([[p] * 4 for p in range(8)], []))
        assert resp is Resp.OKAY

    def test_beats_emitted_in_order(self):
        pipe = ReadPipe("p", _config(queue_depth=8), StatsRegistry())
        request = _strided_request(16)
        pipe.accept(request, plan_strided_beats(request, 4, 8, 0))
        out = []
        pipe.issue(set(range(8)), out)
        pipe.issue(set(range(8)), out)
        assert len(out) == 16
        # Answer the second beat's words first: nothing can be emitted yet.
        for word in out[8:]:
            _, state, slot = word.tag
            pipe.take_response(state, slot, b"\x00" * 4)
        assert pipe.pop_ready_beat() is None
        for word in out[:8]:
            _, state, slot = word.tag
            pipe.take_response(state, slot, b"\x00" * 4)
        first = pipe.pop_ready_beat()
        second = pipe.pop_ready_beat()
        assert first[0].beat_index == 0 and second[0].beat_index == 1

    def test_r_beat_wrapper(self):
        pipe = ReadPipe("p", _config(), StatsRegistry())
        request = _strided_request(4)
        pipe.accept(request, plan_strided_beats(request, 4, 8, 0))
        out = []
        pipe.issue(set(range(8)), out)
        for word in out:
            _, state, slot = word.tag
            pipe.take_response(state, slot, b"\xAA" * 4)
        beat = pipe.pop_ready_r_beat()
        assert beat.txn_id == request.txn_id
        assert beat.useful_bytes == 16
        assert beat.last

    def test_busy_tracking(self):
        pipe = ReadPipe("p", _config(), StatsRegistry())
        assert not pipe.busy()
        request = _strided_request(8)
        pipe.accept(request, plan_strided_beats(request, 4, 8, 0))
        assert pipe.busy()
        pipe.reset()
        assert not pipe.busy()


class TestWritePipe:
    def test_write_flow_and_b_response(self):
        config = _config()
        pipe = WritePipe("w", config, StatsRegistry())
        request = BusRequest(addr=0, is_write=True, num_elements=8, elem_bytes=4,
                             bus_bytes=32, pack=PackUserField.strided(2))
        pipe.accept(request, iter(plan_strided_beats(request, 4, 8, 0)))
        assert pipe.expecting_w_data()
        pipe.take_w_beat(bytes(range(32)))
        out = []
        pipe.issue(set(range(8)), out)
        assert len(out) == 8
        assert all(word.is_write and word.data is not None for word in out)
        assert pipe.pop_ready_b_beat() is None
        for word in out:
            _, state, slot = word.tag
            pipe.take_ack(state, slot)
        beat = pipe.pop_ready_b_beat()
        assert beat is not None and beat.txn_id == request.txn_id
        assert not pipe.busy()

    def test_word_write_data_matches_payload_slots(self):
        pipe = WritePipe("w", _config(), StatsRegistry())
        request = BusRequest(addr=0, is_write=True, num_elements=8, elem_bytes=4,
                             bus_bytes=32, pack=PackUserField.strided(1))
        pipe.accept(request, iter(plan_strided_beats(request, 4, 8, 0)))
        payload = bytes(range(32))
        pipe.take_w_beat(payload)
        out = []
        pipe.issue(set(range(8)), out)
        for word in out:
            _, _, slot = word.tag
            assert word.data == payload[slot.offset:slot.offset + 4]
