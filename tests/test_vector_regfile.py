"""Unit tests for the vector register file."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.vector.regfile import VectorRegisterFile


class TestVectorRegisters:
    def test_write_read_roundtrip(self):
        regfile = VectorRegisterFile(vlen_bytes=64)
        values = np.arange(8, dtype=np.float32)
        regfile.write_vector("v1", values)
        assert np.array_equal(regfile.read_vector("v1"), values)
        assert regfile.has_vector("v1")
        assert "v1" in regfile

    def test_read_undefined_rejected(self):
        regfile = VectorRegisterFile(vlen_bytes=64)
        with pytest.raises(WorkloadError):
            regfile.read_vector("v3")

    def test_capacity_enforced(self):
        regfile = VectorRegisterFile(vlen_bytes=16)
        with pytest.raises(WorkloadError):
            regfile.write_vector("v1", np.zeros(8, dtype=np.float32))

    def test_overwrite(self):
        regfile = VectorRegisterFile(vlen_bytes=64)
        regfile.write_vector("v1", np.zeros(4, dtype=np.float32))
        regfile.write_vector("v1", np.ones(4, dtype=np.float32))
        assert regfile.read_vector("v1").tolist() == [1, 1, 1, 1]

    def test_clear(self):
        regfile = VectorRegisterFile(vlen_bytes=64)
        regfile.write_vector("v1", np.zeros(2, dtype=np.float32))
        regfile.write_scalar("a0", 4.0)
        regfile.clear()
        assert not regfile.has_vector("v1")
        assert "a0" not in regfile


class TestScalarRegisters:
    def test_scalar_roundtrip(self):
        regfile = VectorRegisterFile(vlen_bytes=64)
        regfile.write_scalar("f0", 2.5)
        assert regfile.read_scalar("f0") == 2.5

    def test_undefined_scalar_rejected(self):
        regfile = VectorRegisterFile(vlen_bytes=64)
        with pytest.raises(WorkloadError):
            regfile.read_scalar("f1")
