"""Unit tests for the byte-addressable backing store."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MemoryAccessError
from repro.mem.storage import MemoryStorage


class TestRawAccess:
    def test_read_back_written_bytes(self, storage):
        storage.write(0x100, b"\x01\x02\x03\x04")
        assert storage.read(0x100, 4).tolist() == [1, 2, 3, 4]

    def test_write_accepts_numpy(self, storage):
        storage.write(0, np.arange(8, dtype=np.uint8))
        assert storage.read(0, 8).tolist() == list(range(8))

    def test_out_of_range_read_rejected(self, storage):
        with pytest.raises(MemoryAccessError):
            storage.read(len(storage) - 2, 4)

    def test_out_of_range_write_rejected(self, storage):
        with pytest.raises(MemoryAccessError):
            storage.write(len(storage), b"\x00")

    def test_negative_address_rejected(self, storage):
        with pytest.raises(MemoryAccessError):
            storage.read(-1, 1)

    def test_zero_size_memory_rejected(self):
        with pytest.raises(Exception):
            MemoryStorage(0)


class TestTypedAccess:
    def test_float32_roundtrip(self, storage):
        values = np.asarray([1.5, -2.25, 3.0], dtype=np.float32)
        storage.write_array(0x200, values)
        assert np.array_equal(storage.read_array(0x200, 3, np.float32), values)

    def test_uint32_roundtrip(self, storage):
        values = np.asarray([1, 2, 3, 4], dtype=np.uint32)
        storage.write_array(64, values)
        assert np.array_equal(storage.read_array(64, 4, np.uint32), values)

    def test_read_array_is_a_copy(self, storage):
        storage.write_array(0, np.asarray([1.0], dtype=np.float32))
        first = storage.read_array(0, 1, np.float32)
        storage.write_array(0, np.asarray([2.0], dtype=np.float32))
        assert first[0] == pytest.approx(1.0)


class TestScatterGather:
    def test_gather(self, storage):
        data = np.arange(16, dtype=np.float32)
        storage.write_array(0, data)
        addresses = np.asarray([0, 8, 60])
        gathered = storage.read_scattered(addresses, 4).view(np.float32)
        assert gathered.tolist() == [0.0, 2.0, 15.0]

    def test_scatter(self, storage):
        addresses = np.asarray([0, 12, 4])
        payload = np.asarray([10.0, 11.0, 12.0], dtype=np.float32).view(np.uint8)
        storage.write_scattered(addresses, payload, 4)
        back = storage.read_array(0, 4, np.float32)
        assert back.tolist() == [10.0, 12.0, 0.0, 11.0]

    def test_scatter_size_mismatch_rejected(self, storage):
        with pytest.raises(MemoryAccessError):
            storage.write_scattered(np.asarray([0, 4]), b"\x00" * 4, 4)

    def test_gather_out_of_range_rejected(self, storage):
        with pytest.raises(MemoryAccessError):
            storage.read_scattered(np.asarray([len(storage)]), 4)


class TestReadView:
    def test_view_is_zero_copy(self, storage):
        storage.write(16, b"\x01\x02\x03\x04")
        view = storage.read_view(16, 4)
        assert bytes(view) == b"\x01\x02\x03\x04"
        # The view aliases the live image: later writes show through it,
        # which is exactly what distinguishes it from read()'s copy.
        storage.write(16, b"\xff\xff\xff\xff")
        assert bytes(view) == b"\xff\xff\xff\xff"
        assert bytes(storage.read(16, 4)) == b"\xff\xff\xff\xff"

    def test_view_is_read_only(self, storage):
        view = storage.read_view(0, 8)
        with pytest.raises(ValueError):
            view[0] = 1

    def test_read_keeps_copy_semantics(self, storage):
        storage.write(0, b"\x05\x06\x07\x08")
        copy = storage.read(0, 4)
        storage.write(0, b"\x00\x00\x00\x00")
        assert bytes(copy) == b"\x05\x06\x07\x08"
        copy[0] = 9  # a read() result stays writable
        assert storage.read(0, 1)[0] == 0

    def test_view_bounds_checked(self, storage):
        with pytest.raises(MemoryAccessError):
            storage.read_view(len(storage) - 2, 4)
        with pytest.raises(MemoryAccessError):
            storage.read_view(-1, 2)

    def test_read_array_single_copy_still_owned(self, storage):
        values = np.arange(8, dtype=np.float32)
        storage.write_array(64, values)
        out = storage.read_array(64, 8, np.float32)
        storage.fill(0)
        assert np.array_equal(out, values)  # independent of the image
        out[0] = 42.0  # and writable


class TestUtilities:
    def test_fill_and_snapshot(self, storage):
        storage.fill(7)
        snapshot = storage.snapshot()
        assert snapshot[0] == 7 and snapshot[-1] == 7
        # snapshot is a copy
        snapshot[0] = 9
        assert storage.read(0, 1)[0] == 7

    def test_len(self):
        assert len(MemoryStorage(1234)) == 1234


class TestProperties:
    @settings(max_examples=30)
    @given(st.integers(min_value=0, max_value=1000), st.binary(min_size=1, max_size=256))
    def test_write_read_roundtrip(self, addr, payload):
        storage = MemoryStorage(4096)
        if addr + len(payload) > 4096:
            addr = 0
        storage.write(addr, payload)
        assert bytes(storage.read(addr, len(payload))) == payload

    @settings(max_examples=30)
    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=64, unique=True))
    def test_scatter_gather_roundtrip(self, word_indices):
        storage = MemoryStorage(4096)
        addresses = np.asarray(word_indices) * 4
        values = np.arange(len(addresses), dtype=np.float32)
        storage.write_scattered(addresses, values.view(np.uint8), 4)
        back = storage.read_scattered(addresses, 4).view(np.float32)
        assert np.array_equal(back, values)
