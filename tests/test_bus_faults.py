"""End-to-end AXI error-response semantics and bus-level fault injection.

Covers the full error path introduced with :mod:`repro.axi.faults`:

* the ``Resp`` severity order and ``worst_resp`` merge rule (pinned — the
  whole poison/abort machinery keys off it);
* ``BusFaultSpec``/``BusFaultPlan`` validation, matching and JSON forms;
* injected faults on every system kind (banked *and* ideal endpoints),
  surfaced as structured, JSON-serializable fault reports instead of
  exceptions;
* bit-identical fault reports across the event/naive x FULL/ELIDE cube;
* the per-transaction watchdog turning lost responses into TIMEOUT aborts;
* post-abort SoC reuse (graceful quiesce);
* ``SystemRunResult.fault_report`` serialization;
* the structured ``HangDiagnosis`` attached to ``DeadlockError``;
* the ``MemoryAccessError`` rename and its compatibility alias.
"""

import json

import pytest

from repro.axi.faults import (
    BUS_FAULT_KINDS,
    DEFAULT_WATCHDOG_CYCLES,
    BusFaultPlan,
    BusFaultSpec,
)
from repro.axi.types import Resp, worst_resp
from repro.errors import (
    ConfigurationError,
    DeadlockError,
    MemoryAccessError,
    ReproError,
)
from repro.sim.engine import Engine
from repro.system.config import SystemConfig, SystemKind
from repro.system.runner import run_workload
from repro.system.soc import build_system
from repro.workloads import make_workload

#: A spec that faults gemv's data region on every system kind.
GEMV_FAULT = {"faults": [{"kind": "slverr", "addr_lo": 4096, "addr_hi": 8192}]}


def _run_gemv(config, size=24, **kwargs):
    return run_workload(make_workload("gemv", size=size), config, **kwargs)


# ---------------------------------------------------------------- Resp order
class TestRespOrdering:
    def test_severity_values_pinned(self):
        # The enum values are load-bearing: they are the AXI wire encoding
        # *and* the severity order worst_resp merges by.
        assert Resp.OKAY.value == 0
        assert Resp.EXOKAY.value == 1
        assert Resp.SLVERR.value == 2
        assert Resp.DECERR.value == 3

    def test_worst_resp_total_order(self):
        order = (Resp.OKAY, Resp.EXOKAY, Resp.SLVERR, Resp.DECERR)
        for i, weaker in enumerate(order):
            for stronger in order[i:]:
                assert worst_resp(weaker, stronger) is stronger
                assert worst_resp(stronger, weaker) is stronger

    def test_worst_resp_identity(self):
        for resp in Resp:
            assert worst_resp(resp, resp) is resp

    def test_is_error(self):
        assert not Resp.OKAY.is_error
        assert not Resp.EXOKAY.is_error
        assert Resp.SLVERR.is_error
        assert Resp.DECERR.is_error


# ------------------------------------------------------------- spec matching
class TestBusFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            BusFaultSpec(kind="explode")

    def test_negative_stall_rejected(self):
        with pytest.raises(ConfigurationError):
            BusFaultSpec(kind="stall", stall_cycles=-1)

    def test_keys_are_conjunctive(self):
        spec = BusFaultSpec(kind="slverr", port="mem", txn=7,
                            addr_lo=0x100, addr_hi=0x200)
        assert spec.matches("mem", 7, 0x100)
        assert not spec.matches("other", 7, 0x100)   # wrong port
        assert not spec.matches("mem", 8, 0x100)     # wrong txn
        assert not spec.matches("mem", 7, 0xFF)      # below range
        assert not spec.matches("mem", 7, 0x200)     # addr_hi is exclusive

    def test_txn_keyed_spec_never_matches_wordless_access(self):
        # Word-granular accesses carry txn=None; a txn-keyed spec must not
        # fire on them (documented banked-memory caveat).
        spec = BusFaultSpec(kind="slverr", txn=3)
        assert not spec.matches("mem", None, 0)
        assert BusFaultSpec(kind="slverr").matches("mem", None, 0)

    def test_resp_mapping(self):
        assert BusFaultSpec(kind="slverr").resp is Resp.SLVERR
        assert BusFaultSpec(kind="decerr").resp is Resp.DECERR
        assert BusFaultSpec(kind="stall").resp is Resp.OKAY
        assert BusFaultSpec(kind="lost").resp is Resp.OKAY


# ---------------------------------------------------------------- plan forms
class TestBusFaultPlan:
    def test_json_round_trip(self):
        plan = BusFaultPlan(
            faults=(BusFaultSpec(kind="slverr", addr_lo=64, addr_hi=128),
                    BusFaultSpec(kind="stall", port="mem", stall_cycles=9)),
            seed=5, watchdog_cycles=321)
        assert BusFaultPlan.from_json(plan.to_json()) == plan
        # ... and through an actual JSON string.
        assert BusFaultPlan.from_json(json.dumps(plan.to_json())) == plan

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            BusFaultPlan.from_json("not json at all {")
        with pytest.raises(ConfigurationError):
            BusFaultPlan.from_json([1, 2, 3])
        with pytest.raises(ConfigurationError):
            BusFaultPlan.from_json({"faults": [{"kind": "slverr",
                                                "bogus_key": 1}]})

    def test_watchdog_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            BusFaultPlan(watchdog_cycles=0)
        assert BusFaultPlan().watchdog_cycles == DEFAULT_WATCHDOG_CYCLES

    def test_first_match_wins(self):
        first = BusFaultSpec(kind="slverr", addr_lo=0, addr_hi=100)
        second = BusFaultSpec(kind="decerr", addr_lo=50, addr_hi=150)
        plan = BusFaultPlan(faults=(first, second))
        assert plan.first_match("mem", None, 60) is first
        assert plan.first_match("mem", None, 120) is second
        assert plan.first_match("mem", None, 200) is None

    def test_touches_port(self):
        plan = BusFaultPlan(faults=(BusFaultSpec(kind="slverr", port="mem"),))
        assert plan.touches_port("mem")
        assert not plan.touches_port("other")
        anywhere = BusFaultPlan(faults=(BusFaultSpec(kind="slverr"),))
        assert anywhere.touches_port("anything")

    def test_all_kinds_enumerated(self):
        assert BUS_FAULT_KINDS == ("slverr", "decerr", "stall", "lost")


# ----------------------------------------------------------- config plumbing
class TestConfigPlumbing:
    def test_config_coerces_dict_and_string(self):
        by_dict = SystemConfig(bus_faults=GEMV_FAULT)
        by_str = SystemConfig(bus_faults=json.dumps(GEMV_FAULT))
        assert isinstance(by_dict.bus_faults, BusFaultPlan)
        assert by_dict.bus_faults == by_str.bus_faults

    def test_with_bus_faults_helper(self):
        config = SystemConfig().with_bus_faults(GEMV_FAULT)
        assert isinstance(config.bus_faults, BusFaultPlan)
        assert config.with_bus_faults(None).bus_faults is None
        assert SystemConfig().bus_faults is None


# --------------------------------------------------------- injected aborts
class TestInjectedFaults:
    @pytest.mark.parametrize("kind", [SystemKind.BASE, SystemKind.PACK,
                                      SystemKind.IDEAL])
    def test_slverr_aborts_gracefully_on_every_kind(self, kind):
        # BASE/PACK run on the banked memory, IDEAL on the ideal endpoint —
        # both injection choke points produce the same structured abort.
        result = _run_gemv(SystemConfig(bus_faults=GEMV_FAULT).with_kind(kind))
        assert result.faulted
        assert result.verified is False
        faults = result.fault_report["faults"]
        assert faults, "injected SLVERR never fired"
        for fault in faults:
            assert fault["resp"] == "SLVERR"
            assert 4096 <= fault["addr"] < 8192
            assert fault["kind"] in ("load", "store")
        json.dumps(result.fault_report)  # must be JSON-serializable
        assert "ABORTED" in result.summary()

    def test_decerr_reported_as_decerr(self):
        plan = {"faults": [{"kind": "decerr", "addr_lo": 4096,
                            "addr_hi": 8192}]}
        result = _run_gemv(SystemConfig(bus_faults=plan))
        assert result.faulted
        assert all(f["resp"] == "DECERR"
                   for f in result.fault_report["faults"])

    def test_stall_is_absorbed_not_aborted(self):
        plan = {"faults": [{"kind": "stall", "addr_lo": 4096,
                            "addr_hi": 8192, "stall_cycles": 7}]}
        clean = _run_gemv(SystemConfig())
        stalled = _run_gemv(SystemConfig(bus_faults=plan))
        assert stalled.fault_report is None
        assert stalled.verified is True
        assert stalled.cycles > clean.cycles  # back-pressure costs cycles

    def test_lost_response_becomes_timeout_via_watchdog(self):
        plan = {"faults": [{"kind": "lost", "addr_lo": 4096,
                            "addr_hi": 8192}],
                "watchdog_cycles": 200}
        result = _run_gemv(SystemConfig(bus_faults=plan))
        assert result.faulted
        faults = result.fault_report["faults"]
        assert any(f["resp"] == "TIMEOUT" for f in faults)
        # The watchdog fired, not the deadlock detector: the run completed
        # and returned a report well before the 10k-cycle deadlock window.
        assert result.cycles < 10_000

    def test_fault_reports_identical_across_engine_and_policy(self):
        # event/naive x FULL/ELIDE must agree bit-identically on the
        # structured report (the fuzz corpus extends this to scalar/batch
        # and the multi-engine topologies).
        reports = {}
        for event in (True, False):
            for policy in ("full", "elide"):
                config = SystemConfig(data_policy=policy,
                                      bus_faults=GEMV_FAULT)
                soc = build_system(config)
                workload = make_workload("gemv", size=24)
                workload.initialize(soc.storage)
                program = workload.build_program(config.lowering,
                                                 config.vector_config())
                soc.run_program(program, event_driven=event)
                reports[(event, policy)] = json.dumps(
                    soc.last_fault_report, sort_keys=True)
        assert len(set(reports.values())) == 1, reports

    def test_post_abort_soc_is_reusable(self):
        config = SystemConfig(bus_faults=GEMV_FAULT)
        soc = build_system(config)
        workload = make_workload("gemv", size=24)
        workload.initialize(soc.storage)
        program = workload.build_program(config.lowering,
                                         config.vector_config())
        soc.run_program(program)
        first = json.dumps(soc.last_fault_report, sort_keys=True)
        assert soc.last_fault_report is not None
        # Quiesce must leave the SoC clean: the same program re-runs and
        # aborts bit-identically, no residue from the first abort.
        workload.initialize(soc.storage)
        soc.run_program(program)
        assert json.dumps(soc.last_fault_report, sort_keys=True) == first

    def test_absent_plan_is_bit_identical_to_default(self):
        clean = _run_gemv(SystemConfig())
        explicit = _run_gemv(SystemConfig(bus_faults=None))
        assert clean.fault_report is None and explicit.fault_report is None
        assert clean.cycles == explicit.cycles
        assert clean.stats == explicit.stats


# ------------------------------------------------------------- serialization
class TestResultSerialization:
    def test_fault_report_round_trips(self):
        from repro.orchestrate.serialize import (
            system_run_result_from_dict,
            system_run_result_to_dict,
        )

        result = _run_gemv(SystemConfig(bus_faults=GEMV_FAULT))
        payload = system_run_result_to_dict(result)
        json.dumps(payload)
        restored = system_run_result_from_dict(payload)
        assert restored.fault_report == result.fault_report
        assert restored.faulted

    def test_clean_result_omits_fault_report(self):
        from repro.orchestrate.serialize import (
            system_run_result_from_dict,
            system_run_result_to_dict,
        )

        result = _run_gemv(SystemConfig())
        payload = system_run_result_to_dict(result)
        assert "fault_report" not in payload
        assert system_run_result_from_dict(payload).fault_report is None


# ------------------------------------------------------------ hang diagnosis
class TestHangDiagnosis:
    @staticmethod
    def _wedged_engine():
        from repro.sim.component import Component

        engine = Engine(deadlock_window=20)
        queue = engine.new_queue("stuck-q", 4)

        class Filler(Component):
            def tick(self, cycle):
                if queue.can_push():
                    queue.push(cycle)

            def busy(self):
                return True

        consumer_seen = []

        class Sleeper(Component):
            """Subscribed waiter that never actually pops."""

            def tick(self, cycle):
                consumer_seen.append(cycle)

            def wake_queues(self):
                return [queue]

        engine.add_component(Filler("filler"))
        engine.add_component(Sleeper("sleeper"))
        return engine

    def test_deadlock_error_carries_diagnosis(self):
        engine = self._wedged_engine()
        with pytest.raises(DeadlockError) as excinfo:
            engine.drain(max_cycles=10_000)
        diagnosis = excinfo.value.diagnosis
        assert diagnosis is not None
        assert diagnosis.window == 20
        assert "filler" in diagnosis.busy_components
        names = [q.name for q in diagnosis.queues]
        assert "stuck-q" in names
        assert diagnosis.blame is not None
        assert diagnosis.blame.name == "stuck-q"
        assert "sleeper" in diagnosis.blame.waiters

    def test_diagnosis_render_and_to_dict(self):
        engine = self._wedged_engine()
        with pytest.raises(DeadlockError) as excinfo:
            engine.drain(max_cycles=10_000)
        diagnosis = excinfo.value.diagnosis
        payload = diagnosis.to_dict()
        json.dumps(payload)
        assert payload["blame"] == "stuck-q"
        text = diagnosis.render()
        assert "no forward progress" in text
        assert "stuck-q" in text and "blame" in text
        # The one-line summary keeps the legacy report's shape.
        assert "busy components" in diagnosis.summary()
        # The exception message *is* the rendering.
        assert str(excinfo.value) == text

    def test_diagnose_is_public_and_non_destructive(self):
        engine = self._wedged_engine()
        engine.step(5)
        diagnosis = engine.diagnose()
        assert diagnosis.cycle == 5
        assert diagnosis.blame is not None
        engine.step(1)  # still steppable after a snapshot


# ------------------------------------------------------------ renamed error
class TestMemoryAccessErrorRename:
    def test_alias_is_gone(self):
        # The deprecated MemoryError_ alias was removed; reprolint's DEP01
        # tombstone keeps it from coming back.
        import repro.errors

        assert not hasattr(repro.errors, "MemoryError_")

    def test_not_the_builtin_and_still_a_repro_error(self):
        assert not issubclass(MemoryAccessError, MemoryError)
        assert issubclass(MemoryAccessError, ReproError)

    def test_functional_layer_raises_it(self):
        from repro.mem.storage import MemoryStorage

        storage = MemoryStorage(64)
        with pytest.raises(MemoryAccessError):
            storage.read(60, 8)
