"""Interconnect corner coverage the program fuzzer cannot reach.

The fuzzer drives the mux only through well-behaved vector engines, so two
classes of behaviour need direct stimulus: qos arbitration under sustained
asymmetric traffic (starvation is the *specified* behaviour, and fairness
bookkeeping must survive it), and demux straddle rejection exactly at
``AddressMap`` region boundaries.
"""

import pytest

from repro.axi.interconnect import AddressMap, AddressRegion
from repro.axi.mux import CycleAxiDemux, CycleAxiMux
from repro.axi.pack import PackMode, PackUserField
from repro.axi.port import AxiPort, AxiPortConfig
from repro.axi.signals import WBeat
from repro.axi.transaction import BusRequest
from repro.axi.types import Resp
from repro.sim.engine import Engine

BUS = 32


def read_burst(addr, elems=8, bus=BUS):
    return BusRequest(addr=addr, is_write=False, num_elements=elems,
                      elem_bytes=4, bus_bytes=bus, contiguous=True)


def write_burst(addr, elems=8, bus=BUS):
    return BusRequest(addr=addr, is_write=True, num_elements=elems,
                      elem_bytes=4, bus_bytes=bus, contiguous=True)


def strided_burst(addr, elems=8, stride_elems=16, bus=BUS):
    return BusRequest(addr=addr, is_write=False, num_elements=elems,
                      elem_bytes=4, bus_bytes=bus, contiguous=False,
                      pack=PackUserField(mode=PackMode.STRIDED,
                                         stride_elems=stride_elems))


def make_mux(n=2, arbitration="rr", qos=None):
    ups = [AxiPort(f"u{i}", BUS, AxiPortConfig()) for i in range(n)]
    down = AxiPort("down", BUS, AxiPortConfig())
    mux = CycleAxiMux("mux", ups, down, arbitration=arbitration, qos=qos)
    engine = Engine(event_driven=False)
    engine.add_component(mux)
    for port in (*ups, down):
        for queue in port.all_queues():
            engine.add_queue(queue)
    return ups, down, mux, engine


def make_demux():
    up = AxiPort("up", BUS, AxiPortConfig())
    downs = [AxiPort(f"d{i}", BUS, AxiPortConfig()) for i in range(2)]
    address_map = AddressMap([
        AddressRegion(base=0x0000, size=0x800, target=0),
        AddressRegion(base=0x0800, size=0x800, target=1),
    ])
    demux = CycleAxiDemux("demux", up, downs, address_map)
    engine = Engine(event_driven=False)
    engine.add_component(demux)
    for port in (up, *downs):
        for queue in port.all_queues():
            engine.add_queue(queue)
    return up, downs, demux, engine


class TestQosUnderSustainedTraffic:
    def test_sustained_high_priority_starves_low_until_it_pauses(self):
        """Port 0 outranks port 1 by default: while port 0 keeps ARs coming,
        port 1 never receives a grant; once port 0 pauses, port 1 drains."""
        ups, down, mux, engine = make_mux(2, arbitration="qos")
        ups[1].ar.push(read_burst(0x200))
        granted = []
        for cycle in range(20):
            if ups[0].ar.can_push():
                ups[0].ar.push(read_burst(0x100 + cycle))
            engine.step()
            while down.ar.can_pop():
                granted.append(down.ar.pop().addr)
        # Every grant in the sustained window went to port 0.
        assert granted and all(addr >= 0x100 for addr in granted)
        assert ups[1].ar.occupancy == 1  # fully starved
        assert mux.ar_grants[1] == 0
        starved_grants = mux.ar_grants[0]
        # Stop refilling port 0: the starved port drains on the next grants.
        for _ in range(8):
            engine.step()
            while down.ar.can_pop():
                granted.append(down.ar.pop().addr)
        assert ups[1].ar.occupancy == 0
        # Port 0's queued leftovers still outrank, so its tally may grow,
        # but port 1 finally got its single grant.
        assert mux.ar_grants[0] >= starved_grants
        assert mux.ar_grants[1] == 1

    def test_custom_qos_weights_invert_the_priority(self):
        ups, down, mux, engine = make_mux(2, arbitration="qos", qos=[0, 7])
        order = []
        for _ in range(2):
            ups[0].ar.push(read_burst(0x100))
            ups[1].ar.push(read_burst(0x200))
        for _ in range(10):
            engine.step()
            while down.ar.can_pop():
                order.append(down.ar.pop().addr)
        assert order == [0x200, 0x200, 0x100, 0x100]

    def test_qos_starves_write_channel_symmetrically(self):
        ups, down, mux, engine = make_mux(2, arbitration="qos")
        ups[1].aw.push(write_burst(0x200, elems=8))
        for cycle in range(12):
            if ups[0].aw.can_push():
                ups[0].aw.push(write_burst(0x100, elems=8))
            engine.step()
            while down.aw.can_pop():
                down.aw.pop()
        assert ups[1].aw.occupancy == 1
        assert mux.aw_grants[1] == 0

    def test_round_robin_stays_fair_under_the_same_asymmetry(self):
        """The identical sustained-pressure stimulus, arbitrated rr: the
        port with a single request is served within one round."""
        ups, down, mux, engine = make_mux(2, arbitration="rr")
        ups[1].ar.push(read_burst(0x200))
        served_at = None
        for cycle in range(20):
            if ups[0].ar.can_push():
                ups[0].ar.push(read_burst(0x100 + cycle))
            engine.step()
            while down.ar.can_pop():
                if down.ar.pop().addr == 0x200 and served_at is None:
                    served_at = cycle
        assert served_at is not None and served_at <= 2
        # Both ports were granted; port 0 got everything else.
        assert mux.ar_grants[1] == 1
        assert mux.ar_grants[0] >= 8

    def test_rr_grants_balance_when_both_ports_saturate(self):
        ups, down, mux, engine = make_mux(2, arbitration="rr")
        for cycle in range(24):
            for port in ups:
                if port.ar.can_push():
                    port.ar.push(read_burst(0x100))
            engine.step()
            while down.ar.can_pop():
                down.ar.pop()
        assert abs(mux.ar_grants[0] - mux.ar_grants[1]) <= 1


class TestDemuxStraddleAtMapBoundaries:
    def test_burst_ending_on_the_last_region_byte_is_routed(self):
        up, downs, demux, engine = make_demux()
        up.ar.push(read_burst(0x07E0, elems=8))  # bytes 0x7E0..0x7FF inclusive
        engine.step(3)
        assert downs[0].ar.occupancy == 1
        assert downs[1].ar.occupancy == 0

    def test_burst_crossing_one_byte_past_the_boundary_answers_decerr(self):
        up, downs, demux, engine = make_demux()
        request = read_burst(0x07E4, elems=8)  # last byte lands at 0x803
        up.ar.push(request)
        engine.step(6)
        beats = []
        while up.r.can_pop():
            beats.append(up.r.pop())
        assert len(beats) == request.num_beats
        assert all(b.resp is Resp.DECERR for b in beats)
        assert all(b.useful_bytes == 0 and b.data == b"" for b in beats)
        assert beats[-1].last
        assert downs[0].ar.occupancy == 0 and downs[1].ar.occupancy == 0
        assert not demux.busy()

    def test_write_straddle_answers_decerr_after_draining_w(self):
        up, downs, demux, engine = make_demux()
        request = write_burst(0x07F0, elems=16)  # 2 beats
        up.aw.push(request)
        for beat in range(request.num_beats):
            up.w.push(WBeat(data=b"\x00" * BUS, useful_bytes=BUS,
                            last=beat == request.num_beats - 1))
        engine.step(6)
        beat = up.b.pop()
        assert beat.txn_id == request.txn_id
        assert beat.resp is Resp.DECERR
        # Every W beat was consumed and discarded; nothing reached a target.
        assert up.w.occupancy == 0
        assert downs[0].aw.occupancy == 0 and downs[1].aw.occupancy == 0
        assert not demux.busy()

    def test_unmapped_base_address_answers_decerr_phantom_burst(self):
        up, downs, demux, engine = make_demux()
        request = read_burst(0x1000, elems=16)  # 2 beats, past the mapped space
        up.ar.push(request)
        engine.step(6)
        beats = []
        while up.r.can_pop():
            beats.append(up.r.pop())
        # Phantom beats preserve the burst length per the AXI spec.
        assert len(beats) == request.num_beats
        assert all(b.resp is Resp.DECERR and b.useful_bytes == 0 for b in beats)
        assert [b.last for b in beats] == [False, True]
        assert not demux.busy()

    def test_packed_burst_spanning_the_boundary_routes_by_base(self):
        """A packed-strided burst's elements may land past the boundary; the
        demux routes by base address only (the straddle rule is for plain
        contiguous bursts, which slaves decode as linear address ranges)."""
        up, downs, demux, engine = make_demux()
        # Elements at 0x7C0, 0x800, 0x840 ... — wider than region 0.
        up.ar.push(strided_burst(0x07C0, elems=4, stride_elems=16))
        engine.step(3)
        assert downs[0].ar.occupancy == 1
        assert downs[1].ar.occupancy == 0
