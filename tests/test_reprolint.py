"""Tier-1 wrapper for reprolint: rule battery fixtures + repo self-check.

Each rule group gets a paired good/bad fixture under
``tests/fixtures/reprolint/`` — the bad fixture proves the rule fires, the
good one proves it stays quiet — and the committed tree itself must lint
clean with zero unexplained suppressions (the CI ``static-analysis`` gate,
run here so a violation fails the PR's tier-1 leg too).
"""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

import tools.reprolint.rules  # noqa: E402,F401  (registers the battery)
from tools.reprolint.core import (  # noqa: E402
    LintConfig,
    RepoContext,
    run_lint,
    run_rules,
)
from tools.reprolint.rules.fingerprint import field_set_digest  # noqa: E402

FIXTURES = "tests/fixtures/reprolint"


def lint(paths, groups, manifest=None, fingerprint=None):
    """Run ``groups`` over fixture ``paths`` with a synthetic config."""
    config = LintConfig(manifest or {}, fingerprint or {})
    repo = RepoContext(REPO_ROOT, config, rel_paths=list(paths))
    return run_rules(repo, groups)


def codes(result):
    return [v.code for v in result.violations]


# ------------------------------------------------------------- determinism
class TestDeterminismRule:
    def test_bad_fixture_fires_every_code(self):
        result = lint([f"{FIXTURES}/det_bad.py"], ["determinism"])
        found = codes(result)
        assert "DET01" in found  # time.time()
        assert "DET03" in found  # os.environ.get
        assert found.count("DET02") == 2  # random.randint + unseeded rng

    def test_good_fixture_is_clean(self):
        result = lint([f"{FIXTURES}/det_good.py"], ["determinism"])
        assert codes(result) == []

    def test_allowlist_admits_named_var_only(self):
        allow = {"env_allowlist": {
            f"{FIXTURES}/det_bad.py": {"vars": ["NOT_ALLOWLISTED"],
                                       "reason": "test"},
        }}
        result = lint([f"{FIXTURES}/det_bad.py"], ["determinism"],
                      manifest=allow)
        assert "DET03" not in codes(result)

    def test_wallclock_allowlist(self):
        allow = {"wallclock_allowlist": {f"{FIXTURES}/det_bad.py": "test"}}
        result = lint([f"{FIXTURES}/det_bad.py"], ["determinism"],
                      manifest=allow)
        assert "DET01" not in codes(result)


# --------------------------------------------------------- order-iteration
class TestOrderIterationRule:
    def test_bad_fixture_flags_values_and_set_literal(self):
        result = lint([f"{FIXTURES}/ord_bad.py"], ["order-iteration"])
        assert codes(result) == ["ORD01", "ORD01"]

    def test_sorted_wrapper_and_list_iteration_pass(self):
        result = lint([f"{FIXTURES}/ord_good.py"], ["order-iteration"])
        assert codes(result) == []


# ----------------------------------------------------------------- hot-path
class TestHotPathRules:
    def test_bad_fixture(self):
        manifest = {"hot_modules": [f"{FIXTURES}/hot_bad.py"]}
        result = lint([f"{FIXTURES}/hot_bad.py"], ["hot-path"],
                      manifest=manifest)
        found = codes(result)
        assert found.count("HOT01") == 1  # Beat only; Component has slots
        assert found.count("HOT02") == 2  # explicit None + fall-through

    def test_good_fixture_is_clean(self):
        manifest = {"hot_modules": [f"{FIXTURES}/hot_good.py"]}
        result = lint([f"{FIXTURES}/hot_good.py"], ["hot-path"],
                      manifest=manifest)
        assert codes(result) == []

    def test_slots_only_enforced_in_hot_modules(self):
        result = lint([f"{FIXTURES}/hot_bad.py"], ["hot-path"], manifest={})
        assert "HOT01" not in codes(result)


# -------------------------------------------------------------- fingerprint
def _fpr_manifest(module, fields, schema=3, digest_fields=None, extra=None):
    entry = {
        "module": module,
        "coverage": "explicit",
        "fields": fields,
        "exempt": {"verify": "checking results never changes them (test)"},
    }
    if extra:
        entry.update(extra)
    covered = {"MiniSpec": sorted(digest_fields or [])}
    return {
        "schema_version": schema,
        "spec_module": module,
        "classes": {"MiniSpec": entry},
        "digest_history": {str(schema): field_set_digest(covered)},
    }


class TestFingerprintRules:
    GOOD = f"{FIXTURES}/fpr_good.py"
    BAD = f"{FIXTURES}/fpr_bad.py"

    def test_good_fixture_is_clean(self):
        fp = _fpr_manifest(self.GOOD, ["size", "mode"],
                           digest_fields=["size", "mode"])
        assert codes(lint([], ["fingerprint"], fingerprint=fp)) == []

    def test_uncovered_field_and_unread_field(self):
        # Manifest claims `mode` covered and knows nothing about `latency`.
        fp = _fpr_manifest(self.BAD, ["size", "mode"],
                           digest_fields=["size", "mode"])
        found = codes(lint([], ["fingerprint"], fingerprint=fp))
        assert "FPR01" in found  # latency uncovered
        assert "FPR04" in found  # mode never read in fingerprint()
        assert "FPR05" in found  # field-set drifted from the pinned digest

    def test_stale_manifest_field(self):
        fp = _fpr_manifest(self.GOOD, ["size", "mode", "gone"],
                           digest_fields=["size", "mode"])
        assert "FPR02" in codes(lint([], ["fingerprint"], fingerprint=fp))

    def test_schema_version_mismatch(self):
        fp = _fpr_manifest(self.GOOD, ["size", "mode"], schema=99,
                           digest_fields=["size", "mode"])
        found = codes(lint([], ["fingerprint"], fingerprint=fp))
        assert "FPR03" in found

    def test_field_set_change_without_bump(self):
        # Pin a digest for a *smaller* field-set than the code declares.
        fp = _fpr_manifest(self.GOOD, ["size", "mode"],
                           digest_fields=["size"])
        assert "FPR05" in codes(lint([], ["fingerprint"], fingerprint=fp))


# ------------------------------------------------------------ twin-coverage
class TestTwinCoverageRules:
    def test_good_pair_is_clean(self):
        manifest = {"twins": {
            "planners": f"{FIXTURES}/twn_planners_good.py",
            "lanes": f"{FIXTURES}/twn_lanes_good.py",
        }}
        assert codes(lint([], ["twin-coverage"], manifest=manifest)) == []

    def test_orphans_both_ways(self):
        manifest = {"twins": {
            "planners": f"{FIXTURES}/twn_planners_bad.py",
            "lanes": f"{FIXTURES}/twn_lanes_bad.py",
        }}
        result = lint([], ["twin-coverage"], manifest=manifest)
        assert sorted(codes(result)) == ["TWN01", "TWN02"]
        by_code = {v.code: v.message for v in result.violations}
        assert "plan_orphan_beats" in by_code["TWN01"]
        assert "batch_rogue" in by_code["TWN02"]

    def test_exemption_silences_a_deliberate_singleton(self):
        manifest = {"twins": {
            "planners": f"{FIXTURES}/twn_planners_bad.py",
            "lanes": f"{FIXTURES}/twn_lanes_bad.py",
            "exempt": {"plan_orphan_beats": "scalar-only by design (test)",
                       "batch_rogue": "batch-only by design (test)"},
        }}
        assert codes(lint([], ["twin-coverage"], manifest=manifest)) == []


# -------------------------------------------------------------- deprecation
class TestDeprecationRule:
    def test_import_and_use_both_flagged(self):
        manifest = {"deprecated_names": {
            "MemoryError_": "use MemoryAccessError",
        }}
        result = lint([f"{FIXTURES}/dep_bad.py"], ["deprecation"],
                      manifest=manifest)
        assert codes(result).count("DEP01") >= 2
        assert "MemoryAccessError" in result.violations[0].message

    def test_committed_tree_carries_the_real_tombstone(self):
        config = LintConfig.load(REPO_ROOT)
        assert "MemoryError_" in config.deprecated


# ------------------------------------------------------------- suppressions
class TestSuppressionMeta:
    def test_reasonless_and_unused_suppressions_are_violations(self):
        result = lint([f"{FIXTURES}/sup_bad.py"], ["determinism"])
        found = codes(result)
        assert "SUP01" in found  # disable=DET01 with no reason
        assert "SUP02" in found  # disable=DET02 suppressing nothing
        assert "DET01" not in found  # ... but the suppression still applies

    def test_explained_suppression_is_reported_not_hidden(self):
        result = lint([f"{FIXTURES}/sup_good.py"], ["determinism"])
        assert codes(result) == []
        assert [v.code for v in result.suppressed] == ["DET01"]
        assert result.suppressed[0].reason is not None


# -------------------------------------------------------------------- docs
class TestDocsRule:
    def test_undocumented_surface_detected(self):
        import argparse

        from tools.reprolint.rules.docs import check_cli_documented

        parser = argparse.ArgumentParser(prog="repro")
        sub = parser.add_subparsers(dest="command")
        zap = sub.add_parser("zap")
        zap.add_argument("--boom", action="store_true")
        missing = check_cli_documented(parser, "docs mention nothing")
        assert missing == [
            "subcommand 'repro zap' not documented",
            "flag '--boom' (repro zap) not documented",
        ]


# ------------------------------------------------------------- whole-repo
class TestCommittedTree:
    def test_committed_tree_lints_clean(self):
        """The CI gate: zero violations, zero unexplained suppressions."""
        result = run_lint(REPO_ROOT)
        assert [v.render() for v in result.violations] == []
        assert all(v.reason for v in result.suppressed)
        assert result.exit_code == 0

    def test_json_report_shape(self):
        result = run_lint(REPO_ROOT, rule_names=["hot-path"])
        data = json.loads(json.dumps(result.to_dict()))
        assert data["version"] == 1
        assert data["exit_code"] == result.exit_code
        assert data["counts"]["violations"] == len(data["violations"])
        assert data["counts"]["suppressed"] == len(data["suppressed"])

    def test_cli_json_output(self, capsys):
        from tools.reprolint.cli import main

        status = main(["--root", str(REPO_ROOT), "--json"])
        data = json.loads(capsys.readouterr().out)
        assert status == data["exit_code"] == 0
        assert data["counts"]["violations"] == 0

    def test_unknown_rule_group_is_a_config_error(self, capsys):
        from tools.reprolint.cli import main

        assert main(["--root", str(REPO_ROOT), "--rules", "nope"]) == 2
        assert "unknown rule group" in capsys.readouterr().err
