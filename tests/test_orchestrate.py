"""Tests for the experiment orchestrator: specs, cache, parallel runner, CLI."""

import dataclasses
import json

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.orchestrate.cache import MISS, CacheStats, ResultCache
from repro.orchestrate.parallel import ParallelRunner
from repro.orchestrate.serialize import (
    system_run_result_from_dict,
    system_run_result_to_dict,
)
from repro.orchestrate.spec import RunSpec, UtilizationSpec, WorkloadSpec, canonicalize
from repro.orchestrate.sweep import expand_sweep, run_sweep
from repro.system.config import SystemConfig, SystemKind
from repro.system.runner import compare_systems, compare_systems_many, run_workload
from repro.workloads.registry import make_workload


def _tiny_spec(kind=SystemKind.PACK, size=16, verify=True, **kwargs) -> RunSpec:
    return RunSpec(workload=WorkloadSpec.create("gemv", size=size),
                   kind=kind, verify=verify, **kwargs)


class TestSpecs:
    def test_cache_key_is_stable_and_param_order_independent(self):
        a = RunSpec(workload=WorkloadSpec(name="spmv",
                                          params=(("avg_nnz_per_row", 8.0), ("size", 16))))
        b = RunSpec(workload=WorkloadSpec.create("spmv", size=16, avg_nnz_per_row=8.0))
        assert a.cache_key() == b.cache_key()
        assert len(a.cache_key()) == 64

    def test_cache_key_changes_with_inputs(self):
        base = _tiny_spec()
        keys = {
            base.cache_key(),
            _tiny_spec(kind=SystemKind.BASE).cache_key(),
            _tiny_spec(size=17).cache_key(),
            dataclasses.replace(base, config=SystemConfig(num_banks=11)).cache_key(),
            dataclasses.replace(base, version="0.0.0-test").cache_key(),
        }
        assert len(keys) == 5

    def test_cache_key_ignores_dead_config_kind(self):
        # execute() overrides config.kind with spec.kind, so configs that
        # differ only there describe the same measurement
        a = dataclasses.replace(_tiny_spec(),
                                config=SystemConfig(kind=SystemKind.BASE))
        b = dataclasses.replace(_tiny_spec(), config=SystemConfig())
        assert a.cache_key() == b.cache_key()

    def test_cache_key_ignores_verify(self):
        # verification never changes the measurements, so verified and
        # unverified runs share one cache entry
        assert _tiny_spec(verify=True).cache_key() == _tiny_spec(verify=False).cache_key()

    def test_canonicalize_handles_dataclasses_and_enums(self):
        data = canonicalize(SystemConfig())
        assert data["kind"] == "pack"
        assert json.dumps(data)  # JSON-safe all the way down

    def test_canonicalize_rejects_callables(self):
        with pytest.raises(TypeError):
            canonicalize(lambda: None)

    def test_run_spec_execute_matches_run_workload(self):
        spec = _tiny_spec()
        direct = run_workload(make_workload("gemv", size=16), kind=SystemKind.PACK)
        assert spec.execute().cycles == direct.cycles

    def test_utilization_spec_executes(self):
        spec = UtilizationSpec.strided(elem_bits=32, stride_elems=1, num_banks=17,
                                       num_beats=4, queue_depth=4)
        value = spec.execute()
        assert 0.0 < value <= 1.0
        assert spec.cache_key() != UtilizationSpec.strided(
            elem_bits=32, stride_elems=2, num_banks=17,
            num_beats=4, queue_depth=4).cache_key()


class TestSerialize:
    def test_system_run_result_roundtrip(self):
        result = _tiny_spec().execute()
        data = json.loads(json.dumps(system_run_result_to_dict(result)))
        back = system_run_result_from_dict(data)
        assert back.workload == result.workload
        assert back.kind is result.kind
        assert back.cycles == result.cycles
        assert back.verified == result.verified
        assert back.engine == result.engine
        assert dict(back.stats) == dict(result.stats)


class TestResultCache:
    def test_roundtrip_store_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _tiny_spec()
        assert cache.get(spec) is MISS
        result = spec.execute()
        cache.put(spec, result)
        hit = cache.get(spec)
        assert hit is not MISS
        assert hit.cycles == result.cycles
        assert hit.engine == result.engine
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert len(cache) == 1

    def test_miss_on_config_change(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _tiny_spec()
        cache.put(spec, spec.execute())
        changed = dataclasses.replace(spec, config=SystemConfig(num_banks=11))
        assert cache.get(changed) is MISS

    def test_verified_entry_serves_unverified_request_but_not_vice_versa(
            self, tmp_path):
        cache = ResultCache(tmp_path)
        verified_spec = _tiny_spec(verify=True)
        unverified_spec = _tiny_spec(verify=False)
        cache.put(unverified_spec, unverified_spec.execute())
        assert cache.get(verified_spec) is MISS  # can't upgrade to verified
        cache.put(verified_spec, verified_spec.execute())
        hit = cache.get(unverified_spec)  # downgrade is fine
        assert hit is not MISS and hit.verified is True

    def test_multi_engine_result_survives_warm_cache_reload(self, tmp_path):
        """A 2-engine run's per-engine breakdown must come back bit-identical
        from a *fresh* cache instance reading the on-disk entry — the warm
        path a second CLI invocation takes."""
        spec = _tiny_spec(config=SystemConfig(num_engines=2))
        result = spec.execute()
        assert result.engines is not None and len(result.engines) == 2
        ResultCache(tmp_path).put(spec, result)

        reloaded = ResultCache(tmp_path).get(spec)  # cold instance, warm disk
        assert reloaded is not MISS
        assert reloaded == result
        assert reloaded.engines == result.engines
        # The aggregate equals its parts after the round-trip too.
        from repro.vector.engine import EngineResult
        assert reloaded.engine == EngineResult.aggregate(
            reloaded.engines, reloaded.cycles)
        # And the JSON on disk is canonical: a second encode is a fixpoint.
        assert system_run_result_to_dict(reloaded) == \
            system_run_result_to_dict(result)

    def test_miss_on_version_bump(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _tiny_spec()
        cache.put(spec, spec.execute())
        bumped = dataclasses.replace(spec, version="0.0.0-test")
        assert cache.get(bumped) is MISS

    def test_corrupt_entry_is_a_miss_and_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _tiny_spec()
        cache.put(spec, spec.execute())
        cache.path_for(spec).write_text("not json")
        assert cache.get(spec) is MISS
        assert cache.stats.errors == 1
        # The damaged file was moved aside, not silently left in place.
        assert cache.stats.corrupt == 1
        assert not cache.path_for(spec).exists()
        assert cache.corrupt_entries() == 1
        assert "1 quarantined" in cache.stats.summary()
        cache.path_for(spec).write_text("[1, 2]")  # valid JSON, not an entry
        assert cache.get(spec) is MISS
        cache.path_for(spec).write_bytes(b"\xff\xfe")  # invalid UTF-8
        assert cache.get(spec) is MISS
        assert cache.stats.corrupt == 3
        assert cache.prune() == 1  # and prune removes the sidecar

    def test_quarantined_entry_heals_on_next_store(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _tiny_spec()
        result = spec.execute()
        cache.put(spec, result)
        # Truncate mid-file, as a crashed disk or the corrupt-cache fault
        # would: the key quarantines, then the re-store heals it.
        path = cache.path_for(spec)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert cache.get(spec) is MISS
        assert cache.corrupt_entries() == 1
        cache.put(spec, result)
        assert cache.get(spec) == result
        assert cache.corrupt_entries() == 1  # sidecar still there as evidence
        assert cache.clear() == 2  # entry + sidecar
        assert cache.corrupt_entries() == 0

    def test_clear_and_prune_sweep_orphaned_tmp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "interrupted-write.tmp").write_text("partial")
        assert cache.clear() == 1
        (tmp_path / "interrupted-write.tmp").write_text("partial")
        assert cache.prune() == 1

    def test_falsy_results_are_still_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = UtilizationSpec.strided(elem_bits=32, stride_elems=0, num_banks=17)
        cache.put(spec, 0.0)
        assert cache.get(spec) == 0.0

    def test_prune_removes_other_versions(self, tmp_path):
        old = ResultCache(tmp_path, version="0.9.0")
        spec = _tiny_spec()
        old.put(spec, spec.execute())
        current = ResultCache(tmp_path)
        assert current.prune() == 1
        assert len(current) == 0

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _tiny_spec()
        cache.put(spec, spec.execute())
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_stats_summary(self):
        stats = CacheStats(hits=2, misses=1, stores=1)
        assert "2 hits" in stats.summary()


class TestParallelRunner:
    def test_parallel_matches_serial(self):
        specs = [_tiny_spec(kind=kind) for kind in SystemKind]
        serial = ParallelRunner(jobs=1).run(specs)
        parallel = ParallelRunner(jobs=2).run(specs)
        assert [r.cycles for r in serial] == [r.cycles for r in parallel]
        assert [r.kind for r in parallel] == list(SystemKind)
        assert all(r.verified for r in parallel)

    def test_cache_skips_execution(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [_tiny_spec(kind=kind) for kind in SystemKind]
        first = ParallelRunner(jobs=1, cache=cache).run(specs)
        second = ParallelRunner(jobs=2, cache=cache).run(specs)
        assert [r.cycles for r in first] == [r.cycles for r in second]
        assert cache.stats.hits == 3 and cache.stats.stores == 3

    def test_progress_callback_sees_every_spec(self, tmp_path):
        events = []
        cache = ResultCache(tmp_path)
        specs = [_tiny_spec(kind=kind) for kind in SystemKind]
        runner = ParallelRunner(jobs=1, cache=cache, progress=events.append)
        runner.run(specs)
        runner.run(specs)
        assert len(events) == 6
        assert [e.done for e in events] == [1, 2, 3, 1, 2, 3]
        assert [e.cached for e in events] == [False] * 3 + [True] * 3
        assert all(e.total == 3 for e in events)
        assert "(cache)" in events[-1].render()

    def test_jobs_zero_means_cpu_count(self):
        assert ParallelRunner(jobs=0).jobs >= 1
        assert ParallelRunner(jobs=None).jobs >= 1

    def test_broken_pool_degrades_to_serial(self, monkeypatch):
        from concurrent.futures import Future
        from concurrent.futures.process import BrokenProcessPool

        from repro.orchestrate import parallel as parallel_module

        class BrokenExecutor:
            def __init__(self, max_workers):
                pass

            def submit(self, fn, spec):
                future = Future()
                future.set_exception(BrokenProcessPool("worker died"))
                return future

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        monkeypatch.setattr(parallel_module, "ProcessPoolExecutor", BrokenExecutor)
        specs = [_tiny_spec(kind=kind) for kind in SystemKind]
        runner = ParallelRunner(jobs=2)
        results = runner.run(specs)
        assert [r.cycles for r in results] == \
            [r.cycles for r in ParallelRunner(jobs=1).run(specs)]
        assert runner._pool_unavailable
        runner.run(specs)  # later batches skip the pool without error

    def test_pool_breaking_during_submit_degrades_to_serial(self, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        from repro.orchestrate import parallel as parallel_module

        class FlakySubmitExecutor:
            def __init__(self, max_workers):
                self.calls = 0

            def submit(self, fn, spec):
                self.calls += 1
                raise BrokenProcessPool("worker spawn failed")

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        monkeypatch.setattr(parallel_module, "ProcessPoolExecutor",
                            FlakySubmitExecutor)
        specs = [_tiny_spec(kind=kind) for kind in SystemKind]
        runner = ParallelRunner(jobs=2)
        results = runner.run(specs)
        assert [r.cycles for r in results] == \
            [r.cycles for r in ParallelRunner(jobs=1).run(specs)]
        assert runner._pool_unavailable

    def test_pool_is_reused_across_batches(self):
        specs = [_tiny_spec(kind=kind) for kind in SystemKind]
        with ParallelRunner(jobs=2) as runner:
            runner.run(specs)
            first_pool = runner._executor
            runner.run(specs)
            assert first_pool is not None
            assert runner._executor is first_pool
        assert runner._executor is None  # closed on exit


class TestRunnerIntegration:
    def test_compare_systems_accepts_workload_spec(self):
        via_spec = compare_systems(WorkloadSpec.create("gemv", size=16))
        via_factory = compare_systems(lambda: make_workload("gemv", size=16))
        assert via_spec.pack.cycles == via_factory.pack.cycles
        assert via_spec.base.cycles == via_factory.base.cycles

    def test_compare_systems_many_orders_and_keys(self):
        specs = [WorkloadSpec.create("gemv", size=16),
                 WorkloadSpec.create("ismt", size=16)]
        comparisons = compare_systems_many(specs, runner=ParallelRunner(jobs=2))
        assert list(comparisons) == ["gemv", "ismt"]
        assert comparisons["ismt"].pack_speedup > 0

    def test_compare_systems_many_rejects_duplicate_names(self):
        with pytest.raises(ConfigurationError):
            compare_systems_many([WorkloadSpec.create("gemv", size=16),
                                  WorkloadSpec.create("gemv", size=32)])


class TestSweep:
    def test_expand_all_and_dedupe(self):
        from repro.analysis.experiments import EXPERIMENTS

        assert expand_sweep(["fig3a", "fig3a", "fig5c"]) == ["fig3a", "fig5c"]
        assert expand_sweep(["all"]) == sorted(EXPERIMENTS)

    def test_expand_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            expand_sweep(["fig99"])
        with pytest.raises(ConfigurationError):
            expand_sweep([])

    def test_run_sweep_returns_tables_in_order(self):
        tables = run_sweep(["fig5c", "fig4b"])
        assert list(tables) == ["fig5c", "fig4b"]
        assert tables["fig5c"].experiment == "fig5c"

    def test_sweep_dedupes_across_experiments_without_persistent_cache(
            self, monkeypatch):
        from repro.orchestrate import spec as spec_module

        calls = []
        original = spec_module.RunSpec.execute

        def counting_execute(self):
            calls.append(self.cache_key())
            return original(self)

        monkeypatch.setattr(spec_module.RunSpec, "execute", counting_execute)
        from repro.orchestrate.cache import MemoryCache

        runner = ParallelRunner(jobs=1, cache=MemoryCache())
        tables = run_sweep(["fig3a", "fig4c"], scale="tiny", runner=runner)
        assert list(tables) == ["fig3a", "fig4c"]
        # fig4c reuses fig3a's 18 runs via the in-memory cache.
        assert len(calls) == 18
        assert runner.cache.stats.hits == 18

    def test_run_sweep_leaves_caller_runner_untouched(self):
        runner = ParallelRunner(jobs=1)
        run_sweep(["fig5c"], runner=runner)
        assert runner.cache is None


class TestCliOrchestration:
    def test_sweep_caches_across_invocations(self, capsys, tmp_path):
        argv = ["sweep", "fig3b", "--scale", "tiny",
                "--cache-dir", str(tmp_path), "--jobs", "2"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "0 hits" in first and "6 stored" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "6 hits, 0 misses" in second

    def test_sweep_no_cache_writes_nothing(self, capsys, tmp_path):
        assert main(["sweep", "fig3b", "--scale", "tiny", "--no-cache",
                     "--cache-dir", str(tmp_path), "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        # intra-sweep dedup still reports, but only in memory: no disk writes
        assert "in-memory" in out
        assert list(tmp_path.glob("*.json")) == []

    def test_sweep_unknown_experiment_fails_cleanly(self, capsys, tmp_path):
        assert main(["sweep", "fig99", "--no-cache",
                     "--cache-dir", str(tmp_path)]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_sweep_progress_lines(self, capsys, tmp_path):
        assert main(["sweep", "fig3b", "--scale", "tiny", "--no-cache",
                     "--cache-dir", str(tmp_path), "--progress"]) == 0
        err = capsys.readouterr().err
        assert "[6/6]" in err and "gemv" in err

    def test_run_accepts_jobs_flag(self, capsys):
        assert main(["run", "fig4b", "--jobs", "2"]) == 0
        assert "fig4b" in capsys.readouterr().out

    def test_cache_dir_implies_cache_for_run(self, capsys, tmp_path):
        assert main(["run", "fig3b", "--scale", "tiny",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "6 stored" in capsys.readouterr().out
        assert main(["run", "fig3b", "--scale", "tiny", "--no-cache",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "cache:" not in capsys.readouterr().out

    def test_workloads_with_jobs_and_cache(self, capsys, tmp_path):
        argv = ["workloads", "--size", "12", "--no-verify", "--jobs", "2",
                "--cache", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        # The full 7-workload registry x 3 systems = 21 runs.
        assert "speedup" in out and "21 stored" in out
        assert main(argv) == 0
        assert "21 hits" in capsys.readouterr().out

    def test_cache_subcommand(self, capsys, tmp_path):
        assert main(["cache", "--cache-dir", str(tmp_path)]) == 0
        assert "entries:   0" in capsys.readouterr().out
        assert main(["cache", "--cache-dir", str(tmp_path), "--clear"]) == 0
        assert "removed 0" in capsys.readouterr().out
