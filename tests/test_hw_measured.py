"""Hardware models driven by *measured* simulator results.

The calibration tests in ``test_hw_models.py`` pin the analytic models
against the paper's published numbers in isolation.  These tests close the
other half of the contract: feed real :class:`SystemRunResult`\\ s from the
cycle-level simulator into the power/area models and check

* the paper's power envelope (100-300 mW per benchmark, PACK at most ~31 %
  above BASE — Fig. 4c),
* that the topology power model degenerates exactly to the single-system
  model at 1 engine x 1 channel,
* the Fig. 5c prime-vs-power-of-two bank crossover, and
* that the committed ``results/pareto.csv`` stays reproducible: cycles,
  power and energy efficiency of its 1x1 anchor rows match a fresh run.
"""

import csv
from pathlib import Path

import pytest

from repro.analysis.headline import workload_spec_kwargs
from repro.analysis.pareto import channel_beat_rates, topology_area_kge
from repro.axi.transaction import reset_txn_ids
from repro.errors import ConfigurationError
from repro.hw.crossbar_area import BankCrossbarAreaModel
from repro.hw.energy import EnergyModel
from repro.system.config import SystemConfig, SystemKind
from repro.system.runner import run_workload
from repro.workloads import make_workload

PARETO_CSV = Path(__file__).resolve().parents[1] / "results" / "pareto.csv"

MEASURED_WORKLOADS = ("gemv", "spmv", "csrspmv")


def _measure(name, kind, engines=1, channels=1):
    config = SystemConfig().with_kind(kind)
    if engines != 1:
        config = config.with_engines(engines)
    if channels != 1:
        config = config.with_channels(channels)
    reset_txn_ids()
    workload = make_workload(name, **workload_spec_kwargs(name, "small"))
    return run_workload(workload, config)


@pytest.fixture(scope="module")
def measured():
    """BASE and PACK 1x1 runs of the pareto workloads at --scale small."""
    return {
        (name, kind): _measure(name, kind)
        for name in MEASURED_WORKLOADS
        for kind in (SystemKind.BASE, SystemKind.PACK)
    }


@pytest.fixture(scope="module")
def pareto_rows():
    with PARETO_CSV.open(newline="") as handle:
        return {(row["workload"], row["system"], int(row["engines"]),
                 int(row["channels"])): row
                for row in csv.DictReader(handle)}


class TestMeasuredPower:
    def test_benchmark_powers_in_paper_envelope(self, measured):
        energy = EnergyModel()
        for result in measured.values():
            power = energy.system_power_mw(result)
            assert 100.0 <= power <= 300.0

    def test_pack_power_ceiling(self, measured):
        # Fig. 4c: PACK draws at most ~31 % more power than BASE.  On the
        # indirect kernels it can even draw marginally less (fewer wasted
        # beats on the R channel), hence the small negative floor.
        energy = EnergyModel()
        for name in MEASURED_WORKLOADS:
            comparison = energy.compare(measured[(name, SystemKind.BASE)],
                                        measured[(name, SystemKind.PACK)])
            assert -0.05 < comparison.power_increase <= 0.31

    def test_topology_power_degenerates_at_1x1(self, measured):
        energy = EnergyModel()
        for result in measured.values():
            assert energy.topology_power_mw(result) == pytest.approx(
                energy.system_power_mw(result), rel=1e-12
            )

    def test_topology_power_validation(self, measured):
        energy = EnergyModel()
        result = measured[("gemv", SystemKind.PACK)]
        with pytest.raises(ConfigurationError):
            energy.topology_power_mw(result, num_engines=0)
        with pytest.raises(ConfigurationError):
            energy.topology_power_mw(result, num_channels=0)
        with pytest.raises(ConfigurationError):
            energy.topology_power_mw(result, num_channels=2,
                                     channel_beats_per_cycle=[0.5])

    def test_measured_channel_rates_feed_power(self):
        result = _measure("spmv", SystemKind.PACK, engines=2, channels=2)
        rates = channel_beat_rates(result, 2)
        assert rates is not None and len(rates) == 2
        assert all(rate >= 0.0 for rate in rates)
        energy = EnergyModel()
        measured_power = energy.topology_power_mw(
            result, num_engines=2, num_channels=2,
            channel_beats_per_cycle=rates,
        )
        saturated_power = energy.topology_power_mw(
            result, num_engines=2, num_channels=2,
            channel_beats_per_cycle=[1.0, 1.0],
        )
        # Measured (possibly imbalanced) traffic can never burn more than
        # M fully-loaded channels.
        assert measured_power <= saturated_power

    def test_single_channel_rates_are_none(self, measured):
        assert channel_beat_rates(measured[("gemv", SystemKind.BASE)], 1) is None


class TestFig5cCrossover:
    """Prime vs power-of-two bank counts, paper Fig. 5c."""

    def test_prime_cheaper_than_next_pow2_at_high_counts(self):
        model = BankCrossbarAreaModel(num_ports=8)
        # Low counts: the prime's modulo/divider overhead dominates and the
        # next power of two is cheaper...
        assert model.total_kge(11) > model.total_kge(16)
        # ...but past the crossover the crossbar's O(banks) wiring wins and
        # the prime (17 < 32) undercuts the next power of two.
        assert model.total_kge(17) < model.total_kge(32)
        assert model.total_kge(31) > model.total_kge(17)

    def test_prime_overhead_fraction_shrinks_with_banks(self):
        model = BankCrossbarAreaModel(num_ports=8)
        fractions = [model.breakdown(n).prime_overhead_fraction
                     for n in (11, 17, 31)]
        assert fractions[0] > fractions[1] > fractions[2] > 0.0
        assert model.breakdown(16).prime_overhead_fraction == 0.0


class TestCommittedParetoCsv:
    def test_anchor_rows_reproduce(self, measured, pareto_rows):
        """Fresh 1x1 runs match the committed cycles/power/energy_eff."""
        energy = EnergyModel()
        for name in MEASURED_WORKLOADS:
            base = measured[(name, SystemKind.BASE)]
            pack = measured[(name, SystemKind.PACK)]
            base_row = pareto_rows[(name, "base", 1, 1)]
            pack_row = pareto_rows[(name, "pack", 1, 1)]
            assert base.cycles == int(base_row["cycles"])
            assert pack.cycles == int(pack_row["cycles"])
            assert energy.system_power_mw(pack) == pytest.approx(
                float(pack_row["power_mw"])
            )
            base_energy = energy.system_power_mw(base) * base.cycles
            pack_energy = energy.system_power_mw(pack) * pack.cycles
            assert base_energy / pack_energy == pytest.approx(
                float(pack_row["energy_eff"])
            )
            assert base_row["verified"] == pack_row["verified"] == "True"

    def test_fig4c_energy_efficiency_peaks(self, pareto_rows):
        # gemv (packed strided) carries the headline efficiency gain;
        # the indirect kernels gain less but still gain.
        gemv = float(pareto_rows[("gemv", "pack", 1, 1)]["energy_eff"])
        spmv = float(pareto_rows[("spmv", "pack", 1, 1)]["energy_eff"])
        csr = float(pareto_rows[("csrspmv", "pack", 1, 1)]["energy_eff"])
        assert gemv == pytest.approx(4.83, abs=0.3)
        assert gemv > spmv > 1.0
        assert gemv > csr > 1.0

    def test_area_column_matches_model(self, pareto_rows):
        config = SystemConfig()
        for (name, system, engines, channels), row in pareto_rows.items():
            expected = topology_area_kge(config, SystemKind(system),
                                         engines, channels)
            assert float(row["area_kge"]) == pytest.approx(expected)

    def test_ideal_rows_bound_the_frontier(self, pareto_rows):
        # IDEAL bounds what a perfect *memory* buys — it beats BASE on
        # every workload and carries engine area only.  It does NOT always
        # beat PACK: on the indirect kernels PACK compresses the traffic
        # itself, which an ideal memory cannot (the paper's core claim).
        for name in MEASURED_WORKLOADS:
            ideal = pareto_rows[(name, "ideal", 1, 1)]
            base = pareto_rows[(name, "base", 1, 1)]
            pack = pareto_rows[(name, "pack", 1, 1)]
            assert int(ideal["cycles"]) < int(base["cycles"])
            assert float(ideal["area_kge"]) < float(base["area_kge"])
            assert float(ideal["area_kge"]) < float(pack["area_kge"])
