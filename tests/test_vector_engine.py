"""Integration tests for the vector engine on all three system flavours."""

import numpy as np
import pytest

from repro.system.config import SystemConfig, SystemKind
from repro.system.soc import build_system
from repro.vector.builder import AraProgramBuilder


def run_program(kind, build_fn, init_fn=None, config=None):
    """Build a SoC, assemble a program against its mode, and run it."""
    config = config or SystemConfig(kind=kind, memory_bytes=1 << 20)
    config = config.with_kind(kind)
    soc = build_system(config)
    if init_fn is not None:
        init_fn(soc.storage)
    builder = AraProgramBuilder("test", config.lowering, config.vector_config())
    build_fn(builder)
    cycles, result = soc.run_program(builder.build())
    return soc, cycles, result


ALL_KINDS = (SystemKind.BASE, SystemKind.PACK, SystemKind.IDEAL)


class TestFunctionalExecution:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_load_compute_store(self, kind):
        data = np.arange(32, dtype=np.float32)

        def init(storage):
            storage.write_array(0x100, data)

        def build(builder):
            builder.vle32("v1", 0x100, 32)
            builder.vfmul("v2", "v1", "v1", 32)
            builder.vse32("v2", 0x800, 32)

        soc, cycles, _ = run_program(kind, build, init)
        out = soc.storage.read_array(0x800, 32, np.float32)
        assert np.array_equal(out, data * data)
        assert cycles > 0

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_strided_load_store(self, kind):
        data = np.arange(256, dtype=np.float32)

        def init(storage):
            storage.write_array(0, data)

        def build(builder):
            builder.vlse32("v1", 0, 16, stride_elems=8)
            builder.vsse32("v1", 0x4000, 16, stride_elems=3)

        soc, _, _ = run_program(kind, build, init)
        back = soc.storage.read_array(0x4000, 16 * 3, np.float32)[::3]
        assert np.array_equal(back, data[::8][:16])

    def test_in_memory_indexed_gather_on_pack(self):
        data = np.arange(512, dtype=np.float32)
        indices = np.asarray([5, 99, 0, 255, 17, 3, 400, 2], dtype=np.uint32)

        def init(storage):
            storage.write_array(0, data)
            storage.write_array(0x8000, indices)

        def build(builder):
            builder.vlimxei32("v1", 0, 0x8000, 8)
            builder.vse32("v1", 0xC000, 8)

        soc, _, result = run_program(SystemKind.PACK, build, init)
        out = soc.storage.read_array(0xC000, 8, np.float32)
        assert np.array_equal(out, data[indices])
        # No index traffic crosses the bus with in-memory indexing.
        assert result.r_index_bytes == 0

    def test_register_indexed_gather_on_base(self):
        data = np.arange(512, dtype=np.float32)
        indices = np.asarray([7, 1, 300, 2], dtype=np.uint32)

        def init(storage):
            storage.write_array(0, data)
            storage.write_array(0x8000, indices)

        def build(builder):
            builder.vle32("v9", 0x8000, 4, kind="index", dtype="uint32")
            builder.vluxei32("v1", 0, "v9", 4, index_base=0x8000)
            builder.vse32("v1", 0xC000, 4)

        soc, _, result = run_program(SystemKind.BASE, build, init)
        out = soc.storage.read_array(0xC000, 4, np.float32)
        assert np.array_equal(out, data[indices])
        # The index fetch is visible as index traffic on the R channel.
        assert result.r_index_bytes == 16

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_reduction(self, kind):
        data = np.arange(64, dtype=np.float32)

        def init(storage):
            storage.write_array(0, data)

        def build(builder):
            builder.vle32("v1", 0, 64)
            builder.vfredsum("v2", "v1", 64)
            builder.vse32("v2", 0x1000, 1)

        soc, _, _ = run_program(kind, build, init)
        out = soc.storage.read_array(0x1000, 1, np.float32)[0]
        assert out == pytest.approx(float(np.sum(data)), rel=1e-5)


class TestTimingBehaviour:
    def _strided_kernel(self, kind, elems=256, stride=5):
        def init(storage):
            storage.write_array(0, np.zeros(elems * stride + 8, dtype=np.float32))

        def build(builder):
            builder.vlse32("v1", 0, elems, stride_elems=stride)

        return run_program(kind, build, init)

    def test_pack_much_faster_than_base_on_strided(self):
        _, base_cycles, base_result = self._strided_kernel(SystemKind.BASE)
        _, pack_cycles, pack_result = self._strided_kernel(SystemKind.PACK)
        assert pack_cycles * 3 < base_cycles
        assert pack_result.r_utilization > 3 * base_result.r_utilization

    def test_ideal_at_least_as_fast_as_pack_on_strided(self):
        _, pack_cycles, _ = self._strided_kernel(SystemKind.PACK)
        _, ideal_cycles, _ = self._strided_kernel(SystemKind.IDEAL)
        assert ideal_cycles <= pack_cycles * 1.1

    def test_contiguous_loads_similar_on_base_and_pack(self):
        def init(storage):
            storage.write_array(0, np.zeros(1024, dtype=np.float32))

        def build(builder):
            builder.vle32("v1", 0, 1024)

        _, base_cycles, _ = run_program(SystemKind.BASE, build, init)
        _, pack_cycles, _ = run_program(SystemKind.PACK, build, init)
        assert abs(base_cycles - pack_cycles) / base_cycles < 0.05

    def test_chaining_overlaps_compute_with_loads(self):
        """With chaining, compute time hides behind the second load."""
        def init(storage):
            storage.write_array(0, np.zeros(2048, dtype=np.float32))

        def build_with_compute(builder):
            builder.vle32("v1", 0, 512)
            builder.vfmul("v3", "v1", "v1", 512)
            builder.vle32("v2", 4096, 512)
            builder.vfmul("v4", "v2", "v2", 512)

        def build_loads_only(builder):
            builder.vle32("v1", 0, 512)
            builder.vle32("v2", 4096, 512)

        _, with_compute, _ = run_program(SystemKind.PACK, build_with_compute, init)
        _, loads_only, _ = run_program(SystemKind.PACK, build_loads_only, init)
        # The chained multiplies should add only a small tail.
        assert with_compute < loads_only + 40

    def test_ordered_store_fences_later_loads(self):
        def init(storage):
            storage.write_array(0, np.zeros(4096, dtype=np.float32))

        def build_fenced(builder):
            builder.vle32("v1", 0, 256)
            builder.vse32("v1", 0x2000, 256, ordered=True)
            builder.vle32("v2", 0x4000, 256)

        def build_unfenced(builder):
            builder.vle32("v1", 0, 256)
            builder.vse32("v1", 0x2000, 256)
            builder.vle32("v2", 0x4000, 256)

        _, fenced, _ = run_program(SystemKind.PACK, build_fenced, init)
        _, unfenced, _ = run_program(SystemKind.PACK, build_unfenced, init)
        assert fenced > unfenced

    def test_scalar_work_costs_cycles(self):
        def init(storage):
            storage.write_array(0, np.zeros(64, dtype=np.float32))

        def build_with_scalar(builder):
            for _ in range(20):
                builder.scalar(10)
            builder.vle32("v1", 0, 8)

        def build_without_scalar(builder):
            builder.vle32("v1", 0, 8)

        _, slow, _ = run_program(SystemKind.PACK, build_with_scalar, init)
        _, fast, _ = run_program(SystemKind.PACK, build_without_scalar, init)
        assert slow >= fast + 190


class TestResultAccounting:
    def test_utilization_accounting_matches_beats(self):
        def init(storage):
            storage.write_array(0, np.zeros(2048, dtype=np.float32))

        def build(builder):
            builder.vle32("v1", 0, 1024)

        _, cycles, result = run_program(SystemKind.PACK, build, init)
        assert result.r_beats == 128
        assert result.r_useful_bytes == 4096
        assert 0 < result.r_utilization <= 1.0
        assert result.r_utilization == pytest.approx(4096 / (32 * cycles))
        assert result.instructions == 1
