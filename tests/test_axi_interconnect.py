"""Tests for the interconnect blocks and the AXI-Pack compatibility story."""

import pytest

from repro.axi.interconnect import (
    AddressMap,
    AddressRegion,
    AxiDemux,
    AxiMux,
    DataWidthConverter,
)
from repro.axi.pack import PackMode, PackUserField
from repro.axi.transaction import BusRequest
from repro.errors import ConfigurationError, ProtocolError


def strided_request(elems=64, stride=3, bus=32, addr=0x1000):
    return BusRequest(addr=addr, is_write=False, num_elements=elems, elem_bytes=4,
                      bus_bytes=bus, pack=PackUserField.strided(stride))


def indirect_request(elems=64, bus=32, addr=0x1000, idx_base=0x9000):
    return BusRequest(addr=addr, is_write=False, num_elements=elems, elem_bytes=4,
                      bus_bytes=bus, pack=PackUserField.indirect(4, idx_base),
                      index_base=idx_base)


MAP = AddressMap([
    AddressRegion(base=0x0000, size=0x8000, target=0),
    AddressRegion(base=0x8000, size=0x8000, target=1),
])


class TestAddressMap:
    def test_route(self):
        assert MAP.route(0x10) == 0
        assert MAP.route(0x8000) == 1
        assert MAP.num_targets == 2

    def test_region_boundary_addresses(self):
        """Regions are half-open: base inclusive, end exclusive."""
        assert MAP.route(0x0000) == 0            # first byte of region 0
        assert MAP.route(0x7FFF) == 0            # last byte of region 0
        assert MAP.route(0x8000) == 1            # first byte of region 1
        assert MAP.route(0xFFFF) == 1            # last byte of region 1
        with pytest.raises(ProtocolError):
            MAP.route(0x1_0000)                  # one past the last region

    def test_adjacent_regions_are_not_overlapping(self):
        adjacent = AddressMap([
            AddressRegion(0, 0x100, 0),
            AddressRegion(0x100, 0x100, 1),
        ])
        assert adjacent.route(0xFF) == 0
        assert adjacent.route(0x100) == 1

    def test_gap_between_regions_decerr(self):
        gappy = AddressMap([
            AddressRegion(0, 0x100, 0),
            AddressRegion(0x200, 0x100, 1),
        ])
        with pytest.raises(ProtocolError):
            gappy.route(0x180)

    def test_unordered_regions_are_sorted(self):
        shuffled = AddressMap([
            AddressRegion(0x8000, 0x8000, 1),
            AddressRegion(0x0000, 0x8000, 0),
        ])
        assert [region.base for region in shuffled.regions] == [0x0000, 0x8000]
        assert shuffled.route(0x10) == 0

    def test_shared_target_counts_once(self):
        split = AddressMap([
            AddressRegion(0x0000, 0x100, 7),
            AddressRegion(0x1000, 0x100, 7),
        ])
        assert split.num_targets == 1

    def test_unmapped_address_decerr(self):
        with pytest.raises(ProtocolError):
            MAP.route(0x2_0000)

    def test_invalid_region_rejected(self):
        with pytest.raises(ConfigurationError):
            AddressRegion(base=-1, size=0x100, target=0)
        with pytest.raises(ConfigurationError):
            AddressRegion(base=0, size=0, target=0)
        with pytest.raises(ConfigurationError):
            AddressRegion(base=0, size=0x100, target=-1)

    def test_overlap_rejected(self):
        with pytest.raises(ConfigurationError):
            AddressMap([
                AddressRegion(0, 0x100, 0),
                AddressRegion(0x80, 0x100, 1),
            ])

    def test_empty_map_rejected(self):
        with pytest.raises(ConfigurationError):
            AddressMap([])


class TestDemuxPassThrough:
    def test_packed_bursts_pass_unmodified(self):
        """The compatibility claim: routing IP needs no AXI-Pack awareness."""
        demux = AxiDemux(MAP)
        for request in (strided_request(), indirect_request()):
            target, forwarded = demux.route(request)
            assert target == 0
            assert forwarded is request          # same object, untouched
            assert forwarded.pack is request.pack
        assert demux.routed_counts[0] == 2

    def test_routing_by_address(self):
        demux = AxiDemux(MAP)
        target, _ = demux.route(strided_request(addr=0x9000))
        assert target == 1

    def test_straddling_contiguous_burst_rejected(self):
        # Use a region boundary that is not 4 KiB aligned so the burst itself
        # is AXI-legal but straddles two targets of this particular map.
        unaligned_map = AddressMap([
            AddressRegion(base=0x0000, size=0x7F00, target=0),
            AddressRegion(base=0x7F00, size=0x1000, target=1),
        ])
        demux = AxiDemux(unaligned_map)
        request = BusRequest(addr=0x7EC0, is_write=False, num_elements=32,
                             elem_bytes=4, bus_bytes=32, contiguous=True)
        with pytest.raises(ProtocolError):
            demux.route(request)

    def test_mux_forwards_unchanged(self):
        mux = AxiMux(2)
        request = strided_request()
        assert mux.forward(1, request) is request
        assert mux.forwarded == [0, 1]
        with pytest.raises(ConfigurationError):
            mux.forward(5, request)


class TestDataWidthConverter:
    def test_downsize_repacks_strided_burst(self):
        converter = DataWidthConverter(32, 16)
        request = strided_request(elems=64, stride=5)
        converted = converter.convert(request)
        assert len(converted) == 1
        down = converted[0]
        assert down.bus_bytes == 16
        assert down.num_beats == 16              # 4 elements per 128-bit beat
        assert down.mode is PackMode.STRIDED
        assert down.pack.stride_elems == 5
        assert down.payload_bytes == request.payload_bytes

    def test_upsize_reduces_beats(self):
        converter = DataWidthConverter(16, 32)
        request = strided_request(elems=64, bus=16)
        down = converter.convert(request)[0]
        assert down.num_beats == 8

    def test_long_burst_split_at_256_beats(self):
        converter = DataWidthConverter(32, 8)
        request = strided_request(elems=1024, stride=2)
        converted = converter.convert(request)
        assert all(r.num_beats <= 256 for r in converted)
        assert sum(r.num_elements for r in converted) == 1024
        # The split continues at the right stride offset.
        assert converted[1].addr == request.addr + converted[0].num_elements * 8

    def test_indirect_split_advances_index_base(self):
        converter = DataWidthConverter(32, 8)
        request = indirect_request(elems=1024)
        converted = converter.convert(request)
        assert converted[1].index_base == request.index_base + converted[0].num_elements * 4
        assert all(r.mode is PackMode.INDIRECT for r in converted)

    def test_contiguous_conversion(self):
        converter = DataWidthConverter(32, 16)
        request = BusRequest(addr=0, is_write=False, num_elements=64, elem_bytes=4,
                             bus_bytes=32, contiguous=True)
        down = converter.convert(request)[0]
        assert down.contiguous and down.num_beats == 16

    def test_wrong_upstream_width_rejected(self):
        converter = DataWidthConverter(16, 32)
        with pytest.raises(ProtocolError):
            converter.convert(strided_request(bus=32))

    def test_element_wider_than_downstream_rejected(self):
        converter = DataWidthConverter(32, 4)
        request = BusRequest(addr=0, is_write=False, num_elements=4, elem_bytes=8,
                             bus_bytes=32, pack=PackUserField.strided(1))
        with pytest.raises(ProtocolError):
            converter.convert(request)

    def test_beat_ratio(self):
        assert DataWidthConverter(32, 8).beat_ratio() == pytest.approx(4.0)

    def test_non_power_of_two_widths_rejected(self):
        for upstream, downstream in ((24, 8), (32, 12), (0, 8), (32, 0)):
            with pytest.raises(ConfigurationError):
                DataWidthConverter(upstream, downstream)

    def test_same_width_passthrough_geometry(self):
        converter = DataWidthConverter(32, 32)
        request = strided_request(elems=64, stride=5)
        down = converter.convert(request)[0]
        assert down.bus_bytes == 32
        assert down.num_beats == request.num_beats
        assert down.payload_bytes == request.payload_bytes
        assert down.pack.stride_elems == 5

    def test_packed_passthrough_preserves_user_semantics(self):
        """Width conversion re-packs but never reinterprets the user field:
        mode, stride and element size survive both directions."""
        for upstream, downstream in ((32, 8), (8, 32)):
            converter = DataWidthConverter(upstream, downstream)
            request = strided_request(elems=32, stride=7, bus=upstream)
            for converted in converter.convert(request):
                assert converted.mode is PackMode.STRIDED
                assert converted.pack.stride_elems == 7
                assert converted.elem_bytes == request.elem_bytes

    def test_narrow_burst_stays_element_per_beat(self):
        converter = DataWidthConverter(32, 16)
        request = BusRequest(addr=0x40, is_write=False, num_elements=8,
                             elem_bytes=4, bus_bytes=32, contiguous=False)
        converted = converter.convert(request)
        assert len(converted) == 1
        down = converted[0]
        assert down.is_narrow
        assert down.num_beats == 8               # still one element per beat
        assert down.beat_bytes == 4

    def test_narrow_burst_at_the_256_beat_limit(self):
        # A narrow burst is capped at 256 elements by AXI4 itself (one
        # element per beat), so the converter never needs to split one; the
        # maximum-length case must survive conversion as a single burst.
        converter = DataWidthConverter(32, 16)
        request = BusRequest(addr=0x40, is_write=False, num_elements=256,
                             elem_bytes=4, bus_bytes=32, contiguous=False)
        converted = converter.convert(request)
        assert len(converted) == 1
        assert converted[0].num_beats == 256

    def test_strided_split_exactly_at_boundary(self):
        # 1024 elements at 4 elems/beat on the downstream bus = exactly
        # 256 beats: no split may happen.
        converter = DataWidthConverter(32, 16)
        request = strided_request(elems=1024, stride=2)
        converted = converter.convert(request)
        assert len(converted) == 1
        assert converted[0].num_beats == 256
