"""Bad fixture: suppression misuse (SUP01 reasonless, SUP02 unused)."""

import time


def stamp():
    return time.time()  # reprolint: disable=DET01


def quiet():
    return 0  # reprolint: disable=DET02: nothing here actually violates DET02
