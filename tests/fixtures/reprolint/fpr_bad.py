"""Bad fixture: a spec with an unfingerprinted field (FPR01/FPR04/FPR05)."""

from dataclasses import dataclass

CACHE_SCHEMA_VERSION = 3


@dataclass(frozen=True)
class MiniSpec:
    size: int = 1
    mode: str = "fast"
    verify: bool = False
    latency: int = 4  # FPR01: never fingerprinted, never exempted

    def fingerprint(self):
        return {
            "schema": CACHE_SCHEMA_VERSION,
            "size": self.size,
            # FPR04: the manifest claims `mode` is covered, but it is not
            # read here.
        }
