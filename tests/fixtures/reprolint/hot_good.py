"""Good fixture: slotted hot-module records, hint-returning tick."""

import enum

IDLE = -1


class Component:
    __slots__ = ()


class Kind(enum.Enum):  # enums are exempt from HOT01
    A = "a"


class Beat:
    __slots__ = ("addr", "data")

    def __init__(self, addr, data):
        self.addr = addr
        self.data = data


class QuietPipe(Component):
    __slots__ = ("pending",)

    def __init__(self):
        self.pending = []

    def tick(self, cycle):
        if self.pending:
            return cycle + 1
        return IDLE
