"""Bad fixture: slotless hot-module record, None-returning tick (HOT01/02)."""


class Component:
    __slots__ = ()


class Beat:  # HOT01: hot-module class without __slots__
    def __init__(self, addr, data):
        self.addr = addr
        self.data = data


class LegacyPoller(Component):
    __slots__ = ("pending",)

    def __init__(self):
        self.pending = []

    def tick(self, cycle):  # HOT02 at the explicit return below
        if self.pending:
            return None


class SilentPoller(Component):
    __slots__ = ()

    def tick(self, cycle):  # HOT02: falls through, no return at all
        _ = cycle
