"""Good fixture: a mini spec module whose fingerprint covers every field."""

from dataclasses import dataclass

CACHE_SCHEMA_VERSION = 3


@dataclass(frozen=True)
class MiniSpec:
    size: int = 1
    mode: str = "fast"
    verify: bool = False

    def fingerprint(self):
        return {
            "schema": CACHE_SCHEMA_VERSION,
            "size": self.size,
            "mode": self.mode,
        }
