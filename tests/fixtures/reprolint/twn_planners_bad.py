"""Bad fixture: a planner with no batch twin (TWN01; see twn_lanes_bad)."""


def plan_strided_beats(base, stride, count):
    for index in range(count):
        yield base + index * stride


def plan_orphan_beats(base, count):  # TWN01: no batch_orphan anywhere
    for index in range(count):
        yield base + index
