"""Good fixture: a suppression with a reason, suppressing a real violation."""

import time


def stamp():
    return time.time()  # reprolint: disable=DET01: fixture exercising an explained suppression
