"""Bad fixture: a lane kernel with no scalar planner twin (TWN02)."""


def batch_strided(base, stride, count):
    return [base + index * stride for index in range(count)]


def batch_rogue(base, count):  # TWN02: no plan_rogue* to parity-check against
    return [base + index for index in range(count)]
