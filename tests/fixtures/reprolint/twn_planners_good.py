"""Good fixture: every scalar planner has a batch twin (see twn_lanes_good)."""


def plan_strided_beats(base, stride, count):
    for index in range(count):
        yield base + index * stride


def plan_contiguous_beats(base, count):
    for index in range(count):
        yield base + index
