"""Good fixture: Component iterating deterministically (sorted / list)."""


class Component:
    pass


class OrderedArbiter(Component):
    def __init__(self):
        self.claims = {}
        self.ports = []

    def tick(self, cycle):
        for bank, entry in sorted(self.claims.items()):
            self.ports.append((bank, entry))
        for port in self.ports:
            _ = port
        return cycle + 1
