"""Good fixture: deterministic code — seeded RNGs, no ambient reads."""

import random

import numpy as np


def make_values(seed: int):
    rng = random.Random(seed)
    nrng = np.random.default_rng(seed)
    return rng.random(), nrng.integers(0, 10)
