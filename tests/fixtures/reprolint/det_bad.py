"""Bad fixture: every determinism sin reprolint should catch (DET01-03)."""

import os
import random
import time

import numpy as np


def stamp():
    return time.time()  # DET01: wall-clock read


def roll():
    return random.randint(0, 6)  # DET02: process-global RNG


def make_rng():
    return np.random.default_rng()  # DET02: no seed


def read_env():
    return os.environ.get("NOT_ALLOWLISTED")  # DET03: ambient config
