"""Bad fixture: tick-path iteration over unordered containers (ORD01)."""


class Component:
    pass


class RacyArbiter(Component):
    def __init__(self):
        self.claims = {}

    def tick(self, cycle):
        for entry in self.claims.values():  # ORD01: dict-order grant walk
            _ = entry
        winners = [p for p in {3, 1, 2}]  # ORD01: set-literal iteration
        return len(winners)
