"""Bad fixture: references to tombstoned names (DEP01)."""

from repro.errors import MemoryError_  # DEP01: deprecated import


def classify(exc):
    return isinstance(exc, MemoryError_)  # DEP01: deprecated use
