"""Good fixture: the batch twins of twn_planners_good."""


def batch_strided(base, stride, count):
    return [base + index * stride for index in range(count)]


def batch_contiguous(base, count):
    return [base + index for index in range(count)]
