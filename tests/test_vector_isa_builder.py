"""Unit tests for the ISA definitions and the program builder."""

import pytest

from repro.errors import WorkloadError
from repro.vector.builder import AraProgramBuilder
from repro.vector.config import LoweringMode, VectorEngineConfig
from repro.vector.isa import (
    AXI_PACK_ONLY,
    Instruction,
    MEMORY_MNEMONICS,
    Mnemonic,
    check_supported,
)
from repro.vector.ops import ScalarWork, VectorCompute, VectorLoad, VectorStore


def make_builder(mode=LoweringMode.PACK):
    return AraProgramBuilder("test", mode, VectorEngineConfig())


class TestIsa:
    def test_new_instructions_are_axi_pack_only(self):
        assert Mnemonic.VLIMXEI32 in AXI_PACK_ONLY
        assert Mnemonic.VSIMXEI32 in AXI_PACK_ONLY
        assert Mnemonic.VLUXEI32 not in AXI_PACK_ONLY

    def test_check_supported(self):
        check_supported(Mnemonic.VLIMXEI32, LoweringMode.PACK)
        with pytest.raises(WorkloadError):
            check_supported(Mnemonic.VLIMXEI32, LoweringMode.BASE)
        with pytest.raises(WorkloadError):
            check_supported(Mnemonic.VSIMXEI32, LoweringMode.IDEAL)

    def test_memory_classification(self):
        assert Mnemonic.VLE32 in MEMORY_MNEMONICS
        assert Mnemonic.VFMACC not in MEMORY_MNEMONICS

    def test_instruction_render(self):
        instr = Instruction(Mnemonic.VLSE32, vl=64, operands={"vd": "v1"}, comment="x")
        text = instr.render()
        assert "vlse32.v" in text and "vl=64" in text and "x" in text
        assert instr.is_memory and not instr.is_reduction

    def test_reduction_classification(self):
        assert Instruction(Mnemonic.VFREDSUM, vl=8).is_reduction


class TestBuilderBasics:
    def test_empty_program_rejected(self):
        with pytest.raises(WorkloadError):
            make_builder().build()

    def test_strip_mine(self):
        builder = make_builder()
        chunks = builder.strip_mine(builder.max_vl * 2 + 5)
        assert chunks == [builder.max_vl, builder.max_vl, 5]
        assert sum(chunks) == builder.max_vl * 2 + 5

    def test_strip_mine_rejects_zero(self):
        with pytest.raises(WorkloadError):
            make_builder().strip_mine(0)

    def test_program_records_instructions_and_ops(self):
        builder = make_builder()
        builder.vle32("v1", 0, 8)
        builder.vfadd("v2", "v1", "v1", 8)
        builder.vse32("v2", 64, 8)
        program = builder.build()
        assert program.num_instructions == 3
        assert isinstance(program.ops[0], VectorLoad)
        assert isinstance(program.ops[1], VectorCompute)
        assert isinstance(program.ops[2], VectorStore)
        assert len(program.memory_ops()) == 2

    def test_listing_truncation(self):
        builder = make_builder()
        for _ in range(5):
            builder.scalar(1)
        listing = builder.build().listing(limit=2)
        assert "more instructions" in listing


class TestDependencies:
    def test_raw_dependency(self):
        builder = make_builder()
        load = builder.vle32("v1", 0, 8)
        add = builder.vfadd("v2", "v1", "v1", 8)
        assert load in builder.program.ops[add].deps

    def test_store_depends_on_producer(self):
        builder = make_builder()
        load = builder.vle32("v1", 0, 8)
        store = builder.vse32("v1", 64, 8)
        assert load in builder.program.ops[store].deps

    def test_war_dependency_recorded(self):
        builder = make_builder()
        builder.vle32("v1", 0, 8)
        add = builder.vfadd("v2", "v1", "v1", 8)
        reload_ = builder.vle32("v1", 64, 8)
        assert add in builder.program.ops[reload_].deps

    def test_waw_dependency_recorded(self):
        builder = make_builder()
        first = builder.vle32("v1", 0, 8)
        second = builder.vle32("v1", 64, 8)
        assert first in builder.program.ops[second].deps

    def test_ordered_store_acts_as_fence(self):
        builder = make_builder()
        store = builder.vse32("v1", 0, 8, ordered=True)
        # v1 was never written; build a producer first to avoid that error.
        builder2 = make_builder()
        builder2.vle32("v1", 0, 8)
        store = builder2.vse32("v1", 64, 8, ordered=True)
        follow = builder2.vle32("v2", 128, 8)
        assert store in builder2.program.ops[follow].deps

    def test_fence_orders_after_all_memory(self):
        builder = make_builder()
        builder.vle32("v1", 0, 8)
        last = builder.vle32("v2", 64, 8)
        builder.fence()
        follow = builder.vle32("v3", 128, 8)
        assert last in builder.program.ops[follow].deps

    def test_index_register_dependency_for_vluxei(self):
        builder = make_builder(LoweringMode.BASE)
        idx = builder.vle32("v9", 0x100, 8, kind="index", dtype="uint32")
        gather = builder.vluxei32("v2", 0, "v9", 8, index_base=0x100)
        assert idx in builder.program.ops[gather].deps
        assert builder.program.ops[gather].index_values_reg == "v9"


class TestIsaGating:
    def test_vlimxei_requires_pack(self):
        with pytest.raises(WorkloadError):
            make_builder(LoweringMode.BASE).vlimxei32("v1", 0, 0x100, 8)
        with pytest.raises(WorkloadError):
            make_builder(LoweringMode.IDEAL).vsimxei32("v1", 0, 0x100, 8)

    def test_vlimxei_allowed_on_pack(self):
        builder = make_builder(LoweringMode.PACK)
        op_id = builder.vlimxei32("v1", 0, 0x100, 8)
        op = builder.program.ops[op_id]
        assert op.uses_in_memory_indices
        assert op.stream.index_base == 0x100

    def test_regular_instructions_on_all_modes(self):
        for mode in LoweringMode:
            builder = make_builder(mode)
            builder.vle32("v1", 0, 8)
            builder.vlse32("v2", 0, 8, stride_elems=4)
            assert builder.build().num_instructions == 2


class TestComputeHelpers:
    def test_vfmacc_reads_accumulator(self):
        builder = make_builder()
        builder.vle32("v1", 0, 8)
        builder.vmv_vx("v4", 0.0, 8)
        macc = builder.vfmacc("v4", "v1", "v1", 8)
        op = builder.program.ops[macc]
        assert "v4" in op.srcs

    def test_reduction_flag(self):
        builder = make_builder()
        builder.vle32("v1", 0, 8)
        red = builder.vfredsum("v2", "v1", 8)
        assert builder.program.ops[red].is_reduction

    def test_scalar_records_cycles(self):
        builder = make_builder()
        op_id = builder.scalar(7, label="loop")
        op = builder.program.ops[op_id]
        assert isinstance(op, ScalarWork) and op.cycles == 7
