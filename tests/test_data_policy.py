"""FULL/ELIDE data-policy parity and the policy plumbing around it.

The core invariant of ``DataPolicy.ELIDE`` (see ``repro.sim.policy``): cycle
counts, every ``StatsRegistry`` counter and every engine measurement are
bit-identical to ``DataPolicy.FULL`` — only the data plane (payload bytes,
register contents, memory image) disappears.  These tests pin that across
the fig3a workload grid, both engine modes, error behaviour (max_cycles,
deadlock), the orchestrator cache, and the CLI surface.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.axi.transaction import reset_txn_ids
from repro.errors import ConfigurationError, DeadlockError, SimulationError
from repro.mem.banked import BankedMemory, BankedMemoryConfig
from repro.mem.storage import MemoryStorage
from repro.mem.words import WordRequest
from repro.orchestrate.cache import MISS, MemoryCache, ResultCache
from repro.orchestrate.spec import RunSpec, WorkloadSpec
from repro.sim.engine import Engine
from repro.sim.policy import DataPolicy, default_data_policy, resolve_data_policy
from repro.system.config import SystemConfig, SystemKind
from repro.system.runner import run_workload
from repro.workloads.registry import WORKLOAD_ORDER

ALL_KINDS = (SystemKind.BASE, SystemKind.PACK, SystemKind.IDEAL)


def _fig3a_spec(name: str) -> WorkloadSpec:
    """Tiny-scale fig3a workload spec (mirrors analysis.fig3 at scale=tiny)."""
    if name in ("ismt", "gemv", "trmv"):
        return WorkloadSpec.create(name, size=16)
    return WorkloadSpec.create(name, size=16, avg_nnz_per_row=8.0)


def _run(name: str, kind: SystemKind, policy: DataPolicy, event_driven: bool,
         verify: bool = False):
    reset_txn_ids()
    workload = _fig3a_spec(name).build()
    config = SystemConfig(
        memory_bytes=1 << 22, data_policy=policy
    ).with_kind(kind)
    from repro.system.soc import build_system

    soc = build_system(config)
    workload.initialize(soc.storage)
    program = workload.build_program(config.lowering, config.vector_config())
    cycles, result = soc.run_program(program, event_driven=event_driven)
    verified = workload.verify(soc.storage) if verify and not policy.elides_data else None
    return cycles, dict(soc.stats.as_dict()), result, verified


class TestPolicyParity:
    @pytest.mark.parametrize("name", WORKLOAD_ORDER)
    @pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.value)
    def test_event_driven_parity(self, name, kind):
        """ELIDE matches FULL bit for bit on the event-driven engine."""
        f_cycles, f_stats, f_result, verified = _run(
            name, kind, DataPolicy.FULL, True, verify=True
        )
        e_cycles, e_stats, e_result, _ = _run(name, kind, DataPolicy.ELIDE, True)
        assert e_cycles == f_cycles
        assert e_stats == f_stats
        assert e_result == f_result
        # FULL mode still moves real data end to end.
        assert verified is True

    @pytest.mark.parametrize("name", ["ismt", "spmv"])
    @pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.value)
    def test_naive_engine_parity(self, name, kind):
        """The parity holds on the tick-every-cycle compatibility engine too."""
        f = _run(name, kind, DataPolicy.FULL, False)
        e = _run(name, kind, DataPolicy.ELIDE, False)
        assert e[:3] == f[:3]

    @pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.value)
    def test_engine_modes_agree_under_elide(self, kind):
        """Event-driven and naive engines agree within ELIDE as well."""
        event = _run("spmv", kind, DataPolicy.ELIDE, True)
        naive = _run("spmv", kind, DataPolicy.ELIDE, False)
        assert event[:3] == naive[:3]

    def test_elide_results_marked_unverified(self):
        """ELIDE runs are explicitly marked verified=False, never None."""
        workload = _fig3a_spec("gemv").build()
        config = SystemConfig(
            memory_bytes=1 << 22, data_policy=DataPolicy.ELIDE
        )
        result = run_workload(workload, config, verify=True)
        assert result.verified is False

    def test_elide_never_touches_storage(self):
        """The datapath leaves the memory image byte-identical under ELIDE."""
        reset_txn_ids()
        workload = _fig3a_spec("gemv").build()
        config = SystemConfig(
            memory_bytes=1 << 22, data_policy=DataPolicy.ELIDE
        ).with_kind(SystemKind.PACK)
        from repro.system.soc import build_system

        soc = build_system(config)
        workload.initialize(soc.storage)
        image_before = soc.storage.snapshot()
        program = workload.build_program(config.lowering, config.vector_config())
        soc.run_program(program)
        assert np.array_equal(soc.storage.snapshot(), image_before)


class TestErrorBehaviourParity:
    @pytest.mark.parametrize("policy", [DataPolicy.FULL, DataPolicy.ELIDE],
                             ids=lambda p: p.value)
    @pytest.mark.parametrize("event_driven", [True, False],
                             ids=["event", "naive"])
    def test_max_cycles_exceeded(self, policy, event_driven):
        """A too-small cycle budget raises identically under both policies."""
        reset_txn_ids()
        workload = _fig3a_spec("gemv").build()
        config = SystemConfig(memory_bytes=1 << 22, data_policy=policy)
        from repro.system.soc import build_system

        soc = build_system(config)
        workload.initialize(soc.storage)
        program = workload.build_program(config.lowering, config.vector_config())
        with pytest.raises(SimulationError):
            soc.run_program(program, max_cycles=10, event_driven=event_driven)

    @pytest.mark.parametrize("policy", [DataPolicy.FULL, DataPolicy.ELIDE],
                             ids=lambda p: p.value)
    def test_deadlock_detection_cycle(self, policy):
        """An undrained memory deadlocks at the same cycle under both policies."""
        storage = MemoryStorage(1 << 16)
        config = BankedMemoryConfig(num_ports=2, num_banks=3,
                                    response_queue_depth=1)
        memory = BankedMemory("mem", config, storage, data_policy=policy)
        engine = Engine(deadlock_window=50)
        engine.add_component(memory)
        for queue in memory.all_queues():
            engine.add_queue(queue)
        data = None if policy.elides_data else b"\x01\x02\x03\x04"
        for i in range(2):
            memory.request_queues[0].push(
                WordRequest(port=0, word_addr=i, is_write=True, data=data)
            )
        with pytest.raises(DeadlockError):
            # Nobody pops the response queue: progress stops once responses
            # back up, at a cycle independent of the data policy.
            engine.run_until(lambda: False, max_cycles=10_000)
        # Record the deadlock cycle for cross-policy comparison via state.
        if not hasattr(TestErrorBehaviourParity, "_deadlock_cycles"):
            TestErrorBehaviourParity._deadlock_cycles = {}
        TestErrorBehaviourParity._deadlock_cycles[policy] = engine.cycle
        cycles = TestErrorBehaviourParity._deadlock_cycles
        if len(cycles) == 2:
            assert cycles[DataPolicy.FULL] == cycles[DataPolicy.ELIDE]


class TestVectorizedArbitration:
    """The batched arbiter grants exactly what the scalar reference would."""

    @staticmethod
    def _reference_grants(ports_words, last_grant, num_ports, num_banks,
                          conflict_free):
        """Seed-tree scalar arbiter: claims dict + per-bank round-robin."""
        claims = {}
        for port, word in ports_words:
            bank = word % num_banks
            claims.setdefault(bank, []).append(port)
        granted = []
        conflicts = 0
        for bank, ports in claims.items():
            if conflict_free:
                granted.extend(ports)
                continue
            if len(ports) == 1:
                winner = ports[0]
            else:
                last = last_grant[bank]
                winner = min(ports, key=lambda p: (p - last - 1) % num_ports)
                conflicts += len(ports) - 1
            last_grant[bank] = winner
            granted.append(winner)
        return sorted(granted), conflicts

    @pytest.mark.parametrize("conflict_free", [False, True],
                             ids=["round-robin", "conflict-free"])
    def test_matches_scalar_reference(self, conflict_free):
        rng = np.random.default_rng(7)
        storage = MemoryStorage(1 << 16)
        config = BankedMemoryConfig(num_ports=8, num_banks=17,
                                    conflict_free=conflict_free)
        memory = BankedMemory("mem", config, storage,
                              data_policy=DataPolicy.ELIDE)
        for trial in range(200):
            memory.reset()
            # Randomize the round-robin history.
            memory._bank_last_grant = [
                int(rng.integers(0, config.num_ports))
                for _ in range(config.num_banks)
            ]
            last_copy = list(memory._bank_last_grant)
            num_claimants = int(rng.integers(1, config.num_ports + 1))
            ports = sorted(rng.choice(config.num_ports, size=num_claimants,
                                      replace=False).tolist())
            words = [int(rng.integers(0, 64)) for _ in ports]
            for port, word in zip(ports, words):
                queue = memory.request_queues[port]
                queue.push(WordRequest(port=port, word_addr=word, is_write=False))
                queue.commit()
            before_conflicts = memory.stats.get("mem.bank_conflicts")
            memory._accept_requests(cycle=trial)
            granted = sorted(
                port for port, flight in enumerate(memory._in_flight) if flight
            )
            conflicts = memory.stats.get("mem.bank_conflicts") - before_conflicts
            expected, expected_conflicts = self._reference_grants(
                list(zip(ports, words)), last_copy,
                config.num_ports, config.num_banks, conflict_free,
            )
            assert granted == expected, f"trial {trial}"
            if not conflict_free:
                assert conflicts == expected_conflicts
                assert memory._bank_last_grant == last_copy

    def test_elide_reuses_request_as_response(self):
        """The timing-only bank path never allocates responses or data."""
        storage = MemoryStorage(1 << 16)
        memory = BankedMemory(
            "mem", BankedMemoryConfig(num_ports=2, num_banks=3), storage,
            data_policy=DataPolicy.ELIDE,
        )
        request = WordRequest(port=0, word_addr=5, is_write=False, tag="t")
        memory.request_queues[0].push(request)
        memory.request_queues[0].commit()
        memory._accept_requests(cycle=0)
        ready, response = memory._in_flight[0][0]
        assert response is request
        assert response.data is None
        # Storage untouched: still all zeros.
        assert not storage.snapshot().any()


class TestControllerTestbenchPolicy:
    def test_strided_read_parity(self):
        """The fig5 testbench harness honours the policy with identical timing."""
        from repro.axi.builder import BuilderConfig, RequestBuilder
        from repro.axi.stream import StridedStream
        from repro.controller.testbench import ControllerTestbench

        outcomes = {}
        for policy in (DataPolicy.FULL, DataPolicy.ELIDE):
            reset_txn_ids()
            bench = ControllerTestbench(data_policy=policy)
            builder = RequestBuilder(BuilderConfig(bus_bytes=32))
            stream = StridedStream(base=0, num_elements=64, elem_bytes=4,
                                   stride_elems=3)
            requests = builder.pack_strided(stream, is_write=False)
            result = bench.run(requests)
            outcomes[policy] = (
                result.cycles, result.r_beats, result.r_useful_bytes,
                result.bank_conflicts,
            )
        assert outcomes[DataPolicy.FULL] == outcomes[DataPolicy.ELIDE]


class TestPolicyPlumbing:
    def test_resolve_and_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_DATA_POLICY", raising=False)
        assert resolve_data_policy(None) is DataPolicy.FULL
        assert resolve_data_policy("ELIDE") is DataPolicy.ELIDE
        assert resolve_data_policy(DataPolicy.FULL) is DataPolicy.FULL
        with pytest.raises(ValueError):
            resolve_data_policy("bogus")
        monkeypatch.setenv("REPRO_DATA_POLICY", "elide")
        assert default_data_policy() is DataPolicy.ELIDE
        assert SystemConfig().data_policy is DataPolicy.ELIDE
        monkeypatch.setenv("REPRO_DATA_POLICY", "nonsense")
        with pytest.raises(ValueError):
            default_data_policy()

    def test_config_coerces_strings_and_rejects_junk(self):
        assert SystemConfig(data_policy="elide").elides_data
        assert not SystemConfig(data_policy="full").elides_data
        with pytest.raises(ConfigurationError):
            SystemConfig(data_policy="half")

    def test_with_data_policy(self):
        config = SystemConfig(data_policy="full")
        elided = config.with_data_policy("elide")
        assert elided.data_policy is DataPolicy.ELIDE
        assert config.data_policy is DataPolicy.FULL


class TestCachePolicyIsolation:
    def _spec(self, policy: DataPolicy, verify: bool = False) -> RunSpec:
        return RunSpec(
            workload=_fig3a_spec("gemv"),
            config=SystemConfig(memory_bytes=1 << 22, data_policy=policy),
            kind=SystemKind.PACK,
            verify=verify,
        )

    def test_policies_have_distinct_cache_keys(self):
        full = self._spec(DataPolicy.FULL)
        elide = self._spec(DataPolicy.ELIDE)
        assert full.cache_key() != elide.cache_key()
        assert full.fingerprint()["config"]["data_policy"] == "full"
        assert elide.fingerprint()["config"]["data_policy"] == "elide"

    def test_memory_cache_never_cross_serves(self):
        cache = MemoryCache()
        full = self._spec(DataPolicy.FULL)
        elide = self._spec(DataPolicy.ELIDE)
        full_result = full.execute()
        cache.put(full, full_result)
        assert cache.get(elide) is MISS
        elide_result = elide.execute()
        cache.put(elide, elide_result)
        assert cache.get(full) is full_result
        assert cache.get(elide) is elide_result
        assert cache.get(elide).verified is False
        # Identical measurements, different provenance.
        assert cache.get(full).cycles == cache.get(elide).cycles

    def test_result_cache_never_cross_serves(self, tmp_path):
        cache = ResultCache(tmp_path)
        full = self._spec(DataPolicy.FULL)
        elide = self._spec(DataPolicy.ELIDE)
        cache.put(full, full.execute())
        assert cache.get(elide) is MISS
        assert cache.get(full) is not MISS

    def test_elide_cached_result_serves_verify_requests(self):
        """Within ELIDE, verify=True is satisfiable by verified=False entries
        (verification is impossible by construction, not missing)."""
        cache = MemoryCache()
        spec = self._spec(DataPolicy.ELIDE)
        cache.put(spec, spec.execute())
        verifying = self._spec(DataPolicy.ELIDE, verify=True)
        assert cache.get(verifying) is not MISS

    def test_run_spec_label_names_policy(self):
        assert self._spec(DataPolicy.ELIDE).label() == "gemv/pack/elide"
        assert self._spec(DataPolicy.FULL).label() == "gemv/pack"

    def test_utilization_specs_distinguish_policies(self):
        """fig5 testbench measurements cache per policy too."""
        from repro.orchestrate.spec import UtilizationSpec

        full = UtilizationSpec.indirect(elem_bits=32, index_bits=16, num_banks=17)
        elide = UtilizationSpec.indirect(elem_bits=32, index_bits=16,
                                         num_banks=17, data_policy="elide")
        assert full.cache_key() != elide.cache_key()
        assert dict(elide.params)["data_policy"] == "elide"

    def test_fig5_measurements_policy_parity(self):
        """The fig5 utilization numbers are identical under both policies."""
        from repro.analysis.fig5 import (
            measure_indirect_utilization,
            measure_strided_utilization,
        )

        kwargs = dict(elem_bits=32, index_bits=16, num_banks=17,
                      num_beats=8, num_bursts=2)
        assert measure_indirect_utilization(**kwargs) == \
            measure_indirect_utilization(**kwargs, data_policy="elide")
        skwargs = dict(elem_bits=32, stride_elems=3, num_banks=17, num_beats=8)
        assert measure_strided_utilization(**skwargs) == \
            measure_strided_utilization(**skwargs, data_policy="elide")


class TestCliTimingOnly:
    def test_workloads_timing_only(self, capsys):
        from repro.cli import main

        assert main(["workloads", "--size", "12", "--timing-only",
                     "--no-verify"]) == 0
        out = capsys.readouterr().out
        assert "[timing-only]" in out
