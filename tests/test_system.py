"""Tests for system configuration, SoC assembly and the workload runner."""

import pytest

from repro.errors import ConfigurationError
from repro.system.config import SystemConfig, SystemKind
from repro.system.results import SystemRunResult, WorkloadComparison
from repro.system.runner import compare_systems, run_workload, run_workload_all_systems
from repro.system.soc import build_system
from repro.vector.builder import AraProgramBuilder
from repro.vector.config import LoweringMode
from repro.workloads import make_workload


class TestSystemConfig:
    def test_defaults_match_paper(self):
        config = SystemConfig()
        assert config.bus_bits == 256
        assert config.lanes == 8
        assert config.num_banks == 17
        assert config.queue_depth == 4

    def test_lanes_follow_bus_width(self):
        assert SystemConfig(bus_bytes=8).lanes == 2
        assert SystemConfig(bus_bytes=16).lanes == 4

    def test_kind_to_lowering(self):
        assert SystemKind.BASE.lowering is LoweringMode.BASE
        assert SystemKind.PACK.lowering is LoweringMode.PACK
        assert SystemKind.IDEAL.lowering is LoweringMode.IDEAL

    def test_with_kind_copies(self):
        config = SystemConfig()
        other = config.with_kind(SystemKind.BASE)
        assert other.kind is SystemKind.BASE
        assert config.kind is SystemKind.PACK

    def test_derived_configs_consistent(self):
        config = SystemConfig(bus_bytes=16, num_banks=11)
        assert config.adapter_config().bus_words == 4
        assert config.memory_config().num_ports == 4
        assert config.memory_config().num_banks == 11
        assert config.vector_config().lanes == 4

    def test_invalid_bus_width_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(bus_bytes=24)


class TestSoc:
    def test_pack_soc_has_adapter(self):
        soc = build_system(SystemConfig(kind=SystemKind.PACK, memory_bytes=1 << 18))
        assert soc.memory is not None
        assert soc.kind is SystemKind.PACK

    def test_ideal_soc_has_no_banked_memory(self):
        soc = build_system(SystemConfig(kind=SystemKind.IDEAL, memory_bytes=1 << 18))
        assert soc.memory is None

    def test_program_mode_mismatch_rejected(self):
        soc = build_system(SystemConfig(kind=SystemKind.PACK, memory_bytes=1 << 18))
        builder = AraProgramBuilder("x", LoweringMode.BASE)
        builder.scalar(1)
        with pytest.raises(ConfigurationError):
            soc.run_program(builder.build())


class TestRunner:
    def test_run_workload_verifies(self, small_system_config):
        result = run_workload(make_workload("gemv", size=16), small_system_config,
                              kind=SystemKind.PACK)
        assert result.verified is True
        assert result.cycles > 0
        assert 0 < result.r_utilization <= 1.0
        assert result.workload == "gemv"

    def test_run_workload_skip_verification(self, small_system_config):
        result = run_workload(make_workload("gemv", size=16), small_system_config,
                              kind=SystemKind.BASE, verify=False)
        assert result.verified is None

    def test_run_all_systems(self, small_system_config):
        results = run_workload_all_systems(lambda: make_workload("ismt", size=16),
                                           small_system_config)
        assert set(results) == {SystemKind.BASE, SystemKind.PACK, SystemKind.IDEAL}
        assert all(r.verified for r in results.values())

    def test_compare_systems_metrics(self, small_system_config):
        comparison = compare_systems(lambda: make_workload("gemv", size=16),
                                     small_system_config)
        assert isinstance(comparison, WorkloadComparison)
        assert comparison.pack_speedup > 1.0
        assert comparison.pack_speedup == pytest.approx(
            comparison.base.cycles / comparison.pack.cycles
        )
        flat = comparison.as_dict()
        assert flat["workload"] == "gemv"
        assert flat["pack_speedup"] == pytest.approx(comparison.pack_speedup)

    def test_summary_renders(self, small_system_config):
        result = run_workload(make_workload("gemv", size=16), small_system_config,
                              kind=SystemKind.PACK)
        text = result.summary()
        assert "gemv" in text and "pack" in text and "ok" in text

    def test_speedup_over(self):
        kwargs = dict(workload="x", stats={}, verified=True)
        fast = SystemRunResult(kind=SystemKind.PACK, cycles=100,
                               engine=_dummy_engine(), **kwargs)
        slow = SystemRunResult(kind=SystemKind.BASE, cycles=400,
                               engine=_dummy_engine(), **kwargs)
        assert fast.speedup_over(slow) == pytest.approx(4.0)


def _dummy_engine():
    from repro.vector.engine import EngineResult

    return EngineResult(cycles=100, instructions=1, r_beats=10, r_useful_bytes=320,
                        r_data_bytes=320, r_index_bytes=0, w_beats=0,
                        w_useful_bytes=0, bus_bytes=32)
