"""Unit tests for the cycle-level banked memory."""

import numpy as np
import pytest

from repro.mem.banked import BankedMemory, BankedMemoryConfig
from repro.mem.storage import MemoryStorage
from repro.mem.words import WordRequest
from repro.sim.engine import Engine
from repro.sim.stats import StatsRegistry


def make_memory(num_banks=17, num_ports=8, latency=1, conflict_free=False):
    storage = MemoryStorage(1 << 16)
    config = BankedMemoryConfig(num_ports=num_ports, num_banks=num_banks,
                                latency=latency, conflict_free=conflict_free)
    stats = StatsRegistry()
    memory = BankedMemory("mem", config, storage, stats)
    engine = Engine()
    engine.add_component(memory)
    for queue in memory.all_queues():
        engine.add_queue(queue)
    return memory, engine, storage, stats


def push_and_run(memory, engine, requests, max_cycles=1000):
    for request in requests:
        memory.request_queues[request.port].push(request)
    responses = {port: [] for port in range(memory.config.num_ports)}
    def drain():
        done = True
        for port, queue in enumerate(memory.response_queues):
            if queue.can_pop():
                responses[port].append(queue.pop())
        outstanding = memory.busy() or any(
            not q.is_empty() for q in memory.request_queues
        )
        return not outstanding
    cycles = 0
    while cycles < max_cycles:
        engine.step()
        cycles += 1
        if drain() and all(q.is_empty() for q in memory.response_queues):
            break
    return responses, cycles


class TestFunctional:
    def test_read_returns_stored_word(self):
        memory, engine, storage, _ = make_memory()
        storage.write_array(0x40, np.asarray([0xDEADBEEF], dtype=np.uint32))
        responses, _ = push_and_run(memory, engine, [
            WordRequest(port=0, word_addr=0x10, is_write=False, tag="t")
        ])
        # Read responses carry the word payload as raw bytes.
        data = np.frombuffer(responses[0][0].data, dtype=np.uint32)[0]
        assert data == 0xDEADBEEF
        assert responses[0][0].tag == "t"

    def test_write_updates_storage(self):
        memory, engine, storage, _ = make_memory()
        word = np.asarray([1234], dtype=np.uint32).view(np.uint8)
        push_and_run(memory, engine, [
            WordRequest(port=3, word_addr=5, is_write=True, data=word, tag=None)
        ])
        assert storage.read_array(20, 1, np.uint32)[0] == 1234

    def test_write_without_data_rejected(self):
        memory, engine, _, _ = make_memory()
        with pytest.raises(Exception):
            push_and_run(memory, engine, [
                WordRequest(port=0, word_addr=0, is_write=True, data=None)
            ])


class TestTimingAndConflicts:
    def test_parallel_ports_no_conflict(self):
        memory, engine, _, stats = make_memory(num_banks=17)
        requests = [WordRequest(port=p, word_addr=p, is_write=False) for p in range(8)]
        _, cycles = push_and_run(memory, engine, requests)
        assert stats.get("mem.bank_conflicts") == 0
        assert cycles <= 6  # one access cycle + latency + queue hops

    def test_same_bank_conflicts_serialize(self):
        memory, engine, _, stats = make_memory(num_banks=16)
        # All eight ports target bank 0 in the same cycle.
        requests = [WordRequest(port=p, word_addr=16 * p, is_write=False) for p in range(8)]
        _, cycles = push_and_run(memory, engine, requests)
        assert stats.get("mem.bank_conflicts") > 0
        assert cycles >= 8

    def test_conflict_free_mode_ignores_conflicts(self):
        memory, engine, _, stats = make_memory(num_banks=16, conflict_free=True)
        requests = [WordRequest(port=p, word_addr=16 * p, is_write=False) for p in range(8)]
        _, cycles = push_and_run(memory, engine, requests)
        assert stats.get("mem.bank_conflicts") == 0
        assert cycles <= 6

    def test_per_port_responses_in_order(self):
        memory, engine, _, _ = make_memory(num_banks=17)
        requests = [
            WordRequest(port=0, word_addr=addr, is_write=False, tag=addr)
            for addr in (5, 22, 39, 1)
        ]
        responses, _ = push_and_run(memory, engine, requests)
        assert [r.tag for r in responses[0]] == [5, 22, 39, 1]

    def test_latency_is_respected(self):
        memory, engine, _, _ = make_memory(latency=5)
        responses, cycles = push_and_run(memory, engine, [
            WordRequest(port=0, word_addr=0, is_write=False)
        ])
        assert len(responses[0]) == 1
        assert cycles >= 6

    def test_access_counters(self):
        memory, engine, _, stats = make_memory()
        word = np.zeros(4, dtype=np.uint8)
        push_and_run(memory, engine, [
            WordRequest(port=0, word_addr=0, is_write=False),
            WordRequest(port=1, word_addr=1, is_write=True, data=word),
        ])
        assert stats.get("mem.word_reads") == 1
        assert stats.get("mem.word_writes") == 1
        assert stats.get("mem.bank_accesses") == 2

    def test_reset_clears_state(self):
        memory, engine, _, _ = make_memory()
        memory.request_queues[0].push(WordRequest(port=0, word_addr=0, is_write=False))
        memory.request_queues[0].commit()
        memory.reset()
        assert not memory.busy()
