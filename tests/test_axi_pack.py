"""Unit tests for the AXI-Pack user-field encoding (paper Fig. 1)."""

import pytest
from hypothesis import given, strategies as st

from repro.axi.pack import (
    INDEX_SIZE_CODES,
    PackMode,
    PackUserField,
    PackUserLayout,
)
from repro.errors import ConfigurationError, ProtocolError


class TestPackMode:
    def test_is_packed(self):
        assert not PackMode.NONE.is_packed
        assert PackMode.STRIDED.is_packed
        assert PackMode.INDIRECT.is_packed


class TestLayout:
    def test_total_bits(self):
        layout = PackUserLayout(stride_bits=24, offset_bits=28)
        assert layout.payload_bits == 30
        assert layout.total_bits == 32

    def test_rejects_zero_width(self):
        with pytest.raises(ConfigurationError):
            PackUserLayout(stride_bits=0)


class TestEncodeDecode:
    def test_plain_axi4_encodes_to_zero(self):
        assert PackUserField().encode() == 0

    def test_decode_zero_is_plain(self):
        assert PackUserField.decode(0).mode is PackMode.NONE

    def test_decode_rejects_garbage_without_pack_bit(self):
        with pytest.raises(ProtocolError):
            PackUserField.decode(0b10)

    def test_strided_roundtrip(self):
        field = PackUserField.strided(stride_elems=257)
        decoded = PackUserField.decode(field.encode())
        assert decoded.mode is PackMode.STRIDED
        assert decoded.stride_elems == 257

    def test_strided_pack_and_indir_bits(self):
        word = PackUserField.strided(5).encode()
        assert word & 1 == 1       # pack bit
        assert (word >> 1) & 1 == 0  # indir bit clear

    def test_indirect_roundtrip(self):
        field = PackUserField.indirect(index_bytes=2, index_base_addr=0x4000)
        decoded = PackUserField.decode(field.encode())
        assert decoded.mode is PackMode.INDIRECT
        assert decoded.index_bytes == 2
        assert decoded.index_base_addr == 0x4000

    def test_indirect_sets_both_bits(self):
        word = PackUserField.indirect(4, 0x100).encode()
        assert word & 0b11 == 0b11

    def test_indirect_requires_aligned_base(self):
        with pytest.raises(ProtocolError):
            PackUserField.indirect(index_bytes=4, index_base_addr=0x1002)

    def test_all_index_sizes_supported(self):
        for size in INDEX_SIZE_CODES:
            field = PackUserField.indirect(index_bytes=size, index_base_addr=64 * size)
            assert PackUserField.decode(field.encode()).index_bytes == size

    def test_unsupported_index_size_rejected(self):
        field = PackUserField(mode=PackMode.INDIRECT, index_bytes=3)
        with pytest.raises(ProtocolError):
            field.encode()

    def test_stride_overflow_rejected(self):
        layout = PackUserLayout(stride_bits=4, offset_bits=4)
        with pytest.raises(ProtocolError):
            PackUserField.strided(100).encode(layout)

    def test_offset_overflow_rejected(self):
        layout = PackUserLayout(stride_bits=4, offset_bits=4)
        with pytest.raises(ProtocolError):
            PackUserField.indirect(4, 4 * 1000).encode(layout)

    def test_negative_user_word_rejected(self):
        with pytest.raises(ProtocolError):
            PackUserField.decode(-1)

    @given(st.integers(min_value=0, max_value=(1 << 24) - 1))
    def test_strided_roundtrip_property(self, stride):
        field = PackUserField.strided(stride)
        assert PackUserField.decode(field.encode()).stride_elems == stride

    @given(st.sampled_from([1, 2, 4, 8]), st.integers(min_value=0, max_value=(1 << 20) - 1))
    def test_indirect_roundtrip_property(self, index_bytes, index_elem):
        base = index_elem * index_bytes
        field = PackUserField.indirect(index_bytes, base)
        decoded = PackUserField.decode(field.encode())
        assert decoded.index_bytes == index_bytes
        assert decoded.index_base_addr == base

    def test_fits_in_32_bit_user_signal(self):
        layout = PackUserLayout()
        assert layout.total_bits <= 32
