"""Unit tests for basic AXI4 types and legality rules."""

import pytest

from repro.axi.types import (
    AXI4_MAX_BURST_LEN,
    BurstType,
    Resp,
    axsize_to_bytes,
    bytes_to_axsize,
    check_burst_len_legal,
    check_incr_burst_legal,
)
from repro.errors import ProtocolError


class TestSizeEncoding:
    @pytest.mark.parametrize("num_bytes,code", [(1, 0), (2, 1), (4, 2), (8, 3), (32, 5), (128, 7)])
    def test_bytes_to_axsize(self, num_bytes, code):
        assert bytes_to_axsize(num_bytes) == code
        assert axsize_to_bytes(code) == num_bytes

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ProtocolError):
            bytes_to_axsize(6)

    def test_zero_rejected(self):
        with pytest.raises(ProtocolError):
            bytes_to_axsize(0)

    def test_axsize_range_checked(self):
        with pytest.raises(ProtocolError):
            axsize_to_bytes(8)


class TestBurstLegality:
    def test_max_length_is_256(self):
        assert AXI4_MAX_BURST_LEN == 256
        check_burst_len_legal(256)
        with pytest.raises(ProtocolError):
            check_burst_len_legal(257)

    def test_zero_beats_rejected(self):
        with pytest.raises(ProtocolError):
            check_burst_len_legal(0)

    def test_incr_inside_page_ok(self):
        check_incr_burst_legal(addr=0x0, num_beats=128, beat_bytes=32)

    def test_incr_crossing_4k_rejected(self):
        with pytest.raises(ProtocolError):
            check_incr_burst_legal(addr=0xF80, num_beats=8, beat_bytes=32)

    def test_incr_up_to_boundary_ok(self):
        check_incr_burst_legal(addr=0xF00, num_beats=8, beat_bytes=32)


class TestEnums:
    def test_burst_encoding(self):
        assert BurstType.FIXED.encoding == 0
        assert BurstType.INCR.encoding == 1
        assert BurstType.WRAP.encoding == 2

    def test_resp_values(self):
        assert Resp.OKAY.value == 0
        assert Resp.SLVERR.value == 2
