"""Tests for the M×N crossbar topology: stripe-interleaved address decode,
the demux's same-target AW gate, multi-channel SoC assembly, per-channel
statistics, and end-to-end verified workloads across the topology grid."""

import pytest

from repro.axi.interconnect import InterleavedAddressMap
from repro.axi.mux import CycleAxiDemux
from repro.axi.port import AxiPort, AxiPortConfig
from repro.axi.signals import WBeat
from repro.axi.transaction import BusRequest
from repro.errors import ConfigurationError, ProtocolError
from repro.sim.engine import Engine
from repro.system.config import SystemConfig, SystemKind
from repro.system.runner import run_workload
from repro.system.soc import build_system
from repro.workloads import make_workload

BUS = 32

ALL_KINDS = (SystemKind.BASE, SystemKind.PACK, SystemKind.IDEAL)


def small_config(kind=SystemKind.PACK, engines=1, channels=1, **kwargs):
    config = SystemConfig(memory_bytes=1 << 20, **kwargs).with_kind(kind)
    return config.with_engines(engines).with_channels(channels)


class TestInterleavedAddressMap:
    def test_stripes_rotate_across_targets(self):
        amap = InterleavedAddressMap(num_targets=4, stripe_bytes=1024,
                                     size_bytes=1 << 20)
        assert [amap.route(i * 1024) for i in range(6)] == [0, 1, 2, 3, 0, 1]
        assert amap.route(1023) == 0
        assert amap.route(1024) == 1
        assert amap.num_targets == 4

    def test_out_of_range_is_decerr(self):
        amap = InterleavedAddressMap(num_targets=2, stripe_bytes=64,
                                     size_bytes=4096)
        with pytest.raises(ProtocolError):
            amap.route(4096)
        with pytest.raises(ProtocolError):
            amap.route(-1)

    def test_construction_checks(self):
        with pytest.raises(ConfigurationError):
            InterleavedAddressMap(num_targets=0, stripe_bytes=64,
                                  size_bytes=4096)
        with pytest.raises(ConfigurationError):
            InterleavedAddressMap(num_targets=2, stripe_bytes=96,
                                  size_bytes=4096)
        with pytest.raises(ConfigurationError):
            InterleavedAddressMap(num_targets=4, stripe_bytes=2048,
                                  size_bytes=4096)


class TestConfigChannels:
    def test_defaults_single_channel(self):
        config = SystemConfig()
        assert config.num_channels == 1
        assert config.channel_stripe_bytes == 1024

    def test_with_channels_copies(self):
        config = SystemConfig()
        other = config.with_channels(4, stripe_bytes=256)
        assert other.num_channels == 4
        assert other.channel_stripe_bytes == 256
        assert config.num_channels == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(num_channels=0)
        with pytest.raises(ConfigurationError):
            SystemConfig(channel_stripe_bytes=96)
        with pytest.raises(ConfigurationError):
            SystemConfig(channel_stripe_bytes=16)  # narrower than the bus
        with pytest.raises(ConfigurationError):
            SystemConfig(num_channels=4, memory_bytes=2048)

    def test_channel_address_map_matches_config(self):
        config = SystemConfig(num_channels=2, memory_bytes=1 << 20)
        amap = config.channel_address_map()
        assert amap.num_targets == 2
        assert amap.stripe_bytes == config.channel_stripe_bytes
        assert amap.size_bytes == config.memory_bytes


def make_demux(channels=2, stripe=1024):
    """A demux over an interleaved map with a naive engine driving it."""
    up = AxiPort("up", BUS, AxiPortConfig())
    downs = [AxiPort(f"d{i}", BUS, AxiPortConfig()) for i in range(channels)]
    amap = InterleavedAddressMap(num_targets=channels, stripe_bytes=stripe,
                                 size_bytes=1 << 20)
    demux = CycleAxiDemux("demux", up, downs, amap, check_straddle=False)
    engine = Engine(event_driven=False)
    engine.add_component(demux)
    for port in (up, *downs):
        for queue in port.all_queues():
            engine.add_queue(queue)
    return up, downs, demux, engine


def write_burst(addr, elems=8):
    return BusRequest(addr=addr, is_write=True, num_elements=elems,
                      elem_bytes=4, bus_bytes=BUS, contiguous=True)


def read_burst(addr, elems=8):
    return BusRequest(addr=addr, is_write=False, num_elements=elems,
                      elem_bytes=4, bus_bytes=BUS, contiguous=True)


class TestDemuxCrossbarRules:
    def test_straddling_burst_routes_by_start_address(self):
        # 16 elems * 4 B = 64 B starting 32 B before the stripe edge: the
        # footprint crosses into stripe 1, but stripe-ownership semantics
        # route (and serve) the whole burst on the owner of the start addr.
        up, downs, demux, engine = make_demux(channels=2, stripe=1024)
        up.ar.push(read_burst(1024 - 32, elems=16))
        engine.step(3)
        assert downs[0].ar.can_pop()
        assert demux.routed_counts == [1, 0]

    def test_same_target_aw_gate_holds_cross_channel_write(self):
        up, downs, demux, engine = make_demux(channels=2, stripe=1024)
        first = write_burst(0, elems=16)       # 2 beats -> channel 0
        second = write_burst(1024, elems=8)    # 1 beat  -> channel 1
        up.aw.push(first)
        up.aw.push(second)
        up.w.push(WBeat(data=None, useful_bytes=BUS, last=False))
        engine.step(3)
        # First AW forwarded; second held: its target differs from the
        # outstanding W debt on channel 0.
        assert downs[0].aw.can_pop()
        assert not downs[1].aw.can_pop()
        assert demux.busy()
        # Draining the W debt releases the gate.
        up.w.push(WBeat(data=None, useful_bytes=BUS, last=True))
        engine.step(4)
        assert downs[1].aw.can_pop()
        assert downs[0].w.can_pop()

    def test_same_target_aw_not_gated(self):
        up, downs, demux, engine = make_demux(channels=2, stripe=1024)
        first = write_burst(0, elems=16)   # channel 0
        second = write_burst(64, elems=8)  # channel 0 as well
        up.aw.push(first)
        up.aw.push(second)
        engine.step(4)
        assert downs[0].aw.pop().txn_id == first.txn_id
        assert downs[0].aw.pop().txn_id == second.txn_id

    def test_target_count_validated_against_ports(self):
        up = AxiPort("up", BUS)
        downs = [AxiPort("d0", BUS)]
        amap = InterleavedAddressMap(num_targets=2, stripe_bytes=1024,
                                     size_bytes=1 << 20)
        with pytest.raises(ConfigurationError):
            CycleAxiDemux("demux", up, downs, amap)


class TestCrossbarSoc:
    def test_multi_channel_shape(self):
        soc = build_system(small_config(engines=2, channels=2))
        assert len(soc.demuxes) == 2
        assert len(soc.channel_muxes) == 2
        assert len(soc.endpoints) == 2
        assert len(soc.memories) == 2
        assert len(soc.channel_stats) == 2
        assert soc.mux is None
        # Single-channel aliases are explicitly absent on the crossbar.
        assert soc.memory is None and soc.endpoint is None
        assert [len(row) for row in soc.link_ports] == [2, 2]

    def test_ideal_channels_have_no_banked_memory(self):
        soc = build_system(small_config(SystemKind.IDEAL, engines=1,
                                        channels=2))
        assert soc.memories == []
        assert len(soc.endpoints) == 2

    def test_single_channel_attributes_unchanged(self):
        soc = build_system(small_config())
        assert soc.memory is not None and soc.endpoint is not None
        assert soc.demuxes == [] and soc.channel_muxes == []
        assert soc.stats_snapshot() == dict(soc.stats.as_dict())

    @pytest.mark.parametrize("kind", ALL_KINDS)
    @pytest.mark.parametrize("engines,channels", [(1, 2), (2, 2), (4, 2),
                                                  (2, 4)])
    def test_workloads_verify_on_crossbar(self, kind, engines, channels):
        config = small_config(kind, engines, channels)
        result = run_workload(make_workload("spmv", size=24), config)
        assert result.verified is True
        assert result.cycles > 0

    def test_per_channel_stats_sum_to_aggregate(self):
        config = small_config(SystemKind.PACK, engines=2, channels=2,
                              channel_stripe_bytes=256)
        result = run_workload(make_workload("gemv", size=24), config)
        counters = ("adapter.r_beats", "adapter.w_beats",
                    "mem.bank_accesses", "mux.ar_grants")
        for counter in counters:
            total = result.stats[counter]
            parts = [result.stats[f"chan{j}.{counter}"] for j in range(2)]
            assert sum(parts) == total
        # Both channels carried some of the traffic (reads and writes may
        # land on different channels at this footprint; sum over counters).
        for j in range(2):
            assert sum(result.stats[f"chan{j}.{c}"] for c in counters) > 0

    def test_event_and_naive_engines_identical_on_crossbar(self):
        config = small_config(SystemKind.PACK, engines=2, channels=2)
        workload = make_workload("spmv", size=24)
        runs = {}
        for event in (True, False):
            soc = build_system(config)
            workload.initialize(soc.storage)
            programs = workload.build_sharded_programs(
                config.lowering, config.vector_config(), 2
            )
            cycles, results = soc.run_programs(programs, event_driven=event)
            runs[event] = (cycles, dict(soc.stats_snapshot()), tuple(results))
        assert runs[True] == runs[False]

    def test_soc_reuse_resets_channel_state(self):
        config = small_config(SystemKind.PACK, engines=2, channels=2)
        workload = make_workload("gemv", size=24)
        soc = build_system(config)
        workload.initialize(soc.storage)
        programs = workload.build_sharded_programs(
            config.lowering, config.vector_config(), 2
        )
        first = soc.run_programs(list(programs))
        first_stats = dict(soc.stats_snapshot())
        second = soc.run_programs(list(programs))
        assert first[0] == second[0]
        assert dict(soc.stats_snapshot()) == first_stats

    def test_cross_channel_write_storm_terminates(self):
        # Writes alternating between channels from both engines: the
        # workload shape that deadlocks a gate-less crossbar once the link
        # queues fill.  ismt is write-heavy; a small stripe forces frequent
        # channel changes.
        config = small_config(SystemKind.BASE, engines=2, channels=2,
                              channel_stripe_bytes=32)
        result = run_workload(make_workload("ismt", size=24), config,
                              max_cycles=2_000_000)
        assert result.verified is True
