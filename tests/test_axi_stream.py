"""Unit tests for the stream descriptors."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.axi.stream import ContiguousStream, IndirectStream, StridedStream
from repro.errors import ConfigurationError


class TestContiguousStream:
    def test_addresses(self):
        stream = ContiguousStream(base=0x100, num_elements=4, elem_bytes=4)
        assert list(stream.element_addresses()) == [0x100, 0x104, 0x108, 0x10C]
        assert stream.total_bytes == 16

    def test_rejects_non_power_of_two_elements(self):
        with pytest.raises(ConfigurationError):
            ContiguousStream(base=0, num_elements=4, elem_bytes=3)

    def test_rejects_zero_elements(self):
        with pytest.raises(ConfigurationError):
            ContiguousStream(base=0, num_elements=0, elem_bytes=4)

    def test_rejects_negative_base(self):
        with pytest.raises(ConfigurationError):
            ContiguousStream(base=-4, num_elements=1, elem_bytes=4)


class TestStridedStream:
    def test_addresses_with_stride(self):
        stream = StridedStream(base=0, num_elements=3, elem_bytes=4, stride_elems=5)
        assert list(stream.element_addresses()) == [0, 20, 40]
        assert stream.stride_bytes == 20

    def test_stride_zero_allowed(self):
        stream = StridedStream(base=8, num_elements=3, elem_bytes=4, stride_elems=0)
        assert list(stream.element_addresses()) == [8, 8, 8]

    def test_stride_one_is_contiguous(self):
        stream = StridedStream(base=0, num_elements=4, elem_bytes=8, stride_elems=1)
        contiguous = ContiguousStream(base=0, num_elements=4, elem_bytes=8)
        assert list(stream.element_addresses()) == list(contiguous.element_addresses())

    def test_negative_stride_rejected(self):
        with pytest.raises(ConfigurationError):
            StridedStream(base=0, num_elements=2, elem_bytes=4, stride_elems=-1)

    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=0, max_value=32))
    def test_total_bytes_property(self, count, stride):
        stream = StridedStream(base=0, num_elements=count, elem_bytes=4, stride_elems=stride)
        assert stream.total_bytes == count * 4
        addresses = stream.element_addresses()
        assert len(addresses) == count


class TestIndirectStream:
    def test_scaled_addresses(self):
        stream = IndirectStream(base=0x1000, num_elements=3, elem_bytes=4,
                                index_base=0x2000, index_bytes=4)
        indices = np.asarray([0, 10, 2])
        assert list(stream.element_addresses(indices)) == [0x1000, 0x1028, 0x1008]

    def test_unscaled_addresses(self):
        stream = IndirectStream(base=0, num_elements=2, elem_bytes=4,
                                index_base=0, index_bytes=4, scaled=False)
        indices = np.asarray([16, 64])
        assert list(stream.element_addresses(indices)) == [16, 64]

    def test_index_addresses(self):
        stream = IndirectStream(base=0, num_elements=4, elem_bytes=4,
                                index_base=0x40, index_bytes=2)
        assert list(stream.index_addresses()) == [0x40, 0x42, 0x44, 0x46]
        assert stream.index_bytes_total == 8

    def test_wrong_index_count_rejected(self):
        stream = IndirectStream(base=0, num_elements=4, elem_bytes=4, index_base=0)
        with pytest.raises(ConfigurationError):
            stream.element_addresses(np.asarray([1, 2]))

    def test_bad_index_size_rejected(self):
        with pytest.raises(ConfigurationError):
            IndirectStream(base=0, num_elements=1, elem_bytes=4, index_base=0, index_bytes=3)
