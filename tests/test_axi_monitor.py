"""Unit tests for the bus channel monitor."""

import pytest

from repro.axi.monitor import ChannelMonitor


class TestChannelMonitor:
    def test_full_beats_give_full_utilization(self):
        monitor = ChannelMonitor("R", 32)
        for _ in range(10):
            monitor.record_beat(32)
        assert monitor.utilization(10) == pytest.approx(1.0)
        assert monitor.occupancy(10) == pytest.approx(1.0)

    def test_narrow_beats_waste_bus(self):
        monitor = ChannelMonitor("R", 32)
        for _ in range(10):
            monitor.record_beat(4)
        assert monitor.utilization(10) == pytest.approx(0.125)
        assert monitor.packing_efficiency() == pytest.approx(0.125)

    def test_idle_cycles_reduce_utilization(self):
        monitor = ChannelMonitor("R", 32)
        monitor.record_beat(32)
        assert monitor.utilization(4) == pytest.approx(0.25)

    def test_kind_separation(self):
        monitor = ChannelMonitor("R", 32)
        monitor.record_beat(32, kind="data")
        monitor.record_beat(32, kind="index")
        assert monitor.utilization(2) == pytest.approx(1.0)
        assert monitor.utilization(2, include_kinds={"data"}) == pytest.approx(0.5)
        assert monitor.payload_beats_by_kind == {"data": 1, "index": 1}

    def test_out_of_range_useful_bytes_rejected(self):
        monitor = ChannelMonitor("R", 32)
        with pytest.raises(ValueError):
            monitor.record_beat(33)
        with pytest.raises(ValueError):
            monitor.record_beat(-1)

    def test_zero_cycles(self):
        monitor = ChannelMonitor("R", 32)
        assert monitor.utilization(0) == 0.0
        assert monitor.occupancy(0) == 0.0
        assert monitor.packing_efficiency() == 0.0

    def test_merge(self):
        a = ChannelMonitor("R", 32)
        b = ChannelMonitor("R", 32)
        a.record_beat(32, kind="data")
        b.record_beat(16, kind="index")
        a.merge(b)
        assert a.beats == 2
        assert a.useful_bytes == 48
        assert a.useful_bytes_by_kind == {"data": 32, "index": 16}

    def test_reset(self):
        monitor = ChannelMonitor("R", 32)
        monitor.record_beat(32)
        monitor.reset()
        assert monitor.beats == 0
        assert monitor.useful_bytes == 0
        assert monitor.payload_beats_by_kind == {}
