"""Unit tests for the cycle engine, arbiter and statistics registry."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim.arbiter import RoundRobinArbiter
from repro.sim.component import Component
from repro.sim.engine import Engine
from repro.sim.stats import StatsRegistry


class Producer(Component):
    """Pushes a fixed number of tokens into a queue."""

    def __init__(self, queue, count):
        super().__init__("producer")
        self.queue = queue
        self.remaining = count

    def tick(self, cycle):
        if self.remaining and self.queue.can_push():
            self.queue.push(self.remaining)
            self.remaining -= 1

    def busy(self):
        return self.remaining > 0


class Consumer(Component):
    """Pops every available token."""

    def __init__(self, queue):
        super().__init__("consumer")
        self.queue = queue
        self.received = []

    def tick(self, cycle):
        if self.queue.can_pop():
            self.received.append(self.queue.pop())


class Stuck(Component):
    """Always busy, never makes progress."""

    def tick(self, cycle):
        pass

    def busy(self):
        return True


class TestEngine:
    def test_producer_consumer_drains(self):
        engine = Engine()
        queue = engine.new_queue("q", 2)
        producer = engine.add_component(Producer(queue, 10))
        consumer = engine.add_component(Consumer(queue))
        engine.drain()
        assert len(consumer.received) == 10
        assert not producer.busy()

    def test_throughput_is_one_item_per_cycle(self):
        engine = Engine()
        queue = engine.new_queue("q", 2)
        engine.add_component(Producer(queue, 20))
        consumer = engine.add_component(Consumer(queue))
        cycles = engine.run_until(lambda: len(consumer.received) == 20, max_cycles=100)
        # One cycle of fill latency plus one item per cycle.
        assert 20 <= cycles <= 25

    def test_run_until_max_cycles(self):
        engine = Engine()
        engine.add_component(Stuck("stuck"))
        with pytest.raises(SimulationError):
            engine.run_until(lambda: False, max_cycles=50)

    def test_deadlock_detection(self):
        engine = Engine(deadlock_window=20)
        engine.new_queue("q", 2)
        engine.add_component(Stuck("stuck"))
        with pytest.raises(DeadlockError):
            engine.drain(max_cycles=10_000)

    def test_reset_restores_cycle_and_queues(self):
        engine = Engine()
        queue = engine.new_queue("q", 2)
        engine.add_component(Producer(queue, 3))
        engine.step(2)
        engine.reset()
        assert engine.cycle == 0
        assert queue.is_empty()

    def test_step_advances_cycle_counter(self):
        engine = Engine()
        engine.step(5)
        assert engine.cycle == 5


class TestRoundRobinArbiter:
    def test_single_requestor(self):
        arbiter = RoundRobinArbiter(4)
        assert arbiter.grant([False, True, False, False]) == 1

    def test_no_requestors(self):
        arbiter = RoundRobinArbiter(2)
        assert arbiter.grant([False, False]) is None

    def test_fairness_rotates(self):
        arbiter = RoundRobinArbiter(3)
        grants = [arbiter.grant([True, True, True]) for _ in range(6)]
        assert grants == [0, 1, 2, 0, 1, 2]

    def test_skips_idle_requestors(self):
        arbiter = RoundRobinArbiter(3)
        assert arbiter.grant([True, False, True]) == 0
        assert arbiter.grant([True, False, True]) == 2
        assert arbiter.grant([True, False, True]) == 0

    def test_wrong_width_rejected(self):
        arbiter = RoundRobinArbiter(2)
        with pytest.raises(ValueError):
            arbiter.grant([True])

    def test_reset(self):
        arbiter = RoundRobinArbiter(2)
        arbiter.grant([True, True])
        arbiter.reset()
        assert arbiter.grant([True, True]) == 0


class TestStatsRegistry:
    def test_lazy_counter_creation(self):
        stats = StatsRegistry()
        stats.add("a.b", 2)
        stats.add("a.b")
        assert stats.get("a.b") == 3

    def test_get_default(self):
        stats = StatsRegistry()
        assert stats.get("missing", 7.0) == 7.0

    def test_as_dict_sorted(self):
        stats = StatsRegistry()
        stats.add("z")
        stats.add("a")
        assert list(stats.as_dict().keys()) == ["a", "z"]

    def test_reset_keeps_counters(self):
        stats = StatsRegistry()
        stats.add("x", 5)
        stats.reset()
        assert "x" in stats
        assert stats.get("x") == 0

    def test_len(self):
        stats = StatsRegistry()
        stats.add("one")
        stats.add("two")
        assert len(stats) == 2
