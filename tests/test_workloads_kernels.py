"""Integration tests: every workload verifies on every system."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.mem.storage import MemoryStorage
from repro.system.config import SystemConfig, SystemKind
from repro.system.runner import run_workload
from repro.vector.config import LoweringMode
from repro.vector.isa import Mnemonic
from repro.workloads import (
    GemvWorkload,
    IsmtWorkload,
    PageRankWorkload,
    SpmvWorkload,
    SsspWorkload,
    TrmvWorkload,
    make_workload,
)
from repro.workloads.base import MemoryLayout
from repro.workloads.registry import WORKLOAD_ORDER, WORKLOADS

SMALL = SystemConfig(memory_bytes=1 << 21)
ALL_KINDS = (SystemKind.BASE, SystemKind.PACK, SystemKind.IDEAL)


class TestMemoryLayout:
    def test_alignment_and_lookup(self):
        layout = MemoryLayout(base=0x100, alignment=64)
        a = layout.place("a", 100)
        b = layout.place("b", 10)
        assert a % 64 == 0
        assert b % 64 == 0 and b >= a + 100
        assert layout.addr("a") == a
        assert layout.total_bytes >= b + 10

    def test_unknown_region_rejected(self):
        with pytest.raises(WorkloadError):
            MemoryLayout().addr("missing")


class TestRegistry:
    def test_all_six_workloads_registered(self):
        # The paper's six figure benchmarks, plus registered extras.
        assert set(WORKLOAD_ORDER) <= set(WORKLOADS)
        assert len(WORKLOAD_ORDER) == 6
        assert "csrspmv" in WORKLOADS

    def test_make_workload(self):
        workload = make_workload("spmv", size=16)
        assert workload.name == "spmv"
        assert workload.category == "indirect"

    def test_unknown_name_rejected(self):
        with pytest.raises(WorkloadError):
            make_workload("nonsense")


@pytest.mark.parametrize("name", WORKLOAD_ORDER + ("csrspmv",))
@pytest.mark.parametrize("kind", ALL_KINDS)
class TestEndToEndCorrectness:
    def test_workload_verifies(self, name, kind):
        workload = make_workload(name, size=16)
        result = run_workload(workload, SMALL, kind=kind)
        assert result.verified is True, f"{name} produced wrong results on {kind}"
        assert result.cycles > 0


class TestIsmt:
    def test_reference_is_transpose(self):
        workload = IsmtWorkload(n=8)
        assert np.array_equal(workload.reference(), workload.matrix.T)

    def test_verify_detects_corruption(self):
        workload = IsmtWorkload(n=8)
        storage = MemoryStorage(1 << 16)
        workload.initialize(storage)
        assert workload.verify(storage) is False  # nothing ran yet

    def test_program_uses_strided_accesses(self):
        workload = IsmtWorkload(n=8)
        program = workload.build_program(LoweringMode.PACK, SMALL.vector_config())
        mnemonics = {instr.mnemonic for instr in program.instructions}
        assert Mnemonic.VLSE32 in mnemonics
        assert Mnemonic.VSSE32 in mnemonics


class TestGemv:
    def test_auto_dataflow_selection(self):
        workload = GemvWorkload(n=16)
        assert workload.chosen_dataflow(LoweringMode.BASE) == "row"
        assert workload.chosen_dataflow(LoweringMode.PACK) == "col"
        assert workload.chosen_dataflow(LoweringMode.IDEAL) == "col"

    def test_forced_dataflow(self):
        workload = GemvWorkload(n=16, dataflow="row")
        assert workload.chosen_dataflow(LoweringMode.PACK) == "row"

    def test_invalid_dataflow_rejected(self):
        with pytest.raises(WorkloadError):
            GemvWorkload(n=8, dataflow="diagonal")

    def test_colwise_program_has_strided_loads(self):
        program = GemvWorkload(n=16, dataflow="col").build_program(
            LoweringMode.PACK, SMALL.vector_config()
        )
        assert any(i.mnemonic is Mnemonic.VLSE32 for i in program.instructions)

    def test_rowwise_program_has_reductions(self):
        program = GemvWorkload(n=16, dataflow="row").build_program(
            LoweringMode.BASE, SMALL.vector_config()
        )
        assert any(i.mnemonic is Mnemonic.VFREDSUM for i in program.instructions)

    def test_forced_colwise_verifies_on_base(self):
        result = run_workload(GemvWorkload(n=16, dataflow="col"), SMALL,
                              kind=SystemKind.BASE)
        assert result.verified is True

    def test_rowwise_verifies_on_pack(self):
        result = run_workload(GemvWorkload(n=16, dataflow="row"), SMALL,
                              kind=SystemKind.PACK)
        assert result.verified is True


class TestTrmv:
    def test_reference_uses_upper_triangle(self):
        workload = TrmvWorkload(n=12)
        assert np.allclose(workload.reference(),
                           np.triu(workload.matrix) @ workload.x, rtol=1e-5)

    def test_colwise_verifies_on_pack(self):
        result = run_workload(TrmvWorkload(n=16, dataflow="col"), SMALL,
                              kind=SystemKind.PACK)
        assert result.verified is True


class TestIndirectWorkloads:
    def test_spmv_uses_vlimxei_only_on_pack(self):
        workload = SpmvWorkload(num_rows=16, avg_nnz_per_row=8)
        pack_program = workload.build_program(LoweringMode.PACK, SMALL.vector_config())
        base_program = workload.build_program(LoweringMode.BASE, SMALL.vector_config())
        pack_mnemonics = {i.mnemonic for i in pack_program.instructions}
        base_mnemonics = {i.mnemonic for i in base_program.instructions}
        assert Mnemonic.VLIMXEI32 in pack_mnemonics
        assert Mnemonic.VLIMXEI32 not in base_mnemonics
        assert Mnemonic.VLUXEI32 in base_mnemonics

    def test_spmv_reference(self):
        workload = SpmvWorkload(num_rows=16, avg_nnz_per_row=4)
        assert np.allclose(workload.reference(), workload.matrix.multiply(workload.x))

    def test_pagerank_ranks_stay_positive(self):
        workload = PageRankWorkload(num_rows=16)
        assert np.all(workload.reference() > 0)

    def test_sssp_source_distance_zero(self):
        workload = SsspWorkload(num_rows=16, source=3)
        assert workload.dist[3] == 0.0
        reference = workload.reference()
        assert reference[3] == 0.0 or reference[3] <= workload.dist[3]

    def test_custom_matrix_accepted(self):
        from repro.workloads.sparse import random_csr

        matrix = random_csr(20, 20, avg_nnz_per_row=5, seed=3)
        workload = SpmvWorkload(matrix=matrix)
        assert workload.matrix.num_rows == 20
        result = run_workload(workload, SMALL, kind=SystemKind.PACK)
        assert result.verified is True


class TestCrossSystemConsistency:
    """The same workload must produce identical results on every system."""

    @pytest.mark.parametrize("name", ["gemv", "spmv"])
    def test_outputs_identical_across_systems(self, name):
        outputs = {}
        for kind in ALL_KINDS:
            workload = make_workload(name, size=16)
            config = SMALL.with_kind(kind)
            from repro.system.soc import build_system

            soc = build_system(config)
            workload.initialize(soc.storage)
            program = workload.build_program(config.lowering, config.vector_config())
            soc.run_program(program)
            addr = workload.addr_y if hasattr(workload, "addr_y") else workload.addr_out
            outputs[kind] = soc.storage.read_array(addr, 16, np.float32)
        base, pack, ideal = outputs[SystemKind.BASE], outputs[SystemKind.PACK], outputs[SystemKind.IDEAL]
        assert np.allclose(base, pack, rtol=1e-5, atol=1e-6)
        assert np.allclose(base, ideal, rtol=1e-5, atol=1e-6)
