"""Tests for the calibrated area / timing / crossbar / energy models."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.area import COMPONENT_AREA_256B_KGE, AdapterAreaModel
from repro.hw.crossbar_area import BankCrossbarAreaModel
from repro.hw.energy import EnergyModel, PowerParams
from repro.hw.technology import GF22FDX
from repro.hw.timing import TimingModel
from repro.system.config import SystemKind
from repro.system.results import SystemRunResult
from repro.vector.engine import EngineResult


class TestTimingModel:
    def test_published_minimum_periods(self):
        timing = TimingModel()
        assert timing.min_period_ps(64) == pytest.approx(787.0)
        assert timing.min_period_ps(128) == pytest.approx(800.0)
        assert timing.min_period_ps(256) == pytest.approx(839.0)

    def test_interpolation_for_other_widths(self):
        timing = TimingModel()
        assert 770 < timing.min_period_ps(32) < 800
        assert timing.min_period_ps(512) > timing.min_period_ps(256) - 60

    def test_max_frequency(self):
        timing = TimingModel()
        assert timing.max_frequency_ghz(256) == pytest.approx(1000 / 839, rel=1e-3)

    def test_meets_target(self):
        timing = TimingModel()
        assert timing.meets_target(256, 1000)
        assert not timing.meets_target(256, 800)


class TestAdapterArea:
    def test_calibrated_totals(self):
        model = AdapterAreaModel()
        assert model.total_area_kge(64) == pytest.approx(69, abs=3)
        assert model.total_area_kge(128) == pytest.approx(130, abs=4)
        assert model.total_area_kge(256) == pytest.approx(257, abs=6)

    def test_breakdown_matches_paper_at_256(self):
        breakdown = AdapterAreaModel().breakdown(256)
        for name, published in COMPONENT_AREA_256B_KGE.items():
            assert breakdown.components[name] == pytest.approx(published, rel=0.02)
        assert breakdown.total_kge == pytest.approx(258, abs=3)

    def test_read_write_converters_similar(self):
        breakdown = AdapterAreaModel().breakdown(256)
        assert breakdown.components["indirect_read_converter"] == pytest.approx(
            breakdown.components["indirect_write_converter"], rel=0.05
        )

    def test_indirect_converters_near_double_strided(self):
        breakdown = AdapterAreaModel().breakdown(256)
        ratio = (breakdown.components["indirect_read_converter"]
                 / breakdown.components["strided_read_converter"])
        assert 1.7 < ratio < 2.3

    def test_fraction_of_ara(self):
        fraction = AdapterAreaModel().fraction_of_ara(256, 1000.0, GF22FDX.ara_area_kge)
        assert fraction == pytest.approx(0.062, abs=0.01)

    def test_tight_clock_costs_area(self):
        model = AdapterAreaModel()
        assert model.total_area_kge(256, 850) > model.total_area_kge(256, 1000)
        assert model.total_area_kge(256, 3000) <= model.total_area_kge(256, 1000)

    def test_below_minimum_clock_rejected(self):
        with pytest.raises(ConfigurationError):
            AdapterAreaModel().total_area_kge(256, 700)

    def test_unknown_component_rejected(self):
        with pytest.raises(ConfigurationError):
            AdapterAreaModel().component_area_kge("fpu", 256)

    def test_breakdown_rows_sorted(self):
        rows = AdapterAreaModel().breakdown(256).as_rows()
        areas = [row[1] for row in rows]
        assert areas == sorted(areas, reverse=True)


class TestCrossbarArea:
    def test_power_of_two_has_no_address_units(self):
        model = BankCrossbarAreaModel()
        for banks in (8, 16, 32):
            breakdown = model.breakdown(banks)
            assert breakdown.modulo_kge == 0 and breakdown.divider_kge == 0

    def test_prime_pays_for_address_units(self):
        model = BankCrossbarAreaModel()
        for banks in (11, 17, 31):
            breakdown = model.breakdown(banks)
            assert breakdown.modulo_kge > 0 and breakdown.divider_kge > 0

    def test_crossbar_grows_with_banks(self):
        model = BankCrossbarAreaModel()
        assert model.breakdown(32).crossbar_kge > model.breakdown(8).crossbar_kge

    def test_prime_overhead_shrinks_relatively(self):
        model = BankCrossbarAreaModel()
        assert (model.breakdown(31).prime_overhead_fraction
                < model.breakdown(11).prime_overhead_fraction)

    def test_total_in_paper_range(self):
        model = BankCrossbarAreaModel()
        for banks in (8, 11, 16, 17, 31, 32):
            assert 2 < model.total_kge(banks) < 50

    def test_17_banks_modest_premium_over_16(self):
        model = BankCrossbarAreaModel()
        premium = model.total_kge(17) / model.total_kge(16)
        assert 1.0 < premium < 2.2

    def test_invalid_banks_rejected(self):
        with pytest.raises(ConfigurationError):
            BankCrossbarAreaModel().breakdown(0)

    def test_as_dict(self):
        data = BankCrossbarAreaModel().breakdown(17).as_dict()
        assert data["banks"] == 17
        assert data["total"] == pytest.approx(
            data["crossbar"] + data["modulo"] + data["divider"]
        )


def _result(kind, cycles, r_beats, useful, w_beats=0, w_useful=0):
    engine = EngineResult(cycles=cycles, instructions=10, r_beats=r_beats,
                          r_useful_bytes=useful, r_data_bytes=useful,
                          r_index_bytes=0, w_beats=w_beats, w_useful_bytes=w_useful,
                          bus_bytes=32)
    return SystemRunResult(workload="test", kind=kind, cycles=cycles, engine=engine)


class TestEnergyModel:
    def test_power_in_plausible_range(self):
        model = EnergyModel()
        busy = _result(SystemKind.PACK, 1000, 900, 900 * 32)
        idle = _result(SystemKind.BASE, 1000, 100, 100 * 4)
        assert 150 < model.system_power_mw(busy) < 350
        assert 100 < model.system_power_mw(idle) < 250
        assert model.system_power_mw(busy) > model.system_power_mw(idle)

    def test_pack_adapter_adds_power(self):
        model = EnergyModel()
        pack = _result(SystemKind.PACK, 1000, 500, 500 * 32)
        base = _result(SystemKind.BASE, 1000, 500, 500 * 32)
        assert model.system_power_mw(pack) > model.system_power_mw(base)

    def test_energy_efficiency_improvement(self):
        model = EnergyModel()
        base = _result(SystemKind.BASE, 4000, 1000, 1000 * 4)
        pack = _result(SystemKind.PACK, 1000, 130, 130 * 32)
        comparison = model.compare(base, pack)
        assert comparison.speedup == pytest.approx(4.0)
        assert comparison.energy_efficiency_improvement > 2.0
        assert comparison.power_increase < 0.6
        data = comparison.as_dict()
        assert data["workload"] == "test"

    def test_custom_params(self):
        model = EnergyModel(PowerParams(static_mw=10, lane_active_mw=0,
                                        memory_traffic_mw=0, adapter_static_mw=0,
                                        adapter_traffic_mw=0))
        result = _result(SystemKind.BASE, 100, 0, 0)
        assert model.system_power_mw(result) == pytest.approx(10.0)
