"""Unit tests for the decoupled queue and latency pipe."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.queue import DecoupledQueue, LatencyPipe


class TestDecoupledQueue:
    def test_push_not_visible_before_commit(self):
        queue = DecoupledQueue("q", 4)
        queue.push(1)
        assert not queue.can_pop()
        queue.commit()
        assert queue.can_pop()
        assert queue.pop() == 1

    def test_fifo_order(self):
        queue = DecoupledQueue("q", 8)
        for value in range(5):
            queue.push(value)
        queue.commit()
        assert [queue.pop() for _ in range(5)] == list(range(5))

    def test_capacity_includes_pending(self):
        queue = DecoupledQueue("q", 2)
        queue.push(1)
        queue.push(2)
        assert not queue.can_push()
        with pytest.raises(SimulationError):
            queue.push(3)

    def test_pop_empty_raises(self):
        queue = DecoupledQueue("q", 2)
        with pytest.raises(SimulationError):
            queue.pop()

    def test_peek_returns_without_removing(self):
        queue = DecoupledQueue("q", 2)
        queue.push("a")
        queue.commit()
        assert queue.peek() == "a"
        assert queue.can_pop()

    def test_peek_empty_raises(self):
        queue = DecoupledQueue("q", 2)
        with pytest.raises(SimulationError):
            queue.peek()

    def test_len_counts_pending_and_committed(self):
        queue = DecoupledQueue("q", 4)
        queue.push(1)
        queue.commit()
        queue.push(2)
        assert len(queue) == 2
        assert queue.occupancy == 1
        assert queue.pending == 1

    def test_depth_must_be_positive(self):
        with pytest.raises(Exception):
            DecoupledQueue("q", 0)

    def test_statistics(self):
        queue = DecoupledQueue("q", 4)
        for value in range(3):
            queue.push(value)
        queue.commit()
        queue.pop()
        assert queue.total_pushed == 3
        assert queue.total_popped == 1
        assert queue.max_occupancy == 3

    def test_clear(self):
        queue = DecoupledQueue("q", 4)
        queue.push(1)
        queue.commit()
        queue.push(2)
        queue.clear()
        assert queue.is_empty()

    @given(st.lists(st.integers(), max_size=30))
    def test_order_preserved_property(self, items):
        queue = DecoupledQueue("q", max(1, len(items)))
        for item in items:
            queue.push(item)
        queue.commit()
        popped = [queue.pop() for _ in range(len(items))]
        assert popped == items


class TestLatencyPipe:
    def test_item_matures_after_latency(self):
        pipe = LatencyPipe("p", 3)
        pipe.push("x")
        for _ in range(2):
            pipe.advance()
            assert not pipe.can_pop()
        pipe.advance()
        assert pipe.can_pop()
        assert pipe.pop() == "x"

    def test_early_pop_raises(self):
        pipe = LatencyPipe("p", 2)
        pipe.push(1)
        with pytest.raises(SimulationError):
            pipe.pop()

    def test_zero_latency_rejected(self):
        with pytest.raises(SimulationError):
            LatencyPipe("p", 0)

    def test_is_empty(self):
        pipe = LatencyPipe("p", 1)
        assert pipe.is_empty()
        pipe.push(1)
        assert not pipe.is_empty()
        pipe.advance()
        pipe.pop()
        assert pipe.is_empty()

    def test_pipelined_items_keep_order(self):
        pipe = LatencyPipe("p", 2)
        pipe.push(1)
        pipe.advance()
        pipe.push(2)
        pipe.advance()
        assert pipe.pop() == 1
        pipe.advance()
        assert pipe.pop() == 2
