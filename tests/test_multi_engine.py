"""Tests for the multi-requestor topology: cycle-level mux/demux components,
multi-engine SoC assembly, the sharded workload driver, and the single-`Soc`
reuse fixes (per-run stats/queue reset)."""

import pytest

from repro.axi.interconnect import AddressMap, AddressRegion
from repro.axi.mux import CycleAxiDemux, CycleAxiMux
from repro.axi.port import AxiPort, AxiPortConfig
from repro.axi.signals import RBeat, WBeat
from repro.axi.transaction import BusRequest
from repro.axi.types import Resp
from repro.errors import ConfigurationError, ProtocolError, WorkloadError
from repro.sim.engine import Engine
from repro.system.config import SystemConfig, SystemKind
from repro.system.runner import run_workload
from repro.system.soc import build_system
from repro.vector.engine import EngineResult
from repro.workloads import make_workload
from repro.workloads.base import shard_ranges

BUS = 32

ALL_WORKLOADS = ("ismt", "gemv", "trmv", "spmv", "prank", "sssp", "csrspmv")
ALL_KINDS = (SystemKind.BASE, SystemKind.PACK, SystemKind.IDEAL)


def read_burst(addr, elems=8, bus=BUS):
    return BusRequest(addr=addr, is_write=False, num_elements=elems,
                      elem_bytes=4, bus_bytes=bus, contiguous=True)


def write_burst(addr, elems=8, bus=BUS):
    return BusRequest(addr=addr, is_write=True, num_elements=elems,
                      elem_bytes=4, bus_bytes=bus, contiguous=True)


def make_mux(n=2, arbitration="rr", qos=None, port_config=None):
    """A mux with registered queues and a naive engine driving it.

    ``port_config`` shapes the requestor-side ports only; the downstream
    port keeps default depths so endpoint-side pushes never overflow.
    """
    config = port_config or AxiPortConfig()
    ups = [AxiPort(f"u{i}", BUS, config) for i in range(n)]
    down = AxiPort("down", BUS, AxiPortConfig())
    mux = CycleAxiMux("mux", ups, down, arbitration=arbitration, qos=qos)
    engine = Engine(event_driven=False)
    engine.add_component(mux)
    for port in (*ups, down):
        for queue in port.all_queues():
            engine.add_queue(queue)
    return ups, down, mux, engine


class TestCycleAxiMux:
    def test_construction_checks(self):
        down = AxiPort("d", BUS)
        with pytest.raises(ConfigurationError):
            CycleAxiMux("m", [], down)
        with pytest.raises(ConfigurationError):
            CycleAxiMux("m", [AxiPort("u", BUS)], down, arbitration="lottery")
        with pytest.raises(ConfigurationError):
            CycleAxiMux("m", [AxiPort("u", BUS)], down, qos=[1, 2])
        with pytest.raises(ProtocolError):
            CycleAxiMux("m", [AxiPort("u", 16)], down)

    def test_round_robin_alternates_between_requestors(self):
        ups, down, mux, engine = make_mux(2)
        for _ in range(2):
            ups[0].ar.push(read_burst(0x100))
        ups[1].ar.push(read_burst(0x200))
        order = []
        for _ in range(8):
            engine.step()
            while down.ar.can_pop():
                order.append(down.ar.pop().addr)
        # One AR per cycle; rr picks u0, then u1, then u0's second burst.
        assert order == [0x100, 0x200, 0x100]
        assert mux.ar_grants == [2, 1]

    def test_qos_priority_drains_port0_first(self):
        ups, down, mux, engine = make_mux(2, arbitration="qos")
        for _ in range(2):
            ups[0].ar.push(read_burst(0x100))
            ups[1].ar.push(read_burst(0x200))
        order = []
        for _ in range(8):
            engine.step()
            while down.ar.can_pop():
                order.append(down.ar.pop().addr)
        assert order == [0x100, 0x100, 0x200, 0x200]

    def test_r_beats_route_back_by_txn_id(self):
        ups, down, mux, engine = make_mux(2)
        first = read_burst(0x100, elems=16)  # 2 beats
        second = read_burst(0x200, elems=8)  # 1 beat
        ups[0].ar.push(first)
        ups[1].ar.push(second)
        engine.step(4)  # both ARs forwarded downstream
        # The endpoint answers out of order, interleaving the two bursts.
        down.r.push(RBeat(txn_id=second.txn_id, data=b"", useful_bytes=BUS,
                          last=True))
        down.r.push(RBeat(txn_id=first.txn_id, data=b"", useful_bytes=BUS,
                          last=False))
        down.r.push(RBeat(txn_id=first.txn_id, data=b"", useful_bytes=BUS,
                          last=True))
        engine.step(6)
        assert [ups[1].r.pop().txn_id] == [second.txn_id]
        assert [ups[0].r.pop().txn_id, ups[0].r.pop().txn_id] == [
            first.txn_id, first.txn_id,
        ]
        assert not mux.busy()  # owner maps drained after the last beats

    def test_w_beats_follow_aw_acceptance_order(self):
        ups, down, mux, engine = make_mux(2)
        first = write_burst(0x100, elems=16)  # 2 beats
        second = write_burst(0x200, elems=8)  # 1 beat
        ups[0].aw.push(first)
        ups[1].aw.push(second)
        # Both requestors present their W data immediately.
        for beat in range(2):
            ups[0].w.push(WBeat(data=b"", useful_bytes=BUS, last=beat == 1))
        ups[1].w.push(WBeat(data=b"", useful_bytes=BUS, last=True))
        engine.step(8)
        # Downstream W order interleaves nothing: u0's burst (accepted first)
        # is complete before u1's single beat.
        assert down.w.occupancy == 3
        lasts = [down.w.pop().last for _ in range(3)]
        assert lasts == [False, True, True]

    def test_full_requestor_r_queue_blocks_shared_channel(self):
        ups, down, mux, engine = make_mux(
            2, port_config=AxiPortConfig(r_depth=1)
        )
        first = read_burst(0x100, elems=16)  # 2 beats
        second = read_burst(0x200)
        ups[0].ar.push(first)
        ups[1].ar.push(second)
        engine.step(4)
        down.r.push(RBeat(txn_id=first.txn_id, data=b"", useful_bytes=BUS,
                          last=False))
        down.r.push(RBeat(txn_id=first.txn_id, data=b"", useful_bytes=BUS,
                          last=True))
        down.r.push(RBeat(txn_id=second.txn_id, data=b"", useful_bytes=BUS,
                          last=True))
        engine.step(4)
        # u0's first beat fills its depth-1 R queue and is never popped; its
        # second beat stalls at the head of the shared channel, and u1's beat
        # queued behind it is blocked even though u1 has room.
        assert ups[0].r.occupancy == 1
        assert ups[1].r.occupancy == 0
        assert down.r.occupancy == 2
        ups[0].r.pop()
        engine.step(3)
        ups[0].r.pop()
        engine.step(3)
        assert ups[1].r.pop().txn_id == second.txn_id

    def test_unknown_txn_id_rejected(self):
        ups, down, mux, engine = make_mux(2)
        down.r.push(RBeat(txn_id=12345, data=b"", useful_bytes=BUS, last=True))
        with pytest.raises(ProtocolError):
            engine.step(3)


class TestCycleAxiDemux:
    def make_demux(self):
        up = AxiPort("up", BUS)
        downs = [AxiPort("d0", BUS), AxiPort("d1", BUS)]
        # The region boundary (0x800) deliberately does not coincide with a
        # 4KiB AXI boundary, so a straddling burst is legal AXI4 but must be
        # caught by the demux's routing check.
        address_map = AddressMap([
            AddressRegion(base=0x0000, size=0x800, target=0),
            AddressRegion(base=0x0800, size=0x800, target=1),
        ])
        demux = CycleAxiDemux("demux", up, downs, address_map)
        engine = Engine(event_driven=False)
        engine.add_component(demux)
        for port in (up, *downs):
            for queue in port.all_queues():
                engine.add_queue(queue)
        return up, downs, demux, engine

    def test_routes_by_address(self):
        up, downs, demux, engine = self.make_demux()
        up.ar.push(read_burst(0x0100))
        up.ar.push(read_burst(0x0900))
        engine.step(4)
        assert downs[0].ar.pop().addr == 0x0100
        assert downs[1].ar.pop().addr == 0x0900
        assert demux.routed_counts == [1, 1]

    def test_straddling_contiguous_burst_answers_decerr(self):
        up, downs, demux, engine = self.make_demux()
        request = read_burst(0x07F0, elems=16)  # crosses into region 1
        up.ar.push(request)
        engine.step(6)
        beats = []
        while up.r.can_pop():
            beats.append(up.r.pop())
        assert len(beats) == request.num_beats
        assert all(b.resp is Resp.DECERR and b.useful_bytes == 0 for b in beats)
        assert beats[-1].last
        assert downs[0].ar.occupancy == 0 and downs[1].ar.occupancy == 0

    def test_unmapped_address_decerr(self):
        up, downs, demux, engine = self.make_demux()
        request = read_burst(0x9000)
        up.ar.push(request)
        engine.step(6)
        beats = []
        while up.r.can_pop():
            beats.append(up.r.pop())
        assert len(beats) == request.num_beats
        assert all(b.resp is Resp.DECERR for b in beats)
        assert beats[-1].last

    def test_return_beats_merge_round_robin(self):
        up, downs, demux, engine = self.make_demux()
        first = read_burst(0x0100)
        second = read_burst(0x0900)
        up.ar.push(first)
        up.ar.push(second)
        engine.step(4)
        downs[0].ar.pop(), downs[1].ar.pop()
        downs[0].r.push(RBeat(txn_id=first.txn_id, data=b"", useful_bytes=BUS,
                              last=True))
        downs[1].r.push(RBeat(txn_id=second.txn_id, data=b"", useful_bytes=BUS,
                              last=True))
        engine.step(5)
        merged = {up.r.pop().txn_id, up.r.pop().txn_id}
        assert merged == {first.txn_id, second.txn_id}

    def test_w_beats_follow_aw_target(self):
        up, downs, demux, engine = self.make_demux()
        up.aw.push(write_burst(0x0900))
        up.w.push(WBeat(data=b"", useful_bytes=BUS, last=True))
        engine.step(5)
        assert downs[1].aw.occupancy == 1
        assert downs[1].w.occupancy == 1
        assert downs[0].w.occupancy == 0

    def test_region_target_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            CycleAxiDemux(
                "demux", AxiPort("up", BUS), [AxiPort("d0", BUS)],
                AddressMap([AddressRegion(base=0, size=64, target=3)]),
            )


class TestShardRanges:
    def test_balanced_contiguous(self):
        assert shard_ranges(10, 3) == [(0, 4), (4, 7), (7, 10)]
        assert shard_ranges(4, 4) == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_more_shards_than_rows(self):
        bounds = shard_ranges(2, 4)
        assert bounds == [(0, 1), (1, 2), (2, 2), (2, 2)]

    def test_invalid_shard_count(self):
        with pytest.raises(WorkloadError):
            shard_ranges(4, 0)


def _config(kind, engines=1, **kwargs):
    return SystemConfig(memory_bytes=1 << 20, num_engines=engines,
                        **kwargs).with_kind(kind)


class TestMultiEngineSoc:
    @pytest.mark.parametrize("workload", ALL_WORKLOADS)
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_sharded_run_verifies(self, workload, kind):
        result = run_workload(make_workload(workload, size=20),
                              _config(kind, engines=2))
        assert result.verified is True
        assert result.engines is not None and len(result.engines) == 2
        assert result.num_engines == 2
        # The aggregate is the sum of the per-engine traffic.
        assert result.engine.r_beats == sum(e.r_beats for e in result.engines)
        assert result.engine.instructions == sum(
            e.instructions for e in result.engines
        )

    def test_more_engines_than_rows_still_verifies(self):
        result = run_workload(make_workload("gemv", size=4),
                              _config(SystemKind.PACK, engines=6))
        assert result.verified is True
        assert len(result.engines) == 6

    def test_contention_speedup_on_underutilized_bus(self):
        one = run_workload(make_workload("spmv", size=24),
                           _config(SystemKind.PACK))
        two = run_workload(make_workload("spmv", size=24),
                           _config(SystemKind.PACK, engines=2))
        # spmv leaves most R-bus cycles idle (paper: ~39% ceiling), so a
        # second engine interleaves almost for free.
        assert two.cycles < one.cycles
        assert two.r_utilization > one.r_utilization

    def test_qos_arbitration_runs_and_verifies(self):
        result = run_workload(make_workload("spmv", size=20),
                              _config(SystemKind.PACK, engines=2,
                                      arbitration="qos"))
        assert result.verified is True
        assert result.stats.get("mux.ar_grants", 0) > 0

    def test_single_engine_list_form_bit_identical(self):
        from repro.axi.transaction import reset_txn_ids

        runs = []
        for list_form in (False, True):
            reset_txn_ids()
            workload = make_workload("spmv", size=20)
            config = _config(SystemKind.PACK)
            soc = build_system(config)
            workload.initialize(soc.storage)
            program = workload.build_program(config.lowering,
                                             config.vector_config())
            if list_form:
                cycles, results = soc.run_programs([program])
                result = results[0]
            else:
                cycles, result = soc.run_program(program)
            runs.append((cycles, soc.stats.as_dict(), result))
        assert runs[0] == runs[1]

    @pytest.mark.parametrize("engines", [2, 3])
    def test_event_naive_and_policy_parity(self, engines):
        from repro.axi.transaction import reset_txn_ids

        def run(event, policy):
            reset_txn_ids()
            workload = make_workload("csrspmv", size=16)
            config = _config(SystemKind.PACK, engines=engines,
                             data_policy=policy)
            soc = build_system(config)
            workload.initialize(soc.storage)
            programs = workload.build_sharded_programs(
                config.lowering, config.vector_config(), engines
            )
            cycles, results = soc.run_programs(programs, event_driven=event)
            return cycles, soc.stats.as_dict(), results

        event = run(True, "full")
        naive = run(False, "full")
        elide = run(True, "elide")
        assert event == naive
        assert event == elide

    def test_wrong_program_count_rejected(self):
        config = _config(SystemKind.PACK, engines=2)
        soc = build_system(config)
        workload = make_workload("gemv", size=8)
        workload.initialize(soc.storage)
        program = workload.build_program(config.lowering, config.vector_config())
        with pytest.raises(ConfigurationError):
            soc.run_program(program)  # a 2-engine SoC needs 2 programs
        with pytest.raises(ConfigurationError):
            soc.run_programs([program])

    def test_invalid_topology_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(num_engines=0)
        with pytest.raises(ConfigurationError):
            SystemConfig(arbitration="lottery")

    def test_unsharded_workload_rejected(self):
        from repro.workloads.base import Workload

        class Opaque(Workload):
            name = "opaque"

            def initialize(self, storage):
                pass

            def build_program(self, mode, config):
                raise NotImplementedError

            def verify(self, storage):
                return True

        with pytest.raises(WorkloadError):
            config = _config(SystemKind.PACK, engines=2)
            Opaque().build_sharded_programs(
                config.lowering, config.vector_config(), 2
            )


class TestSocReuse:
    """Regression tests for the single-``Soc`` reuse bugs: stats accumulated
    across runs and stale queue state survived into the next run."""

    @pytest.mark.parametrize("engines", [1, 2])
    def test_back_to_back_runs_identical(self, engines):
        workload = make_workload("spmv", size=16)
        config = _config(SystemKind.PACK, engines=engines)
        soc = build_system(config)
        workload.initialize(soc.storage)
        programs = workload.build_sharded_programs(
            config.lowering, config.vector_config(), engines
        )
        first = (*soc.run_programs(programs),)
        first_stats = soc.stats.as_dict()
        second = (*soc.run_programs(programs),)
        second_stats = soc.stats.as_dict()
        assert first[0] == second[0]          # cycles
        assert first[1] == second[1]          # per-engine results
        assert first_stats == second_stats    # no cross-run accumulation
        assert first_stats["adapter.r_beats"] > 0

    def test_reuse_recovers_from_aborted_run(self):
        from repro.errors import SimulationError

        workload = make_workload("gemv", size=16)
        config = _config(SystemKind.PACK)
        soc = build_system(config)
        workload.initialize(soc.storage)
        program = workload.build_program(config.lowering, config.vector_config())
        with pytest.raises(SimulationError):
            soc.run_program(program, max_cycles=10)  # aborts mid-flight
        cycles, _ = soc.run_program(program)  # queues reset, run completes
        assert cycles > 10
        assert workload.verify(soc.storage)

    def test_run_result_not_polluted_by_previous_program(self):
        """Two different programs on one Soc: the second run's stats match a
        fresh SoC's run of the same program."""
        config = _config(SystemKind.PACK)
        shared = build_system(config)
        first = make_workload("gemv", size=16)
        first.initialize(shared.storage)
        shared.run_program(first.build_program(config.lowering,
                                               config.vector_config()))
        second = make_workload("spmv", size=16)
        second.initialize(shared.storage)
        reused = shared.run_program(
            second.build_program(config.lowering, config.vector_config())
        )
        reused_stats = shared.stats.as_dict()

        fresh_soc = build_system(config)
        fresh_workload = make_workload("spmv", size=16)
        fresh_workload.initialize(fresh_soc.storage)
        fresh = fresh_soc.run_program(
            fresh_workload.build_program(config.lowering, config.vector_config())
        )
        assert reused[0] == fresh[0]
        assert reused[1] == fresh[1]
        # Counters that existed only in the first workload's run stay zeroed.
        fresh_stats = {k: v for k, v in reused_stats.items() if v != 0.0}
        assert fresh_stats == {
            k: v for k, v in fresh_soc.stats.as_dict().items() if v != 0.0
        }


class TestEngineResultAggregate:
    def test_sums_traffic_keeps_shared_cycles(self):
        a = EngineResult(cycles=10, instructions=2, r_beats=3,
                         r_useful_bytes=96, r_data_bytes=64, r_index_bytes=32,
                         w_beats=1, w_useful_bytes=32, bus_bytes=32)
        b = EngineResult(cycles=10, instructions=4, r_beats=5,
                         r_useful_bytes=160, r_data_bytes=160, r_index_bytes=0,
                         w_beats=0, w_useful_bytes=0, bus_bytes=32)
        total = EngineResult.aggregate([a, b], cycles=20)
        assert total.cycles == 20
        assert total.instructions == 6
        assert total.r_beats == 8
        assert total.r_useful_bytes == 256
        assert total.bus_bytes == 32
        assert total.r_utilization == 256 / (32 * 20)

    def test_empty_aggregate_rejected(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            EngineResult.aggregate([], cycles=1)


class TestOrchestrationIntegration:
    def test_runspec_fingerprint_names_topology(self):
        from repro.orchestrate.spec import RunSpec, WorkloadSpec

        workload = WorkloadSpec.create("spmv", size=16)
        one = RunSpec(workload=workload, config=_config(SystemKind.PACK))
        two = RunSpec(workload=workload,
                      config=_config(SystemKind.PACK, engines=2))
        qos = RunSpec(workload=workload,
                      config=_config(SystemKind.PACK, engines=2,
                                     arbitration="qos"))
        keys = {one.cache_key(), two.cache_key(), qos.cache_key()}
        assert len(keys) == 3  # engines and arbitration are part of the key

    def test_multi_engine_result_roundtrips_through_cache_json(self):
        from repro.orchestrate.serialize import (
            system_run_result_from_dict,
            system_run_result_to_dict,
        )

        result = run_workload(make_workload("gemv", size=8),
                              _config(SystemKind.PACK, engines=2))
        data = system_run_result_to_dict(result)
        back = system_run_result_from_dict(data)
        assert back == result

    def test_contention_experiment_tiny(self):
        from repro.analysis.experiments import run_experiment

        table = run_experiment("contention", scale="tiny",
                               workloads=("spmv",), engines=(1, 2))
        rows = table.to_dicts()
        assert {row["engines"] for row in rows} == {1, 2}
        assert all(row["verified"] for row in rows)
        by_point = {(row["system"], row["engines"]): row for row in rows}
        # The 1-engine rows are their own speedup baseline.
        assert by_point[("base", 1)]["speedup"] == 1.0
        assert by_point[("pack", 2)]["speedup"] > 1.0
