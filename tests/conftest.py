"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.axi.builder import BuilderConfig, RequestBuilder
from repro.controller.context import AdapterConfig
from repro.controller.testbench import ControllerTestbench
from repro.mem.banked import BankedMemoryConfig
from repro.mem.storage import MemoryStorage
from repro.system.config import SystemConfig


@pytest.fixture
def storage() -> MemoryStorage:
    """A 1 MiB memory image."""
    return MemoryStorage(1 << 20)


@pytest.fixture
def builder() -> RequestBuilder:
    """Request builder for the default 256-bit bus."""
    return RequestBuilder(BuilderConfig(bus_bytes=32))


@pytest.fixture
def small_system_config() -> SystemConfig:
    """Paper-like system configuration with a small memory."""
    return SystemConfig(memory_bytes=1 << 22)


def make_testbench(num_banks: int = 17, queue_depth: int = 4,
                   bus_bytes: int = 32, conflict_free: bool = False,
                   memory_bytes: int = 1 << 21) -> ControllerTestbench:
    """Controller testbench helper used across controller tests."""
    adapter = AdapterConfig(bus_bytes=bus_bytes, queue_depth=queue_depth)
    memory = BankedMemoryConfig(
        num_ports=adapter.bus_words,
        num_banks=num_banks,
        request_queue_depth=queue_depth,
        response_queue_depth=queue_depth,
        conflict_free=conflict_free,
    )
    return ControllerTestbench(adapter, memory, memory_bytes=memory_bytes)


@pytest.fixture
def testbench() -> ControllerTestbench:
    """Default 17-bank controller testbench."""
    return make_testbench()


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for test data."""
    return np.random.default_rng(1234)
