"""Tests for the event-driven scheduler: wake hints, idle skipping, parity.

The contract under test (see ``docs/simulation.md``): the event-driven
engine must produce *exactly* the same cycle counts, queue contents,
statistics and error behaviour as ticking every component on every cycle —
it is a scheduling optimization, never a semantic change.
"""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim.component import IDLE, Component
from repro.sim.engine import Engine
from repro.sim.queue import LatencyPipe


class PeriodicProducer(Component):
    """Pushes one token every ``period`` cycles using wake hints.

    Spurious-wake safe, as the wake-hint contract requires: the push is
    gated on simulated time (``_next_push``), so being ticked early — by
    queue activity or by the tick-every-cycle engine — changes nothing.
    """

    def __init__(self, queue, count, period):
        super().__init__("producer")
        self.queue = queue
        self.remaining = count
        self.period = period
        self._next_push = 0
        self.tick_cycles = []

    def tick(self, cycle):
        self.tick_cycles.append(cycle)
        if self.remaining and cycle >= self._next_push and self.queue.can_push():
            self.queue.push(cycle)
            self.remaining -= 1
            self._next_push = cycle + self.period
        if not self.remaining:
            return IDLE
        return self._next_push

    def wake_queues(self):
        return [self.queue]

    def busy(self):
        return self.remaining > 0


class SleepyConsumer(Component):
    """Pops everything available, then sleeps until poked."""

    def __init__(self, queue):
        super().__init__("consumer")
        self.queue = queue
        self.received = []
        self.tick_cycles = []

    def tick(self, cycle):
        self.tick_cycles.append(cycle)
        while self.queue.can_pop():
            self.received.append(self.queue.pop())
        return IDLE

    def wake_queues(self):
        return [self.queue]


class LegacyConsumer(Component):
    """Seed-style component: no hints, ticked every cycle."""

    def __init__(self, queue):
        super().__init__("legacy_consumer")
        self.queue = queue
        self.received = []
        self.tick_cycles = []

    def tick(self, cycle):
        self.tick_cycles.append(cycle)
        if self.queue.can_pop():
            self.received.append(self.queue.pop())


class StuckSleeper(Component):
    """Claims to be busy forever but never wakes: a genuine deadlock."""

    def tick(self, cycle):
        return IDLE

    def busy(self):
        return True


def build(event_driven, count=5, period=7, consumer_cls=SleepyConsumer):
    engine = Engine(event_driven=event_driven)
    queue = engine.new_queue("q", 4)
    producer = engine.add_component(PeriodicProducer(queue, count, period))
    consumer = engine.add_component(consumer_cls(queue))
    return engine, queue, producer, consumer


class TestIdleSkipCorrectness:
    def test_fast_forward_matches_naive_cycles(self):
        naive, _, np_, nc = build(event_driven=False)
        event, _, ep, ec = build(event_driven=True)
        n_cycles = naive.drain()
        e_cycles = event.drain()
        assert e_cycles == n_cycles
        assert ec.received == nc.received
        assert event.cycle == naive.cycle

    def test_idle_windows_are_actually_skipped(self):
        event, _, producer, consumer = build(event_driven=True, count=5, period=50)
        cycles = event.drain()
        assert cycles > 200  # five tokens, fifty cycles apart
        # The producer runs at its period, not every cycle.
        assert len(producer.tick_cycles) < 20
        assert len(consumer.tick_cycles) < 20

    def test_hinted_component_ticks_exactly_at_wake_cycles(self):
        event, _, producer, _ = build(event_driven=True, count=3, period=10)
        event.drain()
        # First tick at registration (cycle 0), then at the hinted period —
        # plus the self-wake one cycle after each push (its queue was touched).
        assert producer.tick_cycles[0] == 0
        assert 10 in producer.tick_cycles
        assert 20 in producer.tick_cycles

    def test_queue_activity_wakes_sleeping_consumer(self):
        event, queue, producer, consumer = build(event_driven=True, count=1, period=30)
        event.drain()
        # Push at cycle 0 commits at end of cycle 0; the consumer must see
        # the token on cycle 1 despite having returned IDLE at cycle 0.
        assert consumer.received == [0]
        assert 1 in consumer.tick_cycles

    def test_step_api_still_advances_one_cycle_at_a_time(self):
        event, _, _, _ = build(event_driven=True)
        event.step(5)
        assert event.cycle == 5

    def test_external_push_commits_while_all_components_sleep(self):
        # A queue pushed from outside the engine (no component awake) must
        # still commit on the next cycle instead of being skipped over.
        event = Engine(event_driven=True)
        queue = event.new_queue("q", 4)
        consumer = event.add_component(SleepyConsumer(queue))
        event.drain()  # consumer goes IDLE with nothing to do
        queue.push("late")
        cycles = event.run_until(lambda: consumer.received == ["late"], max_cycles=10)
        assert consumer.received == ["late"]
        assert cycles <= 2


class TestMixedComponents:
    def test_legacy_component_is_ticked_every_cycle(self):
        event, _, producer, consumer = build(
            event_driven=True, count=3, period=10, consumer_cls=LegacyConsumer
        )
        cycles = event.drain()
        # The legacy consumer pins the engine to cycle-by-cycle stepping...
        assert len(consumer.tick_cycles) == cycles
        # ...while the hinted producer still sleeps between its wakes.
        assert len(producer.tick_cycles) < cycles

    def test_mixed_engine_matches_naive_results(self):
        naive, _, _, nc = build(event_driven=False, consumer_cls=LegacyConsumer)
        event, _, _, ec = build(event_driven=True, consumer_cls=LegacyConsumer)
        assert naive.drain() == event.drain()
        assert ec.received == nc.received


class TestDeadlockAndBudgetParity:
    def test_deadlock_detected_across_skipped_windows(self):
        window = 123
        event = Engine(deadlock_window=window, event_driven=True)
        queue = event.new_queue("q", 2)
        queue.push(1)  # a stuck item keeps drain() from succeeding
        event.add_component(StuckSleeper("stuck"))
        with pytest.raises(DeadlockError):
            event.drain(max_cycles=100_000)
        naive = Engine(deadlock_window=window, event_driven=False)
        nqueue = naive.new_queue("q", 2)
        nqueue.push(1)
        naive.add_component(StuckSleeper("stuck"))
        with pytest.raises(DeadlockError):
            naive.drain(max_cycles=100_000)
        # The error fires at the same simulated cycle in both engines, even
        # though the event engine reached it in one jump.
        assert event.cycle == naive.cycle

    def test_deadlock_counts_cycles_before_and_after_skips(self):
        # Activity at cycle 0 (the push commits), then silence: the window
        # must be measured from the last activity, not from the skip start.
        window = 50
        event = Engine(deadlock_window=window, event_driven=True)
        queue = event.new_queue("q", 4)
        producer = PeriodicProducer(queue, 1, 1000)  # one push, then idle
        event.add_component(producer)
        with pytest.raises(DeadlockError):
            event.run_until(lambda: False, max_cycles=10_000)
        naive = Engine(deadlock_window=window, event_driven=False)
        nqueue = naive.new_queue("q", 4)
        naive.add_component(PeriodicProducer(nqueue, 1, 1000))
        with pytest.raises(DeadlockError):
            naive.run_until(lambda: False, max_cycles=10_000)
        assert event.cycle == naive.cycle

    def test_max_cycles_parity_with_skips(self):
        event = Engine(deadlock_window=10**9, event_driven=True)
        event.add_component(StuckSleeper("stuck"))
        with pytest.raises(SimulationError):
            event.run_until(lambda: False, max_cycles=777)
        naive = Engine(deadlock_window=10**9, event_driven=False)
        naive.add_component(StuckSleeper("stuck"))
        with pytest.raises(SimulationError):
            naive.run_until(lambda: False, max_cycles=777)
        assert event.cycle == naive.cycle == 777


class TestLatencyPipe:
    def test_bulk_advance_matches_single_steps(self):
        single = LatencyPipe("p", 5)
        bulk = LatencyPipe("p", 5)
        single.push("x")
        bulk.push("x")
        for _ in range(5):
            single.advance()
        bulk.advance(5)
        assert single.can_pop() and bulk.can_pop()
        assert bulk.pop() == "x"

    def test_next_ready_cycle(self):
        pipe = LatencyPipe("p", 3)
        assert pipe.next_ready_cycle() is None
        pipe.push("x")
        assert pipe.next_ready_cycle() == 3

    def test_fast_forward_is_bounded_by_pipe_maturity(self):
        event = Engine(event_driven=True)
        pipe = event.add_pipe(LatencyPipe("p", 4))
        pipe.push("x")
        event.add_component(StuckSleeper("stuck"))
        with pytest.raises(SimulationError):
            event.run_until(lambda: pipe.can_pop() and False, max_cycles=10)
        # Skips never jump past an in-flight item's maturity cycle, so the
        # pipe matured exactly on schedule despite the fast-forwarding.
        assert pipe.can_pop()
        assert event.cycle == 10


class FractionalWaker(Component):
    """Returns a non-integral wake hint (allowed by the WakeHint contract)."""

    def __init__(self):
        super().__init__("fractional")
        self.tick_cycles = []

    def tick(self, cycle):
        self.tick_cycles.append(cycle)
        return cycle + 1.5


class TestFractionalHints:
    def test_fractional_wake_hint_cannot_stall_the_loop(self):
        event = Engine(event_driven=True)
        waker = event.add_component(FractionalWaker())
        with pytest.raises(SimulationError):
            event.run_until(lambda: False, max_cycles=100)
        assert event.cycle == 100
        # Woken at the first whole cycle at or after each hint, never later.
        assert waker.tick_cycles[:4] == [0, 2, 4, 6]


class TestEngineModeSelection:
    def test_env_var_selects_naive_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "naive")
        assert Engine().event_driven is False
        monkeypatch.setenv("REPRO_SIM_ENGINE", "event")
        assert Engine().event_driven is True
        monkeypatch.delenv("REPRO_SIM_ENGINE")
        assert Engine().event_driven is True

    def test_explicit_flag_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "naive")
        assert Engine(event_driven=True).event_driven is True


class TestSystemParity:
    """End-to-end: a real workload on both engines, byte-identical."""

    @pytest.mark.parametrize("kind_name", ["base", "pack", "ideal"])
    def test_workload_cycles_and_stats_identical(self, kind_name):
        from repro.axi.transaction import reset_txn_ids
        from repro.orchestrate.spec import WorkloadSpec
        from repro.system.config import SystemConfig, SystemKind
        from repro.system.soc import build_system

        kind = SystemKind(kind_name)

        def run(event_driven):
            reset_txn_ids()
            workload = WorkloadSpec.create("gemv", size=16).build()
            config = SystemConfig().with_kind(kind)
            soc = build_system(config)
            workload.initialize(soc.storage)
            program = workload.build_program(config.lowering, config.vector_config())
            cycles, result = soc.run_program(program, event_driven=event_driven)
            assert workload.verify(soc.storage)
            return cycles, dict(soc.stats.as_dict()), result

        n_cycles, n_stats, n_result = run(False)
        e_cycles, e_stats, e_result = run(True)
        assert e_cycles == n_cycles
        assert e_stats == n_stats
        assert e_result == n_result
