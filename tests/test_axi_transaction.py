"""Unit tests for the burst-level request descriptor."""

import pytest
from hypothesis import given, strategies as st

from repro.axi.pack import PackMode, PackUserField
from repro.axi.signals import ARBeat, AWBeat
from repro.axi.transaction import BusRequest, next_txn_id
from repro.errors import ProtocolError


def contiguous(addr=0, elems=64, elem_bytes=4, bus=32, write=False):
    return BusRequest(addr=addr, is_write=write, num_elements=elems,
                      elem_bytes=elem_bytes, bus_bytes=bus, contiguous=True)


def narrow(addr=0, elems=1, elem_bytes=4, bus=32, write=False):
    return BusRequest(addr=addr, is_write=write, num_elements=elems,
                      elem_bytes=elem_bytes, bus_bytes=bus, contiguous=False)


def strided(addr=0, elems=64, stride=3, elem_bytes=4, bus=32, write=False):
    return BusRequest(addr=addr, is_write=write, num_elements=elems,
                      elem_bytes=elem_bytes, bus_bytes=bus,
                      pack=PackUserField.strided(stride))


def indirect(addr=0, elems=64, elem_bytes=4, bus=32, idx_bytes=4, idx_base=0x1000, write=False):
    return BusRequest(addr=addr, is_write=write, num_elements=elems,
                      elem_bytes=elem_bytes, bus_bytes=bus,
                      pack=PackUserField.indirect(idx_bytes, idx_base),
                      index_base=idx_base)


class TestGeometry:
    def test_contiguous_full_beats(self):
        request = contiguous(elems=64)
        assert request.num_beats == 8
        assert request.beat_bytes == 32
        assert request.payload_bytes == 256
        assert not request.is_narrow

    def test_contiguous_partial_last_beat(self):
        request = contiguous(elems=66)
        assert request.num_beats == 9
        assert request.beat_useful_bytes(8) == 8

    def test_contiguous_misaligned_start(self):
        request = contiguous(addr=16, elems=8)
        # 16 bytes of misalignment push the payload into a second bus line.
        assert request.num_beats == 2
        start, end = request.beat_byte_range(0)
        assert (start, end) == (16, 32)

    def test_narrow_one_beat_per_element(self):
        request = narrow(elems=1)
        assert request.num_beats == 1
        assert request.beat_bytes == 4
        assert request.is_narrow
        assert request.elems_per_beat == 1

    def test_packed_strided_beats(self):
        request = strided(elems=64)
        assert request.num_beats == 8
        assert request.elems_per_beat == 8
        assert request.beat_bytes == 32

    def test_packed_partial_last_beat(self):
        request = strided(elems=13)
        assert request.num_beats == 2
        assert request.beat_elements(1) == (8, 13)
        assert request.beat_useful_bytes(1) == 20

    def test_packed_indirect_beats(self):
        request = indirect(elems=20, elem_bytes=8)
        assert request.elems_per_beat == 4
        assert request.num_beats == 5

    def test_beat_elements_out_of_range(self):
        request = strided(elems=8)
        with pytest.raises(ProtocolError):
            request.beat_elements(5)

    def test_beat_byte_range_only_for_contiguous(self):
        with pytest.raises(ProtocolError):
            strided().beat_byte_range(0)
        with pytest.raises(ProtocolError):
            contiguous().beat_elements(0)


class TestValidation:
    def test_element_larger_than_bus_rejected(self):
        with pytest.raises(ProtocolError):
            BusRequest(addr=0, is_write=False, num_elements=1, elem_bytes=64, bus_bytes=32)

    def test_zero_elements_rejected(self):
        with pytest.raises(ProtocolError):
            contiguous(elems=0)

    def test_contiguous_4k_crossing_rejected(self):
        with pytest.raises(ProtocolError):
            contiguous(addr=0xFF0, elems=16)

    def test_contiguous_ending_at_boundary_ok(self):
        request = contiguous(addr=0xF80, elems=32)
        assert request.num_beats == 4

    def test_packed_burst_longer_than_256_beats_rejected(self):
        with pytest.raises(ProtocolError):
            strided(elems=257 * 8)

    def test_packed_needs_bus_multiple_of_element(self):
        with pytest.raises(ProtocolError):
            BusRequest(addr=0, is_write=False, num_elements=4, elem_bytes=32,
                       bus_bytes=48, pack=PackUserField.strided(1))


class TestChannelConversion:
    def test_read_becomes_ar(self):
        beat = strided(elems=8).to_channel_beat()
        assert isinstance(beat, ARBeat)
        assert beat.num_beats == 1
        assert beat.user & 1 == 1

    def test_write_becomes_aw(self):
        beat = strided(elems=8, write=True).to_channel_beat()
        assert isinstance(beat, AWBeat)

    def test_plain_request_has_zero_user(self):
        assert contiguous().to_channel_beat().user == 0

    def test_user_field_roundtrip_through_wire(self):
        request = indirect(idx_bytes=2, idx_base=0x800)
        decoded = PackUserField.decode(request.to_channel_beat().user)
        assert decoded.mode is PackMode.INDIRECT
        assert decoded.index_bytes == 2
        assert decoded.index_base_addr == 0x800

    def test_txn_ids_unique(self):
        assert contiguous().txn_id != contiguous().txn_id
        assert next_txn_id() != next_txn_id()


class TestDescribe:
    def test_describe_mentions_mode(self):
        assert "strided" in strided().describe()
        assert "indirect" in indirect().describe()
        assert "narrow" in narrow().describe()
        assert "contiguous" in contiguous().describe()


class TestProperties:
    @given(st.integers(min_value=1, max_value=2000),
           st.sampled_from([4, 8, 16, 32]),
           st.integers(min_value=0, max_value=100))
    def test_strided_beat_accounting(self, elems, elem_bytes, stride):
        elems = min(elems, 256 * (32 // elem_bytes))
        request = BusRequest(addr=0, is_write=False, num_elements=elems,
                             elem_bytes=elem_bytes, bus_bytes=32,
                             pack=PackUserField.strided(stride))
        useful = sum(request.beat_useful_bytes(b) for b in range(request.num_beats))
        assert useful == request.payload_bytes
        assert request.num_beats <= 256

    @given(st.integers(min_value=1, max_value=512))
    def test_contiguous_beat_ranges_cover_payload(self, elems):
        request = contiguous(addr=64, elems=elems)
        covered = 0
        for beat in range(request.num_beats):
            start, end = request.beat_byte_range(beat)
            assert end > start
            covered += end - start
        assert covered == request.payload_bytes
