"""Unit tests for functional burst execution and the ideal memory endpoint."""

import numpy as np
import pytest

from repro.axi.pack import PackUserField
from repro.axi.port import AxiPort
from repro.axi.signals import WBeat
from repro.axi.transaction import BusRequest
from repro.errors import ProtocolError
from repro.mem.functional import (
    element_addresses,
    read_burst_payload,
    write_burst_payload,
)
from repro.mem.ideal import IdealMemoryEndpoint
from repro.mem.storage import MemoryStorage
from repro.sim.engine import Engine


@pytest.fixture
def filled_storage():
    storage = MemoryStorage(1 << 18)
    storage.write_array(0, np.arange(4096, dtype=np.float32))
    return storage


class TestFunctionalHelpers:
    def test_contiguous_read(self, filled_storage):
        request = BusRequest(addr=16, is_write=False, num_elements=8, elem_bytes=4,
                             bus_bytes=32, contiguous=True)
        payload = read_burst_payload(filled_storage, request).view(np.float32)
        assert payload.tolist() == [4, 5, 6, 7, 8, 9, 10, 11]

    def test_strided_read(self, filled_storage):
        request = BusRequest(addr=0, is_write=False, num_elements=5, elem_bytes=4,
                             bus_bytes=32, pack=PackUserField.strided(3))
        payload = read_burst_payload(filled_storage, request).view(np.float32)
        assert payload.tolist() == [0, 3, 6, 9, 12]

    def test_indirect_read_uses_memory_indices(self, filled_storage):
        indices = np.asarray([5, 1, 100, 7], dtype=np.uint32)
        filled_storage.write_array(0x10000, indices)
        request = BusRequest(addr=0, is_write=False, num_elements=4, elem_bytes=4,
                             bus_bytes=32,
                             pack=PackUserField.indirect(4, 0x10000),
                             index_base=0x10000)
        payload = read_burst_payload(filled_storage, request).view(np.float32)
        assert payload.tolist() == [5, 1, 100, 7]

    def test_element_addresses_strided(self, filled_storage):
        request = BusRequest(addr=8, is_write=False, num_elements=3, elem_bytes=4,
                             bus_bytes=32, pack=PackUserField.strided(2))
        assert element_addresses(filled_storage, request).tolist() == [8, 16, 24]

    def test_write_payload_contiguous(self, filled_storage):
        request = BusRequest(addr=64, is_write=True, num_elements=4, elem_bytes=4,
                             bus_bytes=32, contiguous=True)
        values = np.asarray([9.0, 8.0, 7.0, 6.0], dtype=np.float32)
        write_burst_payload(filled_storage, request, values.view(np.uint8))
        assert filled_storage.read_array(64, 4, np.float32).tolist() == [9, 8, 7, 6]

    def test_write_payload_size_checked(self, filled_storage):
        request = BusRequest(addr=64, is_write=True, num_elements=4, elem_bytes=4,
                             bus_bytes=32, contiguous=True)
        with pytest.raises(ProtocolError):
            write_burst_payload(filled_storage, request, b"\x00" * 8)

    def test_read_helper_rejects_write_request(self, filled_storage):
        request = BusRequest(addr=0, is_write=True, num_elements=4, elem_bytes=4,
                             bus_bytes=32, contiguous=True)
        with pytest.raises(ProtocolError):
            read_burst_payload(filled_storage, request)


class TestIdealEndpoint:
    def _run(self, storage, requests, payloads=None):
        port = AxiPort("p", 32)
        endpoint = IdealMemoryEndpoint("ideal", port, storage)
        engine = Engine()
        engine.add_component(endpoint)
        for queue in port.all_queues():
            engine.add_queue(queue)
        received = {r.txn_id: [] for r in requests}
        pending_w = []
        for request in requests:
            if request.is_write:
                payload = payloads[request.txn_id]
                for beat in range(request.num_beats):
                    chunk = payload[beat * 32:(beat + 1) * 32]
                    pending_w.append(WBeat(data=chunk, useful_bytes=len(chunk),
                                           last=beat == request.num_beats - 1))
        reads = [r for r in requests if not r.is_write]
        writes = [r for r in requests if r.is_write]
        done_b = []
        for cycle in range(2000):
            if reads and port.ar.can_push():
                port.ar.push(reads.pop(0))
            if writes and port.aw.can_push():
                port.aw.push(writes.pop(0))
            if pending_w and port.w.can_push():
                port.w.push(pending_w.pop(0))
            if port.r.can_pop():
                beat = port.r.pop()
                received[beat.txn_id].append(bytes(beat.data)[: beat.useful_bytes])
            if port.b.can_pop():
                done_b.append(port.b.pop().txn_id)
            engine.step()
            if not reads and not writes and not pending_w and not endpoint.busy() \
                    and port.is_idle():
                break
        return received, done_b

    def test_read_delivers_packed_payload(self, filled_storage):
        request = BusRequest(addr=0, is_write=False, num_elements=16, elem_bytes=4,
                             bus_bytes=32, pack=PackUserField.strided(4))
        received, _ = self._run(filled_storage, [request])
        data = np.frombuffer(b"".join(received[request.txn_id]), dtype=np.float32)
        assert data.tolist() == list(range(0, 64, 4))

    def test_write_updates_storage(self, filled_storage):
        request = BusRequest(addr=0x8000, is_write=True, num_elements=8, elem_bytes=4,
                             bus_bytes=32, pack=PackUserField.strided(2))
        values = np.arange(100, 108, dtype=np.float32)
        received, done_b = self._run(filled_storage, [request],
                                     payloads={request.txn_id: values.tobytes()})
        assert done_b == [request.txn_id]
        back = filled_storage.read_array(0x8000, 16, np.float32)[::2]
        assert back.tolist() == values.tolist()

    def test_back_to_back_reads_stream_efficiently(self, filled_storage):
        requests = [
            BusRequest(addr=128 * i, is_write=False, num_elements=64, elem_bytes=4,
                       bus_bytes=32, contiguous=True)
            for i in range(4)
        ]
        port = AxiPort("p", 32)
        endpoint = IdealMemoryEndpoint("ideal", port, filled_storage)
        engine = Engine()
        engine.add_component(endpoint)
        for queue in port.all_queues():
            engine.add_queue(queue)
        beats = 0
        pending = list(requests)
        cycles = 0
        while beats < 4 * 8 and cycles < 500:
            if pending and port.ar.can_push():
                port.ar.push(pending.pop(0))
            if port.r.can_pop():
                port.r.pop()
                beats += 1
            engine.step()
            cycles += 1
        # 32 beats should take barely more than 32 cycles end to end.
        assert cycles < 60
