"""Supervised execution of spec batches: timeouts, retries, pool rebuilds.

This module is the fault-tolerance layer between
:class:`~repro.orchestrate.parallel.ParallelRunner` and the process pool.
The runner owns the *what* (specs, cache, progress, pool lifetime); the
:class:`Supervisor` owns the *how* when things go wrong:

* **per-spec wall-clock timeouts** — a hung worker cannot block the batch
  forever; the overdue spec is charged a ``timeout`` attempt, the wedged
  pool is killed and rebuilt, and the spec retries with backoff;
* **bounded retries with exponential backoff + seeded jitter** — retryable
  failures (:class:`~repro.orchestrate.faults.TransientError`, timeouts)
  consume a per-spec budget of :attr:`RetryPolicy.max_attempts` charged
  attempts; any other exception is permanent and propagates immediately,
  exactly as it did before supervision existed;
* **pool rebuilds after ``BrokenProcessPool``** — a worker death tears the
  pool down, requeues every in-flight spec (uncharged: the victims are not
  at fault), and rebuilds.  Teardowns are bounded by
  :attr:`RetryPolicy.max_pool_rebuilds`; past the budget the batch degrades
  to the serial tier, which always completes (no spec can be starved by
  infrastructure failures);
* **structured outcome records** — every attempt of every spec lands in a
  :class:`SpecOutcome` (kind, duration, error), aggregated into
  :class:`SupervisionCounters` and exposed through the runner's
  ``--journal`` report and :class:`~repro.orchestrate.parallel.RunProgress`.

Failure taxonomy: ``timeout`` and ``transient`` are *charged* to the spec's
retry budget (the spec itself misbehaved); ``worker-lost`` is *uncharged*
infrastructure failure bounded globally by the rebuild budget.  The serial
tier retries transients with the same backoff but cannot enforce timeouts —
there is no process boundary left to kill across.

Determinism: backoff jitter comes from ``random.Random(policy.seed)``, so a
supervised run's retry schedule is reproducible; spec results are
deterministic regardless, which is what lets the fault-injection suite
assert bit-identical results between faulty and fault-free sweeps.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field
from random import Random
from typing import Any, Dict, List, Optional, Tuple

from repro.orchestrate.faults import FaultPlan, TransientError, execute_with_faults

#: Attempt outcome tags (the ``ok`` tag marks the successful final attempt).
OK = "ok"
TIMEOUT = "timeout"
WORKER_LOST = "worker-lost"
TRANSIENT = "transient"
ERROR = "error"


class SpecTimeoutError(RuntimeError):
    """A spec exceeded its wall-clock timeout on every allowed attempt."""


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervisor reacts to failures.

    ``max_attempts`` bounds *charged* attempts per spec (timeouts and
    transient errors); worker deaths are uncharged and bounded globally by
    ``max_pool_rebuilds``.  ``timeout_s=None`` (the default) disables the
    per-spec timeout, so a policy-free runner behaves exactly like the
    pre-supervision runner on the happy path.
    """

    max_attempts: int = 3
    timeout_s: Optional[float] = None
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    jitter: float = 0.25
    seed: int = 0
    max_pool_rebuilds: int = 8

    def backoff_s(self, failures: int, rng: Random) -> float:
        """Delay before the retry following charged failure ``failures`` (1-based).

        Exponential in the failure count, capped at ``backoff_max_s``, with
        ``jitter`` spreading the delay uniformly over ``base * (1 ± jitter)``
        using the caller's seeded generator.
        """
        exponent = max(0, failures - 1)
        base = min(self.backoff_max_s,
                   self.backoff_base_s * self.backoff_factor ** exponent)
        if self.jitter <= 0:
            return base
        spread = self.jitter * base
        return max(0.0, base - spread + 2.0 * spread * rng.random())


@dataclass
class Attempt:
    """One execution attempt of one spec."""

    number: int            #: 0-based attempt index (matches fault keys)
    outcome: str           #: ok | timeout | worker-lost | transient | error
    duration_s: float
    error: Optional[str] = None
    charged: bool = True   #: counts against RetryPolicy.max_attempts

    def to_json(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "number": self.number,
            "outcome": self.outcome,
            "duration_s": round(self.duration_s, 6),
            "charged": self.charged,
        }
        if self.error is not None:
            data["error"] = self.error
        return data


@dataclass
class SpecOutcome:
    """Per-spec supervision record: every attempt, plus the final status."""

    index: int
    label: str
    key: Optional[str] = None
    status: str = "pending"   #: cached | completed | failed | pending
    source: str = "none"      #: cache | pool | serial | none
    attempts: List[Attempt] = field(default_factory=list)

    @property
    def retries(self) -> int:
        """Failed attempts of any kind (charged or collateral)."""
        return sum(1 for attempt in self.attempts if attempt.outcome != OK)

    @property
    def charged_failures(self) -> int:
        """Failed attempts that count against the retry budget."""
        return sum(1 for attempt in self.attempts
                   if attempt.charged and attempt.outcome != OK)

    def to_json(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "label": self.label,
            "key": self.key,
            "status": self.status,
            "source": self.source,
            "retries": self.retries,
            "attempts": [attempt.to_json() for attempt in self.attempts],
        }


@dataclass
class SupervisionCounters:
    """Aggregate supervision activity across a runner's lifetime.

    All-zero on a fault-free run — asserted by the bench job so supervision
    can never silently perturb the happy path.
    """

    retries: int = 0              #: charged retries scheduled (with backoff)
    timeouts: int = 0             #: attempts that exceeded the spec timeout
    worker_losses: int = 0        #: attempts lost to worker death (uncharged)
    transient_errors: int = 0     #: TransientError attempts
    pool_rebuilds: int = 0        #: pools torn down mid-batch and rebuilt
    serial_degradations: int = 0  #: batches that fell back to the serial tier

    def to_json(self) -> Dict[str, Any]:
        return asdict(self)

    def any_activity(self) -> bool:
        return any(asdict(self).values())


class _Task:
    """Mutable per-spec scheduling state inside one supervised batch."""

    __slots__ = ("index", "spec", "outcome", "next_attempt", "eligible_at")

    def __init__(self, index: int, spec: Any, outcome: SpecOutcome) -> None:
        self.index = index
        self.spec = spec
        self.outcome = outcome
        self.next_attempt = 0       #: attempt number the next execution uses
        self.eligible_at = 0.0      #: monotonic time the task may resubmit


def _pool_execute(payload):
    """Module-level worker entry so payloads can cross process boundaries."""
    spec, index, attempt, plan = payload
    return execute_with_faults(spec, index, attempt, plan)


def kill_executor(executor) -> None:
    """Tear a pool down *now*: kill workers, then release the executor.

    Used when workers may be hung or mid-crash — a graceful
    ``shutdown(wait=True)`` would block on them forever.
    """
    processes = getattr(executor, "_processes", None)
    for process in list((processes or {}).values()):
        try:
            process.kill()
        except Exception:
            pass
    try:
        executor.shutdown(wait=False, cancel_futures=True)
    except TypeError:  # tolerate test doubles with a reduced signature
        executor.shutdown(wait=False)


class Supervisor:
    """Drives one batch of cache-missed specs for a ``ParallelRunner``."""

    def __init__(self, runner, tasks: List[Tuple[int, Any, SpecOutcome]],
                 results: List[Any], done: int, total: int,
                 use_pool: bool) -> None:
        self.runner = runner
        self.policy: RetryPolicy = runner.policy
        self.counters: SupervisionCounters = runner.counters
        self.plan: Optional[FaultPlan] = runner.faults
        self.rng = Random(self.policy.seed)
        self.results = results
        self.done = done
        self.total = total
        self.use_pool = use_pool
        self.jobs = max(1, getattr(runner, "jobs", 1))
        self.ready: deque = deque(
            _Task(index, spec, outcome) for index, spec, outcome in tasks
        )
        self.waiting: List[_Task] = []
        #: future -> (task, attempt number, monotonic start time)
        self.in_flight: Dict[Any, Tuple[_Task, int, float]] = {}
        self.pool_teardowns = 0
        self.degraded = False

    # ---------------------------------------------------------------- api
    def run(self) -> int:
        """Execute every task to completion; returns the new done count."""
        if self.use_pool:
            self._run_pool()
        self._run_serial()
        return self.done

    # ------------------------------------------------------------ helpers
    def _executor(self):
        """The pool to submit to, or ``None`` once degraded to serial."""
        if self.pool_teardowns > self.policy.max_pool_rebuilds:
            if not self.degraded:
                self.degraded = True
                self.counters.serial_degradations += 1
                self.runner._pool_unavailable = True
            return None
        return self.runner._executor_or_none()

    def _record(self, task: _Task, attempt: int, outcome: str,
                duration: float, error: Optional[str] = None,
                charged: bool = True) -> None:
        task.outcome.attempts.append(Attempt(
            number=attempt, outcome=outcome, duration_s=duration,
            error=error, charged=charged,
        ))
        if outcome == WORKER_LOST:
            self.counters.worker_losses += 1
        elif outcome == TIMEOUT:
            self.counters.timeouts += 1
        elif outcome == TRANSIENT:
            self.counters.transient_errors += 1

    def _succeed(self, task: _Task, attempt: int, result,
                 duration: float, source: str) -> None:
        self._record(task, attempt, OK, duration)
        task.outcome.status = "completed"
        task.outcome.source = source
        self.results[task.index] = self.runner._finish(
            task.spec, result, task.outcome
        )
        self.done += 1
        self.runner._notify(
            self.done, self.total, task.spec, cached=False,
            attempts=len(task.outcome.attempts),
            outcome=task.outcome.status,
        )

    def _requeue(self, task: _Task, delay_s: float) -> None:
        if delay_s > 0:
            task.eligible_at = time.monotonic() + delay_s
            self.waiting.append(task)
        else:
            task.eligible_at = 0.0
            self.ready.append(task)

    def _retry_or_raise(self, task: _Task, exc: BaseException) -> None:
        """Schedule a backoff retry for a charged failure, or give up."""
        failures = task.outcome.charged_failures
        if failures >= self.policy.max_attempts:
            task.outcome.status = "failed"
            raise exc
        self.counters.retries += 1
        self._requeue(task, self.policy.backoff_s(failures, self.rng))

    def _promote_waiting(self, now: float) -> None:
        still_waiting = []
        for task in self.waiting:
            if task.eligible_at <= now:
                self.ready.append(task)
            else:
                still_waiting.append(task)
        self.waiting = still_waiting

    def _pool_lost(self) -> None:
        """The pool is broken or wedged: requeue survivors, kill, rebuild."""
        now = time.monotonic()
        for task, attempt, started in self.in_flight.values():
            self._record(task, attempt, WORKER_LOST, now - started,
                         error="worker pool torn down", charged=False)
            self._requeue(task, 0.0)
        self.in_flight.clear()
        self.runner._discard_executor(kill=True)
        self.pool_teardowns += 1
        # Only count teardowns we will actually recover from with a fresh
        # pool; the final teardown *is* the serial degradation.
        if self.pool_teardowns <= self.policy.max_pool_rebuilds:
            self.counters.pool_rebuilds += 1

    def _check_timeouts(self) -> None:
        if self.policy.timeout_s is None or not self.in_flight:
            return
        now = time.monotonic()
        overdue = [
            (future, task, attempt, started)
            for future, (task, attempt, started) in self.in_flight.items()
            if now - started >= self.policy.timeout_s
        ]
        if not overdue:
            return
        for future, task, attempt, started in overdue:
            del self.in_flight[future]
            self._record(
                task, attempt, TIMEOUT, now - started,
                error=f"exceeded the {self.policy.timeout_s:g}s "
                      f"per-spec wall-clock timeout",
            )
            self._retry_or_raise(task, SpecTimeoutError(
                f"spec {task.outcome.label!r} timed out on "
                f"{task.outcome.charged_failures} attempts "
                f"(timeout {self.policy.timeout_s:g}s)"
            ))
        # A hung worker can only be stopped by killing its process; the
        # pool dies with it and the collateral in-flight specs requeue
        # uncharged via _pool_lost.
        self._pool_lost()

    def _wait_timeout(self) -> Optional[float]:
        """How long the next ``wait()`` may block before supervision acts."""
        now = time.monotonic()
        candidates = []
        if self.policy.timeout_s is not None and self.in_flight:
            soonest = min(
                started for (_t, _a, started) in self.in_flight.values()
            )
            candidates.append(soonest + self.policy.timeout_s - now)
        if self.waiting:
            candidates.append(
                min(task.eligible_at for task in self.waiting) - now
            )
        if not candidates:
            return None
        return max(0.0, min(candidates))

    # ------------------------------------------------------------ pool tier
    def _run_pool(self) -> None:
        while self.ready or self.waiting or self.in_flight:
            executor = self._executor()
            if executor is None:
                # Pool unavailable (never existed, or rebuild budget spent):
                # the serial tier finishes whatever remains.
                return
            self._promote_waiting(time.monotonic())
            broken = False
            # Submit at most `jobs` specs at a time: a spec's timeout clock
            # starts at submission, so letting specs queue inside the
            # executor would charge them queue wait as execution time (and
            # would widen the collateral damage of every pool teardown).
            while self.ready and len(self.in_flight) < self.jobs:
                task = self.ready.popleft()
                attempt = task.next_attempt
                payload = (task.spec, task.index, attempt, self.plan)
                try:
                    future = executor.submit(_pool_execute, payload)
                except BrokenProcessPool:
                    self.ready.appendleft(task)
                    broken = True
                    break
                task.next_attempt = attempt + 1
                self.in_flight[future] = (task, attempt, time.monotonic())
            if broken:
                self._pool_lost()
                continue
            if not self.in_flight:
                # Everything is backing off; sleep until the earliest retry.
                pause = min(task.eligible_at for task in self.waiting) \
                    - time.monotonic()
                if pause > 0:
                    time.sleep(min(pause, 0.5))
                continue
            done_futures, _ = wait(set(self.in_flight),
                                   timeout=self._wait_timeout(),
                                   return_when=FIRST_COMPLETED)
            for future in done_futures:
                task, attempt, started = self.in_flight.pop(future)
                duration = time.monotonic() - started
                try:
                    result = future.result()
                except BrokenProcessPool:
                    self._record(task, attempt, WORKER_LOST, duration,
                                 error="worker process died", charged=False)
                    self._requeue(task, 0.0)
                    broken = True
                except TransientError as exc:
                    self._record(task, attempt, TRANSIENT, duration,
                                 error=str(exc))
                    self._retry_or_raise(task, exc)
                except BaseException as exc:
                    # Permanent failure: record it and propagate, exactly
                    # like the pre-supervision runner (no inline re-run on
                    # the supervisor thread, no retry).
                    self._record(task, attempt, ERROR, duration,
                                 error=f"{type(exc).__name__}: {exc}")
                    task.outcome.status = "failed"
                    raise
                else:
                    self._succeed(task, attempt, result, duration,
                                  source="pool")
            if broken:
                self._pool_lost()
                continue
            self._check_timeouts()

    # ---------------------------------------------------------- serial tier
    def _run_serial(self) -> None:
        """The final degradation tier: in-process, in index order.

        Retries transient failures with the same backoff policy; cannot
        enforce timeouts (there is no process boundary left to kill).
        """
        remaining = sorted(
            list(self.ready) + self.waiting, key=lambda task: task.index
        )
        self.ready.clear()
        self.waiting = []
        for task in remaining:
            while True:
                attempt = task.next_attempt
                task.next_attempt = attempt + 1
                started = time.monotonic()
                try:
                    result = execute_with_faults(
                        task.spec, task.index, attempt, self.plan
                    )
                except TransientError as exc:
                    self._record(task, attempt, TRANSIENT,
                                 time.monotonic() - started, error=str(exc))
                    failures = task.outcome.charged_failures
                    if failures >= self.policy.max_attempts:
                        task.outcome.status = "failed"
                        raise
                    self.counters.retries += 1
                    time.sleep(self.policy.backoff_s(failures, self.rng))
                except BaseException as exc:
                    self._record(task, attempt, ERROR,
                                 time.monotonic() - started,
                                 error=f"{type(exc).__name__}: {exc}")
                    task.outcome.status = "failed"
                    raise
                else:
                    self._succeed(task, attempt, result,
                                  time.monotonic() - started, source="serial")
                    break
