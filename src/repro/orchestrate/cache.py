"""On-disk result cache keyed by canonical spec fingerprints.

Layout: one JSON file per entry under the cache directory, named
``<sha256>.json``.  Each file stores the spec's full fingerprint next to the
result payload, so entries are self-describing and a mismatched fingerprint
(hash collision or hand-edited file) is treated as a miss.

Invalidation is key-based: the package version and a cache schema number are
part of every fingerprint, so bumping either simply makes old entries
unreachable.  ``prune`` deletes entries whose recorded version differs from
the running code's.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

from repro.version import __version__

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "AXI_PACK_CACHE_DIR"

#: Sentinel returned by :meth:`ResultCache.get` on a miss (results themselves
#: may legitimately be falsy, e.g. a 0.0 utilization).
MISS = object()


def _result_compatible(spec, result) -> bool:
    """Apply the spec's compatibility rule to a cached result, if it has one.

    Specs whose cache key is coarser than their request (e.g. ``RunSpec``
    ignoring ``verify``) use this to reject entries that match the key but
    cannot satisfy the request.
    """
    checker = getattr(spec, "result_compatible", None)
    return checker(result) if checker is not None else True


def default_cache_dir() -> Path:
    """The cache directory used when none is given explicitly.

    ``$AXI_PACK_CACHE_DIR`` wins, then ``$XDG_CACHE_HOME/axi-pack-repro``,
    then ``~/.cache/axi-pack-repro``.
    """
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "axi-pack-repro"


@dataclass
class CacheStats:
    """Hit/miss/store counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0
    corrupt: int = 0

    def summary(self) -> str:
        """One-line human-readable summary."""
        text = (f"{self.hits} hit{'s' if self.hits != 1 else ''}, "
                f"{self.misses} miss{'es' if self.misses != 1 else ''}, "
                f"{self.stores} stored")
        if self.corrupt:
            text += f", {self.corrupt} quarantined"
        return text


class MemoryCache:
    """In-process result cache: same interface as :class:`ResultCache`,
    nothing ever touches disk.

    Used by :func:`repro.orchestrate.sweep.run_sweep` to deduplicate
    identical runs *within* one sweep (e.g. Fig. 4c reusing Fig. 3a's
    simulations) even when the user opted out of the persistent cache.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, Any] = {}
        self.stats = CacheStats()

    def get(self, spec):
        """Return the in-memory result for ``spec``, or :data:`MISS`."""
        key = spec.cache_key()
        if key in self._entries and _result_compatible(spec, self._entries[key]):
            self.stats.hits += 1
            return self._entries[key]
        self.stats.misses += 1
        return MISS

    def put(self, spec, result) -> None:
        """Remember ``result`` for ``spec`` for this process's lifetime."""
        self._entries[spec.cache_key()] = result
        self.stats.stores += 1

    def clear(self) -> int:
        removed = len(self._entries)
        self._entries.clear()
        return removed

    def __len__(self) -> int:
        return len(self._entries)


class ResultCache:
    """Persists spec results as JSON files with hit/miss accounting.

    Any spec exposing ``cache_key()``, ``fingerprint()``, ``result_to_json()``
    and ``result_from_json()`` (see :mod:`repro.orchestrate.spec`) can be
    cached.  I/O failures degrade to misses — a broken cache never breaks an
    experiment, it just stops saving time.
    """

    def __init__(self, cache_dir: Optional[os.PathLike] = None,
                 version: str = __version__) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        self.version = version
        self.stats = CacheStats()

    def path_for(self, spec) -> Path:
        """The file this spec's result lives in (whether or not it exists)."""
        return self.cache_dir / f"{spec.cache_key()}.json"

    def get(self, spec):
        """Return the cached result for ``spec``, or :data:`MISS`."""
        path = self.path_for(spec)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return MISS
        except ValueError:
            # Covers json.JSONDecodeError and the UnicodeDecodeError a
            # binary-corrupted file raises: the entry is truncated or
            # garbage — quarantine it so the damage is visible.
            self.stats.misses += 1
            self.stats.errors += 1
            self._quarantine(path)
            return MISS
        except OSError:
            self.stats.misses += 1
            self.stats.errors += 1
            return MISS
        if not isinstance(entry, dict):
            # Valid JSON but not an entry (corrupt or foreign file): a miss,
            # never a crash — but quarantined, so it is not silent either.
            self.stats.misses += 1
            self.stats.errors += 1
            self._quarantine(path)
            return MISS
        from repro.orchestrate.spec import canonicalize

        if entry.get("fingerprint") != canonicalize(spec.fingerprint()):
            # Hash collision or stale/corrupt entry: never trust it.
            self.stats.misses += 1
            return MISS
        try:
            result = spec.result_from_json(entry["result"])
        except (KeyError, TypeError, ValueError):
            # Fingerprint matched but the payload does not parse: the entry
            # body is damaged.  Quarantine rather than silently missing.
            self.stats.misses += 1
            self.stats.errors += 1
            self._quarantine(path)
            return MISS
        if not _result_compatible(spec, result):
            self.stats.misses += 1
            return MISS
        self.stats.hits += 1
        return result

    def put(self, spec, result) -> None:
        """Store ``result`` for ``spec`` (atomic write, best-effort)."""
        from repro.orchestrate.spec import canonicalize

        entry: Dict[str, Any] = {
            "version": self.version,
            "fingerprint": canonicalize(spec.fingerprint()),
            "result": spec.result_to_json(result),
        }
        path = self.path_for(spec)
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(self.cache_dir), suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(entry, handle, sort_keys=True)
                os.replace(tmp, path)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            self.stats.errors += 1
            return
        self.stats.stores += 1

    def _quarantine(self, path: Path) -> None:
        """Move a damaged entry aside as ``<name>.corrupt`` and count it.

        The sidecar keeps the evidence (what *did* the bytes look like?)
        while getting the file out of the key namespace so the next
        ``put()`` can heal the entry.
        """
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            self.stats.errors += 1
            return
        self.stats.corrupt += 1

    def corrupt_entries(self) -> int:
        """How many quarantined ``.corrupt`` files sit in the cache dir."""
        try:
            return sum(1 for _ in self.cache_dir.glob("*.corrupt"))
        except OSError:
            return 0

    def prune(self) -> int:
        """Delete entries from another package version or cache schema.

        Quarantined ``.corrupt`` sidecars are deleted too — they are by
        definition useless, prune is the explicit clean-up gesture.
        """
        from repro.orchestrate.spec import CACHE_SCHEMA_VERSION

        removed = self._remove_orphaned_tmp()
        for path in self.cache_dir.glob("*.corrupt"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                self.stats.errors += 1
        for path in self.cache_dir.glob("*.json"):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    entry = json.load(handle)
                if isinstance(entry, dict):
                    fingerprint = entry.get("fingerprint")
                    schema = (fingerprint.get("schema")
                              if isinstance(fingerprint, dict) else None)
                    stale = (entry.get("version") != self.version
                             or schema != CACHE_SCHEMA_VERSION)
                else:
                    stale = True
            except (OSError, ValueError):
                stale = True
            if stale:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    self.stats.errors += 1
        return removed

    def clear(self) -> int:
        """Delete every cache entry (and quarantined sidecar); returns the
        number removed."""
        removed = self._remove_orphaned_tmp()
        for path in list(self.cache_dir.glob("*.corrupt")) \
                + list(self.cache_dir.glob("*.json")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                self.stats.errors += 1
        return removed

    def _remove_orphaned_tmp(self) -> int:
        """Sweep .tmp files left by a put() interrupted mid-write (SIGKILL)."""
        removed = 0
        for path in self.cache_dir.glob("*.tmp"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                self.stats.errors += 1
        return removed

    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.cache_dir.glob("*.json"))
        except OSError:
            return 0
