"""Named experiment subsets run through one shared runner and cache.

The CLI's ``sweep`` subcommand resolves its arguments here: any subset of
the figure ids registered in :data:`repro.analysis.experiments.EXPERIMENTS`
(or the shorthand ``all``) runs through a single
:class:`~repro.orchestrate.parallel.ParallelRunner`, so the process pool and
result cache are shared across every experiment in the sweep.

To add a new experiment to the sweep registry, register its driver in
``EXPERIMENTS``; if it runs simulations, give it a ``runner`` keyword —
``run_experiment`` forwards the sweep's runner to any driver whose
signature accepts one (see ``docs/orchestration.md``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.orchestrate.parallel import ParallelRunner

#: Shorthand accepted by ``expand_sweep`` for every registered experiment.
ALL = "all"


def available_experiments() -> List[str]:
    """Sorted figure ids the sweep can run."""
    from repro.analysis.experiments import EXPERIMENTS

    return sorted(EXPERIMENTS)


def expand_sweep(names: Iterable[str]) -> List[str]:
    """Validate and normalize a sweep request.

    ``all`` expands to every registered experiment; duplicates collapse to
    the first occurrence; unknown ids raise ``ConfigurationError``.
    """
    known = available_experiments()
    expanded: List[str] = []
    for name in names:
        targets = known if name == ALL else [name]
        if name != ALL and name not in known:
            raise ConfigurationError(
                f"unknown experiment {name!r}; available: {known + [ALL]}"
            )
        for target in targets:
            if target not in expanded:
                expanded.append(target)
    if not expanded:
        raise ConfigurationError("empty sweep: name at least one experiment")
    return expanded


def run_sweep(names: Sequence[str], scale: str = "small",
              runner: Optional[ParallelRunner] = None,
              config=None) -> Dict[str, object]:
    """Run a subset of experiments; returns ``{figure id: ExperimentTable}``.

    Tables come back in the order the (expanded) names were given.  The same
    ``runner`` — and therefore the same cache statistics, process pool,
    retry policy, and (if attached) sweep manifest — is used for every
    experiment in the sweep.  Fault tolerance rides on the runner: pass a
    :class:`~repro.orchestrate.parallel.ParallelRunner` built with a
    :class:`~repro.orchestrate.supervisor.RetryPolicy` and/or a
    :class:`~repro.orchestrate.checkpoint.SweepManifest` to get supervised,
    crash-resumable execution (the CLI's ``--spec-timeout``, ``--retries``,
    ``--manifest`` and ``--resume`` flags do exactly that).  ``config``
    (e.g. a :class:`~repro.system.config.SystemConfig` with
    ``DataPolicy.ELIDE`` for a timing-only sweep) is forwarded to every
    driver that accepts one.
    """
    from repro.analysis.experiments import run_experiment
    from repro.orchestrate.cache import MemoryCache

    if runner is None:
        # The default runner gets an in-memory cache so identical runs are
        # deduplicated across the sweep's experiments (e.g. fig4c reuses
        # fig3a's simulations) without writing anything to disk.  A
        # caller-supplied runner is used exactly as given — attach a
        # MemoryCache (as the CLI does) to opt into the same dedup.
        runner = ParallelRunner(cache=MemoryCache())
    tables: Dict[str, object] = {}
    for name in expand_sweep(names):
        tables[name] = run_experiment(name, scale=scale, runner=runner,
                                      config=config)
    return tables
