"""JSON round-tripping for simulation results.

The cache stores :class:`~repro.system.results.SystemRunResult` objects as
plain JSON so entries stay inspectable (``cat`` a cache file to see exactly
what was measured) and survive package upgrades that do not change result
semantics.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from repro.system.config import SystemKind
from repro.system.results import SystemRunResult
from repro.vector.engine import EngineResult


def _plain_number(value: Any) -> Any:
    """Convert numpy scalars to their Python equivalents."""
    if hasattr(value, "item") and callable(value.item):
        return value.item()
    return value


def engine_result_to_dict(engine: EngineResult) -> Dict[str, Any]:
    """Flatten an :class:`EngineResult` into JSON-safe plain data."""
    return {
        "cycles": _plain_number(engine.cycles),
        "instructions": _plain_number(engine.instructions),
        "r_beats": _plain_number(engine.r_beats),
        "r_useful_bytes": _plain_number(engine.r_useful_bytes),
        "r_data_bytes": _plain_number(engine.r_data_bytes),
        "r_index_bytes": _plain_number(engine.r_index_bytes),
        "w_beats": _plain_number(engine.w_beats),
        "w_useful_bytes": _plain_number(engine.w_useful_bytes),
        "bus_bytes": _plain_number(engine.bus_bytes),
    }


def engine_result_from_dict(data: Mapping[str, Any]) -> EngineResult:
    """Rebuild an :class:`EngineResult` from its JSON form."""
    return EngineResult(**{key: data[key] for key in (
        "cycles", "instructions", "r_beats", "r_useful_bytes", "r_data_bytes",
        "r_index_bytes", "w_beats", "w_useful_bytes", "bus_bytes",
    )})


def system_run_result_to_dict(result: SystemRunResult) -> Dict[str, Any]:
    """Flatten a :class:`SystemRunResult` into JSON-safe plain data."""
    payload = {
        "workload": result.workload,
        "kind": result.kind.value,
        "cycles": _plain_number(result.cycles),
        "engine": engine_result_to_dict(result.engine),
        "stats": {key: _plain_number(value) for key, value in result.stats.items()},
        "verified": result.verified,
    }
    if result.engines is not None:
        payload["engines"] = [
            engine_result_to_dict(engine) for engine in result.engines
        ]
    if result.fault_report is not None:
        payload["fault_report"] = result.fault_report
    return payload


def system_run_result_from_dict(data: Mapping[str, Any]) -> SystemRunResult:
    """Rebuild a :class:`SystemRunResult` from its JSON form."""
    engines = data.get("engines")
    return SystemRunResult(
        workload=data["workload"],
        kind=SystemKind(data["kind"]),
        cycles=data["cycles"],
        engine=engine_result_from_dict(data["engine"]),
        stats=dict(data["stats"]),
        verified=data["verified"],
        engines=(
            None if engines is None
            else [engine_result_from_dict(engine) for engine in engines]
        ),
        fault_report=data.get("fault_report"),
    )
