"""Crash-consistent sweep manifests for ``repro sweep --resume``.

A :class:`SweepManifest` is the durable progress record of one sweep: the
request that started it (experiments, scale, system-config knobs, cache
directory) plus one entry per spec — its canonical fingerprint and whether
its result has been safely recorded.  The file is rewritten atomically
(temp file + ``os.replace``, the same discipline as
:class:`~repro.orchestrate.cache.ResultCache`) on *every* completion, so a
``SIGKILL``-ed supervisor always leaves either the previous consistent
manifest or the next one — never a torn file.

Resume contract: results themselves live in the persistent
:class:`~repro.orchestrate.cache.ResultCache`; the manifest contributes the
request (so ``repro sweep --resume M`` needs no repeated arguments), the
progress accounting, and the safety checks — a manifest written by a
different package version or cache schema is rejected rather than silently
re-interpreted, and a spec whose recorded fingerprint no longer matches the
running code's fingerprint for the same key is an error, not a stale
completion.  Re-running a resumed sweep executes only the specs whose
results are not in the cache, which is exactly the not-yet-marked-done set.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import ReproError
from repro.orchestrate.spec import CACHE_SCHEMA_VERSION, canonicalize, spec_ref
from repro.version import __version__

#: Bump when the manifest layout changes incompatibly.
MANIFEST_SCHEMA_VERSION = 1


class ManifestError(ReproError):
    """A sweep manifest is unreadable, torn, or from different code."""


class SweepManifest:
    """Durable per-spec completion state for one sweep, updated atomically."""

    def __init__(self, path: os.PathLike, data: Dict[str, Any]) -> None:
        self.path = Path(path)
        self._data = data

    # ------------------------------------------------------------ lifecycle
    @classmethod
    def create(cls, path: os.PathLike,
               request: Optional[Dict[str, Any]] = None) -> "SweepManifest":
        """Start a fresh manifest at ``path``, recording the sweep request."""
        manifest = cls(path, {
            "manifest_schema": MANIFEST_SCHEMA_VERSION,
            "version": __version__,
            "cache_schema": CACHE_SCHEMA_VERSION,
            "request": dict(request or {}),
            "specs": {},
        })
        manifest._flush()
        return manifest

    @classmethod
    def load(cls, path: os.PathLike) -> "SweepManifest":
        """Open an existing manifest, verifying it matches the running code."""
        path = Path(path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError as exc:
            raise ManifestError(f"no sweep manifest at {path}") from exc
        except (OSError, ValueError) as exc:
            raise ManifestError(
                f"unreadable sweep manifest {path}: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise ManifestError(f"sweep manifest {path} is not a JSON object")
        schema = data.get("manifest_schema")
        if schema != MANIFEST_SCHEMA_VERSION:
            raise ManifestError(
                f"sweep manifest {path} has schema {schema!r}, this code "
                f"writes {MANIFEST_SCHEMA_VERSION} — re-run without --resume"
            )
        if (data.get("version") != __version__
                or data.get("cache_schema") != CACHE_SCHEMA_VERSION):
            raise ManifestError(
                f"sweep manifest {path} was recorded by package version "
                f"{data.get('version')!r} (cache schema "
                f"{data.get('cache_schema')!r}); running code is "
                f"{__version__!r} (cache schema {CACHE_SCHEMA_VERSION}) — "
                f"results would not be comparable, re-run without --resume"
            )
        data.setdefault("request", {})
        data.setdefault("specs", {})
        return cls(path, data)

    # ------------------------------------------------------------ recording
    def record_specs(self, specs: Iterable[Any]) -> None:
        """Register specs (idempotent) and verify fingerprints of known ones.

        A key recorded with a different fingerprint than the running code
        computes means the manifest and the code disagree about what the
        sweep *is* — resuming would silently mix incompatible results.
        """
        changed = False
        for spec in specs:
            label, key = spec_ref(spec)
            if key is None:
                continue
            fingerprint = canonicalize(spec.fingerprint())
            entry = self._data["specs"].get(key)
            if entry is None:
                self._data["specs"][key] = {
                    "label": label,
                    "fingerprint": fingerprint,
                    "done": False,
                }
                changed = True
            elif entry.get("fingerprint") != fingerprint:
                raise ManifestError(
                    f"sweep manifest {self.path} records a different "
                    f"fingerprint for spec {label!r} (key {key}) — "
                    f"the sweep definition changed, re-run without --resume"
                )
        if changed:
            self._flush()

    def mark_done(self, spec: Any) -> None:
        """Durably mark a spec complete (idempotent, atomic flush)."""
        _label_unused, key = spec_ref(spec)
        if key is None:
            return
        entry = self._data["specs"].get(key)
        if entry is None or entry.get("done"):
            return
        entry["done"] = True
        self._flush()

    # ------------------------------------------------------------ queries
    @property
    def request(self) -> Dict[str, Any]:
        """The sweep request recorded at creation (experiments, scale, ...)."""
        return dict(self._data["request"])

    def done_keys(self) -> List[str]:
        return sorted(key for key, entry in self._data["specs"].items()
                      if entry.get("done"))

    def pending_keys(self) -> List[str]:
        return sorted(key for key, entry in self._data["specs"].items()
                      if not entry.get("done"))

    def done_count(self) -> int:
        return len(self.done_keys())

    def pending_count(self) -> int:
        return len(self.pending_keys())

    def total_count(self) -> int:
        return len(self._data["specs"])

    def summary(self) -> str:
        """One-line progress rendering for the CLI."""
        return (f"{self.done_count()}/{self.total_count()} specs done, "
                f"{self.pending_count()} pending")

    def to_json(self) -> Dict[str, Any]:
        return json.loads(json.dumps(self._data))

    # ------------------------------------------------------------ plumbing
    def _flush(self) -> None:
        """Atomically rewrite the manifest file.

        Unlike the best-effort result cache, manifest write failures raise:
        a resume record that silently stopped updating is worse than no
        resume record at all.
        """
        directory = self.path.parent
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(directory),
                                   prefix=self.path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(self._data, handle, sort_keys=True, indent=1)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
