"""Declarative, hashable descriptions of individual simulation runs.

A spec captures *everything* that determines a run's outcome — workload name
and constructor parameters, the :class:`~repro.system.config.SystemConfig`,
the :class:`~repro.system.config.SystemKind`, and the code version — as plain
data.  That buys three properties the old factory-lambda style could not
offer:

* **picklable** — specs cross process boundaries, so runs can fan out over a
  :class:`~repro.orchestrate.parallel.ParallelRunner` process pool;
* **hashable** — the canonical fingerprint yields a stable cache key, so the
  :class:`~repro.orchestrate.cache.ResultCache` can skip repeat simulations;
* **reproducible** — a spec read back from a cache entry says exactly what
  produced the stored result.

Workloads are deterministic given their parameters (every data generator has
a fixed default seed), which is what makes result caching sound.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

from repro.system.config import SystemConfig, SystemKind
from repro.version import __version__

#: Bump to invalidate every cache entry when result semantics change without
#: a package version bump (e.g. a simulator bug fix during development).
#: 2: ``SystemConfig`` grew ``data_policy`` — every fingerprint now names the
#: policy explicitly, so a FULL result can never serve an ELIDE request (or
#: vice versa) and pre-policy entries are unreachable/prunable.
#: 3: ``SystemConfig`` grew ``num_engines``/``arbitration`` (the multi-engine
#: topology) — fingerprints now name the requestor count and arbitration
#: policy, and results carry the per-engine breakdown, so pre-topology
#: entries are unreachable/prunable.
#: 4: ``SystemConfig`` grew ``num_channels``/``channel_stripe_bytes`` (the
#: M×N crossbar topology) — fingerprints now name the memory-channel count
#: and interleave stripe, and multi-channel results carry per-channel
#: (``chan{j}.``-prefixed) stats, so pre-crossbar entries are
#: unreachable/prunable.
#: 5: ``SystemConfig`` grew ``bus_faults`` (deterministic bus-level fault
#: injection) — fingerprints now name the fault plan, fault-injected results
#: carry a ``fault_report``, and ``bus_faults=None`` runs get fresh keys so a
#: faulted result can never serve a fault-free request; pre-fault entries are
#: unreachable/prunable.
CACHE_SCHEMA_VERSION = 5


def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to JSON-representable plain data, deterministically.

    Dataclasses become sorted-key dictionaries, enums their values, tuples
    lists, and numpy scalars plain Python numbers.  Raises ``TypeError`` for
    anything else non-JSON-safe (notably callables), which is exactly the
    point: a spec that cannot be canonicalized cannot be cached soundly.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: canonicalize(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return canonicalize(value.value)
    if isinstance(value, dict):
        return {str(k): canonicalize(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [canonicalize(v) for v in value]
    if hasattr(value, "item") and callable(value.item):  # numpy scalar
        return value.item()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot canonicalize {type(value).__name__!r} for hashing")


def fingerprint_key(fingerprint: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of a canonical fingerprint dictionary."""
    payload = json.dumps(canonicalize(dict(fingerprint)), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def spec_ref(spec: Any) -> Tuple[str, Any]:
    """``(label, cache key)`` identifying a spec in journals and manifests.

    Works for any spec type, including foreign ones without ``label()`` or
    ``cache_key()`` (the label falls back to the type name, the key to
    ``None``) — supervision records must never fail on an exotic spec.
    """
    label = getattr(spec, "label", None)
    key = getattr(spec, "cache_key", None)
    return (label() if callable(label) else type(spec).__name__,
            key() if callable(key) else None)


@dataclass(frozen=True)
class WorkloadSpec:
    """A workload identified by registry name plus constructor parameters.

    Parameters are stored as a sorted tuple of ``(key, value)`` pairs so the
    spec stays hashable and its fingerprint is order-independent.
    """

    name: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def create(cls, name: str, **params: Any) -> "WorkloadSpec":
        """Build a spec from keyword parameters (``size=48, dataflow="row"``).

        Defaults exposed by :func:`~repro.workloads.registry.make_workload`'s
        signature are baked into ``params`` so that editing such a default
        later cannot silently alias old cache entries.  Defaults buried in
        workload constructors or data generators are invisible here —
        changing one of those requires a ``CACHE_SCHEMA_VERSION`` bump.
        """
        import inspect

        from repro.workloads.registry import make_workload

        merged = {
            key: parameter.default
            for key, parameter in inspect.signature(make_workload).parameters.items()
            if parameter.default is not inspect.Parameter.empty
        }
        merged.update(params)
        return cls(name=name, params=tuple(sorted(merged.items())))

    def build(self):
        """Instantiate the workload (fresh instance per call)."""
        from repro.workloads.registry import make_workload

        return make_workload(self.name, **dict(self.params))


@dataclass(frozen=True)
class RunSpec:
    """One full SoC simulation: a workload on one system configuration.

    ``execute`` reproduces exactly what :func:`repro.system.runner.run_workload`
    does; the orchestrator's serial path and its worker processes both go
    through this method, which is what guarantees parallel/serial equivalence.
    """

    workload: WorkloadSpec
    config: SystemConfig = field(default_factory=SystemConfig)
    kind: SystemKind = SystemKind.PACK
    verify: bool = False
    max_cycles: int = 50_000_000
    version: str = __version__

    def fingerprint(self) -> Dict[str, Any]:
        """Everything that determines this run's *measurements*, as plain data.

        ``verify`` is deliberately absent: checking results against the
        reference implementation never changes what was measured, so a
        verified run and an unverified run of the same spec share one cache
        entry (see :meth:`result_compatible` for the one-way upgrade rule).
        """
        return {
            "type": "run",
            "schema": CACHE_SCHEMA_VERSION,
            "version": self.version,
            "workload": canonicalize(self.workload),
            # execute() overrides the config's kind with this spec's, so
            # normalize it out of the key: configs differing only in their
            # (dead) kind field describe the same measurement.
            "config": canonicalize(self.config.with_kind(self.kind)),
            "kind": self.kind.value,
            "max_cycles": self.max_cycles,
        }

    def cache_key(self) -> str:
        """Stable cache key for this run."""
        return fingerprint_key(self.fingerprint())

    def result_compatible(self, result) -> bool:
        """Whether a cached result satisfies this spec.

        A verified result (``verified`` is True/False) serves both verified
        and unverified requests; an unverified one (``verified`` is None)
        cannot serve ``verify=True`` — the memory image it would check
        against is gone, so the run must be repeated with verification.
        """
        return not self.verify or result.verified is not None

    def execute(self):
        """Run the simulation and return a ``SystemRunResult``."""
        from repro.system.runner import run_workload

        return run_workload(
            self.workload.build(), self.config, kind=self.kind,
            verify=self.verify, max_cycles=self.max_cycles,
        )

    def result_to_json(self, result) -> Dict[str, Any]:
        from repro.orchestrate.serialize import system_run_result_to_dict

        return system_run_result_to_dict(result)

    def result_from_json(self, data):
        from repro.orchestrate.serialize import system_run_result_from_dict

        return system_run_result_from_dict(data)

    def label(self) -> str:
        """Short human-readable description for progress reporting."""
        suffix = "/elide" if self.config.elides_data else ""
        return f"{self.workload.name}/{self.kind.value}{suffix}"


def _measure_function(mode: str):
    """The Fig. 5 measurement driver for ``mode`` (lazy: avoids an import
    cycle with :mod:`repro.analysis.fig5`)."""
    from repro.analysis import fig5

    return {
        "indirect": fig5.measure_indirect_utilization,
        "strided": fig5.measure_strided_utilization,
    }[mode]


def _bind_measure_params(mode: str, params: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Bind ``params`` against the measure function, baking in its defaults.

    Every outcome-determining keyword (``num_beats``, ``seed``,
    ``bus_bytes``, ...) lands in the fingerprint even when the caller relied
    on the default, so editing a default later changes cache keys instead of
    silently serving stale results.
    """
    import inspect

    bound = inspect.signature(_measure_function(mode)).bind(**params)
    bound.apply_defaults()
    return tuple(sorted(bound.arguments.items()))


@dataclass(frozen=True)
class UtilizationSpec:
    """One Fig. 5 controller-testbench measurement (returns a float).

    ``mode`` selects between the indirect-read and strided-read drivers of
    :mod:`repro.analysis.fig5`; ``params`` carries that driver's keyword
    arguments (element/index sizes, bank count, stride, queue depth, ...).
    """

    mode: str  # "indirect" | "strided"
    params: Tuple[Tuple[str, Any], ...] = ()
    version: str = __version__

    @classmethod
    def indirect(cls, **params: Any) -> "UtilizationSpec":
        return cls(mode="indirect", params=_bind_measure_params("indirect", params))

    @classmethod
    def strided(cls, **params: Any) -> "UtilizationSpec":
        return cls(mode="strided", params=_bind_measure_params("strided", params))

    def fingerprint(self) -> Dict[str, Any]:
        return {
            "type": "utilization",
            "schema": CACHE_SCHEMA_VERSION,
            "version": self.version,
            "mode": self.mode,
            "params": canonicalize(dict(self.params)),
        }

    def cache_key(self) -> str:
        return fingerprint_key(self.fingerprint())

    def execute(self) -> float:
        return float(_measure_function(self.mode)(**dict(self.params)))

    def result_to_json(self, result: float) -> float:
        return float(result)

    def result_from_json(self, data) -> float:
        return float(data)

    def label(self) -> str:
        params = dict(self.params)
        detail = params.get("num_banks", "?")
        return f"{self.mode}/banks={detail}"
