"""Fan independent simulation runs out across processes.

Simulations are pure CPU-bound Python, so threads cannot help (GIL); the
runner uses :class:`concurrent.futures.ProcessPoolExecutor`.  Specs are
declarative and picklable (see :mod:`repro.orchestrate.spec`), results are
plain dataclasses, and workloads are deterministic, so executing in worker
processes yields bit-identical results to a serial loop — results are always
collected back **in submission order** regardless of completion order.

If a process pool cannot be created (restricted sandboxes, missing
semaphores) the runner silently degrades to the serial path: orchestration
never makes an experiment fail that would have worked serially.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.orchestrate.cache import MISS

#: Progress callback signature: called once per finished spec.
ProgressCallback = Callable[["RunProgress"], None]


@dataclass(frozen=True)
class RunProgress:
    """One progress event: ``done`` of ``total`` specs finished."""

    done: int
    total: int
    spec: Any
    cached: bool

    def render(self) -> str:
        """Compact one-line rendering (used by the CLI)."""
        source = "cache" if self.cached else "run"
        return f"[{self.done}/{self.total}] {self.spec.label()} ({source})"


def _execute_spec(spec):
    """Module-level worker so specs can be executed in child processes."""
    return spec.execute()


class ParallelRunner:
    """Executes batches of specs with optional caching and parallelism.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` (the default) runs serially in-process;
        ``None`` or ``0`` means one worker per CPU.
    cache:
        A :class:`~repro.orchestrate.cache.ResultCache`,
        :class:`~repro.orchestrate.cache.MemoryCache`, or any object with
        the same ``get``/``put``/``stats`` surface; ``None`` disables
        caching.  Hits skip execution entirely, misses are stored after
        execution.
    progress:
        Optional callback invoked with a :class:`RunProgress` after every
        spec resolves (from cache or execution).
    """

    def __init__(self, jobs: Optional[int] = 1,
                 cache: Optional[Any] = None,
                 progress: Optional[ProgressCallback] = None) -> None:
        if jobs is None or jobs <= 0:
            jobs = os.cpu_count() or 1
        self.jobs = jobs
        self.cache = cache
        self.progress = progress
        self._executor: Optional[ProcessPoolExecutor] = None
        self._pool_unavailable = False

    def close(self) -> None:
        """Shut down the worker pool (if one was ever created).

        Queued-but-unstarted work is cancelled: when a batch aborts early
        (a spec raised, Ctrl-C), nobody is waiting for the remaining
        results, so finishing them would only delay the error.
        """
        if self._executor is not None:
            self._executor.shutdown(cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ helpers
    def _notify(self, done: int, total: int, spec, cached: bool) -> None:
        if self.progress is not None:
            self.progress(RunProgress(done=done, total=total, spec=spec, cached=cached))

    def _finish(self, spec, result, cached: bool):
        if self.cache is not None and not cached:
            self.cache.put(spec, result)
        return result

    # ---------------------------------------------------------------- api
    def run(self, specs: Sequence[Any]) -> List[Any]:
        """Execute every spec; return results in the order specs were given."""
        specs = list(specs)
        total = len(specs)
        results: List[Any] = [MISS] * total
        pending: List[int] = []
        done = 0
        for index, spec in enumerate(specs):
            hit = self.cache.get(spec) if self.cache is not None else MISS
            if hit is not MISS:
                results[index] = hit
                done += 1
                self._notify(done, total, spec, cached=True)
            else:
                pending.append(index)

        if len(pending) > 1 and self.jobs > 1:
            done = self._run_pool(specs, pending, results, done, total)
        else:
            done = self._run_serial(specs, pending, results, done, total)
        return results

    def _executor_or_none(self) -> Optional[ProcessPoolExecutor]:
        """The shared worker pool, created lazily on first parallel batch.

        The pool lives for the runner's lifetime (until :meth:`close`), so a
        multi-experiment sweep pays worker startup — interpreter + numpy
        import on spawn-based platforms — once, not once per experiment.
        """
        if self._pool_unavailable:
            return None
        if self._executor is None:
            try:
                self._executor = ProcessPoolExecutor(max_workers=self.jobs)
            except (OSError, PermissionError, ValueError):
                # No usable multiprocessing primitives here; stay serial.
                self._pool_unavailable = True
                return None
        return self._executor

    def _run_serial(self, specs, pending, results, done, total) -> int:
        for index in pending:
            results[index] = self._finish(specs[index], specs[index].execute(),
                                          cached=False)
            done += 1
            self._notify(done, total, specs[index], cached=False)
        return done

    def _run_pool(self, specs, pending, results, done, total) -> int:
        executor = self._executor_or_none()
        if executor is None:
            return self._run_serial(specs, pending, results, done, total)
        # Pool construction succeeds lazily, so worker spawn failures and
        # mid-run worker deaths surface as BrokenProcessPool — either
        # synchronously from submit() or from future.result().  Both degrade
        # to serial execution of whatever has not finished; subsequent
        # batches skip the pool entirely.
        remaining = set(pending)
        try:
            futures = {executor.submit(_execute_spec, specs[index]): index
                       for index in pending}
            for future in as_completed(futures):
                index = futures[future]
                try:
                    result = future.result()
                except BrokenProcessPool:
                    self._pool_unavailable = True
                    result = specs[index].execute()
                results[index] = self._finish(specs[index], result, cached=False)
                remaining.discard(index)
                done += 1
                self._notify(done, total, specs[index], cached=False)
        except BrokenProcessPool:
            self._pool_unavailable = True
        if self._pool_unavailable:
            self.close()
            done = self._run_serial(specs, sorted(remaining), results, done, total)
        return done
