"""Fan independent simulation runs out across processes, under supervision.

Simulations are pure CPU-bound Python, so threads cannot help (GIL); the
runner uses :class:`concurrent.futures.ProcessPoolExecutor`.  Specs are
declarative and picklable (see :mod:`repro.orchestrate.spec`), results are
plain dataclasses, and workloads are deterministic, so executing in worker
processes yields bit-identical results to a serial loop — results are always
collected back **in submission order** regardless of completion order.

Execution is driven by :class:`~repro.orchestrate.supervisor.Supervisor`,
which layers fault tolerance on top of the pool: per-spec wall-clock
timeouts, bounded retries with backoff for transient failures, and pool
rebuilds after worker death.  If a process pool cannot be created at all
(restricted sandboxes, missing semaphores) or the rebuild budget runs out,
the runner degrades to the serial tier: orchestration never makes an
experiment fail that would have worked serially.

The runner accumulates a :class:`~repro.orchestrate.supervisor.SpecOutcome`
per spec and :class:`~repro.orchestrate.supervisor.SupervisionCounters`
across its lifetime; :meth:`ParallelRunner.journal` renders both as the
JSON report behind ``repro sweep --journal``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.orchestrate.cache import MISS
from repro.orchestrate.faults import FaultPlan
from repro.orchestrate.spec import spec_ref
from repro.orchestrate.supervisor import (
    RetryPolicy,
    SpecOutcome,
    SupervisionCounters,
    Supervisor,
    kill_executor,
)

#: Progress callback signature: called once per finished spec.
ProgressCallback = Callable[["RunProgress"], None]


@dataclass(frozen=True)
class RunProgress:
    """One progress event: ``done`` of ``total`` specs finished.

    ``attempts`` counts execution attempts for this spec (1 on the happy
    path) and ``outcome`` is the spec's final supervision status, so a
    progress consumer can see retries without parsing the journal.
    """

    done: int
    total: int
    spec: Any
    cached: bool
    attempts: int = 1
    outcome: str = "ok"

    def render(self) -> str:
        """Compact one-line rendering (used by the CLI)."""
        source = "cache" if self.cached else "run"
        if not self.cached and self.attempts > 1:
            source = f"run, attempt {self.attempts}"
        return f"[{self.done}/{self.total}] {self.spec.label()} ({source})"


class ParallelRunner:
    """Executes batches of specs with caching, parallelism and supervision.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` (the default) runs serially in-process;
        ``None`` or ``0`` means one worker per CPU.
    cache:
        A :class:`~repro.orchestrate.cache.ResultCache`,
        :class:`~repro.orchestrate.cache.MemoryCache`, or any object with
        the same ``get``/``put``/``stats`` surface; ``None`` disables
        caching.  Hits skip execution entirely, misses are stored after
        execution.
    progress:
        Optional callback invoked with a :class:`RunProgress` after every
        spec resolves (from cache or execution).
    policy:
        A :class:`~repro.orchestrate.supervisor.RetryPolicy` controlling
        timeouts, retry budget and backoff.  The default policy has no
        timeout and only acts on injected/transient failures, so plain
        runs behave exactly as before supervision existed.
    checkpoint:
        Optional :class:`~repro.orchestrate.checkpoint.SweepManifest`;
        every spec is registered before execution and marked done after
        its result is safely in the cache, enabling crash-safe resume.
    faults:
        Optional :class:`~repro.orchestrate.faults.FaultPlan` for
        deterministic fault injection; defaults to the plan in
        ``$REPRO_FAULTS`` (none in normal operation).
    """

    def __init__(self, jobs: Optional[int] = 1,
                 cache: Optional[Any] = None,
                 progress: Optional[ProgressCallback] = None,
                 policy: Optional[RetryPolicy] = None,
                 checkpoint: Optional[Any] = None,
                 faults: Optional[FaultPlan] = None) -> None:
        if jobs is None or jobs <= 0:
            jobs = os.cpu_count() or 1
        self.jobs = jobs
        self.cache = cache
        self.progress = progress
        self.policy = policy or RetryPolicy()
        self.checkpoint = checkpoint
        self.faults = faults if faults is not None else FaultPlan.from_env()
        self.counters = SupervisionCounters()
        self.outcomes: List[SpecOutcome] = []
        self._results_recorded = 0
        self._executor: Optional[ProcessPoolExecutor] = None
        self._pool_unavailable = False

    def close(self) -> None:
        """Shut down the worker pool (if one was ever created).

        Only called between batches (or after an aborted batch whose pool
        was already killed), so cancelling queued futures cannot race
        results still being collected — the supervisor never returns with
        wanted work still in flight.
        """
        self._discard_executor(kill=False)

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ helpers
    def _notify(self, done: int, total: int, spec, cached: bool,
                attempts: int = 1, outcome: Optional[str] = None) -> None:
        if self.progress is not None:
            if outcome is None:
                outcome = "cached" if cached else "ok"
            self.progress(RunProgress(done=done, total=total, spec=spec,
                                      cached=cached, attempts=attempts,
                                      outcome=outcome))

    def _finish(self, spec, result, outcome: Optional[SpecOutcome] = None):
        """Record a freshly computed result: cache, checkpoint, fault hooks.

        Ordering matters for crash consistency: the result reaches the
        persistent cache *before* the manifest marks the spec done, and
        both happen before the ``kill-supervisor`` injection hook — so a
        crashed supervisor always leaves a resumable (cache, manifest)
        pair behind.
        """
        if self.cache is not None:
            self.cache.put(spec, result)
            if self.faults is not None and outcome is not None:
                self.faults.after_store(outcome.index, spec, self.cache)
        if self.checkpoint is not None:
            self.checkpoint.mark_done(spec)
        self._results_recorded += 1
        if self.faults is not None:
            self.faults.on_result_recorded(self._results_recorded)
        return result

    def _executor_or_none(self) -> Optional[ProcessPoolExecutor]:
        """The shared worker pool, created lazily on first parallel batch.

        The pool lives for the runner's lifetime (until :meth:`close`) or
        until the supervisor kills it after a worker death/hang, so a
        multi-experiment sweep pays worker startup — interpreter + numpy
        import on spawn-based platforms — once, not once per experiment.
        """
        if self._pool_unavailable:
            return None
        if self._executor is None:
            try:
                self._executor = ProcessPoolExecutor(max_workers=self.jobs)
            except (OSError, PermissionError, ValueError):
                # No usable multiprocessing primitives here; stay serial.
                self._pool_unavailable = True
                return None
        return self._executor

    def _discard_executor(self, kill: bool = False) -> None:
        """Release the current pool; ``kill`` tears down hung workers."""
        executor, self._executor = self._executor, None
        if executor is None:
            return
        if kill:
            kill_executor(executor)
        else:
            executor.shutdown(cancel_futures=True)

    # ---------------------------------------------------------------- api
    def run(self, specs: Sequence[Any]) -> List[Any]:
        """Execute every spec; return results in the order specs were given."""
        specs = list(specs)
        total = len(specs)
        if self.checkpoint is not None:
            self.checkpoint.record_specs(specs)
        results: List[Any] = [MISS] * total
        pending: List[Tuple[int, Any, SpecOutcome]] = []
        done = 0
        for index, spec in enumerate(specs):
            label, key = spec_ref(spec)
            outcome = SpecOutcome(index=index, label=label, key=key)
            self.outcomes.append(outcome)
            hit = self.cache.get(spec) if self.cache is not None else MISS
            if hit is not MISS:
                results[index] = hit
                outcome.status = "cached"
                outcome.source = "cache"
                if self.checkpoint is not None:
                    self.checkpoint.mark_done(spec)
                done += 1
                self._notify(done, total, spec, cached=True)
            else:
                pending.append((index, spec, outcome))
        if not pending:
            return results

        use_pool = len(pending) > 1 and self.jobs > 1
        supervisor = Supervisor(self, tasks=pending, results=results,
                                done=done, total=total, use_pool=use_pool)
        try:
            supervisor.run()
        except BaseException:
            # Abort: the batch is over, nobody will collect the remaining
            # futures, and workers may be wedged — kill, don't wait.
            self._discard_executor(kill=True)
            raise
        return results

    # ------------------------------------------------------------- journal
    def journal(self) -> Dict[str, Any]:
        """Structured supervision report across every batch this runner ran."""
        return {
            "journal_schema": 1,
            "policy": asdict(self.policy),
            "counters": self.counters.to_json(),
            "specs": [outcome.to_json() for outcome in self.outcomes],
        }
