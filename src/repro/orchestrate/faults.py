"""Deterministic fault injection for the orchestration layer.

The supervised runner (:mod:`repro.orchestrate.supervisor`) promises that
sweeps survive worker death, hangs and supervisor crashes.  This module is
how that promise is *tested*: a :class:`FaultPlan` describes exactly which
spec executions misbehave and how, and the runner threads the plan into
every execution site — worker processes, the serial fallback path, and the
result-recording hot path on the supervisor itself.

A plan is plain data (picklable, JSON round-trippable) so it crosses process
boundaries with the spec payloads and can be injected from the environment::

    REPRO_FAULTS='{"faults": [{"kind": "kill", "index": 1, "attempt": 0}]}' \
        repro sweep fig3b --scale tiny --jobs 2 --spec-timeout 5

Fault kinds:

``kill``
    The worker process exits abruptly (``os._exit``) — the parent sees a
    ``BrokenProcessPool``, exactly like an OOM kill or a segfault.
``hang``
    The execution sleeps ``delay_s`` seconds before running — push it past
    the runner's per-spec timeout to simulate a wedged worker.
``transient``
    Raises :class:`TransientError`, the retryable failure class (think
    flaky NFS read); the supervisor retries it with backoff.
``error``
    Raises :class:`InjectedFaultError`, a permanent failure: the supervisor
    records it and propagates, like any other spec bug.
``corrupt-cache``
    After the result is stored, its on-disk cache entry is truncated —
    exercising the cache's quarantine path (see
    :meth:`repro.orchestrate.cache.ResultCache.get`).
``kill-supervisor``
    SIGKILLs the *supervisor* process itself after ``after_results``
    results have been recorded — the crash the sweep manifest
    (:mod:`repro.orchestrate.checkpoint`) must survive.

Faults are keyed by ``(index, attempt)``: the spec's position in its
``runner.run()`` batch and the 0-based attempt number.  Because attempt
numbers advance across retries, an attempt-0 fault fires exactly once and
the retry machinery gets to prove it recovers.  ``index=None`` or
``attempt=None`` match any value.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import asdict, dataclass
from random import Random
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.errors import ConfigurationError

#: Environment variable carrying a JSON fault plan (see module docstring).
FAULTS_ENV = "REPRO_FAULTS"

#: Every fault kind a :class:`FaultSpec` accepts.
FAULT_KINDS = (
    "kill", "hang", "transient", "error", "corrupt-cache", "kill-supervisor",
)


class TransientError(RuntimeError):
    """A retryable failure: the supervisor retries these with backoff.

    Spec executions (or fault injection) raise this to signal "try again";
    any other exception is treated as permanent and propagates.
    """


class InjectedFaultError(RuntimeError):
    """A deliberately injected *permanent* failure (``kind="error"``)."""


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault, matched by batch index and attempt number.

    ``once=True`` switches from attempt-keyed to *exactly-once* semantics:
    the fault fires on the spec's first actual execution, whatever attempt
    number that turns out to be, and never again — tracked through a marker
    file in the plan's ``state_dir`` so the guarantee holds across worker
    processes and pool rebuilds.  This is the right mode for ``kill`` and
    ``hang``: a worker death requeues innocent in-flight specs with advanced
    attempt numbers, so an attempt-keyed fault on such a spec would silently
    never fire.
    """

    kind: str
    index: Optional[int] = None      #: batch index to target (None: any)
    attempt: Optional[int] = 0       #: attempt number to fire on (None: any)
    delay_s: float = 30.0            #: sleep duration for ``hang``
    after_results: int = 1           #: result count for ``kill-supervisor``
    once: bool = False               #: fire on first execution, exactly once

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )

    def matches(self, index: int, attempt: int) -> bool:
        """Whether this fault fires for execution ``(index, attempt)``."""
        if self.index is not None and self.index != index:
            return False
        if self.once:
            return True  # any attempt; the marker file enforces exactly-once
        return self.attempt is None or self.attempt == attempt

    def marker_name(self) -> str:
        target = "any" if self.index is None else str(self.index)
        return f"{self.kind}-{target}"


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of faults to inject into one sweep.

    ``state_dir`` (required whenever a fault has ``once=True``) holds the
    marker files that make once-faults exactly-once across processes.
    """

    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0
    state_dir: Optional[str] = None

    # ------------------------------------------------------------ building
    @classmethod
    def from_json(cls, payload: Any) -> "FaultPlan":
        """Build a plan from the JSON form (a dict or a JSON string)."""
        if isinstance(payload, str):
            try:
                payload = json.loads(payload)
            except ValueError as exc:
                raise ConfigurationError(
                    f"invalid fault plan JSON: {exc}"
                ) from exc
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"fault plan must be a JSON object, got {type(payload).__name__}"
            )
        try:
            faults = tuple(FaultSpec(**fault) for fault in payload.get("faults", ()))
        except TypeError as exc:
            raise ConfigurationError(f"invalid fault spec: {exc}") from exc
        return cls(faults=faults, seed=int(payload.get("seed", 0)),
                   state_dir=payload.get("state_dir"))

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan named by ``$REPRO_FAULTS``, or None when unset/empty."""
        raw = os.environ.get(FAULTS_ENV)
        if not raw:
            return None
        return cls.from_json(raw)

    @classmethod
    def random(cls, seed: int, num_specs: int, state_dir: str,
               kills: int = 3, hangs: int = 1, transients: int = 0,
               hang_delay_s: float = 30.0) -> "FaultPlan":
        """A seeded chaos plan: exactly-once faults on distinct specs.

        The chaos CI job derives its plan this way — same seed, same plan,
        so a red run reproduces locally with one environment variable.  All
        faults are ``once=True`` (markers under ``state_dir``), so every
        planned fault actually fires no matter how collateral pool
        breakage reshuffles attempt numbers.
        """
        wanted = kills + hangs + transients
        if wanted > num_specs:
            raise ConfigurationError(
                f"cannot place {wanted} faults on {num_specs} specs"
            )
        rng = Random(seed)
        indices = rng.sample(range(num_specs), wanted)
        faults = []
        for index in indices[:kills]:
            faults.append(FaultSpec(kind="kill", index=index, once=True))
        for index in indices[kills:kills + hangs]:
            faults.append(FaultSpec(kind="hang", index=index, once=True,
                                    delay_s=hang_delay_s))
        for index in indices[kills + hangs:]:
            faults.append(FaultSpec(kind="transient", index=index, once=True))
        return cls(faults=tuple(faults), seed=seed, state_dir=state_dir)

    def to_json(self) -> Dict[str, Any]:
        """The JSON form accepted by :meth:`from_json` / ``$REPRO_FAULTS``."""
        return {"seed": self.seed, "state_dir": self.state_dir,
                "faults": [asdict(f) for f in self.faults]}

    # ----------------------------------------------------- injection sites
    def _matching(self, index: int, attempt: int,
                  kinds: Iterable[str]) -> Iterable[FaultSpec]:
        for fault in self.faults:
            if fault.kind in kinds and fault.matches(index, attempt):
                yield fault

    def _claim_once(self, fault: FaultSpec) -> bool:
        """Atomically claim an exactly-once fault; False if already fired.

        The marker is created *before* the fault acts, so even an
        ``os._exit`` kill cannot fire twice.
        """
        if self.state_dir is None:
            raise ConfigurationError(
                "a once=True fault needs the plan's state_dir for its marker"
            )
        os.makedirs(self.state_dir, exist_ok=True)
        marker = os.path.join(self.state_dir, fault.marker_name())
        try:
            handle = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(handle)
        return True

    def before_execute(self, index: int, attempt: int) -> None:
        """Injection site at the top of every spec execution.

        Runs in the worker process on the pool path and in the supervisor
        process on the serial path — a ``kill`` there takes the supervisor
        down with it, which is precisely the crash ``--resume`` covers.
        """
        for fault in self._matching(index, attempt,
                                    ("kill", "hang", "transient", "error")):
            if fault.once and not self._claim_once(fault):
                continue
            if fault.kind == "hang":
                time.sleep(fault.delay_s)
            elif fault.kind == "kill":
                os._exit(13)  # abrupt worker death: no cleanup, no excuses
            elif fault.kind == "transient":
                raise TransientError(
                    f"injected transient fault (spec {index}, attempt {attempt})"
                )
            else:
                raise InjectedFaultError(
                    f"injected permanent fault (spec {index}, attempt {attempt})"
                )

    def after_store(self, index: int, spec, cache) -> None:
        """Injection site after a result lands in the cache.

        ``corrupt-cache`` faults match on index alone — corruption models
        bit-rot on disk, which does not care which attempt stored the file.
        """
        path_for = getattr(cache, "path_for", None)
        if path_for is None:
            return
        for fault in self.faults:
            if fault.kind != "corrupt-cache":
                continue
            if fault.index is not None and fault.index != index:
                continue
            path = path_for(spec)
            try:
                with open(path, "r+b") as handle:
                    handle.truncate(max(1, path.stat().st_size // 2))
            except OSError:
                pass

    def on_result_recorded(self, count: int) -> None:
        """Injection site after the supervisor records its ``count``-th result."""
        for fault in self.faults:
            if fault.kind == "kill-supervisor" and fault.after_results == count:
                os.kill(os.getpid(), signal.SIGKILL)


def execute_with_faults(spec, index: int, attempt: int,
                        plan: Optional[FaultPlan]):
    """Execute ``spec`` with the plan's faults applied first.

    This is the one choke point both the worker processes and the serial
    fallback path go through, so fault behaviour is identical across
    degradation tiers.
    """
    if plan is not None:
        plan.before_execute(index, attempt)
    return spec.execute()
