"""Experiment orchestration: cacheable run specs and a supervised runner.

Every multi-run experiment in :mod:`repro.analysis` is a grid of independent
simulations — (workload, system) pairs for the Fig. 3 drivers, controller
testbench sweeps for Fig. 5.  This package turns each point of such a grid
into a declarative, picklable *spec* that

* canonically hashes to a stable cache key (:mod:`repro.orchestrate.spec`),
* round-trips its result through JSON (:mod:`repro.orchestrate.serialize`),
* can be persisted in an on-disk cache (:mod:`repro.orchestrate.cache`), and
* can be fanned out across cores (:mod:`repro.orchestrate.parallel`).

Fault tolerance lives in three sibling modules:
:mod:`repro.orchestrate.supervisor` (per-spec timeouts, bounded retries
with backoff, pool rebuilds after worker death),
:mod:`repro.orchestrate.checkpoint` (crash-consistent sweep manifests
behind ``repro sweep --resume``), and :mod:`repro.orchestrate.faults`
(the deterministic fault-injection harness the guarantees are tested with).

:mod:`repro.orchestrate.sweep` ties it together: named experiment subsets
runnable through one shared cache and process pool (the CLI ``sweep``
subcommand).
"""

from repro.orchestrate.cache import CacheStats, ResultCache, default_cache_dir
from repro.orchestrate.checkpoint import ManifestError, SweepManifest
from repro.orchestrate.faults import FaultPlan, FaultSpec, TransientError
from repro.orchestrate.parallel import ParallelRunner, RunProgress
from repro.orchestrate.spec import RunSpec, UtilizationSpec, WorkloadSpec
from repro.orchestrate.supervisor import (
    RetryPolicy,
    SpecOutcome,
    SpecTimeoutError,
    SupervisionCounters,
)
from repro.orchestrate.sweep import expand_sweep, run_sweep

__all__ = [
    "CacheStats",
    "ResultCache",
    "default_cache_dir",
    "FaultPlan",
    "FaultSpec",
    "ManifestError",
    "ParallelRunner",
    "RetryPolicy",
    "RunProgress",
    "RunSpec",
    "SpecOutcome",
    "SpecTimeoutError",
    "SupervisionCounters",
    "SweepManifest",
    "TransientError",
    "UtilizationSpec",
    "WorkloadSpec",
    "expand_sweep",
    "run_sweep",
]
