"""Experiment orchestration: cacheable run specs and a parallel runner.

Every multi-run experiment in :mod:`repro.analysis` is a grid of independent
simulations — (workload, system) pairs for the Fig. 3 drivers, controller
testbench sweeps for Fig. 5.  This package turns each point of such a grid
into a declarative, picklable *spec* that

* canonically hashes to a stable cache key (:mod:`repro.orchestrate.spec`),
* round-trips its result through JSON (:mod:`repro.orchestrate.serialize`),
* can be persisted in an on-disk cache (:mod:`repro.orchestrate.cache`), and
* can be fanned out across cores (:mod:`repro.orchestrate.parallel`).

:mod:`repro.orchestrate.sweep` ties it together: named experiment subsets
runnable through one shared cache and process pool (the CLI ``sweep``
subcommand).
"""

from repro.orchestrate.cache import CacheStats, ResultCache, default_cache_dir
from repro.orchestrate.parallel import ParallelRunner, RunProgress
from repro.orchestrate.spec import RunSpec, UtilizationSpec, WorkloadSpec
from repro.orchestrate.sweep import expand_sweep, run_sweep

__all__ = [
    "CacheStats",
    "ResultCache",
    "default_cache_dir",
    "ParallelRunner",
    "RunProgress",
    "RunSpec",
    "UtilizationSpec",
    "WorkloadSpec",
    "expand_sweep",
    "run_sweep",
]
