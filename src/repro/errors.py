"""Exception hierarchy for the AXI-Pack reproduction library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything raised by this package with a single ``except`` clause
while still being able to distinguish protocol violations from configuration
or simulation problems.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class ProtocolError(ReproError):
    """An AXI4 / AXI-Pack protocol rule was violated.

    Examples: burst longer than 256 beats, a plain AXI4 INCR burst crossing a
    4 KiB boundary, an AXI-Pack request with an unsupported element size, or a
    write burst whose payload does not match its beat count.
    """


class SimulationError(ReproError):
    """The simulator reached an inconsistent or impossible state."""


class DeadlockError(SimulationError):
    """The simulation made no forward progress for too many cycles.

    ``diagnosis`` carries the engine's structured
    :class:`~repro.sim.engine.HangDiagnosis` snapshot (per-component busy
    state, queue occupancies and the blamed queue); ``None`` when the error
    was raised by code without access to an engine snapshot.
    """

    def __init__(self, message: str, diagnosis=None) -> None:
        super().__init__(message)
        self.diagnosis = diagnosis


class MemoryAccessError(ReproError):
    """An access fell outside the modelled memory or was misaligned.

    Every out-of-range functional access — storage reads/writes, burst
    payload helpers, image initialization — raises this one class, so
    callers can distinguish "the program touched bad memory" from an AXI
    protocol violation (:class:`ProtocolError`).  Note that the *simulated*
    bus never raises it: cycle-level endpoints convert bad addresses into
    in-band SLVERR/DECERR responses (see :mod:`repro.axi.types`).
    """


class WorkloadError(ReproError):
    """A workload was built with invalid parameters or produced bad data."""
