"""Bit-level helpers used by the AXI user-field encoders and bank mappers."""

from __future__ import annotations

from repro.errors import ConfigurationError


def mask(width: int) -> int:
    """Return a bit mask with the ``width`` least-significant bits set.

    >>> mask(4)
    15
    >>> mask(0)
    0
    """
    if width < 0:
        raise ConfigurationError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def clog2(value: int) -> int:
    """Return ``ceil(log2(value))`` for a positive integer.

    This mirrors the SystemVerilog ``$clog2`` function used throughout the
    original RTL to size address and index fields.

    >>> clog2(1)
    0
    >>> clog2(8)
    3
    >>> clog2(9)
    4
    """
    if value <= 0:
        raise ConfigurationError(f"clog2 requires a positive value, got {value}")
    return (value - 1).bit_length()


def bit_length_for(max_value: int) -> int:
    """Return the number of bits needed to represent values ``0..max_value``."""
    if max_value < 0:
        raise ConfigurationError(f"max_value must be non-negative, got {max_value}")
    return max(1, max_value.bit_length())


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def next_power_of_two(value: int) -> int:
    """Return the smallest power of two greater than or equal to ``value``."""
    if value <= 0:
        raise ConfigurationError(f"value must be positive, got {value}")
    return 1 << clog2(value) if value > 1 else 1


def extract_field(word: int, offset: int, width: int) -> int:
    """Extract ``width`` bits starting at ``offset`` from ``word``."""
    if offset < 0 or width < 0:
        raise ConfigurationError("field offset and width must be non-negative")
    return (word >> offset) & mask(width)


def insert_field(word: int, offset: int, width: int, value: int) -> int:
    """Return ``word`` with ``value`` inserted at ``offset`` over ``width`` bits.

    The value must fit in the field; anything wider is a caller bug and raises
    :class:`~repro.errors.ConfigurationError` rather than being silently
    truncated (silent truncation is how real user-field encoding bugs hide).
    """
    if value < 0 or value > mask(width):
        raise ConfigurationError(
            f"value {value} does not fit in a {width}-bit field"
        )
    cleared = word & ~(mask(width) << offset)
    return cleared | (value << offset)
