"""Math helpers: ceiling division, primality, simple statistics."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ConfigurationError


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division.

    >>> ceil_div(7, 4)
    2
    >>> ceil_div(8, 4)
    2
    """
    if denominator <= 0:
        raise ConfigurationError(f"denominator must be positive, got {denominator}")
    return -(-numerator // denominator)


def round_up_to(value: int, multiple: int) -> int:
    """Round ``value`` up to the nearest multiple of ``multiple``."""
    return ceil_div(value, multiple) * multiple


def is_prime(value: int) -> bool:
    """Return True if ``value`` is prime (trial division; inputs are small).

    Bank counts in the paper are at most 32, so trial division is plenty.
    """
    if value < 2:
        return False
    if value < 4:
        return True
    if value % 2 == 0:
        return False
    divisor = 3
    while divisor * divisor <= value:
        if value % divisor == 0:
            return False
        divisor += 2
    return True


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean of a non-empty iterable of numbers."""
    items: Sequence[float] = list(values)
    if not items:
        raise ConfigurationError("mean of an empty sequence is undefined")
    return sum(items) / len(items)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of a non-empty iterable of positive numbers."""
    items: Sequence[float] = list(values)
    if not items:
        raise ConfigurationError("geometric mean of an empty sequence is undefined")
    product = 1.0
    for value in items:
        if value <= 0:
            raise ConfigurationError("geometric mean requires positive values")
        product *= value
    return product ** (1.0 / len(items))
