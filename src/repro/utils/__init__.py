"""Small shared utilities: bit manipulation, validation and math helpers."""

from repro.utils.bitutils import (
    bit_length_for,
    clog2,
    extract_field,
    insert_field,
    is_power_of_two,
    mask,
    next_power_of_two,
)
from repro.utils.validation import (
    check_in_range,
    check_multiple_of,
    check_positive,
    check_power_of_two,
)
from repro.utils.math import ceil_div, is_prime, mean, round_up_to

__all__ = [
    "bit_length_for",
    "clog2",
    "extract_field",
    "insert_field",
    "is_power_of_two",
    "mask",
    "next_power_of_two",
    "check_in_range",
    "check_multiple_of",
    "check_positive",
    "check_power_of_two",
    "ceil_div",
    "is_prime",
    "mean",
    "round_up_to",
]
