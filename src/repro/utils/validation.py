"""Argument validation helpers with consistent error messages."""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.utils.bitutils import is_power_of_two


def check_positive(name: str, value: int) -> int:
    """Raise unless ``value`` is a positive integer; return it otherwise."""
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return value


def check_in_range(name: str, value: int, low: int, high: int) -> int:
    """Raise unless ``low <= value <= high``; return ``value`` otherwise."""
    if not low <= value <= high:
        raise ConfigurationError(
            f"{name} must be in [{low}, {high}], got {value}"
        )
    return value


def check_power_of_two(name: str, value: int) -> int:
    """Raise unless ``value`` is a power of two; return ``value`` otherwise."""
    if not is_power_of_two(value):
        raise ConfigurationError(f"{name} must be a power of two, got {value}")
    return value


def check_multiple_of(name: str, value: int, divisor: int) -> int:
    """Raise unless ``value`` is a multiple of ``divisor``."""
    if divisor <= 0:
        raise ConfigurationError(f"divisor for {name} must be positive")
    if value % divisor != 0:
        raise ConfigurationError(
            f"{name} must be a multiple of {divisor}, got {value}"
        )
    return value
