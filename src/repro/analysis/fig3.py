"""Figure 3 experiments: workload performance on BASE / PACK / IDEAL.

All drivers take a ``scale`` argument: ``"small"`` runs in seconds (for tests
and pytest-benchmark), ``"medium"`` in a couple of minutes, and ``"paper"``
approaches the paper's problem sizes (256x256 dense matrices and a
heart1-like sparse matrix with 390 average nonzeros per row).

Every driver also takes a ``runner``: a
:class:`~repro.orchestrate.parallel.ParallelRunner` through which all
simulation runs are submitted as one batch, enabling result caching and
multi-core fan-out.  With the default runner the behavior is the classic
serial, uncached execution.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.report import ExperimentTable
from repro.errors import ConfigurationError
from repro.system.config import SystemConfig, SystemKind
from repro.system.results import WorkloadComparison
from repro.system.runner import ALL_KINDS, compare_systems_many
from repro.workloads.registry import WORKLOAD_ORDER

#: Problem sizes per scale: (dense matrix dim, sparse rows, sparse nnz/row).
SCALES = {
    "tiny": (16, 16, 8.0),
    "small": (48, 48, 32.0),
    "medium": (128, 128, 128.0),
    "paper": (256, 256, 390.0),
}


def _sizes(scale: str):
    if scale not in SCALES:
        raise ConfigurationError(f"unknown scale {scale!r}; choose from {sorted(SCALES)}")
    return SCALES[scale]


def _workload_spec(name: str, scale: str):
    """The declarative workload description for one benchmark at one scale."""
    from repro.orchestrate.spec import WorkloadSpec

    dense_n, sparse_rows, nnz = _sizes(scale)
    if name in ("ismt", "gemv", "trmv"):
        return WorkloadSpec.create(name, size=dense_n)
    return WorkloadSpec.create(name, size=sparse_rows,
                               avg_nnz_per_row=min(nnz, sparse_rows))


def figure_3a(
    scale: str = "small",
    config: Optional[SystemConfig] = None,
    workloads: Sequence[str] = WORKLOAD_ORDER,
    verify: bool = True,
    runner=None,
) -> ExperimentTable:
    """Fig. 3a: speedups over BASE and R-bus utilizations for all workloads."""
    config = config or SystemConfig()
    table = ExperimentTable(
        experiment="fig3a",
        caption="Speedups and R bus utilizations across workloads",
        headers=[
            "workload", "base_cycles", "pack_cycles", "ideal_cycles",
            "pack_speedup", "ideal_speedup", "base_Rutil", "pack_Rutil",
            "ideal_Rutil", "ideal_Rutil_no_idx", "verified",
        ],
    )
    comparisons = collect_figure_3a_comparisons(
        scale, config, workloads, verify=verify, runner=runner
    )
    for name in workloads:
        comparison = comparisons[name]
        table.add_row(
            name,
            comparison.base.cycles,
            comparison.pack.cycles,
            comparison.ideal.cycles,
            comparison.pack_speedup,
            comparison.ideal_speedup,
            comparison.base.r_utilization,
            comparison.pack.r_utilization,
            comparison.ideal.r_utilization,
            comparison.ideal.r_utilization_no_index,
            all(r.verified for r in (comparison.base, comparison.pack, comparison.ideal)),
        )
    note = f"scale={scale}, bus={config.bus_bits}b, banks={config.num_banks}"
    if config.num_engines > 1:
        note += (f", engines={config.num_engines} "
                 f"(sharded, {config.arbitration} arbitration)")
    table.add_note(note)
    return table


def collect_figure_3a_comparisons(
    scale: str = "small",
    config: Optional[SystemConfig] = None,
    workloads: Sequence[str] = WORKLOAD_ORDER,
    verify: bool = False,
    runner=None,
) -> Dict[str, WorkloadComparison]:
    """Raw comparisons behind Fig. 3a (reused by the Fig. 4c energy model)."""
    config = config or SystemConfig()
    specs = [_workload_spec(name, scale) for name in workloads]
    return compare_systems_many(specs, config, verify=verify, runner=runner)


def _dataflow_table(workload_name: str, experiment: str, scale: str,
                    config: Optional[SystemConfig], verify: bool,
                    runner=None) -> ExperimentTable:
    from repro.orchestrate.parallel import ParallelRunner
    from repro.orchestrate.spec import RunSpec, WorkloadSpec

    config = config or SystemConfig()
    runner = runner or ParallelRunner()
    dense_n, _, _ = _sizes(scale)
    table = ExperimentTable(
        experiment=experiment,
        caption=f"{workload_name} row- vs column-wise dataflow",
        headers=["dataflow", "system", "cycles", "r_utilization", "verified"],
    )
    grid = [(dataflow, kind)
            for dataflow in ("row", "col")
            for kind in ALL_KINDS]
    specs = [
        RunSpec(
            workload=WorkloadSpec.create(workload_name, size=dense_n, dataflow=dataflow),
            config=config, kind=kind, verify=verify,
        )
        for dataflow, kind in grid
    ]
    for (dataflow, kind), result in zip(grid, runner.run(specs)):
        table.add_row(dataflow, kind.value, result.cycles,
                      result.r_utilization, bool(result.verified))
    table.add_note(f"scale={scale}: row-wise flows perform identically on BASE and "
                   "PACK; column-wise flows need packed strided accesses to win")
    return table


def figure_3b(scale: str = "small", config: Optional[SystemConfig] = None,
              verify: bool = True, runner=None) -> ExperimentTable:
    """Fig. 3b: gemv dataflows compared on all three systems."""
    return _dataflow_table("gemv", "fig3b", scale, config, verify, runner)


def figure_3c(scale: str = "small", config: Optional[SystemConfig] = None,
              verify: bool = True, runner=None) -> ExperimentTable:
    """Fig. 3c: trmv dataflows compared on all three systems."""
    return _dataflow_table("trmv", "fig3c", scale, config, verify, runner)


def _bus_sweep_table(
    experiment: str,
    caption: str,
    headers: Sequence[str],
    bus_bits: Sequence[int],
    points: Sequence,
    point_spec,
    config: SystemConfig,
    verify: bool,
    runner,
) -> ExperimentTable:
    """Shared shape of Figs. 3d/3e: (bus width x sweep point) BASE/PACK grids.

    ``point_spec(point)`` returns the :class:`WorkloadSpec` for one sweep
    point; each grid cell contributes a BASE and a PACK run and one table row
    ``[bus, point, base_cycles, pack_cycles, speedup]``.
    """
    import dataclasses

    from repro.orchestrate.parallel import ParallelRunner
    from repro.orchestrate.spec import RunSpec

    runner = runner or ParallelRunner()
    table = ExperimentTable(experiment=experiment, caption=caption, headers=headers)
    grid = [(bus, point) for bus in bus_bits for point in points]
    specs: List[RunSpec] = []
    for bus, point in grid:
        bus_config = dataclasses.replace(config, bus_bytes=bus // 8)
        workload = point_spec(point)
        for kind in (SystemKind.BASE, SystemKind.PACK):
            specs.append(RunSpec(workload=workload, config=bus_config,
                                 kind=kind, verify=verify))
    results = runner.run(specs)
    for index, (bus, point) in enumerate(grid):
        base, pack = results[2 * index], results[2 * index + 1]
        table.add_row(bus, point, base.cycles, pack.cycles,
                      base.cycles / pack.cycles)
    return table


def figure_3d(
    dimensions: Optional[Iterable[int]] = None,
    bus_bits: Sequence[int] = (64, 128, 256),
    config: Optional[SystemConfig] = None,
    verify: bool = False,
    runner=None,
) -> ExperimentTable:
    """Fig. 3d: ismt PACK speedup versus matrix dimension and bus width."""
    from repro.orchestrate.spec import WorkloadSpec

    config = config or SystemConfig()
    dimensions = list(dimensions) if dimensions is not None else [8, 16, 32, 64, 128]
    table = _bus_sweep_table(
        experiment="fig3d",
        caption="ismt PACK speedup over BASE vs matrix dimension and bus width",
        headers=["bus_bits", "dimension", "base_cycles", "pack_cycles", "speedup"],
        bus_bits=bus_bits,
        points=dimensions,
        point_spec=lambda dim: WorkloadSpec.create("ismt", size=dim),
        config=config,
        verify=verify,
        runner=runner,
    )
    table.add_note("speedups grow with dimension (longer streams) and bus width "
                   "(narrow BASE accesses waste more)")
    return table


def figure_3e(
    nnz_per_row: Optional[Iterable[float]] = None,
    bus_bits: Sequence[int] = (64, 128, 256),
    num_rows: int = 48,
    config: Optional[SystemConfig] = None,
    verify: bool = False,
    runner=None,
) -> ExperimentTable:
    """Fig. 3e: spmv PACK speedup versus average nonzeros per row and bus width."""
    from repro.orchestrate.spec import WorkloadSpec

    config = config or SystemConfig()
    nnz_per_row = list(nnz_per_row) if nnz_per_row is not None else [2, 8, 16, 32, 48]
    table = _bus_sweep_table(
        experiment="fig3e",
        caption="spmv PACK speedup over BASE vs nonzeros per row and bus width",
        headers=["bus_bits", "nnz_per_row", "base_cycles", "pack_cycles", "speedup"],
        bus_bits=bus_bits,
        points=nnz_per_row,
        point_spec=lambda nnz: WorkloadSpec.create(
            "spmv", size=max(num_rows, int(nnz) + 1), avg_nnz_per_row=float(nnz)
        ),
        config=config,
        verify=verify,
        runner=runner,
    )
    table.add_note("nonzeros per row set the stream length of each row iteration; "
                   "short rows are dominated by iteration overhead")
    return table
