"""Figure 3 experiments: workload performance on BASE / PACK / IDEAL.

All drivers take a ``scale`` argument: ``"small"`` runs in seconds (for tests
and pytest-benchmark), ``"medium"`` in a couple of minutes, and ``"paper"``
approaches the paper's problem sizes (256x256 dense matrices and a
heart1-like sparse matrix with 390 average nonzeros per row).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.analysis.report import ExperimentTable
from repro.errors import ConfigurationError
from repro.system.config import SystemConfig, SystemKind
from repro.system.results import WorkloadComparison
from repro.system.runner import compare_systems, run_workload
from repro.workloads.registry import WORKLOAD_ORDER, make_workload

#: Problem sizes per scale: (dense matrix dim, sparse rows, sparse nnz/row).
SCALES = {
    "tiny": (16, 16, 8.0),
    "small": (48, 48, 32.0),
    "medium": (128, 128, 128.0),
    "paper": (256, 256, 390.0),
}


def _sizes(scale: str):
    if scale not in SCALES:
        raise ConfigurationError(f"unknown scale {scale!r}; choose from {sorted(SCALES)}")
    return SCALES[scale]


def _workload_factory(name: str, scale: str):
    dense_n, sparse_rows, nnz = _sizes(scale)
    if name in ("ismt", "gemv", "trmv"):
        return lambda: make_workload(name, size=dense_n)
    return lambda: make_workload(name, size=sparse_rows, avg_nnz_per_row=min(nnz, sparse_rows))


def figure_3a(
    scale: str = "small",
    config: Optional[SystemConfig] = None,
    workloads: Sequence[str] = WORKLOAD_ORDER,
    verify: bool = True,
) -> ExperimentTable:
    """Fig. 3a: speedups over BASE and R-bus utilizations for all workloads."""
    config = config or SystemConfig()
    table = ExperimentTable(
        experiment="fig3a",
        caption="Speedups and R bus utilizations across workloads",
        headers=[
            "workload", "base_cycles", "pack_cycles", "ideal_cycles",
            "pack_speedup", "ideal_speedup", "base_Rutil", "pack_Rutil",
            "ideal_Rutil", "ideal_Rutil_no_idx", "verified",
        ],
    )
    for name in workloads:
        comparison = compare_systems(_workload_factory(name, scale), config, verify=verify)
        table.add_row(
            name,
            comparison.base.cycles,
            comparison.pack.cycles,
            comparison.ideal.cycles,
            comparison.pack_speedup,
            comparison.ideal_speedup,
            comparison.base.r_utilization,
            comparison.pack.r_utilization,
            comparison.ideal.r_utilization,
            comparison.ideal.r_utilization_no_index,
            all(r.verified for r in (comparison.base, comparison.pack, comparison.ideal)),
        )
    table.add_note(f"scale={scale}, bus={config.bus_bits}b, banks={config.num_banks}")
    return table


def collect_figure_3a_comparisons(
    scale: str = "small",
    config: Optional[SystemConfig] = None,
    workloads: Sequence[str] = WORKLOAD_ORDER,
    verify: bool = False,
) -> Dict[str, WorkloadComparison]:
    """Raw comparisons behind Fig. 3a (reused by the Fig. 4c energy model)."""
    config = config or SystemConfig()
    return {
        name: compare_systems(_workload_factory(name, scale), config, verify=verify)
        for name in workloads
    }


def _dataflow_table(workload_name: str, experiment: str, scale: str,
                    config: Optional[SystemConfig], verify: bool) -> ExperimentTable:
    config = config or SystemConfig()
    dense_n, _, _ = _sizes(scale)
    table = ExperimentTable(
        experiment=experiment,
        caption=f"{workload_name} row- vs column-wise dataflow",
        headers=["dataflow", "system", "cycles", "r_utilization", "verified"],
    )
    for dataflow in ("row", "col"):
        for kind in (SystemKind.BASE, SystemKind.PACK, SystemKind.IDEAL):
            workload = make_workload(workload_name, size=dense_n, dataflow=dataflow)
            result = run_workload(workload, config, kind=kind, verify=verify)
            table.add_row(dataflow, kind.value, result.cycles,
                          result.r_utilization, bool(result.verified))
    table.add_note(f"scale={scale}: row-wise flows perform identically on BASE and "
                   "PACK; column-wise flows need packed strided accesses to win")
    return table


def figure_3b(scale: str = "small", config: Optional[SystemConfig] = None,
              verify: bool = True) -> ExperimentTable:
    """Fig. 3b: gemv dataflows compared on all three systems."""
    return _dataflow_table("gemv", "fig3b", scale, config, verify)


def figure_3c(scale: str = "small", config: Optional[SystemConfig] = None,
              verify: bool = True) -> ExperimentTable:
    """Fig. 3c: trmv dataflows compared on all three systems."""
    return _dataflow_table("trmv", "fig3c", scale, config, verify)


def figure_3d(
    dimensions: Optional[Iterable[int]] = None,
    bus_bits: Sequence[int] = (64, 128, 256),
    config: Optional[SystemConfig] = None,
    verify: bool = False,
) -> ExperimentTable:
    """Fig. 3d: ismt PACK speedup versus matrix dimension and bus width."""
    config = config or SystemConfig()
    dimensions = list(dimensions) if dimensions is not None else [8, 16, 32, 64, 128]
    table = ExperimentTable(
        experiment="fig3d",
        caption="ismt PACK speedup over BASE vs matrix dimension and bus width",
        headers=["bus_bits", "dimension", "base_cycles", "pack_cycles", "speedup"],
    )
    for bus in bus_bits:
        bus_config = SystemConfig(
            kind=config.kind, bus_bytes=bus // 8, word_bytes=config.word_bytes,
            num_banks=config.num_banks, queue_depth=config.queue_depth,
            memory_bytes=config.memory_bytes,
        )
        for dim in dimensions:
            factory = lambda d=dim: make_workload("ismt", size=d)
            base = run_workload(factory(), bus_config, kind=SystemKind.BASE, verify=verify)
            pack = run_workload(factory(), bus_config, kind=SystemKind.PACK, verify=verify)
            table.add_row(bus, dim, base.cycles, pack.cycles,
                          base.cycles / pack.cycles)
    table.add_note("speedups grow with dimension (longer streams) and bus width "
                   "(narrow BASE accesses waste more)")
    return table


def figure_3e(
    nnz_per_row: Optional[Iterable[float]] = None,
    bus_bits: Sequence[int] = (64, 128, 256),
    num_rows: int = 48,
    config: Optional[SystemConfig] = None,
    verify: bool = False,
) -> ExperimentTable:
    """Fig. 3e: spmv PACK speedup versus average nonzeros per row and bus width."""
    config = config or SystemConfig()
    nnz_per_row = list(nnz_per_row) if nnz_per_row is not None else [2, 8, 16, 32, 48]
    table = ExperimentTable(
        experiment="fig3e",
        caption="spmv PACK speedup over BASE vs nonzeros per row and bus width",
        headers=["bus_bits", "nnz_per_row", "base_cycles", "pack_cycles", "speedup"],
    )
    for bus in bus_bits:
        bus_config = SystemConfig(
            kind=config.kind, bus_bytes=bus // 8, word_bytes=config.word_bytes,
            num_banks=config.num_banks, queue_depth=config.queue_depth,
            memory_bytes=config.memory_bytes,
        )
        for nnz in nnz_per_row:
            rows = max(num_rows, int(nnz) + 1)
            factory = lambda k=nnz, r=rows: make_workload(
                "spmv", size=r, avg_nnz_per_row=float(k)
            )
            base = run_workload(factory(), bus_config, kind=SystemKind.BASE, verify=verify)
            pack = run_workload(factory(), bus_config, kind=SystemKind.PACK, verify=verify)
            table.add_row(bus, nnz, base.cycles, pack.cycles,
                          base.cycles / pack.cycles)
    table.add_note("nonzeros per row set the stream length of each row iteration; "
                   "short rows are dominated by iteration overhead")
    return table
