"""Result tables: formatting, CSV export and simple text plots."""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from typing import Iterable, List, Mapping, Sequence, Union

Number = Union[int, float]
Cell = Union[str, Number]


@dataclass
class ExperimentTable:
    """One reproduced figure: a caption, column headers and data rows."""

    experiment: str
    caption: str
    headers: Sequence[str]
    rows: List[Sequence[Cell]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        """Append one data row."""
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        """Append a free-form note shown under the table."""
        self.notes.append(note)

    def render(self) -> str:
        """Human-readable rendering of the table."""
        body = format_table(self.rows, self.headers)
        lines = [f"== {self.experiment}: {self.caption} ==", body]
        lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)

    def to_dicts(self) -> List[Mapping[str, Cell]]:
        """Rows as dictionaries keyed by header."""
        return [dict(zip(self.headers, row)) for row in self.rows]


def _format_cell(cell: Cell) -> str:
    if isinstance(cell, float):
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        return f"{cell:.3f}"
    return str(cell)


def format_table(rows: Iterable[Sequence[Cell]], headers: Sequence[str]) -> str:
    """Render rows as an aligned text table."""
    rendered = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))
    out = [line(list(headers)), line(["-" * width for width in widths])]
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


def write_csv(table: ExperimentTable, path: str) -> None:
    """Write one experiment table to a CSV file."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.headers)
        writer.writerows(table.rows)


def text_bar_chart(labels: Sequence[str], values: Sequence[float],
                   width: int = 40, unit: str = "") -> str:
    """Simple horizontal ASCII bar chart (used by the CLI)."""
    if not values:
        return "(no data)"
    peak = max(values) or 1.0
    lines = []
    label_width = max(len(label) for label in labels)
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(width * value / peak)))
        lines.append(f"{label.rjust(label_width)} | {bar} {value:.3g}{unit}")
    return "\n".join(lines)
