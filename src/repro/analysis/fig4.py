"""Figure 4 experiments: adapter area, timing and benchmark energy."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis.fig3 import collect_figure_3a_comparisons
from repro.analysis.report import ExperimentTable
from repro.hw.area import AdapterAreaModel
from repro.hw.energy import EnergyModel
from repro.hw.technology import GF22FDX
from repro.hw.timing import TimingModel
from repro.system.config import SystemConfig
from repro.system.results import WorkloadComparison
from repro.workloads.registry import WORKLOAD_ORDER


def figure_4a(
    clock_periods_ps: Sequence[float] = (1000, 1250, 1500, 2000, 2500, 3000),
    bus_bits: Sequence[int] = (64, 128, 256),
) -> ExperimentTable:
    """Fig. 4a: adapter area versus clock constraint for three bus widths."""
    model = AdapterAreaModel()
    timing = TimingModel()
    table = ExperimentTable(
        experiment="fig4a",
        caption="Adapter area versus minimum clock period",
        headers=["bus_bits", "clock_ps", "area_kge", "min_period_ps"],
    )
    for bus in bus_bits:
        minimum = timing.min_period_ps(bus)
        for period in sorted(set(list(clock_periods_ps) + [minimum])):
            if period < minimum:
                continue
            table.add_row(bus, period, model.total_area_kge(bus, period), minimum)
    table.add_note("areas scale linearly with bus width; pushing below 1 ns costs "
                   "a small area premium (paper: 69/130/257 kGE at 1 GHz)")
    return table


def figure_4b(bus_bits: int = 256, clock_ps: float = 1000.0) -> ExperimentTable:
    """Fig. 4b: hierarchical area breakdown of the adapter."""
    model = AdapterAreaModel()
    breakdown = model.breakdown(bus_bits, clock_ps)
    table = ExperimentTable(
        experiment="fig4b",
        caption=f"Adapter area breakdown ({bus_bits}-bit bus)",
        headers=["component", "area_kge", "share"],
    )
    for name, area, share in breakdown.as_rows():
        table.add_row(name, area, share)
    table.add_row("total", breakdown.total_kge, 1.0)
    table.add_note(
        f"adapter is {model.fraction_of_ara(bus_bits, clock_ps, GF22FDX.ara_area_kge):.1%} "
        "of Ara's area (paper: 6.2%)"
    )
    return table


def figure_4c(
    scale: str = "small",
    config: Optional[SystemConfig] = None,
    comparisons: Optional[Dict[str, WorkloadComparison]] = None,
    workloads: Sequence[str] = WORKLOAD_ORDER,
    runner=None,
) -> ExperimentTable:
    """Fig. 4c: benchmark power and energy-efficiency improvement of PACK.

    ``comparisons`` can be passed in when Fig. 3a was already simulated so
    the runs are not repeated; with a caching ``runner`` the same reuse
    happens automatically through the result cache.
    """
    if comparisons is None:
        # Cache keys ignore the verify flag, but only *verified* entries can
        # serve figure_3a's verify=True requests.  With a caching runner,
        # verifying here (a cheap numpy reference check per run) makes the
        # fig3a<->fig4c reuse order-independent: whichever figure simulates
        # first, the other hits the cache.  Without a cache there is nothing
        # to share, so skip verification.
        caching = runner is not None and getattr(runner, "cache", None) is not None
        comparisons = collect_figure_3a_comparisons(scale, config, workloads,
                                                    verify=caching, runner=runner)
    model = EnergyModel()
    table = ExperimentTable(
        experiment="fig4c",
        caption="Benchmark power and energy-efficiency improvement (PACK vs BASE)",
        headers=["workload", "base_power_mw", "pack_power_mw", "power_increase",
                 "speedup", "energy_efficiency_improvement"],
    )
    for name in workloads:
        comparison = comparisons[name]
        energy = model.compare(comparison.base, comparison.pack)
        table.add_row(name, energy.base_power_mw, energy.pack_power_mw,
                      energy.power_increase, energy.speedup,
                      energy.energy_efficiency_improvement)
    table.add_note("power is an analytic activity-based model calibrated to the "
                   "paper's 22FDX numbers; efficiency = speedup x power ratio")
    return table
