"""Perf/area/energy Pareto sweep over the M×N crossbar topology space.

The paper evaluates performance (Fig. 3/5), area (Fig. 4a/b, 5c) and power
(Fig. 4c) separately, always on the single-engine, single-channel system.
This experiment closes the loop the paper never draws: it sweeps the full
(engines × memory channels × BASE/PACK/IDEAL) topology cube, measures each
point's cycles and per-channel traffic in the simulator, and joins them with
the calibrated hardware models —
:class:`~repro.hw.crossbar_area.BankCrossbarAreaModel` and
:class:`~repro.hw.area.AdapterAreaModel` for area,
:meth:`~repro.hw.energy.EnergyModel.topology_power_mw` for power — so every
row carries perf (cycles, speedup), area (kGE), power (mW) and
energy-efficiency together: a perf/area/energy Pareto surface.

Conventions (documented in ``docs/hardware.md``):

* **speedup** and **energy_eff** are relative to the BASE 1×1 run of the
  same workload, so rows are comparable across systems and topologies.
* **area_kge** counts what the topology instantiates: one Ara per engine,
  and per channel a bank crossbar (BASE/PACK) plus an AXI-Pack adapter
  (PACK only).  IDEAL's magic memory deliberately has no area model — its
  rows are the unreachable upper-left frontier of the Pareto plot.
* **power_mw** feeds the measured per-channel beat rates (the ``chan{j}.``
  stats) into the topology power model, so channel imbalance shows up as
  less traffic power than M perfectly-loaded channels would burn.
* **chan_imbalance** is max/mean beats across channels (1.0 = perfectly
  balanced); single-channel rows are 1.0 by construction.

The committed ``results/pareto.csv`` is the ``--scale small`` sweep;
regenerate it with ``repro pareto --csv results/pareto.csv``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

from repro.analysis.headline import workload_spec_kwargs
from repro.analysis.report import ExperimentTable
from repro.hw.area import AdapterAreaModel
from repro.hw.crossbar_area import BankCrossbarAreaModel
from repro.hw.energy import EnergyModel
from repro.hw.technology import GF22FDX
from repro.system.config import SystemConfig, SystemKind
from repro.system.results import SystemRunResult

#: Workloads of the committed sweep: one packed-strided kernel that is
#: bus-bound under PACK (gemv) and two indirect kernels with headroom.
PARETO_WORKLOADS: Tuple[str, ...] = ("gemv", "spmv", "csrspmv")

#: Engine counts swept (1 is the baseline the speedups are relative to).
PARETO_ENGINES: Tuple[int, ...] = (1, 2, 4)

#: Memory-channel counts swept.
PARETO_CHANNELS: Tuple[int, ...] = (1, 2, 4)

#: All three systems; IDEAL rows bound the frontier (no area/adapter cost).
PARETO_KINDS: Tuple[SystemKind, ...] = (
    SystemKind.BASE, SystemKind.PACK, SystemKind.IDEAL,
)


def topology_area_kge(config: SystemConfig, kind: SystemKind,
                      num_engines: int, num_channels: int) -> float:
    """Instantiated area of one topology point, in kGE.

    Engines cost one Ara each (the technology yardstick the paper uses for
    its "adapter is 6.2 % of Ara" headline).  Each memory channel costs one
    word-port × bank crossbar (BASE and PACK) and, under PACK, one AXI-Pack
    adapter sized for the configured bus width.  IDEAL models a perfect
    memory with no synthesizable implementation, so only its engines count.
    """
    area = num_engines * GF22FDX.ara_area_kge
    if kind is SystemKind.IDEAL:
        return area
    crossbar = BankCrossbarAreaModel(
        num_ports=config.lanes, word_bits=config.word_bytes * 8
    )
    per_channel = crossbar.total_kge(config.num_banks)
    if kind is SystemKind.PACK:
        per_channel += AdapterAreaModel().total_area_kge(config.bus_bits)
    return area + num_channels * per_channel


def channel_beat_rates(result: SystemRunResult,
                       num_channels: int) -> Optional[List[float]]:
    """Measured per-channel (R+W) beats per cycle, from the chan{j}. stats.

    Returns ``None`` for single-channel results (the bare counters already
    describe the one channel) or when the per-channel counters are absent
    (e.g. a result deserialized from a pre-crossbar cache entry).
    """
    if num_channels <= 1:
        return None
    cycles = max(1, result.cycles)
    rates: List[float] = []
    for index in range(num_channels):
        prefix = f"chan{index}."
        beats = 0.0
        for counter in ("adapter.r_beats", "adapter.w_beats",
                        "ideal.r_beats", "ideal.w_beats"):
            beats += float(result.stats.get(prefix + counter, 0.0))
        rates.append(beats / cycles)
    if not any(rates):
        return None
    return rates


def figure_pareto(
    scale: str = "small",
    config: Optional[SystemConfig] = None,
    workloads: Sequence[str] = PARETO_WORKLOADS,
    engines: Optional[Sequence[int]] = None,
    channels: Optional[Sequence[int]] = None,
    kinds: Sequence[SystemKind] = PARETO_KINDS,
    verify: bool = True,
    runner=None,
) -> ExperimentTable:
    """Perf/area/energy for every (workload × system × engines × channels).

    ``engines`` and ``channels`` default to the standard 1/2/4 sweeps,
    extended by the configuration's own ``num_engines`` / ``num_channels``
    so ``repro pareto --engines 8`` (CLI: ``--engines 8 --channels ...``)
    sweeps up to the requested counts.
    """
    from repro.orchestrate.parallel import ParallelRunner
    from repro.orchestrate.spec import RunSpec, WorkloadSpec

    config = config or SystemConfig()
    if engines is None:
        engines = tuple(sorted({*PARETO_ENGINES, config.num_engines}))
    engines = tuple(engines)
    if channels is None:
        channels = tuple(sorted({*PARETO_CHANNELS, config.num_channels}))
    channels = tuple(channels)
    if 1 not in engines or 1 not in channels:
        # The 1×1 BASE run anchors speedup and energy efficiency.
        engines = tuple(sorted({1, *engines}))
        channels = tuple(sorted({1, *channels}))
    kinds = tuple(kinds)
    if SystemKind.BASE not in kinds:
        kinds = (SystemKind.BASE,) + kinds
    verify = verify and not config.elides_data

    specs = []
    points = []
    for name in workloads:
        workload = WorkloadSpec.create(name, **workload_spec_kwargs(name, scale))
        for kind in kinds:
            for engine_count in engines:
                for channel_count in channels:
                    point_config = replace(
                        config.with_kind(kind),
                        num_engines=engine_count,
                        num_channels=channel_count,
                    )
                    specs.append(RunSpec(workload=workload, config=point_config,
                                         kind=kind, verify=verify))
                    points.append((name, kind, engine_count, channel_count))
    runner = runner or ParallelRunner()
    results = dict(zip(points, runner.run(specs)))

    energy = EnergyModel()
    table = ExperimentTable(
        experiment="pareto",
        caption="Perf/area/energy Pareto over engines × channels × system",
        headers=[
            "workload", "system", "engines", "channels", "cycles", "speedup",
            "R_util", "chan_imbalance", "area_kge", "power_mw", "energy_eff",
            "verified",
        ],
    )
    for name in workloads:
        anchor = results[(name, SystemKind.BASE, 1, 1)]
        anchor_energy = energy.system_power_mw(anchor) * anchor.cycles
        for kind in kinds:
            for engine_count in engines:
                for channel_count in channels:
                    result = results[(name, kind, engine_count, channel_count)]
                    rates = channel_beat_rates(result, channel_count)
                    power = energy.topology_power_mw(
                        result, num_engines=engine_count,
                        num_channels=channel_count,
                        channel_beats_per_cycle=rates,
                    )
                    point_energy = power * result.cycles
                    if rates:
                        mean = sum(rates) / len(rates)
                        imbalance = max(rates) / mean if mean else 1.0
                    else:
                        imbalance = 1.0
                    table.add_row(
                        name,
                        kind.value,
                        engine_count,
                        channel_count,
                        result.cycles,
                        anchor.cycles / result.cycles if result.cycles else 0.0,
                        result.r_utilization,
                        imbalance,
                        topology_area_kge(config, kind, engine_count,
                                          channel_count),
                        power,
                        anchor_energy / point_energy if point_energy else 0.0,
                        result.verified,
                    )
    table.add_note(
        f"scale={scale}, bus={config.bus_bits}b, banks={config.num_banks}, "
        f"stripe={config.channel_stripe_bytes}B, "
        f"arbitration={config.arbitration}; speedup and energy_eff are "
        "relative to the BASE 1x1 run of the same workload; area counts "
        "engines x Ara + channels x (bank crossbar [+ adapter under PACK]); "
        "power joins measured per-channel beat rates with the fig4c model"
    )
    table.add_note(
        "IDEAL rows carry engine area only (its perfect memory has no "
        "synthesizable model) — they bound the frontier, not a design point"
    )
    return table
