"""Contention sweep: N requestors sharing one packed interconnect.

The paper's evaluation is strictly single-requestor: one Ara instance owns
the whole bus, so the utilization numbers of Fig. 3/5 say nothing about how
AXI-Pack behaves when several engines *contend* for one memory system.
This experiment opens that scenario family: for each workload and system it
shards the kernel's rows across 1, 2 and 4 vector engines behind the
cycle-level N:1 mux (:class:`repro.axi.mux.CycleAxiMux`) and measures the
multi-engine speedup and the aggregate shared-bus utilization.

The headline observations (committed in ``results/contention.csv``):

* **Indirect workloads scale.**  Their single-engine R utilization is low
  (the paper's ~39 % ceiling), so a second engine's traffic interleaves
  into the idle bus cycles almost for free — spmv/csrspmv reach ~1.6-1.9x
  at two engines under both BASE and PACK.
* **Packed dense workloads are bus-bound.**  gemv/trmv under PACK already
  stream strided bursts near the bus's one-beat-per-cycle limit, so extra
  engines mostly add arbitration latency; under BASE the same kernels
  scale super-linearly because narrow transfers leave the bus idle.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence, Tuple

from repro.analysis.headline import workload_spec_kwargs
from repro.analysis.report import ExperimentTable
from repro.system.config import SystemConfig, SystemKind

#: Workloads of the committed sweep: one packed-strided kernel that is
#: bus-bound under PACK, and two indirect kernels with contention headroom.
CONTENTION_WORKLOADS: Tuple[str, ...] = ("gemv", "spmv", "csrspmv")

#: Engine counts swept (1 is the baseline the speedups are relative to).
CONTENTION_ENGINES: Tuple[int, ...] = (1, 2, 4)

#: Systems compared; IDEAL is omitted because its exclusive per-lane memory
#: is definitionally contention-free in the paper's sense.
CONTENTION_KINDS: Tuple[SystemKind, ...] = (SystemKind.BASE, SystemKind.PACK)


def figure_contention(
    scale: str = "small",
    config: Optional[SystemConfig] = None,
    workloads: Sequence[str] = CONTENTION_WORKLOADS,
    engines: Optional[Sequence[int]] = None,
    kinds: Sequence[SystemKind] = CONTENTION_KINDS,
    verify: bool = True,
    runner=None,
) -> ExperimentTable:
    """Multi-engine speedup and shared-bus utilization under contention.

    ``engines`` defaults to the standard 1/2/4 sweep, extended by the
    configuration's own ``num_engines`` so ``repro run contention
    --engines 8`` sweeps up to (and including) the requested count.
    """
    from repro.orchestrate.parallel import ParallelRunner
    from repro.orchestrate.spec import RunSpec, WorkloadSpec

    config = config or SystemConfig()
    if engines is None:
        engines = tuple(sorted({*CONTENTION_ENGINES, config.num_engines}))
    engines = tuple(engines)
    if 1 not in engines:
        engines = (1,) + engines  # the speedup baseline must be swept
    verify = verify and not config.elides_data
    specs = []
    points = []
    for name in workloads:
        workload = WorkloadSpec.create(name, **workload_spec_kwargs(name, scale))
        for kind in kinds:
            for count in engines:
                point_config = replace(
                    config.with_kind(kind), num_engines=count
                )
                specs.append(RunSpec(workload=workload, config=point_config,
                                     kind=kind, verify=verify))
                points.append((name, kind, count))
    runner = runner or ParallelRunner()
    results = dict(zip(points, runner.run(specs)))

    table = ExperimentTable(
        experiment="contention",
        caption="Multi-engine contention: speedup and shared-bus utilization",
        headers=[
            "workload", "system", "engines", "cycles", "speedup",
            "R_util", "W_util", "bank_conflicts", "verified",
        ],
    )
    for name in workloads:
        for kind in kinds:
            baseline = results[(name, kind, 1)]
            for count in engines:
                result = results[(name, kind, count)]
                table.add_row(
                    name,
                    kind.value,
                    count,
                    result.cycles,
                    baseline.cycles / result.cycles if result.cycles else 0.0,
                    result.r_utilization,
                    result.w_utilization,
                    result.stats.get("mem.bank_conflicts", 0.0),
                    result.verified,
                )
    table.add_note(
        f"scale={scale}, bus={config.bus_bits}b, banks={config.num_banks}, "
        f"arbitration={config.arbitration}; speedup is relative to the "
        "1-engine run of the same workload/system; R/W util is aggregate "
        "traffic over the one shared bus"
    )
    return table
