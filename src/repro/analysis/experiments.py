"""Experiment registry: map figure ids to their drivers."""

from __future__ import annotations

import inspect
from typing import Callable, Mapping

from repro.analysis import contention, fig3, fig4, fig5, pareto
from repro.analysis.report import ExperimentTable
from repro.errors import ConfigurationError

#: Every reproduced figure, keyed by its id in the paper, plus the
#: beyond-the-paper scenario sweeps (``contention``, ``pareto``).
EXPERIMENTS: Mapping[str, Callable[..., ExperimentTable]] = {
    "fig3a": fig3.figure_3a,
    "fig3b": fig3.figure_3b,
    "fig3c": fig3.figure_3c,
    "fig3d": fig3.figure_3d,
    "fig3e": fig3.figure_3e,
    "fig4a": fig4.figure_4a,
    "fig4b": fig4.figure_4b,
    "fig4c": fig4.figure_4c,
    "fig5a": fig5.figure_5a,
    "fig5b": fig5.figure_5b,
    "fig5c": fig5.figure_5c,
    "contention": contention.figure_contention,
    "pareto": pareto.figure_pareto,
}

def _driver_accepts(driver, parameter: str) -> bool:
    """Whether the driver's signature takes the given keyword."""
    return parameter in inspect.signature(driver).parameters


def run_experiment(name: str, scale: str = "small", runner=None, config=None,
                   **kwargs) -> ExperimentTable:
    """Run one experiment by figure id and return its result table.

    ``scale``, ``runner`` (a
    :class:`repro.orchestrate.parallel.ParallelRunner`, enabling result
    caching, parallel execution, and — via its
    :class:`~repro.orchestrate.supervisor.RetryPolicy` and optional
    :class:`~repro.orchestrate.checkpoint.SweepManifest` — supervised,
    crash-resumable execution) and ``config`` (a
    :class:`repro.system.config.SystemConfig`, e.g. carrying
    ``DataPolicy.ELIDE`` for timing-only sweeps) are forwarded to every
    driver whose signature accepts them — the simulation-based ones; the
    analytic area / timing figures compute in microseconds, take none of
    them, and stay serial.  Drivers need no fault-handling code of their
    own: retries, timeouts and checkpointing all live behind ``runner.run``.
    """
    if name not in EXPERIMENTS:
        raise ConfigurationError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        )
    driver = EXPERIMENTS[name]
    if runner is not None and _driver_accepts(driver, "runner"):
        kwargs["runner"] = runner
    if config is not None and _driver_accepts(driver, "config"):
        kwargs["config"] = config
    if _driver_accepts(driver, "scale"):
        kwargs["scale"] = scale
    return driver(**kwargs)
