"""Experiment registry: map figure ids to their drivers."""

from __future__ import annotations

from typing import Callable, Dict, Mapping

from repro.analysis import fig3, fig4, fig5
from repro.analysis.report import ExperimentTable
from repro.errors import ConfigurationError

#: Every reproduced figure, keyed by its id in the paper.
EXPERIMENTS: Mapping[str, Callable[..., ExperimentTable]] = {
    "fig3a": fig3.figure_3a,
    "fig3b": fig3.figure_3b,
    "fig3c": fig3.figure_3c,
    "fig3d": fig3.figure_3d,
    "fig3e": fig3.figure_3e,
    "fig4a": fig4.figure_4a,
    "fig4b": fig4.figure_4b,
    "fig4c": fig4.figure_4c,
    "fig5a": fig5.figure_5a,
    "fig5b": fig5.figure_5b,
    "fig5c": fig5.figure_5c,
}

#: Which experiments accept a ``scale`` keyword (the simulation-based ones).
_SCALED = {"fig3a", "fig3b", "fig3c", "fig4c"}


def run_experiment(name: str, scale: str = "small", **kwargs) -> ExperimentTable:
    """Run one experiment by figure id and return its result table."""
    if name not in EXPERIMENTS:
        raise ConfigurationError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        )
    driver = EXPERIMENTS[name]
    if name in _SCALED:
        return driver(scale=scale, **kwargs)
    return driver(**kwargs)
