"""Shared headline-grid geometry: workload sizing and memory classes.

One definition of "a grid point" for every consumer — the headline engine
benchmark (``benchmarks/bench_headline.py``), the ``repro profile`` CLI
subcommand, and any future driver — so the dense/sparse sizing rules and
the SRAM/DRAM latency classes cannot drift apart between the tool that
measures and the tool that explains.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from repro.analysis.fig3 import SCALES
from repro.system.config import SystemConfig, SystemKind

#: Workloads sized by dense matrix dimension (the rest take sparse rows).
DENSE_WORKLOADS = ("ismt", "gemv", "trmv")

#: The two memory classes of the headline grid (name -> memory_latency).
MEMORY_LATENCY: Dict[str, int] = {"sram": 1, "dram": 100}


def workload_spec_kwargs(workload: str, scale: str) -> dict:
    """Constructor kwargs for ``workload`` at ``scale`` (fig3 sizing rules)."""
    dense_n, sparse_rows, nnz = SCALES[scale]
    if workload in DENSE_WORKLOADS:
        return dict(size=dense_n)
    return dict(size=sparse_rows, avg_nnz_per_row=min(nnz, sparse_rows))


def point_system_config(
    kind: SystemKind, latency: int, data_policy="full"
) -> SystemConfig:
    """The system configuration of one headline grid point."""
    return replace(
        SystemConfig(data_policy=data_policy),
        memory_latency=latency,
        ideal_latency=max(2, latency),
    ).with_kind(kind)
