"""Experiment drivers: one function per figure of the paper's evaluation."""

from repro.analysis.report import ExperimentTable, format_table, write_csv
from repro.analysis.fig3 import figure_3a, figure_3b, figure_3c, figure_3d, figure_3e
from repro.analysis.fig4 import figure_4a, figure_4b, figure_4c
from repro.analysis.fig5 import figure_5a, figure_5b, figure_5c
from repro.analysis.experiments import EXPERIMENTS, run_experiment

__all__ = [
    "ExperimentTable",
    "format_table",
    "write_csv",
    "figure_3a",
    "figure_3b",
    "figure_3c",
    "figure_3d",
    "figure_3e",
    "figure_4a",
    "figure_4b",
    "figure_4c",
    "figure_5a",
    "figure_5b",
    "figure_5c",
    "EXPERIMENTS",
    "run_experiment",
]
