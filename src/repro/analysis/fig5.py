"""Figure 5 experiments: controller parameter sensitivity.

These reproduce the §III-E study: the controller and banked memory driven by
an ideal requestor issuing back-to-back read bursts, sweeping element/index
sizes and bank counts.  The paper uses 256-beat bursts and decoupling queues
of depth 32 so that nothing but the effect under study limits throughput.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.report import ExperimentTable
from repro.axi.pack import PackUserField
from repro.axi.transaction import BusRequest
from repro.controller.context import AdapterConfig
from repro.controller.testbench import ControllerTestbench
from repro.hw.crossbar_area import BankCrossbarAreaModel
from repro.mem.banked import BankedMemoryConfig
from repro.perf.model import ideal_indirect_utilization

#: The element/index size pairs of Fig. 5a, in bits, ordered by ratio.
FIG5A_SIZE_PAIRS = (
    (32, 32), (32, 16), (64, 32), (32, 8), (64, 16), (128, 32),
    (64, 8), (128, 16), (256, 32), (128, 8), (256, 16), (256, 8),
)

#: Bank counts swept in Fig. 5a/5b (plus an ideal conflict-free memory).
FIG5_BANK_COUNTS = (8, 11, 16, 17, 31, 32)


def _testbench(num_banks: int, conflict_free: bool, queue_depth: int,
               bus_bytes: int = 32,
               data_policy: str = "full") -> ControllerTestbench:
    from repro.sim.policy import resolve_data_policy

    adapter = AdapterConfig(bus_bytes=bus_bytes, queue_depth=queue_depth)
    memory = BankedMemoryConfig(
        num_ports=adapter.bus_words,
        num_banks=num_banks,
        request_queue_depth=queue_depth,
        response_queue_depth=queue_depth,
        conflict_free=conflict_free,
    )
    return ControllerTestbench(adapter, memory, memory_bytes=1 << 23,
                               data_policy=resolve_data_policy(data_policy))


def measure_indirect_utilization(
    elem_bits: int, index_bits: int, num_banks: int,
    num_beats: int = 64, queue_depth: int = 32, conflict_free: bool = False,
    num_bursts: int = 4, seed: int = 0, bus_bytes: int = 32,
    data_policy: str = "full",
) -> float:
    """R utilization of back-to-back packed indirect reads with random indices.

    ``data_policy`` selects the datapath mode (``"full"``/``"elide"``); the
    measured utilization is identical by construction, timing-only runs are
    just faster.  It is part of the measure signature so
    :class:`~repro.orchestrate.spec.UtilizationSpec` fingerprints (and thus
    cache keys) distinguish the two policies.
    """
    elem_bytes = elem_bits // 8
    index_bytes = index_bits // 8
    tb = _testbench(num_banks, conflict_free, queue_depth, bus_bytes, data_policy)
    rng = np.random.default_rng(seed)
    elems_per_beat = bus_bytes // elem_bytes
    elems_per_burst = num_beats * elems_per_beat
    data_region = 1 << 22
    num_targets = data_region // elem_bytes
    requests = []
    index_cursor = data_region
    dtype = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}[index_bytes]
    max_index = min(num_targets, np.iinfo(dtype).max)
    for _ in range(num_bursts):
        indices = rng.integers(0, max_index, size=elems_per_burst).astype(dtype)
        tb.storage.write_array(index_cursor, indices)
        requests.append(
            BusRequest(
                addr=0,
                is_write=False,
                num_elements=elems_per_burst,
                elem_bytes=elem_bytes,
                bus_bytes=bus_bytes,
                pack=PackUserField.indirect(index_bytes, index_cursor),
                index_base=index_cursor,
            )
        )
        index_cursor += len(indices) * index_bytes
    result = tb.run(requests)
    return result.r_utilization


def measure_strided_utilization(
    elem_bits: int, stride_elems: int, num_banks: int,
    num_beats: int = 64, queue_depth: int = 32, conflict_free: bool = False,
    num_bursts: int = 2, bus_bytes: int = 32,
    data_policy: str = "full",
) -> float:
    """R utilization of back-to-back packed strided reads for one stride.

    ``data_policy`` as in :func:`measure_indirect_utilization`.
    """
    elem_bytes = elem_bits // 8
    tb = _testbench(num_banks, conflict_free, queue_depth, bus_bytes, data_policy)
    elems_per_beat = bus_bytes // elem_bytes
    elems_per_burst = num_beats * elems_per_beat
    requests = []
    for burst in range(num_bursts):
        requests.append(
            BusRequest(
                addr=(burst * 64) * elem_bytes,
                is_write=False,
                num_elements=elems_per_burst,
                elem_bytes=elem_bytes,
                bus_bytes=bus_bytes,
                pack=PackUserField.strided(stride_elems),
            )
        )
    result = tb.run(requests)
    return result.r_utilization


def _policy_name(config) -> str:
    """The data-policy name a driver's ``config`` implies (default full)."""
    return config.data_policy.value if config is not None else "full"


def figure_5a(
    size_pairs: Sequence[Tuple[int, int]] = FIG5A_SIZE_PAIRS,
    bank_counts: Sequence[int] = FIG5_BANK_COUNTS,
    include_ideal: bool = True,
    num_beats: int = 64,
    queue_depth: int = 32,
    runner=None,
    config=None,
) -> ExperimentTable:
    """Fig. 5a: indirect-read utilization vs element/index sizes and banks.

    ``config`` (a :class:`~repro.system.config.SystemConfig`) contributes
    only its ``data_policy`` here — the testbench geometry is fixed by the
    sweep parameters — so ``--timing-only`` reaches this driver too.
    """
    from repro.orchestrate.parallel import ParallelRunner
    from repro.orchestrate.spec import UtilizationSpec

    runner = runner or ParallelRunner()
    policy = _policy_name(config)
    table = ExperimentTable(
        experiment="fig5a",
        caption="Indirect read R utilization vs element/index size and bank count",
        headers=["elem_bits", "index_bits", "banks", "r_utilization", "ideal_bound"],
    )
    rows = []
    specs = []
    for elem_bits, index_bits in size_pairs:
        for banks in bank_counts:
            rows.append((elem_bits, index_bits, banks))
            specs.append(UtilizationSpec.indirect(
                elem_bits=elem_bits, index_bits=index_bits, num_banks=banks,
                num_beats=num_beats, queue_depth=queue_depth,
                data_policy=policy,
            ))
        if include_ideal:
            rows.append((elem_bits, index_bits, "ideal"))
            specs.append(UtilizationSpec.indirect(
                elem_bits=elem_bits, index_bits=index_bits,
                num_banks=max(bank_counts),
                num_beats=num_beats, queue_depth=queue_depth, conflict_free=True,
                data_policy=policy,
            ))
    for (elem_bits, index_bits, banks), utilization in zip(rows, runner.run(specs)):
        bound = ideal_indirect_utilization(elem_bits // 8, index_bits // 8)
        table.add_row(elem_bits, index_bits, banks, utilization, bound)
    table.add_note("utilization is bounded by r/(r+1) for an element/index size "
                   "ratio r because index lines share the word ports")
    return table


def figure_5b(
    elem_sizes_bits: Sequence[int] = (32, 64, 128, 256),
    bank_counts: Sequence[int] = FIG5_BANK_COUNTS,
    strides: Optional[Iterable[int]] = None,
    num_beats: int = 16,
    queue_depth: int = 32,
    runner=None,
    config=None,
) -> ExperimentTable:
    """Fig. 5b: strided-read utilization vs element size and bank count.

    The paper averages over element strides 0 to 63; restricting ``strides``
    to an even-only subset would bias power-of-two bank counts pessimistically,
    so the default sweeps every stride in that range.  ``config`` contributes
    its ``data_policy`` as in :func:`figure_5a`.
    """
    from repro.orchestrate.parallel import ParallelRunner
    from repro.orchestrate.spec import UtilizationSpec

    runner = runner or ParallelRunner()
    policy = _policy_name(config)
    stride_list = list(strides) if strides is not None else list(range(0, 64))
    table = ExperimentTable(
        experiment="fig5b",
        caption="Strided read R utilization vs element size and bank count "
                f"(averaged over {len(stride_list)} strides)",
        headers=["elem_bits", "banks", "r_utilization"],
    )
    cells = [(elem_bits, banks)
             for elem_bits in elem_sizes_bits for banks in bank_counts]
    specs = [
        UtilizationSpec.strided(
            elem_bits=elem_bits, stride_elems=stride, num_banks=banks,
            num_beats=num_beats, queue_depth=queue_depth,
            data_policy=policy,
        )
        for elem_bits, banks in cells
        for stride in stride_list
    ]
    values = runner.run(specs)
    for index, (elem_bits, banks) in enumerate(cells):
        per_cell = values[index * len(stride_list):(index + 1) * len(stride_list)]
        table.add_row(elem_bits, banks, float(np.mean(per_cell)))
    table.add_note("prime bank counts avoid the systematic conflicts power-of-two "
                   "counts suffer on even strides")
    return table


def figure_5c(bank_counts: Sequence[int] = FIG5_BANK_COUNTS) -> ExperimentTable:
    """Fig. 5c: bank crossbar area versus bank count."""
    model = BankCrossbarAreaModel()
    table = ExperimentTable(
        experiment="fig5c",
        caption="Bank crossbar area versus bank count",
        headers=["banks", "crossbar_kge", "modulo_kge", "divider_kge", "total_kge"],
    )
    for banks, breakdown in model.sweep(bank_counts).items():
        table.add_row(banks, breakdown.crossbar_kge, breakdown.modulo_kge,
                      breakdown.divider_kge, breakdown.total_kge)
    table.add_note("prime bank counts pay for modulo and divide units; the "
                   "overhead shrinks relative to the crossbar as banks increase")
    return table
