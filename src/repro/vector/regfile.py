"""Vector and scalar register file holding functional values."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import WorkloadError
from repro.utils.validation import check_positive


class VectorRegisterFile:
    """Functional register storage for the vector engine.

    Values are plain numpy arrays; the register file enforces only the
    capacity limit (VLEN) so that workloads cannot accidentally rely on
    registers larger than the modelled hardware provides.
    """

    def __init__(self, vlen_bytes: int, num_registers: int = 32) -> None:
        self.vlen_bytes = check_positive("vlen_bytes", vlen_bytes)
        self.num_registers = check_positive("num_registers", num_registers)
        self._vector: Dict[str, np.ndarray] = {}
        self._scalar: Dict[str, float] = {}

    # --------------------------------------------------------------- vectors
    def write_vector(self, name: str, values: np.ndarray) -> None:
        """Store a vector value, checking it fits in one register."""
        values = np.asarray(values)
        if values.nbytes > self.vlen_bytes:
            raise WorkloadError(
                f"value of {values.nbytes} bytes does not fit in a "
                f"{self.vlen_bytes}-byte vector register {name!r}"
            )
        self._vector[name] = values

    def read_vector(self, name: str) -> np.ndarray:
        """Read a vector register; undefined registers read as empty."""
        if name not in self._vector:
            raise WorkloadError(f"vector register {name!r} read before being written")
        return self._vector[name]

    def has_vector(self, name: str) -> bool:
        """True if the register holds a value."""
        return name in self._vector

    # --------------------------------------------------------------- scalars
    def write_scalar(self, name: str, value: float) -> None:
        """Store a scalar (CVA6-side) value."""
        self._scalar[name] = float(value)

    def read_scalar(self, name: str) -> float:
        """Read a scalar value."""
        if name not in self._scalar:
            raise WorkloadError(f"scalar register {name!r} read before being written")
        return self._scalar[name]

    # ------------------------------------------------------------------ misc
    def clear(self) -> None:
        """Drop all register contents."""
        self._vector.clear()
        self._scalar.clear()

    def __contains__(self, name: str) -> bool:
        return name in self._vector or name in self._scalar
