"""Ara-like RISC-V vector engine with the AXI-Pack extensions (paper §II-B).

The package provides:

* :mod:`repro.vector.isa` — the RVV-subset instruction set, including the
  paper's new in-memory-indexed ``vlimxei`` / ``vsimxei`` instructions;
* :mod:`repro.vector.ops` — the micro-operations the decoder produces;
* :mod:`repro.vector.builder` — an assembler-style program builder that
  workloads use to write vectorized kernels (it tracks register dependencies
  and strip-mining);
* :mod:`repro.vector.regfile` — the vector register file (functional values);
* :mod:`repro.vector.engine` — the cycle-level vector engine: it issues the
  program in order, models lanes, chaining, reductions and the scalar-core
  overhead, and drives an AXI/AXI-Pack port for its memory traffic.
"""

from repro.vector.config import VectorEngineConfig, LoweringMode
from repro.vector.isa import Instruction, Mnemonic
from repro.vector.ops import ScalarWork, VectorCompute, VectorLoad, VectorStore
from repro.vector.builder import AraProgramBuilder, Program
from repro.vector.regfile import VectorRegisterFile
from repro.vector.engine import VectorEngine, EngineResult

__all__ = [
    "VectorEngineConfig",
    "LoweringMode",
    "Instruction",
    "Mnemonic",
    "ScalarWork",
    "VectorCompute",
    "VectorLoad",
    "VectorStore",
    "AraProgramBuilder",
    "Program",
    "VectorRegisterFile",
    "VectorEngine",
    "EngineResult",
]
