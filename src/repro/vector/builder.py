"""Assembler-style program builder used by the workload kernels.

The builder plays the role of the compiler + decoder: workloads call methods
named after the vector instructions they would emit, and the builder records
both the instruction listing and the micro-operations the engine executes,
wiring up register data dependencies automatically.

A key design point mirrors the paper: on the PACK system a kernel gathers
through :meth:`AraProgramBuilder.vlimxei32` (indices stay in memory), while
on BASE/IDEAL the same kernel must first :meth:`vle32` the indices into a
vector register and then :meth:`vluxei32` — the builder refuses to assemble
``vlimxei``/``vsimxei`` unless the target has the AXI-Pack extension.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.axi.stream import ContiguousStream, IndirectStream, StridedStream
from repro.errors import WorkloadError
from repro.vector.config import LoweringMode, VectorEngineConfig
from repro.vector.isa import Instruction, Mnemonic, check_supported
from repro.vector.ops import ScalarWork, VectorCompute, VectorLoad, VectorOp, VectorStore


@dataclass
class Program:
    """A fully assembled kernel: micro-ops plus the instruction listing."""

    name: str
    mode: LoweringMode
    ops: List[VectorOp] = field(default_factory=list)
    instructions: List[Instruction] = field(default_factory=list)

    @property
    def num_instructions(self) -> int:
        """Number of assembled instructions (scalar work included)."""
        return len(self.instructions)

    def memory_ops(self) -> List[VectorOp]:
        """All loads and stores in program order."""
        return [op for op in self.ops if op.is_memory]

    def listing(self, limit: Optional[int] = None) -> str:
        """Human-readable assembly listing (truncated to ``limit`` lines)."""
        lines = [instr.render() for instr in self.instructions]
        if limit is not None and len(lines) > limit:
            omitted = len(lines) - limit
            lines = lines[:limit] + [f"... ({omitted} more instructions)"]
        return "\n".join(lines)

    def validate(self, config: Optional[VectorEngineConfig] = None) -> None:
        """Check the program is a legal kernel for its lowering mode.

        Raises :class:`~repro.errors.WorkloadError` on the first violation.
        The checks mirror what the engine enforces at dispatch/lowering time
        (ISA support for the mode, vector lengths within the register group,
        dependency ids referring to earlier ops, register-indexed ops naming
        an index register on systems without AXI-Pack) plus data-flow rules
        that would otherwise only surface mid-simulation (reading a vector
        register no earlier op has written).  Programs assembled through
        :class:`AraProgramBuilder` should always pass; the fuzzer calls this
        on every generated program before running it.
        """
        config = config or VectorEngineConfig()
        if not self.ops:
            raise WorkloadError(f"program {self.name!r} contains no instructions")
        if len(self.ops) != len(self.instructions):
            raise WorkloadError(
                f"program {self.name!r} has {len(self.ops)} ops but "
                f"{len(self.instructions)} instructions"
            )
        written: set = set()
        for index, (op, instr) in enumerate(zip(self.ops, self.instructions)):
            where = f"{self.name!r} op {index} ({instr.mnemonic.value})"
            check_supported(instr.mnemonic, self.mode)
            if op.op_id != index:
                raise WorkloadError(f"{where}: op_id {op.op_id} != position {index}")
            for dep in op.deps:
                if not 0 <= dep < index:
                    raise WorkloadError(
                        f"{where}: dependency {dep} does not precede the op"
                    )
            reads: List[str] = []
            if isinstance(op, (VectorLoad, VectorStore)):
                if op.stream is None:
                    raise WorkloadError(f"{where}: memory op has no stream")
                if op.stream.num_elements != instr.vl:
                    raise WorkloadError(
                        f"{where}: stream covers {op.stream.num_elements} "
                        f"elements but vl is {instr.vl}"
                    )
                max_vl = config.max_vl(op.stream.elem_bytes)
                if instr.vl > max_vl:
                    raise WorkloadError(
                        f"{where}: vl {instr.vl} exceeds max_vl {max_vl}"
                    )
                if op.uses_in_memory_indices and not self.mode.has_axi_pack:
                    raise WorkloadError(
                        f"{where}: in-memory indices need the AXI-Pack extension"
                    )
                if (isinstance(op.stream, IndirectStream)
                        and not op.uses_in_memory_indices
                        and op.index_values_reg is None):
                    raise WorkloadError(
                        f"{where}: register-indexed op names no index register"
                    )
                if op.index_values_reg is not None:
                    reads.append(op.index_values_reg)
            elif isinstance(op, VectorCompute):
                if instr.vl > config.max_vl(config.elem_bytes):
                    raise WorkloadError(
                        f"{where}: vl {instr.vl} exceeds max_vl "
                        f"{config.max_vl(config.elem_bytes)}"
                    )
                if op.fn is not None:
                    reads.extend(op.srcs)
            if isinstance(op, VectorStore):
                reads.append(op.src)
            for reg in reads:
                if reg not in written:
                    raise WorkloadError(
                        f"{where}: reads register {reg!r} before any op writes it"
                    )
            if isinstance(op, VectorLoad):
                written.add(op.dest)
            elif isinstance(op, VectorCompute) and op.dest is not None:
                written.add(op.dest)


class AraProgramBuilder:
    """Builds :class:`Program` objects instruction by instruction."""

    def __init__(
        self,
        name: str,
        mode: LoweringMode,
        config: Optional[VectorEngineConfig] = None,
        elem_bytes: int = 4,
    ) -> None:
        self.name = name
        self.mode = mode
        self.config = config or VectorEngineConfig()
        self.elem_bytes = elem_bytes
        self.program = Program(name=name, mode=mode)
        self._writers: Dict[str, int] = {}
        self._readers: Dict[str, List[int]] = {}
        self._last_ordered_mem: Optional[int] = None

    # ------------------------------------------------------------- utilities
    @property
    def max_vl(self) -> int:
        """Largest vector length a single register holds for this element size."""
        return self.config.max_vl(self.elem_bytes)

    def strip_mine(self, total: int) -> List[int]:
        """Split ``total`` elements into chunks of at most ``max_vl``."""
        if total <= 0:
            raise WorkloadError("strip_mine needs a positive element count")
        chunks = []
        remaining = total
        while remaining > 0:
            take = min(self.max_vl, remaining)
            chunks.append(take)
            remaining -= take
        return chunks

    def _next_id(self) -> int:
        return len(self.program.ops)

    def _deps_for(self, reads: Sequence[str], writes: Sequence[str]) -> List[int]:
        deps = []
        for reg in reads:
            if reg in self._writers:
                deps.append(self._writers[reg])
        for reg in writes:
            # Write-after-write and write-after-read ordering keep register
            # reuse well defined (the engine relaxes WAR hazards the way
            # element-granular chaining does, but the dependency must exist).
            if reg in self._writers:
                deps.append(self._writers[reg])
            deps.extend(self._readers.get(reg, ()))
        if self._last_ordered_mem is not None:
            deps.append(self._last_ordered_mem)
        return sorted(set(deps))

    def _add(self, op: VectorOp, instruction: Instruction, writes: Sequence[str],
             reads: Sequence[str] = ()) -> int:
        self.program.ops.append(op)
        self.program.instructions.append(instruction)
        for reg in writes:
            self._writers[reg] = op.op_id
            self._readers[reg] = []
        for reg in reads:
            self._readers.setdefault(reg, []).append(op.op_id)
        return op.op_id

    # ------------------------------------------------------------ scalar side
    def scalar(self, cycles: int, label: str = "loop bookkeeping",
               after: Sequence[int] = ()) -> int:
        """Account for scalar-core work (loop control, pointer arithmetic)."""
        op_id = self._next_id()
        op = ScalarWork(op_id=op_id, deps=sorted(set(after)), cycles=cycles, label=label)
        instr = Instruction(Mnemonic.SCALAR, vl=0, operands={"cycles": cycles}, comment=label)
        return self._add(op, instr, writes=())

    # ----------------------------------------------------------------- loads
    def vle32(self, dest: str, base: int, count: int, kind: str = "data",
              dtype: str = "float32", label: str = "") -> int:
        """Unit-stride load of ``count`` 32-bit elements.

        ``dtype`` selects how the loaded bytes are interpreted in the
        register file (``"uint32"`` for index arrays, ``"float32"`` for
        data); the bus traffic is identical either way.
        """
        check_supported(Mnemonic.VLE32, self.mode)
        op_id = self._next_id()
        stream = ContiguousStream(base=base, num_elements=count, elem_bytes=4)
        op = VectorLoad(op_id=op_id, deps=self._deps_for((), (dest,)), label=label,
                        stream=stream, dest=dest, dtype=dtype, kind=kind)
        instr = Instruction(Mnemonic.VLE32, vl=count,
                            operands={"vd": dest, "base": hex(base)}, comment=label)
        return self._add(op, instr, writes=(dest,))

    def vlse32(self, dest: str, base: int, count: int, stride_elems: int,
               label: str = "") -> int:
        """Strided load of ``count`` 32-bit elements."""
        check_supported(Mnemonic.VLSE32, self.mode)
        op_id = self._next_id()
        stream = StridedStream(base=base, num_elements=count, elem_bytes=4,
                               stride_elems=stride_elems)
        op = VectorLoad(op_id=op_id, deps=self._deps_for((), (dest,)), label=label,
                        stream=stream, dest=dest, dtype="float32")
        instr = Instruction(Mnemonic.VLSE32, vl=count,
                            operands={"vd": dest, "base": hex(base),
                                      "stride": stride_elems}, comment=label)
        return self._add(op, instr, writes=(dest,))

    def vluxei32(self, dest: str, base: int, index_reg: str, count: int,
                 index_base: int, label: str = "") -> int:
        """Register-indexed gather (indices already loaded into ``index_reg``).

        ``index_base`` records where the indices came from so the IDEAL
        system can model perfectly packed gathers; the BASE system resolves
        the register values into narrow per-element transactions.
        """
        check_supported(Mnemonic.VLUXEI32, self.mode)
        op_id = self._next_id()
        stream = IndirectStream(base=base, num_elements=count, elem_bytes=4,
                                index_base=index_base, index_bytes=4)
        op = VectorLoad(op_id=op_id, deps=self._deps_for((index_reg,), (dest,)),
                        label=label, stream=stream, dest=dest, dtype="float32",
                        index_values_reg=index_reg)
        instr = Instruction(Mnemonic.VLUXEI32, vl=count,
                            operands={"vd": dest, "base": hex(base), "vs2": index_reg},
                            comment=label)
        return self._add(op, instr, writes=(dest,), reads=(index_reg,))

    def vlimxei32(self, dest: str, base: int, index_base: int, count: int,
                  index_bytes: int = 4, label: str = "") -> int:
        """In-memory-indexed gather (AXI-Pack extension): indices stay in memory."""
        check_supported(Mnemonic.VLIMXEI32, self.mode)
        op_id = self._next_id()
        stream = IndirectStream(base=base, num_elements=count, elem_bytes=4,
                                index_base=index_base, index_bytes=index_bytes)
        op = VectorLoad(op_id=op_id, deps=self._deps_for((), (dest,)), label=label,
                        stream=stream, dest=dest, dtype="float32",
                        uses_in_memory_indices=True)
        instr = Instruction(Mnemonic.VLIMXEI32, vl=count,
                            operands={"vd": dest, "base": hex(base),
                                      "idx_base": hex(index_base)}, comment=label)
        return self._add(op, instr, writes=(dest,))

    # ---------------------------------------------------------------- stores
    def vse32(self, src: str, base: int, count: int, ordered: bool = False,
              label: str = "") -> int:
        """Unit-stride store of ``count`` 32-bit elements."""
        check_supported(Mnemonic.VSE32, self.mode)
        op_id = self._next_id()
        stream = ContiguousStream(base=base, num_elements=count, elem_bytes=4)
        op = VectorStore(op_id=op_id, deps=self._deps_for((src,), ()), label=label,
                         stream=stream, src=src, dtype="float32", ordered=ordered)
        instr = Instruction(Mnemonic.VSE32, vl=count,
                            operands={"vs": src, "base": hex(base)}, comment=label)
        op_id = self._add(op, instr, writes=(), reads=(src,))
        if ordered:
            self._last_ordered_mem = op_id
        return op_id

    def vsse32(self, src: str, base: int, count: int, stride_elems: int,
               ordered: bool = False, label: str = "") -> int:
        """Strided store of ``count`` 32-bit elements."""
        check_supported(Mnemonic.VSSE32, self.mode)
        op_id = self._next_id()
        stream = StridedStream(base=base, num_elements=count, elem_bytes=4,
                               stride_elems=stride_elems)
        op = VectorStore(op_id=op_id, deps=self._deps_for((src,), ()), label=label,
                         stream=stream, src=src, dtype="float32", ordered=ordered)
        instr = Instruction(Mnemonic.VSSE32, vl=count,
                            operands={"vs": src, "base": hex(base),
                                      "stride": stride_elems}, comment=label)
        op_id = self._add(op, instr, writes=(), reads=(src,))
        if ordered:
            self._last_ordered_mem = op_id
        return op_id

    def vsuxei32(self, src: str, base: int, index_reg: str, count: int,
                 index_base: int, ordered: bool = False, label: str = "") -> int:
        """Register-indexed scatter."""
        check_supported(Mnemonic.VSUXEI32, self.mode)
        op_id = self._next_id()
        stream = IndirectStream(base=base, num_elements=count, elem_bytes=4,
                                index_base=index_base, index_bytes=4)
        op = VectorStore(op_id=op_id, deps=self._deps_for((src, index_reg), ()),
                         label=label, stream=stream, src=src, dtype="float32",
                         ordered=ordered, index_values_reg=index_reg)
        instr = Instruction(Mnemonic.VSUXEI32, vl=count,
                            operands={"vs": src, "base": hex(base), "vs2": index_reg},
                            comment=label)
        op_id = self._add(op, instr, writes=(), reads=(src, index_reg))
        if ordered:
            self._last_ordered_mem = op_id
        return op_id

    def vsimxei32(self, src: str, base: int, index_base: int, count: int,
                  index_bytes: int = 4, ordered: bool = False, label: str = "") -> int:
        """In-memory-indexed scatter (AXI-Pack extension)."""
        check_supported(Mnemonic.VSIMXEI32, self.mode)
        op_id = self._next_id()
        stream = IndirectStream(base=base, num_elements=count, elem_bytes=4,
                                index_base=index_base, index_bytes=index_bytes)
        op = VectorStore(op_id=op_id, deps=self._deps_for((src,), ()), label=label,
                         stream=stream, src=src, dtype="float32", ordered=ordered,
                         uses_in_memory_indices=True)
        instr = Instruction(Mnemonic.VSIMXEI32, vl=count,
                            operands={"vs": src, "base": hex(base),
                                      "idx_base": hex(index_base)}, comment=label)
        op_id = self._add(op, instr, writes=(), reads=(src,))
        if ordered:
            self._last_ordered_mem = op_id
        return op_id

    # ------------------------------------------------------------ arithmetic
    def _compute(self, mnemonic: Mnemonic, dest: Optional[str], srcs: Sequence[str],
                 count: int, fn: Optional[Callable], is_reduction: bool = False,
                 label: str = "", dest_is_src: bool = False) -> int:
        check_supported(mnemonic, self.mode)
        op_id = self._next_id()
        reads = list(srcs) + ([dest] if dest_is_src and dest else [])
        writes = (dest,) if dest else ()
        op = VectorCompute(op_id=op_id, deps=self._deps_for(reads, writes), label=label,
                           num_elements=count, srcs=tuple(reads), dest=dest,
                           is_reduction=is_reduction, fn=fn)
        instr = Instruction(mnemonic, vl=count,
                            operands={"vd": dest, "srcs": ",".join(srcs)}, comment=label)
        return self._add(op, instr, writes=writes, reads=tuple(reads))

    def compute(self, mnemonic: Mnemonic, dest: Optional[str], srcs: Sequence[str],
                count: int, fn: Optional[Callable] = None, is_reduction: bool = False,
                dest_is_src: bool = False, label: str = "") -> int:
        """Assemble an arithmetic instruction with a custom functional body.

        Workloads use this for operations whose numpy semantics need extra
        context baked in (e.g. the variable-length accumulations of the
        column-wise triangular kernel or PageRank's damping update).
        """
        return self._compute(mnemonic, dest, srcs, count, fn=fn,
                             is_reduction=is_reduction, label=label,
                             dest_is_src=dest_is_src)

    def vfadd(self, dest: str, a: str, b: str, count: int, label: str = "") -> int:
        """Element-wise addition."""
        return self._compute(Mnemonic.VFADD, dest, (a, b), count,
                             fn=lambda x, y: x + y, label=label)

    def vfsub(self, dest: str, a: str, b: str, count: int, label: str = "") -> int:
        """Element-wise subtraction."""
        return self._compute(Mnemonic.VFSUB, dest, (a, b), count,
                             fn=lambda x, y: x - y, label=label)

    def vfmul(self, dest: str, a: str, b: str, count: int, label: str = "") -> int:
        """Element-wise multiplication."""
        return self._compute(Mnemonic.VFMUL, dest, (a, b), count,
                             fn=lambda x, y: x * y, label=label)

    def vfmul_vf(self, dest: str, a: str, scalar: float, count: int, label: str = "") -> int:
        """Vector-scalar multiplication."""
        return self._compute(Mnemonic.VFMUL_VF, dest, (a,), count,
                             fn=lambda x: (x * np.float32(scalar)).astype(np.float32),
                             label=label)

    def vfmacc(self, dest: str, a: str, b: str, count: int, label: str = "") -> int:
        """Fused multiply-accumulate: ``dest += a * b``."""
        return self._compute(Mnemonic.VFMACC, dest, (a, b), count,
                             fn=lambda x, y, acc: (acc + x * y).astype(np.float32),
                             label=label, dest_is_src=True)

    def vfmacc_vf(self, dest: str, a: str, scalar: float, count: int, label: str = "") -> int:
        """Vector-scalar multiply-accumulate: ``dest += a * scalar``."""
        return self._compute(Mnemonic.VFMACC_VF, dest, (a,), count,
                             fn=lambda x, acc: (acc + x * np.float32(scalar)).astype(np.float32),
                             label=label, dest_is_src=True)

    def vfmin(self, dest: str, a: str, b: str, count: int, label: str = "") -> int:
        """Element-wise minimum (used by sssp relaxations)."""
        return self._compute(Mnemonic.VFMIN, dest, (a, b), count,
                             fn=lambda x, y: np.minimum(x, y), label=label)

    def vfredsum(self, dest: str, src: str, count: int, label: str = "") -> int:
        """Sum reduction of ``src`` into the single-element register ``dest``."""
        return self._compute(Mnemonic.VFREDSUM, dest, (src,), count,
                             fn=lambda x: np.asarray([np.float32(np.sum(x, dtype=np.float32))]),
                             is_reduction=True, label=label)

    def vfredmin(self, dest: str, src: str, count: int, label: str = "") -> int:
        """Minimum reduction of ``src`` into ``dest``."""
        return self._compute(Mnemonic.VFREDMIN, dest, (src,), count,
                             fn=lambda x: np.asarray([np.float32(np.min(x))]),
                             is_reduction=True, label=label)

    def vmv(self, dest: str, src: str, count: int, label: str = "") -> int:
        """Register move."""
        return self._compute(Mnemonic.VMV, dest, (src,), count,
                             fn=lambda x: x.copy(), label=label)

    def vmv_vx(self, dest: str, value: float, count: int, label: str = "") -> int:
        """Broadcast a scalar into a vector register."""
        return self._compute(Mnemonic.VMV_VX, dest, (), count,
                             fn=lambda: np.full(count, np.float32(value), dtype=np.float32),
                             label=label)

    # ----------------------------------------------------------------- fences
    def fence(self) -> None:
        """Order all subsequent memory operations after all previous ones."""
        mem_ops = [op.op_id for op in self.program.ops if op.is_memory]
        if mem_ops:
            self._last_ordered_mem = mem_ops[-1]

    # ----------------------------------------------------------------- result
    def build(self) -> Program:
        """Return the assembled program."""
        if not self.program.ops:
            raise WorkloadError(f"program {self.name!r} contains no instructions")
        return self.program
