"""Micro-operations executed by the vector engine.

The decoder (via :class:`~repro.vector.builder.AraProgramBuilder`) turns
instructions into these records.  They carry both timing information (element
counts, ordering constraints) and optional functional behaviour (the streams
to move, the Python callable implementing the arithmetic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.axi.stream import Stream


#: Dispatch-kind tags carried as plain class attributes: the engine's
#: dispatcher branches on one integer compare instead of an isinstance
#: chain (hot: it runs every tick with a pending instruction).
KIND_GENERIC = 0
KIND_LOAD = 1
KIND_STORE = 2
KIND_COMPUTE = 3
KIND_SCALAR = 4


@dataclass
class VectorOp:
    """Base class: an operation with an id and data dependencies."""

    KIND = KIND_GENERIC

    op_id: int
    deps: List[int] = field(default_factory=list)
    label: str = ""

    @property
    def is_memory(self) -> bool:
        """True for loads and stores."""
        return False


@dataclass
class VectorLoad(VectorOp):
    """A vector load: move a stream from memory into a vector register."""

    KIND = KIND_LOAD

    stream: Optional[Stream] = None
    dest: str = "v0"
    dtype: str = "float32"
    kind: str = "data"        #: "data" or "index" — used to split bus traffic
    ordered: bool = False     #: if True, acts as a memory fence
    uses_in_memory_indices: bool = False  #: True for vlimxei (AXI-Pack only)
    index_values_reg: Optional[str] = None  #: register holding indices (vluxei)

    @property
    def is_memory(self) -> bool:
        return True


@dataclass
class VectorStore(VectorOp):
    """A vector store: move a vector register to a stream in memory."""

    KIND = KIND_STORE

    stream: Optional[Stream] = None
    src: str = "v0"
    dtype: str = "float32"
    ordered: bool = False
    uses_in_memory_indices: bool = False
    index_values_reg: Optional[str] = None

    @property
    def is_memory(self) -> bool:
        return True


@dataclass
class VectorCompute(VectorOp):
    """An arithmetic vector instruction executed by the lanes.

    ``fn`` optionally implements the operation on numpy arrays so results
    flow functionally through the register file; timing only needs
    ``num_elements`` and whether the op is a reduction.
    """

    KIND = KIND_COMPUTE

    num_elements: int = 0
    srcs: Sequence[str] = field(default_factory=tuple)
    dest: Optional[str] = None
    is_reduction: bool = False
    ops_per_element: int = 1
    fn: Optional[Callable] = None


@dataclass
class ScalarWork(VectorOp):
    """Cycles spent by the scalar core (loop bookkeeping, address setup).

    These cycles occupy the dispatcher: no vector instruction can issue while
    scalar work is in progress, which is how per-row iteration overhead
    throttles short streams (paper §III-B, Figs. 3d/3e).
    """

    KIND = KIND_SCALAR

    cycles: int = 1
