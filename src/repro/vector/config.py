"""Configuration of the vector engine timing model."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.utils.bitutils import is_power_of_two
from repro.utils.validation import check_positive


class LoweringMode(enum.Enum):
    """How the VLSU lowers strided / indexed vector accesses to the bus.

    * ``BASE`` — unextended Ara: one narrow transaction per element, indices
      must be fetched into vector registers first.
    * ``PACK`` — AXI-Pack-extended Ara: strided and indexed accesses become
      packed bursts; indexed accesses use the new in-memory-indexed
      instructions so indices never cross the bus.
    * ``IDEAL`` — idealized memory: accesses behave as perfectly packed
      bursts, but indices are still fetched into the core (the IDEAL system
      keeps Ara's baseline ISA).
    """

    BASE = "base"
    PACK = "pack"
    IDEAL = "ideal"

    @property
    def has_axi_pack(self) -> bool:
        """True if the new ``vlimxei``/``vsimxei`` instructions are available."""
        return self is LoweringMode.PACK

    @property
    def packs_irregular(self) -> bool:
        """True if strided/indexed accesses occupy fully packed beats."""
        return self in (LoweringMode.PACK, LoweringMode.IDEAL)


@dataclass(frozen=True)
class VectorEngineConfig:
    """Timing parameters of the Ara-like vector engine.

    The defaults correspond to the paper's evaluation systems: eight 64-bit
    lanes (256-bit memory interface), 4096-bit vector registers, one
    FP32 operation per lane per cycle and single-cycle in-order dispatch.
    """

    lanes: int = 8
    vlen_bits: int = 4096
    lmul: int = 8                  #: register grouping used by the kernels
    bus_bytes: int = 32
    elem_bytes: int = 4
    issue_cycles: int = 1          #: dispatch cost of every vector instruction
    chain_latency: int = 4         #: lane pipeline depth seen by chained ops
    reduction_step_latency: int = 3  #: per-tree-level latency of reductions
    reduction_drain: int = 5       #: fixed cost of moving a reduction result out
    addr_setup_cycles: int = 2     #: VLSU address-generation cost per memory op
    memory_latency_slack: int = 4  #: address-generation / response tail per burst
    max_outstanding_loads: int = 2
    max_outstanding_stores: int = 2

    def __post_init__(self) -> None:
        check_positive("lanes", self.lanes)
        check_positive("vlen_bits", self.vlen_bits)
        if not is_power_of_two(self.lanes):
            raise ConfigurationError("lane count must be a power of two")
        if self.vlen_bits % 8 != 0:
            raise ConfigurationError("VLEN must be a whole number of bytes")
        check_positive("issue_cycles", self.issue_cycles)
        if self.lmul not in (1, 2, 4, 8):
            raise ConfigurationError("LMUL must be 1, 2, 4 or 8")

    @property
    def vlen_bytes(self) -> int:
        """Bytes held by one vector register."""
        return self.vlen_bits // 8

    @property
    def register_group_bytes(self) -> int:
        """Bytes held by one register group at the configured LMUL."""
        return self.vlen_bytes * self.lmul

    def max_vl(self, elem_bytes: int) -> int:
        """Maximum vector length for a given element size at the configured LMUL."""
        return self.register_group_bytes // elem_bytes

    def elements_per_cycle(self, elem_bytes: int) -> int:
        """Arithmetic throughput in elements per cycle across all lanes."""
        # Each lane datapath is 64 bits wide; a 32-bit element therefore
        # does not get to use the other half in this model (matching the
        # paper's FP32 results where bus and compute rates are balanced).
        del elem_bytes
        return self.lanes
