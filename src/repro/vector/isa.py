"""RVV-subset instruction set plus the AXI-Pack in-memory-indexed extension.

Only the instructions the evaluation kernels need are modelled.  The two new
instructions introduced by the paper, ``vlimxei`` and ``vsimxei``, perform
indexed accesses whose index array lives *in memory*; they are only decodable
when the vector unit has the AXI-Pack extension (the PACK system), which is
exactly the hardware/ISA co-design point of §II-B.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

from repro.errors import WorkloadError
from repro.vector.config import LoweringMode


class Mnemonic(enum.Enum):
    """Vector instructions understood by the model."""

    # Unit-stride memory accesses.
    VLE32 = "vle32.v"
    VSE32 = "vse32.v"
    # Strided memory accesses.
    VLSE32 = "vlse32.v"
    VSSE32 = "vsse32.v"
    # Register-indexed memory accesses (indices already in a vector register).
    VLUXEI32 = "vluxei32.v"
    VSUXEI32 = "vsuxei32.v"
    # In-memory-indexed accesses (AXI-Pack extension, new in the paper).
    VLIMXEI32 = "vlimxei32.v"
    VSIMXEI32 = "vsimxei32.v"
    # Arithmetic.
    VFADD = "vfadd.vv"
    VFSUB = "vfsub.vv"
    VFMUL = "vfmul.vv"
    VFMUL_VF = "vfmul.vf"
    VFMACC = "vfmacc.vv"
    VFMACC_VF = "vfmacc.vf"
    VFMIN = "vfmin.vv"
    VFMAX = "vfmax.vv"
    VFREDSUM = "vfredusum.vs"
    VFREDMIN = "vfredmin.vs"
    VMV = "vmv.v.v"
    VMV_VX = "vmv.v.x"
    # Scalar-core bookkeeping (not a vector instruction; used for accounting).
    SCALAR = "scalar"


#: Instructions that exist only with the AXI-Pack vector extension.
AXI_PACK_ONLY = {Mnemonic.VLIMXEI32, Mnemonic.VSIMXEI32}

#: Memory instructions, for quick classification.
MEMORY_MNEMONICS = {
    Mnemonic.VLE32,
    Mnemonic.VSE32,
    Mnemonic.VLSE32,
    Mnemonic.VSSE32,
    Mnemonic.VLUXEI32,
    Mnemonic.VSUXEI32,
    Mnemonic.VLIMXEI32,
    Mnemonic.VSIMXEI32,
}

#: Reduction instructions.
REDUCTION_MNEMONICS = {Mnemonic.VFREDSUM, Mnemonic.VFREDMIN}


@dataclass(frozen=True)
class Instruction:
    """One assembled instruction (kept for listings and statistics)."""

    mnemonic: Mnemonic
    vl: int
    operands: Dict[str, object] = field(default_factory=dict)
    comment: str = ""

    def render(self) -> str:
        """Assembly-like rendering, e.g. ``vlse32.v v1, (a0), a1  # vl=128``."""
        args = ", ".join(f"{key}={value}" for key, value in self.operands.items())
        text = f"{self.mnemonic.value} {args}".strip()
        if self.comment:
            text += f"  # {self.comment}"
        return f"{text}  [vl={self.vl}]"

    @property
    def is_memory(self) -> bool:
        """True for loads and stores."""
        return self.mnemonic in MEMORY_MNEMONICS

    @property
    def is_reduction(self) -> bool:
        """True for reduction instructions."""
        return self.mnemonic in REDUCTION_MNEMONICS


def check_supported(mnemonic: Mnemonic, mode: LoweringMode) -> None:
    """Raise if an instruction is not available on the given system flavour.

    The new in-memory-indexed instructions require the AXI-Pack-extended
    decoder; conversely they are the only way the PACK system expresses
    memory-side indirection.
    """
    if mnemonic in AXI_PACK_ONLY and not mode.has_axi_pack:
        raise WorkloadError(
            f"{mnemonic.value} requires the AXI-Pack vector extension and is "
            f"not available on the {mode.value.upper()} system"
        )
