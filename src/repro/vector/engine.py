"""Cycle-level vector engine: in-order dispatch, chaining, and the VLSU.

The engine executes an assembled :class:`~repro.vector.builder.Program`
against an AXI port.  It is the model of CVA6 + Ara used by all three
evaluation systems; only the *lowering mode* changes between them (how
strided/indexed accesses become bus requests).

Timing model
------------
* Instructions dispatch in order, one per ``issue_cycles`` cycles; scalar
  work blocks dispatch for its duration (loop bookkeeping overhead).
* Memory operations occupy the vector load/store unit; up to
  ``max_outstanding_loads``/``stores`` may be in flight.  Their duration is
  whatever the downstream memory system takes — the engine just pushes one
  request per cycle and consumes one R beat / pushes one W beat per cycle.
* Arithmetic operations run on the lanes at ``lanes`` elements per cycle and
  *chain* on their producers: a chained op completes shortly after its last
  operand element arrives rather than waiting for the full operand first.
* Reductions pay an extra tree-and-drain latency and cannot chain their
  result, which is what makes row-wise dataflows reduction-bound (Fig. 3b/c).
* Ordered stores act as memory fences (the in-place transpose needs this,
  which is why its R utilization saturates at 50 % — §III-B).

Functional model
----------------
Loads deposit real bytes into the register file, stores write register
contents back to the memory model, and arithmetic ops with an ``fn`` compute
real numpy results — so every workload's output can be checked against a
reference implementation.

Under :class:`~repro.sim.policy.DataPolicy.ELIDE` the functional model is
switched off: beats carry geometry only, the register file stays untouched
and results cannot be verified.  The one exception is index loads (``kind ==
"index"``), whose values feed address generation on the BASE system — they
are resolved functionally against the backing storage so cycle counts stay
bit-identical to FULL mode.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.axi.builder import BuilderConfig, RequestBuilder
from repro.axi.monitor import ChannelMonitor
from repro.axi.port import AxiPort
from repro.axi.signals import WBeat
from repro.axi.stream import ContiguousStream, IndirectStream, StridedStream
from repro.axi.transaction import BusRequest
from repro.axi.types import Resp
from repro.errors import SimulationError, WorkloadError
from repro.sim.component import IDLE, Component, WakeHint
from repro.sim.policy import DataPolicy
from repro.vector.builder import Program
from repro.vector.config import LoweringMode, VectorEngineConfig
from repro.vector.ops import (
    KIND_COMPUTE,
    KIND_LOAD,
    KIND_SCALAR,
    KIND_STORE,
    VectorCompute,
    VectorLoad,
    VectorOp,
)
from repro.vector.regfile import VectorRegisterFile

_DTYPES = {"float32": np.float32, "uint32": np.uint32, "int32": np.int32,
           "float64": np.float64, "uint64": np.uint64}

_RESP_OKAY = Resp.OKAY


@dataclass(frozen=True)
class BusFault:
    """Structured record of one failed (or timed-out) vector memory op.

    ``resp`` is the AXI response name (``"SLVERR"``/``"DECERR"``) or
    ``"TIMEOUT"`` when the per-transaction watchdog abandoned the op after
    its responses stopped arriving.  One record is emitted per failing op
    (the first error beat wins; later beats of the same op only escalate
    the severity the controller already reported in-band).
    """

    engine: str
    op_index: int
    kind: str  #: "load" | "store"
    addr: int
    resp: str
    cycle: int

    def to_dict(self) -> dict:
        """Plain JSON-serializable form, used by the system fault report."""
        return {
            "engine": self.engine,
            "op_index": self.op_index,
            "kind": self.kind,
            "addr": self.addr,
            "resp": self.resp,
            "cycle": self.cycle,
        }


class _MemOpState:
    """In-flight bookkeeping of one vector load or store."""

    __slots__ = (
        "op",
        "requests",
        "is_load",
        "next_request",
        "total_beats",
        "beats_done",
        "responses_pending",
        "chunks",
        "positions",
        "first_beat_cycle",
        "ready_cycle",
        "resp",
        "deadline",
    )

    def __init__(
        self,
        op: VectorOp,
        requests: List[BusRequest],
        is_load: bool,
        elide: bool = False,
    ) -> None:
        self.op = op
        self.requests = requests
        self.is_load = is_load
        self.next_request = 0
        self.beats_done = 0
        self.responses_pending = len(requests)
        # The single-request case dominates (one burst per op on most
        # workloads); skip the comprehension machinery for it.
        if len(requests) == 1:
            request = requests[0]
            self.total_beats = request.num_beats
            #: collected R payload per transaction (None under DataPolicy.ELIDE)
            self.chunks: Optional[Dict[int, List[bytes]]] = (
                None if elide else {request.txn_id: []}
            )
            self.positions: Dict[int, int] = {request.txn_id: 0}
        else:
            self.total_beats = sum(request.num_beats for request in requests)
            self.chunks = (
                None if elide else {request.txn_id: [] for request in requests}
            )
            self.positions = {
                request.txn_id: index for index, request in enumerate(requests)
            }
        self.first_beat_cycle: Optional[int] = None
        self.ready_cycle = 0  #: address generation done, requests may be issued
        self.resp = _RESP_OKAY  #: worst in-band response seen on any beat
        self.deadline: Optional[int] = None  #: watchdog expiry (None = unarmed)

    @property
    def all_issued(self) -> bool:
        return self.next_request >= len(self.requests)

    @property
    def complete(self) -> bool:
        if self.is_load:
            return self.beats_done >= self.total_beats
        return self.all_issued and self.responses_pending == 0

    def payload(self) -> bytes:
        """Concatenated packed payload in stream order (loads only)."""
        parts: List[bytes] = []
        for request in self.requests:
            parts.extend(self.chunks[request.txn_id])
        return b"".join(parts)


@dataclass
class EngineResult:
    """Measurements of one program execution."""

    cycles: int
    instructions: int
    r_beats: int
    r_useful_bytes: int
    r_data_bytes: int
    r_index_bytes: int
    w_beats: int
    w_useful_bytes: int
    bus_bytes: int

    @classmethod
    def aggregate(cls, results: "List[EngineResult]", cycles: int) -> "EngineResult":
        """Combine per-engine measurements of one multi-engine run.

        Traffic counts are summed across engines while ``cycles`` is the
        shared wall time of the run, so the utilization properties measure
        the *aggregate* traffic over the one shared downstream bus — the
        contention metric a multi-requestor topology is judged by.
        """
        if not results:
            raise SimulationError("cannot aggregate an empty result list")
        return cls(
            cycles=cycles,
            instructions=sum(r.instructions for r in results),
            r_beats=sum(r.r_beats for r in results),
            r_useful_bytes=sum(r.r_useful_bytes for r in results),
            r_data_bytes=sum(r.r_data_bytes for r in results),
            r_index_bytes=sum(r.r_index_bytes for r in results),
            w_beats=sum(r.w_beats for r in results),
            w_useful_bytes=sum(r.w_useful_bytes for r in results),
            bus_bytes=results[0].bus_bytes,
        )

    @property
    def r_utilization(self) -> float:
        """R-channel utilization including index traffic."""
        if self.cycles == 0:
            return 0.0
        return self.r_useful_bytes / (self.bus_bytes * self.cycles)

    @property
    def r_utilization_no_index(self) -> float:
        """R-channel utilization counting only data payload (no indices)."""
        if self.cycles == 0:
            return 0.0
        return self.r_data_bytes / (self.bus_bytes * self.cycles)

    @property
    def w_utilization(self) -> float:
        """W-channel utilization."""
        if self.cycles == 0:
            return 0.0
        return self.w_useful_bytes / (self.bus_bytes * self.cycles)


class VectorEngine(Component):
    """Executes one program, driving an AXI/AXI-Pack port for memory traffic."""

    def __init__(
        self,
        name: str,
        program: Program,
        port: AxiPort,
        config: Optional[VectorEngineConfig] = None,
        mode: Optional[LoweringMode] = None,
        data_policy: DataPolicy = DataPolicy.FULL,
        storage=None,
        watchdog_cycles: int = 0,
    ) -> None:
        super().__init__(name)
        self.program = program
        self.port = port
        self.config = config or VectorEngineConfig(bus_bytes=port.bus_bytes)
        self.mode = mode or program.mode
        self.data_policy = data_policy
        self._elide = data_policy.elides_data
        #: backing storage, used under ELIDE as the oracle for index loads
        #: (``kind == "index"``) whose values feed address generation
        self._storage = storage
        self.regfile = VectorRegisterFile(self.config.register_group_bytes)
        self.request_builder = RequestBuilder(BuilderConfig(bus_bytes=port.bus_bytes))
        self.r_monitor = ChannelMonitor("R", port.bus_bytes)
        self.w_monitor = ChannelMonitor("W", port.bus_bytes)

        self._next_op = 0
        self._ops = program.ops  #: prebound: indexed every dispatch attempt
        self._num_ops = len(program.ops)
        self._r_queue = port.r  #: prebound hot channels (checked every tick)
        self._b_queue = port.b
        self._stall_until = 0  #: first cycle at which dispatch may run again
        self._timers: List[float] = []  #: heap of future wake deadlines
        #: deadlines currently on the heap — many ops complete on the same
        #: cycle, so deduplicating pushes keeps the heap (and its per-tick
        #: drain) proportional to distinct deadlines, not completions
        self._timer_set: set = set()
        self._done_at: Dict[int, int] = {}
        self._latest_completion = 0
        self._active_loads: List[_MemOpState] = []
        self._active_stores: List[_MemOpState] = []
        #: AR/AW requests dispatched but not yet pushed onto the port —
        #: gates the per-tick scan over the active memory ops
        self._unissued_requests = 0
        self._by_txn: Dict[int, _MemOpState] = {}
        self._txn_kind: Dict[int, str] = {}
        #: pending W beats: (request, beat index, payload chunk | None, useful)
        self._w_backlog: Deque[Tuple[BusRequest, int, Optional[bytes], int]] = deque()
        self._pending_computes: List = []
        self._scheduled_computes: set = set()
        self._alu_busy_until = 0
        self._cycle = 0
        #: per-transaction watchdog period in cycles; 0 disables it.  Armed at
        #: dispatch and re-armed on every request issue and response beat, so
        #: it only fires when an op stops making forward progress entirely
        #: (e.g. a lost R/B response).
        self._watchdog_cycles = watchdog_cycles
        #: structured abort state: one BusFault per failing memory op.  The
        #: first fault flips ``_aborting``, which stops dispatch; in-flight
        #: ops still drain so the SoC ends in a consistent, reusable state.
        self.faults: List[BusFault] = []
        self._aborting = False
        #: transactions abandoned by the watchdog — late beats for these are
        #: silently dropped instead of tripping the unknown-txn check
        self._abandoned_txns: set = set()

    # ------------------------------------------------------------------ tick
    def tick(self, cycle: int) -> WakeHint:
        self._cycle = cycle
        if self._r_queue._storage:
            self._consume_r(cycle)
        if self._b_queue._storage:
            self._consume_b(cycle)
        if self._pending_computes:
            self._retire_computes(cycle)
        if self._watchdog_cycles and (self._active_loads or self._active_stores):
            self._check_watchdog(cycle)
        hint = self._dispatch(cycle)
        if self._unissued_requests:
            self._push_requests(cycle)
        if self._w_backlog:
            self._push_w_data(cycle)
        # Everything queue-gated (R/B arrivals, AR/AW/W back-pressure) re-wakes
        # us through the port subscriptions; the timer heap covers everything
        # time-gated (op completions, address setup, dispatch stalls).  All
        # matured deadlines are resolved in one batched drain.
        timers = self._timers
        if timers:
            discard = self._timer_set.discard
            while timers and timers[0] <= cycle:
                discard(heappop(timers))
            if timers and timers[0] < hint:
                hint = timers[0]
        return hint

    def wake_queues(self):
        return self.port.all_queues()

    # ------------------------------------------------------------- completion
    def _mark_done(self, op_id: int, cycle: int) -> None:
        self._done_at[op_id] = cycle
        if cycle > self._cycle and cycle not in self._timer_set:
            self._timer_set.add(cycle)
            heappush(self._timers, cycle)
        if cycle > self._latest_completion:
            self._latest_completion = cycle

    def _op_done(self, op_id: int, cycle: int) -> bool:
        return op_id in self._done_at and self._done_at[op_id] <= cycle

    def _deps_done(self, op: VectorOp, cycle: int) -> bool:
        done_at = self._done_at
        for dep in op.deps:
            at = done_at.get(dep)
            if at is None or at > cycle:
                return False
        return True

    def _load_deps_ready(self, op: VectorOp, cycle: int) -> bool:
        """Dependency check for loads.

        A load's dependency on an arithmetic op is a register-reuse (WAR/WAW)
        hazard, not a data dependency; real chaining resolves it at element
        granularity, so it is enough that the arithmetic op has captured its
        operands (been scheduled).  Dependencies on memory ops (index
        registers, fences) still require completion.
        """
        for dep in op.deps:
            if self._op_done(dep, cycle):
                continue
            dep_op = self.program.ops[dep]
            if isinstance(dep_op, VectorCompute) and dep in self._scheduled_computes:
                continue
            return False
        return True

    def done(self) -> bool:
        """True once every instruction has been dispatched and completed.

        An aborting engine is done once its in-flight traffic has drained —
        undispatched instructions past the faulting op are dropped, not run.
        """
        if self._next_op < self._num_ops and not self._aborting:
            return False
        if self._active_loads or self._active_stores or self._pending_computes:
            return False
        if self._w_backlog:
            return False
        return self._latest_completion <= self._cycle

    def busy(self) -> bool:
        return not self.done()

    # -------------------------------------------------------------- dispatch
    def _dispatch(self, cycle: int) -> float:
        """Dispatch at most one instruction; return the dispatch wake hint.

        The hint is the next cycle at which dispatch itself must be retried
        (:data:`IDLE` when dispatch is blocked on events that re-wake the
        engine anyway: op completions land on the timer heap via
        :meth:`_mark_done`, and memory-slot/fence pressure clears only when
        R/B beats arrive on the subscribed port queues).

        Runs every awake cycle with a pending instruction, so it branches on
        the ops' integer ``KIND`` tags instead of isinstance chains.
        """
        next_op = self._next_op
        if next_op >= self._num_ops or self._aborting:
            return IDLE
        if cycle < self._stall_until:
            return self._stall_until
        op = self._ops[next_op]
        kind = op.KIND
        if kind == KIND_LOAD:
            if not self._load_deps_ready(op, cycle):
                return IDLE
            if not self._try_dispatch_memory(op, cycle):
                return IDLE
            self._stall_until = cycle + self.config.issue_cycles
            self._next_op = next_op + 1
            return self._after_dispatch_hint()
        if kind == KIND_COMPUTE:
            if self._deps_done(op, cycle):
                self._schedule_compute(op, cycle)
            else:
                # Chaining: the op is dispatched to the lanes and will start
                # consuming operand elements as they arrive; scheduling (and
                # the functional evaluation) happens once the producers are
                # known to be complete.  The dispatch cycle is remembered so
                # the overlapped execution is credited.
                self._pending_computes.append((op, cycle))
            self._stall_until = cycle + self.config.issue_cycles
            self._next_op = next_op + 1
            return self._after_dispatch_hint()
        if not self._deps_done(op, cycle):
            return IDLE
        if kind == KIND_SCALAR:
            self._stall_until = cycle + max(1, op.cycles)
            self._mark_done(op.op_id, cycle + op.cycles)
            self._next_op = next_op + 1
            return self._after_dispatch_hint()
        if kind == KIND_STORE:
            if not self._try_dispatch_memory(op, cycle):
                return IDLE
            self._stall_until = cycle + self.config.issue_cycles
            self._next_op = next_op + 1
            return self._after_dispatch_hint()
        raise SimulationError(f"unknown op type {type(op).__name__}")

    def _after_dispatch_hint(self) -> float:
        """Wake at the end of the issue stall if instructions remain."""
        if self._next_op < self._num_ops:
            return self._stall_until
        return IDLE

    # ----------------------------------------------------------- compute ops
    def _schedule_compute(self, op: VectorCompute, cycle: int) -> None:
        throughput = self.config.elements_per_cycle(self.config.elem_bytes)
        duration = max(1, math.ceil(op.num_elements / throughput)) * op.ops_per_element
        dep_end = max((self._done_at[d] for d in op.deps), default=cycle)
        start = max(cycle, self._alu_busy_until)
        # Chained execution: the op finishes shortly after its last operand
        # element arrives, or after its own full duration, whichever is later.
        end = max(start + duration, dep_end + self.config.chain_latency + 1)
        if op.is_reduction:
            # Ara-style reductions are slide-and-add based: their latency grows
            # with the logarithm of the vector length, on top of streaming the
            # elements through the lanes, and the scalar result must drain out.
            tree_levels = max(1, int(math.ceil(math.log2(max(2, op.num_elements)))))
            end += self.config.reduction_step_latency * tree_levels
            end += self.config.reduction_drain
        self._alu_busy_until = end
        self._mark_done(op.op_id, end)
        self._scheduled_computes.add(op.op_id)
        if not self._elide:
            self._apply_compute(op)

    def _apply_compute(self, op: VectorCompute) -> None:
        if op.fn is None:
            if op.dest is not None and not self.regfile.has_vector(op.dest):
                self.regfile.write_vector(
                    op.dest, np.zeros(op.num_elements, dtype=np.float32)
                )
            return
        args = [self.regfile.read_vector(src) for src in op.srcs]
        result = op.fn(*args)
        if op.dest is not None and result is not None:
            self.regfile.write_vector(op.dest, np.asarray(result))

    def _retire_computes(self, cycle: int) -> None:
        """Schedule chained computes whose producers have now completed.

        The lanes execute in order, so scheduling stops at the first pending
        compute whose operands are still being produced.
        """
        while self._pending_computes:
            op, dispatch_cycle = self._pending_computes[0]
            if not self._deps_done(op, cycle):
                return
            self._pending_computes.pop(0)
            self._schedule_compute(op, dispatch_cycle)

    # ------------------------------------------------------------ memory ops
    def _try_dispatch_memory(self, op: VectorOp, cycle: int) -> bool:
        is_load = isinstance(op, VectorLoad)
        # Ordered (fenced) accesses wait for all outstanding memory traffic.
        if getattr(op, "ordered", False) and (self._active_loads or self._active_stores):
            return False
        if any(s.op.ordered for s in self._active_stores) or any(
            load.op.ordered for load in self._active_loads
        ):
            return False
        active = self._active_loads if is_load else self._active_stores
        limit = (
            self.config.max_outstanding_loads
            if is_load
            else self.config.max_outstanding_stores
        )
        if len(active) >= limit:
            return False
        requests = self._lower(op, is_load)
        state = _MemOpState(op, requests, is_load, self._elide)
        state.ready_cycle = cycle + self.config.addr_setup_cycles
        if state.ready_cycle > cycle and state.ready_cycle not in self._timer_set:
            self._timer_set.add(state.ready_cycle)
            heappush(self._timers, state.ready_cycle)
        active.append(state)
        if self._watchdog_cycles:
            self._arm_watchdog(state, cycle)
        self._unissued_requests += len(requests)
        kind = getattr(op, "kind", "data")
        for request in requests:
            self._by_txn[request.txn_id] = state
            self._txn_kind[request.txn_id] = kind
        if not is_load:
            self._queue_write_data(state)
        return True

    def _lower(self, op: VectorOp, is_load: bool) -> List[BusRequest]:
        stream = op.stream
        builder = self.request_builder
        packs = self.mode.packs_irregular
        if isinstance(stream, ContiguousStream):
            return builder.contiguous(stream, is_write=not is_load)
        if isinstance(stream, StridedStream):
            if packs:
                return builder.pack_strided(stream, is_write=not is_load)
            return builder.base_strided(stream, is_write=not is_load)
        if isinstance(stream, IndirectStream):
            if getattr(op, "uses_in_memory_indices", False):
                if not self.mode.has_axi_pack:
                    raise WorkloadError(
                        "in-memory-indexed access executed without AXI-Pack"
                    )
                return builder.pack_indirect(stream, is_write=not is_load)
            if self.mode is LoweringMode.IDEAL:
                # The idealized memory packs gathers perfectly.
                return builder.pack_indirect(stream, is_write=not is_load)
            index_reg = getattr(op, "index_values_reg", None)
            if index_reg is None:
                raise WorkloadError(
                    "register-indexed access without an index register on BASE"
                )
            indices = np.asarray(self.regfile.read_vector(index_reg)).astype(np.int64)
            return builder.base_indexed(stream, indices, is_write=not is_load)
        raise WorkloadError(f"cannot lower stream of type {type(stream).__name__}")

    def _queue_write_data(self, state: _MemOpState) -> None:
        op = state.op
        if self._elide:
            # Timing-only: queue every W beat with its geometry, no payload.
            for request in state.requests:
                for beat in range(request.num_beats):
                    useful = request.beat_useful_bytes(beat)
                    self._w_backlog.append((request, beat, None, useful))
            return
        values = self.regfile.read_vector(op.src)
        dtype = _DTYPES[op.dtype]
        payload = np.ascontiguousarray(values, dtype=dtype).tobytes()
        if len(payload) < op.stream.total_bytes:
            raise WorkloadError(
                f"store source register {op.src!r} holds {len(payload)} bytes but "
                f"the store needs {op.stream.total_bytes}"
            )
        offset = 0
        for request in state.requests:
            for beat in range(request.num_beats):
                useful = request.beat_useful_bytes(beat)
                chunk = payload[offset : offset + useful]
                offset += useful
                self._w_backlog.append((request, beat, chunk, useful))

    # ---------------------------------------------------------- AXI channels
    def _push_requests(self, cycle: int) -> None:
        # One AR per cycle, oldest load first.
        for state in self._active_loads:
            if state.all_issued:
                continue
            if cycle >= state.ready_cycle and self.port.ar.can_push():
                self.port.ar.push(state.requests[state.next_request])
                state.next_request += 1
                self._unissued_requests -= 1
                if self._watchdog_cycles:
                    self._arm_watchdog(state, cycle)
            break
        # One AW per cycle, oldest store first.
        for state in self._active_stores:
            if state.all_issued:
                continue
            if cycle >= state.ready_cycle and self.port.aw.can_push():
                self.port.aw.push(state.requests[state.next_request])
                state.next_request += 1
                self._unissued_requests -= 1
                if self._watchdog_cycles:
                    self._arm_watchdog(state, cycle)
            break

    def _push_w_data(self, cycle: int) -> None:
        if not self._w_backlog or not self.port.w.can_push():
            return
        request, beat, chunk, useful = self._w_backlog[0]
        owner = self._by_txn[request.txn_id]
        # W data may only flow for requests whose AW has been issued.
        if owner.positions[request.txn_id] >= owner.next_request:
            return
        if chunk is None:
            padded = b""
        else:
            padded = chunk + b"\x00" * (request.bus_bytes - useful)
        self.port.w.push(
            WBeat(data=padded, useful_bytes=useful, last=beat == request.num_beats - 1)
        )
        self.w_monitor.record_beat(useful)
        self._w_backlog.popleft()

    def _consume_r(self, cycle: int) -> None:
        beat = self._r_queue.pop()
        txn_id = beat.txn_id
        state = self._by_txn.get(txn_id)
        if state is None:
            if txn_id in self._abandoned_txns:
                return  # late beat of a watchdog-abandoned transaction
            raise SimulationError(f"R beat for unknown transaction {txn_id}")
        if beat.resp is not _RESP_OKAY:
            self._note_fault(state, txn_id, beat.resp, cycle)
        if self._watchdog_cycles:
            self._arm_watchdog(state, cycle)
        useful = beat.useful_bytes
        self.r_monitor.record_beat(useful, kind=self._txn_kind.get(txn_id, "data"))
        if not self._elide:
            data = beat.data
            if len(data) != useful:
                data = bytes(data)[:useful]
            state.chunks[txn_id].append(data)
        done = state.beats_done + 1
        state.beats_done = done
        if state.first_beat_cycle is None:
            state.first_beat_cycle = cycle
        if done >= state.total_beats and state.is_load:
            self._finish_load(state, cycle)

    def _finish_load(self, state: _MemOpState, cycle: int) -> None:
        op = state.op
        faulted = state.resp is not _RESP_OKAY
        if self._elide:
            if getattr(op, "kind", "data") == "index":
                # Index values feed address generation (the BASE system's
                # register-indexed gathers); resolve them functionally so
                # later lowering produces FULL-identical requests.  Faulted
                # index loads deposit zeros — identically in both policies —
                # though dispatch has already stopped at the faulting op.
                if faulted:
                    payload = np.zeros(op.stream.num_elements, _DTYPES[op.dtype])
                else:
                    payload = self._oracle_payload(state)
                self.regfile.write_vector(op.dest, payload)
        else:
            dtype = _DTYPES[op.dtype]
            if faulted:
                # Error beats are phantoms (no payload); deposit a full-length
                # zero vector so any already-chained consumer stays
                # deterministic instead of reading a short buffer.
                values = np.zeros(op.stream.num_elements, dtype=dtype)
                self.regfile.write_vector(op.dest, values)
            else:
                values = np.frombuffer(state.payload(), dtype=dtype)[
                    : op.stream.num_elements
                ]
                self.regfile.write_vector(op.dest, values.copy())
        self._mark_done(op.op_id, cycle + self.config.memory_latency_slack)
        self._active_loads.remove(state)
        self._forget(state)

    def _oracle_payload(self, state: _MemOpState) -> np.ndarray:
        """Resolve a load's values from the backing storage (ELIDE only)."""
        from repro.mem.functional import read_burst_payload

        if self._storage is None:
            raise WorkloadError(
                "DataPolicy.ELIDE needs the vector engine to carry the backing "
                "storage to resolve index loads"
            )
        op = state.op
        parts = [read_burst_payload(self._storage, r) for r in state.requests]
        raw = parts[0] if len(parts) == 1 else np.concatenate(parts)
        dtype = _DTYPES[op.dtype]
        return raw.view(dtype)[: op.stream.num_elements].copy()

    def _consume_b(self, cycle: int) -> None:
        beat = self._b_queue.pop()
        state = self._by_txn.get(beat.txn_id)
        if state is None:
            if beat.txn_id in self._abandoned_txns:
                return  # late response of a watchdog-abandoned transaction
            raise SimulationError(f"B beat for unknown transaction {beat.txn_id}")
        if beat.resp is not _RESP_OKAY:
            self._note_fault(state, beat.txn_id, beat.resp, cycle)
        if self._watchdog_cycles:
            self._arm_watchdog(state, cycle)
        state.responses_pending -= 1
        if state.complete:
            self._mark_done(state.op.op_id, cycle + 1)
            self._active_stores.remove(state)
            self._forget(state)

    def _forget(self, state: _MemOpState) -> None:
        for request in state.requests:
            self._by_txn.pop(request.txn_id, None)
            self._txn_kind.pop(request.txn_id, None)

    # ---------------------------------------------------- faults and watchdog
    @property
    def aborting(self) -> bool:
        """True once a bus fault (or watchdog timeout) stopped dispatch."""
        return self._aborting

    def _note_fault(self, state: _MemOpState, txn_id: int, resp: Resp,
                    cycle: int) -> None:
        """Record an in-band error response and enter the abort path.

        One :class:`BusFault` is recorded per failing op — at its first error
        beat — while ``state.resp`` keeps the worst severity so the register
        zero-fill in :meth:`_finish_load` sees every later escalation too.
        """
        if state.resp is _RESP_OKAY:
            self.faults.append(
                BusFault(
                    engine=self.name,
                    op_index=state.op.op_id,
                    kind="load" if state.is_load else "store",
                    addr=state.requests[state.positions[txn_id]].addr,
                    resp=resp.name,
                    cycle=cycle,
                )
            )
            self._aborting = True
        if resp.value > state.resp.value:
            state.resp = resp

    def _arm_watchdog(self, state: _MemOpState, cycle: int) -> None:
        deadline = cycle + self._watchdog_cycles
        state.deadline = deadline
        # Deadlines land on the timer heap so an event-driven engine wakes to
        # notice a transaction whose responses stopped arriving entirely.
        if deadline not in self._timer_set:
            self._timer_set.add(deadline)
            heappush(self._timers, deadline)

    def _check_watchdog(self, cycle: int) -> None:
        for active in (self._active_loads, self._active_stores):
            for state in list(active):
                if state.deadline is not None and cycle >= state.deadline:
                    self._abandon_op(state, cycle)

    def _abandon_op(self, state: _MemOpState, cycle: int) -> None:
        """Watchdog expiry: give up on a transaction whose responses are lost.

        The op is unwound from every queue the engine owns (unissued request
        budget, W backlog, txn routing tables) and recorded as a ``TIMEOUT``
        bus fault, entering the same structured abort path as an in-band
        error response.  Late beats that do arrive afterwards are dropped via
        ``_abandoned_txns``.
        """
        op = state.op
        if state.resp is _RESP_OKAY:
            self.faults.append(
                BusFault(
                    engine=self.name,
                    op_index=op.op_id,
                    kind="load" if state.is_load else "store",
                    addr=state.requests[0].addr,
                    resp="TIMEOUT",
                    cycle=cycle,
                )
            )
        self._aborting = True
        if state.is_load and (
            not self._elide or getattr(op, "kind", "data") == "index"
        ):
            # The dest register will never be filled; deposit zeros so any
            # already-chained consumer stays deterministic (same contract as
            # the in-band-error path in _finish_load).
            self.regfile.write_vector(
                op.dest, np.zeros(op.stream.num_elements, _DTYPES[op.dtype])
            )
        for request in state.requests:
            self._abandoned_txns.add(request.txn_id)
        unissued = len(state.requests) - state.next_request
        if unissued:
            self._unissued_requests -= unissued
        if self._w_backlog:
            txns = {request.txn_id for request in state.requests}
            self._w_backlog = deque(
                entry for entry in self._w_backlog if entry[0].txn_id not in txns
            )
        (self._active_loads if state.is_load else self._active_stores).remove(state)
        self._forget(state)
        self._mark_done(op.op_id, cycle)

    # ----------------------------------------------------------------- result
    def result(self, cycles: int) -> EngineResult:
        """Package the measurements of a finished run."""
        return EngineResult(
            cycles=cycles,
            instructions=self.program.num_instructions,
            r_beats=self.r_monitor.beats,
            r_useful_bytes=self.r_monitor.useful_bytes,
            r_data_bytes=self.r_monitor.useful_bytes_by_kind.get("data", 0),
            r_index_bytes=self.r_monitor.useful_bytes_by_kind.get("index", 0),
            w_beats=self.w_monitor.beats,
            w_useful_bytes=self.w_monitor.useful_bytes,
            bus_bytes=self.port.bus_bytes,
        )
