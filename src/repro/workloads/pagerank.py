"""One PageRank sweep over a sparse weighted adjacency matrix.

PageRank rates every node by the ranks of the nodes linking to it; one sweep
is ``r' = (1 - d)/N + d * (A_norm @ r)`` where ``A_norm`` is the column-
normalized adjacency matrix and ``d`` the damping factor.  Structurally this
is an SpMV with a per-row damping update, so the kernel reuses the shared CSR
gather kernel and adds a post-row fused multiply-add.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.mem.storage import MemoryStorage
from repro.vector.builder import AraProgramBuilder, Program
from repro.vector.config import LoweringMode, VectorEngineConfig
from repro.vector.isa import Mnemonic
from repro.workloads.base import MemoryLayout, Workload
from repro.workloads.csr_kernel import CsrKernelSpec, build_csr_rowwise
from repro.workloads.sparse import CsrMatrix, heart1_like


class PageRankWorkload(Workload):
    """A single damped PageRank iteration on a CSR adjacency matrix."""

    name = "prank"
    category = "indirect"

    def __init__(self, matrix: Optional[CsrMatrix] = None, num_rows: int = 64,
                 avg_nnz_per_row: Optional[float] = None, damping: float = 0.85,
                 seed: int = 6, scalar_overhead: int = 4) -> None:
        if matrix is None:
            if avg_nnz_per_row is None:
                matrix = heart1_like(num_rows=num_rows, seed=seed)
            else:
                from repro.workloads.sparse import random_csr

                matrix = random_csr(num_rows, num_rows,
                                    avg_nnz_per_row=avg_nnz_per_row, seed=seed)
        # PageRank weights must be non-negative; reuse magnitudes.
        matrix = CsrMatrix(
            matrix.num_rows, matrix.num_cols, matrix.row_ptr, matrix.col_idx,
            np.abs(matrix.values) + np.float32(0.01),
        )
        self.matrix = matrix
        self.damping = float(damping)
        self.scalar_overhead = scalar_overhead
        self.ranks = np.full(matrix.num_cols, 1.0 / matrix.num_cols, dtype=np.float32)
        self.layout = MemoryLayout()
        self.addr_values = self.layout.place("values", matrix.values.nbytes)
        self.addr_col_idx = self.layout.place("col_idx", matrix.col_idx.nbytes)
        self.addr_row_ptr = self.layout.place("row_ptr", matrix.row_ptr.nbytes)
        self.addr_ranks = self.layout.place("ranks", self.ranks.nbytes)
        self.addr_out = self.layout.place("ranks_out", self.ranks.nbytes)

    # ------------------------------------------------------------------ data
    def initialize(self, storage: MemoryStorage) -> None:
        storage.write_array(self.addr_values, self.matrix.values)
        storage.write_array(self.addr_col_idx, self.matrix.col_idx)
        storage.write_array(self.addr_row_ptr, self.matrix.row_ptr)
        storage.write_array(self.addr_ranks, self.ranks)
        storage.write_array(self.addr_out,
                            np.zeros(self.matrix.num_rows, dtype=np.float32))

    # --------------------------------------------------------------- program
    def build_program(self, mode: LoweringMode,
                      config: VectorEngineConfig) -> Program:
        return self.build_program_rows(mode, config, 0, self.matrix.num_rows)

    def shard_rows(self) -> int:
        return self.matrix.num_rows

    def build_program_rows(self, mode: LoweringMode,
                           config: VectorEngineConfig,
                           row_lo: int, row_hi: int) -> Program:
        builder = AraProgramBuilder(self.name, mode, config)
        damping = np.float32(self.damping)
        teleport = np.float32((1.0 - self.damping) / self.matrix.num_rows)

        def damp(prog_builder: AraProgramBuilder, row: int, result: str) -> str:
            dest = f"{result}_d"
            prog_builder.compute(
                Mnemonic.VFMACC_VF, dest, (result,), 1,
                fn=lambda acc: (acc * damping + teleport).astype(np.float32),
                label=f"row {row} damping update",
            )
            return dest

        spec = CsrKernelSpec(combine="mul", reduce="sum",
                             scalar_overhead=self.scalar_overhead, post_row=damp)
        build_csr_rowwise(builder, self.matrix, self.addr_values,
                          self.addr_col_idx, self.addr_ranks, self.addr_out, spec,
                          row_lo=row_lo, row_hi=row_hi)
        return builder.build()

    # ---------------------------------------------------------------- verify
    def reference(self) -> np.ndarray:
        """Expected ranks after one sweep."""
        spread = self.matrix.multiply(self.ranks).astype(np.float64)
        teleport = (1.0 - self.damping) / self.matrix.num_rows
        return (teleport + self.damping * spread).astype(np.float32)

    def verify(self, storage: MemoryStorage) -> bool:
        result = storage.read_array(self.addr_out, self.matrix.num_rows, np.float32)
        return self._allclose(result, self.reference())
