"""In-situ matrix transpose (ismt) — the paper's flagship strided workload.

The kernel swaps the strictly-upper and strictly-lower triangles of a square
row-major matrix in place.  For each row *i* it loads the row segment
``A[i, i+1:]`` contiguously and the column segment ``A[i+1:, i]`` with a
stride of one matrix row, then stores each segment to the other's location.

On the BASE system the strided column access degenerates into one narrow
transaction per element; with AXI-Pack it becomes a packed strided burst.
Stores are marked *ordered* because Ara conservatively orders reads after
outstanding writes for potentially aliasing in-place updates — this is the
read-write ordering that caps ismt's R utilization at 50 % (paper §III-B).
"""

from __future__ import annotations

import numpy as np

from repro.mem.storage import MemoryStorage
from repro.vector.builder import AraProgramBuilder, Program
from repro.vector.config import LoweringMode, VectorEngineConfig
from repro.workloads.base import MemoryLayout, Workload
from repro.workloads.dense import random_matrix


class IsmtWorkload(Workload):
    """In-place transpose of an ``n x n`` FP32 matrix."""

    name = "ismt"
    category = "strided"

    def __init__(self, n: int = 64, seed: int = 1,
                 scalar_overhead: int = 4) -> None:
        self.n = n
        self.seed = seed
        self.scalar_overhead = scalar_overhead
        self.matrix = random_matrix(n, seed)
        self.layout = MemoryLayout()
        self.addr_a = self.layout.place("A", self.matrix.nbytes)

    # ------------------------------------------------------------------ data
    def initialize(self, storage: MemoryStorage) -> None:
        storage.write_array(self.addr_a, self.matrix)

    # --------------------------------------------------------------- program
    def build_program(self, mode: LoweringMode,
                      config: VectorEngineConfig) -> Program:
        return self.build_program_rows(mode, config, 0, max(0, self.n - 1))

    def shard_rows(self) -> int:
        # Iteration i swaps the strictly-upper/lower pair segments of row i;
        # each (i, j) pair is touched by exactly one iteration, so disjoint
        # iteration ranges touch disjoint memory and shard cleanly.
        return max(0, self.n - 1)

    def build_program_rows(self, mode: LoweringMode,
                           config: VectorEngineConfig,
                           row_lo: int, row_hi: int) -> Program:
        n = self.n
        builder = AraProgramBuilder(self.name, mode, config)
        elem = 4
        for i in range(row_lo, row_hi):
            length = n - 1 - i
            row_base = self.addr_a + (i * n + i + 1) * elem
            col_base = self.addr_a + ((i + 1) * n + i) * elem
            offset = 0
            for chunk in builder.strip_mine(length):
                builder.scalar(self.scalar_overhead, label=f"row {i} setup")
                builder.vle32("v1", row_base + offset * elem, chunk,
                              label=f"row {i} upper segment")
                builder.vlse32("v2", col_base + offset * n * elem, chunk,
                               stride_elems=n, label=f"row {i} lower segment")
                builder.vsse32("v1", col_base + offset * n * elem, chunk,
                               stride_elems=n, ordered=True,
                               label=f"row {i} store to lower")
                builder.vse32("v2", row_base + offset * elem, chunk, ordered=True,
                              label=f"row {i} store to upper")
                offset += chunk
        return builder.build()

    # ---------------------------------------------------------------- verify
    def reference(self) -> np.ndarray:
        """The expected memory contents after the kernel: the transpose."""
        return self.matrix.T.copy()

    def verify(self, storage: MemoryStorage) -> bool:
        result = storage.read_array(self.addr_a, self.n * self.n, np.float32)
        result = result.reshape(self.n, self.n)
        return bool(np.array_equal(result, self.reference()))
