"""Shared row-wise CSR gather kernel used by spmv, pagerank and sssp.

All three indirect workloads walk a CSR matrix row by row:

1. load the row's nonzero values contiguously;
2. gather ``x[col_idx[...]]`` — this is the irregular access:
   * PACK uses the new ``vlimxei32`` instruction (indices stay in memory and
     are resolved by the AXI-Pack controller's index stage);
   * BASE/IDEAL must first load the indices into a vector register
     (``vle32``, counted as index traffic on the bus) and then issue a
     register-indexed ``vluxei32`` gather;
3. combine values and gathered elements (multiply for SpMV/PageRank, add for
   the SSSP relaxation);
4. reduce the combined vector (sum or min) and post-process / store.

The kernel is parameterized by the combine/reduce operations and an optional
per-row post-processing hook so each workload only describes what differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.vector.builder import AraProgramBuilder
from repro.vector.config import LoweringMode
from repro.workloads.sparse import CsrMatrix


@dataclass
class CsrKernelSpec:
    """What a CSR-walking workload wants done per row."""

    combine: str = "mul"           #: "mul" (SpMV-like) or "add" (SSSP-like)
    reduce: str = "sum"            #: "sum" or "min"
    scalar_overhead: int = 4       #: scalar-core cycles per row iteration
    #: optional hook(builder, row, result_reg) -> result_reg for post-processing
    post_row: Optional[Callable[[AraProgramBuilder, int, str], str]] = None


def build_csr_rowwise(
    builder: AraProgramBuilder,
    matrix: CsrMatrix,
    addr_values: int,
    addr_col_idx: int,
    addr_x: int,
    addr_y: int,
    spec: CsrKernelSpec,
    row_lo: int = 0,
    row_hi: Optional[int] = None,
) -> None:
    """Emit the row-wise CSR kernel for rows ``[row_lo, row_hi)``.

    The default range covers the whole matrix; the multi-engine sharded
    driver passes disjoint ranges so each engine walks (and stores) its own
    rows of the shared image.
    """
    mode = builder.mode
    if row_hi is None:
        row_hi = matrix.num_rows
    for row in range(row_lo, row_hi):
        start = int(matrix.row_ptr[row])
        end = int(matrix.row_ptr[row + 1])
        nnz = end - start
        builder.scalar(spec.scalar_overhead, label=f"row {row} bookkeeping")
        if nnz == 0:
            _store_empty_row(builder, row, addr_y, spec)
            continue
        partials: List[str] = []
        offset = 0
        for chunk_index, chunk in enumerate(builder.strip_mine(nnz)):
            values_addr = addr_values + (start + offset) * 4
            idx_addr = addr_col_idx + (start + offset) * 4
            builder.vle32("v1", values_addr, chunk, label=f"row {row} values")
            _gather(builder, mode, chunk, addr_x, idx_addr, row)
            _combine(builder, spec, chunk, row)
            partial = f"vp{chunk_index}"
            _reduce(builder, spec, partial, chunk, row)
            partials.append(partial)
            offset += chunk
        result = _merge_partials(builder, spec, partials)
        if spec.post_row is not None:
            result = spec.post_row(builder, row, result)
        builder.vse32(result, addr_y + row * 4, 1, label=f"store y[{row}]")


def _gather(builder: AraProgramBuilder, mode: LoweringMode, chunk: int,
            addr_x: int, idx_addr: int, row: int) -> None:
    if mode.has_axi_pack:
        builder.vlimxei32("v2", addr_x, idx_addr, chunk,
                          label=f"row {row} in-memory-indexed gather")
    else:
        builder.vle32("v9", idx_addr, chunk, kind="index", dtype="uint32",
                      label=f"row {row} index fetch")
        builder.vluxei32("v2", addr_x, "v9", chunk, index_base=idx_addr,
                         label=f"row {row} register-indexed gather")


def _combine(builder: AraProgramBuilder, spec: CsrKernelSpec, chunk: int,
             row: int) -> None:
    if spec.combine == "mul":
        builder.vfmul("v3", "v1", "v2", chunk, label=f"row {row} combine")
    else:
        builder.vfadd("v3", "v1", "v2", chunk, label=f"row {row} combine")


def _reduce(builder: AraProgramBuilder, spec: CsrKernelSpec, dest: str,
            chunk: int, row: int) -> None:
    if spec.reduce == "sum":
        builder.vfredsum(dest, "v3", chunk, label=f"row {row} reduce")
    else:
        builder.vfredmin(dest, "v3", chunk, label=f"row {row} reduce")


def _merge_partials(builder: AraProgramBuilder, spec: CsrKernelSpec,
                    partials: List[str]) -> str:
    result = partials[0]
    for other in partials[1:]:
        combined = f"{result}_{other}"
        if spec.reduce == "sum":
            builder.vfadd(combined, result, other, 1, label="merge partials")
        else:
            builder.vfmin(combined, result, other, 1, label="merge partials")
        result = combined
    return result


def _store_empty_row(builder: AraProgramBuilder, row: int, addr_y: int,
                     spec: CsrKernelSpec) -> None:
    neutral = 0.0 if spec.reduce == "sum" else np.float32(np.finfo(np.float32).max)
    builder.vmv_vx("vzero", float(neutral), 1, label=f"row {row} empty")
    result = "vzero"
    if spec.post_row is not None:
        result = spec.post_row(builder, row, result)
    builder.vse32(result, addr_y + row * 4, 1, label=f"store y[{row}]")
