"""Workload protocol and memory layout helper."""

from __future__ import annotations

import abc
from typing import Dict, Optional

import numpy as np

from repro.errors import WorkloadError
from repro.mem.storage import MemoryStorage
from repro.utils.math import round_up_to
from repro.vector.builder import Program
from repro.vector.config import LoweringMode, VectorEngineConfig


class MemoryLayout:
    """Simple bump allocator for placing workload arrays in the memory image.

    Arrays are aligned to the bus width by default so that contiguous
    accesses start bus-aligned (matching how a real allocator would place
    them for a vector machine).
    """

    def __init__(self, base: int = 0x1000, alignment: int = 64) -> None:
        self._next = base
        self.alignment = alignment
        self.regions: Dict[str, tuple] = {}

    def place(self, name: str, nbytes: int, alignment: Optional[int] = None) -> int:
        """Reserve ``nbytes`` for ``name`` and return its base address."""
        align = alignment or self.alignment
        addr = round_up_to(self._next, align)
        self._next = addr + nbytes
        self.regions[name] = (addr, nbytes)
        return addr

    def place_array(self, name: str, array: np.ndarray,
                    alignment: Optional[int] = None) -> int:
        """Reserve space sized for ``array`` (does not write it)."""
        return self.place(name, array.nbytes, alignment)

    def addr(self, name: str) -> int:
        """Base address of a previously placed region."""
        if name not in self.regions:
            raise WorkloadError(f"no region named {name!r} in the layout")
        return self.regions[name][0]

    @property
    def total_bytes(self) -> int:
        """Bytes used so far (end of the highest region)."""
        return self._next


class Workload(abc.ABC):
    """A vectorized kernel that can run on any of the evaluation systems.

    Lifecycle: :meth:`initialize` writes the input data into the simulated
    memory, :meth:`build_program` assembles the kernel for a given system
    flavour, and :meth:`verify` checks the results the simulation left in
    memory against a numpy reference.
    """

    #: short name used in reports ("ismt", "gemv", ...)
    name: str = "workload"
    #: "strided" or "indirect" — which of the paper's categories it belongs to
    category: str = "strided"

    @abc.abstractmethod
    def initialize(self, storage: MemoryStorage) -> None:
        """Write the input arrays into the memory image."""

    @abc.abstractmethod
    def build_program(self, mode: LoweringMode,
                      config: VectorEngineConfig) -> Program:
        """Assemble the kernel for the given system flavour."""

    @abc.abstractmethod
    def verify(self, storage: MemoryStorage) -> bool:
        """Check the results in memory against the reference; True if correct."""

    # ------------------------------------------------------------------ misc
    def describe(self) -> str:
        """Human-readable one-line description."""
        return f"{self.name} ({self.category})"

    @staticmethod
    def _allclose(actual: np.ndarray, expected: np.ndarray) -> bool:
        """FP32 comparison tolerant to accumulation-order differences."""
        return bool(
            np.allclose(actual, expected, rtol=1e-3, atol=1e-4, equal_nan=True)
        )
