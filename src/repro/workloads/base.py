"""Workload protocol and memory layout helper."""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.mem.storage import MemoryStorage
from repro.utils.math import round_up_to
from repro.vector.builder import Program
from repro.vector.config import LoweringMode, VectorEngineConfig


class MemoryLayout:
    """Simple bump allocator for placing workload arrays in the memory image.

    Arrays are aligned to the bus width by default so that contiguous
    accesses start bus-aligned (matching how a real allocator would place
    them for a vector machine).
    """

    def __init__(self, base: int = 0x1000, alignment: int = 64) -> None:
        self._next = base
        self.alignment = alignment
        self.regions: Dict[str, tuple] = {}

    def place(self, name: str, nbytes: int, alignment: Optional[int] = None) -> int:
        """Reserve ``nbytes`` for ``name`` and return its base address."""
        align = alignment or self.alignment
        addr = round_up_to(self._next, align)
        self._next = addr + nbytes
        self.regions[name] = (addr, nbytes)
        return addr

    def place_array(self, name: str, array: np.ndarray,
                    alignment: Optional[int] = None) -> int:
        """Reserve space sized for ``array`` (does not write it)."""
        return self.place(name, array.nbytes, alignment)

    def addr(self, name: str) -> int:
        """Base address of a previously placed region."""
        if name not in self.regions:
            raise WorkloadError(f"no region named {name!r} in the layout")
        return self.regions[name][0]

    @property
    def total_bytes(self) -> int:
        """Bytes used so far (end of the highest region)."""
        return self._next


def idle_program(name: str, mode: LoweringMode,
                 config: VectorEngineConfig) -> Program:
    """A minimal do-nothing program for a shard that received no rows.

    The builder refuses genuinely empty programs, and an engine must retire
    at least one instruction for its ``done`` bookkeeping to be meaningful,
    so an idle shard executes a single one-cycle scalar op.
    """
    from repro.vector.builder import AraProgramBuilder

    builder = AraProgramBuilder(f"{name}-idle", mode, config)
    builder.scalar(1, label="idle shard (no rows assigned)")
    return builder.build()


def shard_ranges(total: int, num_shards: int) -> List[Tuple[int, int]]:
    """Split ``total`` rows into ``num_shards`` balanced contiguous ranges.

    The first ``total % num_shards`` shards take one extra row; with more
    shards than rows the trailing ranges are empty (``lo == hi``), which the
    sharded program builders turn into empty programs.
    """
    if num_shards < 1:
        raise WorkloadError("sharding needs at least one shard")
    base, extra = divmod(max(0, total), num_shards)
    bounds: List[Tuple[int, int]] = []
    low = 0
    for shard in range(num_shards):
        high = low + base + (1 if shard < extra else 0)
        bounds.append((low, high))
        low = high
    return bounds


class Workload(abc.ABC):
    """A vectorized kernel that can run on any of the evaluation systems.

    Lifecycle: :meth:`initialize` writes the input data into the simulated
    memory, :meth:`build_program` assembles the kernel for a given system
    flavour, and :meth:`verify` checks the results the simulation left in
    memory against a numpy reference.

    Sharding: workloads that can split their output rows across several
    vector engines implement :meth:`shard_rows` (how many rows there are to
    split) and :meth:`build_program_rows` (the kernel restricted to a row
    range); :meth:`build_sharded_programs` then yields one program per
    engine over balanced contiguous row ranges.  Shards write disjoint
    output regions of the shared memory image, so :meth:`verify` checks the
    combined result exactly as in a single-engine run.
    """

    #: short name used in reports ("ismt", "gemv", ...)
    name: str = "workload"
    #: "strided" or "indirect" — which of the paper's categories it belongs to
    category: str = "strided"

    @abc.abstractmethod
    def initialize(self, storage: MemoryStorage) -> None:
        """Write the input arrays into the memory image."""

    @abc.abstractmethod
    def build_program(self, mode: LoweringMode,
                      config: VectorEngineConfig) -> Program:
        """Assemble the kernel for the given system flavour."""

    @abc.abstractmethod
    def verify(self, storage: MemoryStorage) -> bool:
        """Check the results in memory against the reference; True if correct."""

    # -------------------------------------------------------------- sharding
    def shard_rows(self) -> Optional[int]:
        """Number of output rows the sharded driver may split, or None.

        ``None`` means the workload cannot be sharded across engines (its
        iterations are not independent); the default is ``None`` so new
        workloads opt in explicitly.
        """
        return None

    def build_program_rows(self, mode: LoweringMode,
                           config: VectorEngineConfig,
                           row_lo: int, row_hi: int) -> Program:
        """Assemble the kernel restricted to output rows ``[row_lo, row_hi)``.

        Must be overridden alongside :meth:`shard_rows`; implementations may
        assume ``row_lo < row_hi`` (empty shards get :func:`idle_program`).
        """
        raise WorkloadError(
            f"workload {self.name!r} does not support row-range programs"
        )

    def build_sharded_programs(self, mode: LoweringMode,
                               config: VectorEngineConfig,
                               num_shards: int) -> List[Program]:
        """One program per engine, splitting the rows across ``num_shards``."""
        if num_shards < 1:
            raise WorkloadError("sharding needs at least one engine")
        if num_shards == 1:
            return [self.build_program(mode, config)]
        total = self.shard_rows()
        if total is None:
            raise WorkloadError(
                f"workload {self.name!r} does not support multi-engine "
                "sharding (no independent row decomposition)"
            )
        return [
            self.build_program_rows(mode, config, row_lo, row_hi)
            if row_hi > row_lo else idle_program(self.name, mode, config)
            for row_lo, row_hi in shard_ranges(total, num_shards)
        ]

    # ------------------------------------------------------------------ misc
    def describe(self) -> str:
        """Human-readable one-line description."""
        return f"{self.name} ({self.category})"

    @staticmethod
    def _allclose(actual: np.ndarray, expected: np.ndarray) -> bool:
        """FP32 comparison tolerant to accumulation-order differences."""
        return bool(
            np.allclose(actual, expected, rtol=1e-3, atol=1e-4, equal_nan=True)
        )
