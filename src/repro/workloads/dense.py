"""Dense data generators for the strided workloads."""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError


def random_matrix(n: int, seed: int = 1, scale: float = 1.0) -> np.ndarray:
    """Random dense ``n x n`` FP32 matrix (the paper's strided inputs)."""
    if n <= 0:
        raise WorkloadError("matrix dimension must be positive")
    rng = np.random.default_rng(seed)
    return (rng.standard_normal((n, n)) * scale).astype(np.float32)


def random_vector(n: int, seed: int = 2, scale: float = 1.0) -> np.ndarray:
    """Random dense FP32 vector."""
    if n <= 0:
        raise WorkloadError("vector length must be positive")
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(n) * scale).astype(np.float32)


def upper_triangular(matrix: np.ndarray) -> np.ndarray:
    """Zero everything below the diagonal (used by the trmv reference)."""
    return np.triu(matrix).astype(np.float32)
