"""Dense matrix-vector multiply with row- and column-wise dataflows.

The two dataflows trade different inefficiencies (paper Fig. 3b):

* **row-wise** — each row is read contiguously (efficient on every system)
  but the dot product ends in a costly vector reduction whose latency cannot
  be hidden, and the scalar result forces a sync before the next row.
* **column-wise** — the kernel keeps a whole chunk of ``y`` in registers and
  accumulates one column at a time, eliminating reductions, but every column
  access is strided (stride = one matrix row).  This is only profitable when
  strided accesses are bus-efficient, i.e. with AXI-Pack or ideal packing.

``dataflow="auto"`` mirrors the paper: row-wise on BASE, column-wise on PACK
and IDEAL.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.mem.storage import MemoryStorage
from repro.vector.builder import AraProgramBuilder, Program
from repro.vector.config import LoweringMode, VectorEngineConfig
from repro.workloads.base import MemoryLayout, Workload
from repro.workloads.dense import random_matrix, random_vector


class GemvWorkload(Workload):
    """``y = A @ x`` for a dense row-major ``n x n`` FP32 matrix."""

    name = "gemv"
    category = "strided"

    def __init__(self, n: int = 64, seed: int = 1, dataflow: str = "auto",
                 scalar_overhead: int = 3) -> None:
        if dataflow not in ("auto", "row", "col"):
            raise WorkloadError("dataflow must be 'auto', 'row' or 'col'")
        self.n = n
        self.dataflow = dataflow
        self.scalar_overhead = scalar_overhead
        self.matrix = random_matrix(n, seed)
        self.x = random_vector(n, seed + 1)
        self.layout = MemoryLayout()
        self.addr_a = self.layout.place("A", self.matrix.nbytes)
        self.addr_x = self.layout.place("x", self.x.nbytes)
        self.addr_y = self.layout.place("y", self.x.nbytes)

    # ------------------------------------------------------------------ data
    def initialize(self, storage: MemoryStorage) -> None:
        storage.write_array(self.addr_a, self.matrix)
        storage.write_array(self.addr_x, self.x)
        storage.write_array(self.addr_y, np.zeros(self.n, dtype=np.float32))

    # --------------------------------------------------------------- program
    def chosen_dataflow(self, mode: LoweringMode) -> str:
        """Resolve ``auto`` the way the paper does (fastest per system)."""
        if self.dataflow != "auto":
            return self.dataflow
        return "row" if mode is LoweringMode.BASE else "col"

    def build_program(self, mode: LoweringMode,
                      config: VectorEngineConfig) -> Program:
        return self.build_program_rows(mode, config, 0, self.n)

    def shard_rows(self) -> int:
        return self.n

    def build_program_rows(self, mode: LoweringMode,
                           config: VectorEngineConfig,
                           row_lo: int, row_hi: int) -> Program:
        if self.chosen_dataflow(mode) == "row":
            return self._build_rowwise(mode, config, row_lo, row_hi)
        return self._build_colwise(mode, config, row_lo, row_hi)

    # ------------------------------------------------------------- row-wise
    def _build_rowwise(self, mode: LoweringMode, config: VectorEngineConfig,
                       row_lo: int, row_hi: int) -> Program:
        n = self.n
        builder = AraProgramBuilder(f"{self.name}-row", mode, config)
        x_chunks = self._load_x_chunks(builder) if row_hi > row_lo else []
        for i in range(row_lo, row_hi):
            builder.scalar(self.scalar_overhead, label=f"row {i} bookkeeping")
            partials: List[str] = []
            for chunk_index, (x_reg, offset, chunk) in enumerate(x_chunks):
                row_addr = self.addr_a + (i * n + offset) * 4
                builder.vle32("v1", row_addr, chunk, label=f"row {i} load")
                builder.vfmul("v2", "v1", x_reg, chunk, label=f"row {i} multiply")
                partial = f"v3{chunk_index}"
                builder.vfredsum(partial, "v2", chunk, label=f"row {i} reduce")
                partials.append(partial)
            result = self._combine_partials(builder, partials)
            builder.vse32(result, self.addr_y + i * 4, 1, label=f"store y[{i}]")
        return builder.build()

    # ------------------------------------------------------------- col-wise
    def _build_colwise(self, mode: LoweringMode, config: VectorEngineConfig,
                       row_lo: int, row_hi: int) -> Program:
        n = self.n
        builder = AraProgramBuilder(f"{self.name}-col", mode, config)
        if row_hi <= row_lo:
            return builder.build()
        offset = row_lo
        for chunk in builder.strip_mine(row_hi - row_lo):
            builder.scalar(self.scalar_overhead, label="y chunk setup")
            builder.vmv_vx("v4", 0.0, chunk, label="clear accumulator")
            for j in range(n):
                # Software double-buffering: alternate the column register so
                # the next strided load can stream while the previous column
                # is still being accumulated (standard RVV gemv practice).
                col_reg = "v1" if j % 2 == 0 else "v2"
                col_addr = self.addr_a + (offset * n + j) * 4
                builder.scalar(1, label=f"column {j} pointer/x update")
                builder.vlse32(col_reg, col_addr, chunk, stride_elems=n,
                               label=f"column {j} load")
                builder.vfmacc_vf("v4", col_reg, float(self.x[j]), chunk,
                                  label=f"column {j} accumulate")
            builder.vse32("v4", self.addr_y + offset * 4, chunk,
                          label="store y chunk")
            offset += chunk
        return builder.build()

    # ---------------------------------------------------------------- shared
    def _load_x_chunks(self, builder: AraProgramBuilder) -> List[Tuple[str, int, int]]:
        chunks: List[Tuple[str, int, int]] = []
        offset = 0
        for index, chunk in enumerate(builder.strip_mine(self.n)):
            reg = f"v2{4 + index}"
            builder.vle32(reg, self.addr_x + offset * 4, chunk,
                          label=f"preload x chunk {index}")
            chunks.append((reg, offset, chunk))
            offset += chunk
        return chunks

    @staticmethod
    def _combine_partials(builder: AraProgramBuilder, partials: List[str]) -> str:
        result = partials[0]
        for other in partials[1:]:
            combined = f"{result}_{other}"
            builder.vfadd(combined, result, other, 1, label="combine partial sums")
            result = combined
        return result

    # ---------------------------------------------------------------- verify
    def reference(self) -> np.ndarray:
        """Expected output vector."""
        return (self.matrix.astype(np.float64) @ self.x.astype(np.float64)).astype(
            np.float32
        )

    def verify(self, storage: MemoryStorage) -> bool:
        result = storage.read_array(self.addr_y, self.n, np.float32)
        return self._allclose(result, self.reference())
