"""Synthetic CSR matrices standing in for the SuiteSparse inputs.

The paper runs its indirect workloads on SuiteSparse matrices (notably
``heart1`` with 390 average nonzeros per row).  Those files are not available
in this offline environment, so this module generates synthetic CSR matrices
whose *relevant* properties are controlled parameters: number of rows,
average nonzeros per row (which sets the per-row stream length and therefore
the loop-overhead amortization of Figs. 3a/3e) and the column-index
distribution (which sets bank-conflict behaviour).  DESIGN.md documents this
substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import WorkloadError


@dataclass
class CsrMatrix:
    """Compressed-sparse-rows matrix with FP32 values and uint32 indices."""

    num_rows: int
    num_cols: int
    row_ptr: np.ndarray
    col_idx: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.row_ptr = np.asarray(self.row_ptr, dtype=np.uint32)
        self.col_idx = np.asarray(self.col_idx, dtype=np.uint32)
        self.values = np.asarray(self.values, dtype=np.float32)
        if len(self.row_ptr) != self.num_rows + 1:
            raise WorkloadError("row_ptr must have num_rows + 1 entries")
        if len(self.col_idx) != len(self.values):
            raise WorkloadError("col_idx and values must have the same length")
        if self.nnz != int(self.row_ptr[-1]):
            raise WorkloadError("row_ptr[-1] must equal the number of nonzeros")

    @property
    def nnz(self) -> int:
        """Total number of stored nonzeros."""
        return len(self.values)

    @property
    def avg_nnz_per_row(self) -> float:
        """Average stored nonzeros per row."""
        return self.nnz / self.num_rows if self.num_rows else 0.0

    def row_slice(self, row: int) -> slice:
        """The ``values``/``col_idx`` slice belonging to one row."""
        return slice(int(self.row_ptr[row]), int(self.row_ptr[row + 1]))

    def to_dense(self) -> np.ndarray:
        """Dense FP32 copy (for small matrices / references)."""
        dense = np.zeros((self.num_rows, self.num_cols), dtype=np.float32)
        for row in range(self.num_rows):
            sl = self.row_slice(row)
            dense[row, self.col_idx[sl]] = self.values[sl]
        return dense

    def multiply(self, x: np.ndarray) -> np.ndarray:
        """Reference SpMV: ``y = A @ x`` in float64 accumulation."""
        if len(x) != self.num_cols:
            raise WorkloadError("vector length does not match matrix columns")
        y = np.zeros(self.num_rows, dtype=np.float64)
        for row in range(self.num_rows):
            sl = self.row_slice(row)
            y[row] = np.dot(
                self.values[sl].astype(np.float64),
                x[self.col_idx[sl]].astype(np.float64),
            )
        return y.astype(np.float32)


def random_csr(
    num_rows: int,
    num_cols: Optional[int] = None,
    avg_nnz_per_row: float = 16.0,
    seed: int = 7,
    nnz_spread: float = 0.25,
    value_scale: float = 1.0,
) -> CsrMatrix:
    """Generate a random CSR matrix with a controlled nonzero density.

    Each row receives a nonzero count drawn uniformly from
    ``avg * (1 - spread) .. avg * (1 + spread)`` (clamped to the column
    count), with column indices sampled without replacement — the same
    gather-heavy, low-locality pattern real sparse matrices exhibit.
    """
    if num_rows <= 0:
        raise WorkloadError("num_rows must be positive")
    num_cols = num_cols or num_rows
    if avg_nnz_per_row <= 0 or avg_nnz_per_row > num_cols:
        raise WorkloadError(
            "avg_nnz_per_row must be positive and no larger than num_cols"
        )
    rng = np.random.default_rng(seed)
    low = max(1, int(round(avg_nnz_per_row * (1.0 - nnz_spread))))
    high = min(num_cols, int(round(avg_nnz_per_row * (1.0 + nnz_spread))))
    high = max(low, high)
    counts = rng.integers(low, high + 1, size=num_rows)
    row_ptr = np.zeros(num_rows + 1, dtype=np.uint32)
    row_ptr[1:] = np.cumsum(counts)
    col_idx = np.empty(int(row_ptr[-1]), dtype=np.uint32)
    for row in range(num_rows):
        start, end = int(row_ptr[row]), int(row_ptr[row + 1])
        cols = rng.choice(num_cols, size=end - start, replace=False)
        col_idx[start:end] = np.sort(cols)
    values = (rng.standard_normal(int(row_ptr[-1])) * value_scale).astype(np.float32)
    return CsrMatrix(num_rows, num_cols, row_ptr, col_idx, values)


def heart1_like(num_rows: int = 256, seed: int = 11) -> CsrMatrix:
    """A scaled-down surrogate of SuiteSparse ``heart1``.

    ``heart1`` is a 3557 x 3557 matrix with about 390 nonzeros per row; the
    surrogate keeps the per-row stream length (which is what governs the
    paper's results) while shrinking the row count so cycle-level simulation
    stays tractable.
    """
    num_rows = min(num_rows, 3557)
    avg = min(390.0, float(num_rows))
    return random_csr(num_rows, num_rows, avg_nnz_per_row=avg, seed=seed)


def banded_csr(num_rows: int, bandwidth: int, seed: int = 3) -> CsrMatrix:
    """A banded sparse matrix (high index locality, for ablation studies)."""
    if bandwidth <= 0:
        raise WorkloadError("bandwidth must be positive")
    rng = np.random.default_rng(seed)
    rows = []
    cols = []
    for row in range(num_rows):
        lo = max(0, row - bandwidth)
        hi = min(num_rows, row + bandwidth + 1)
        for col in range(lo, hi):
            rows.append(row)
            cols.append(col)
    counts = np.bincount(np.asarray(rows), minlength=num_rows)
    row_ptr = np.zeros(num_rows + 1, dtype=np.uint32)
    row_ptr[1:] = np.cumsum(counts)
    values = rng.standard_normal(len(cols)).astype(np.float32)
    return CsrMatrix(num_rows, num_rows, row_ptr, np.asarray(cols, dtype=np.uint32), values)
