"""Workload registry: build any of the paper's kernels (and extras) by name."""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import WorkloadError
from repro.workloads.base import Workload
from repro.workloads.csr_spmv_stream import CsrSpmvStreamWorkload
from repro.workloads.gemv import GemvWorkload
from repro.workloads.ismt import IsmtWorkload
from repro.workloads.pagerank import PageRankWorkload
from repro.workloads.spmv import SpmvWorkload
from repro.workloads.sssp import SsspWorkload
from repro.workloads.trmv import TrmvWorkload


def _make_ismt(size: int = 64, **kwargs) -> Workload:
    return IsmtWorkload(n=size, **kwargs)


def _make_gemv(size: int = 64, **kwargs) -> Workload:
    return GemvWorkload(n=size, **kwargs)


def _make_trmv(size: int = 64, **kwargs) -> Workload:
    return TrmvWorkload(n=size, **kwargs)


def _make_spmv(size: int = 64, **kwargs) -> Workload:
    return SpmvWorkload(num_rows=size, **kwargs)


def _make_prank(size: int = 64, **kwargs) -> Workload:
    return PageRankWorkload(num_rows=size, **kwargs)


def _make_sssp(size: int = 64, **kwargs) -> Workload:
    return SsspWorkload(num_rows=size, **kwargs)


def _make_csrspmv(size: int = 64, **kwargs) -> Workload:
    return CsrSpmvStreamWorkload(num_rows=size, **kwargs)


#: Factory for each registered benchmark: the paper's six plus extras.
WORKLOADS: Dict[str, Callable[..., Workload]] = {
    "ismt": _make_ismt,
    "gemv": _make_gemv,
    "trmv": _make_trmv,
    "spmv": _make_spmv,
    "prank": _make_prank,
    "sssp": _make_sssp,
    "csrspmv": _make_csrspmv,
}

#: The order the paper's figures list the benchmarks in.  Extra workloads
#: (``csrspmv``, the streaming CSR SpMV) are registered above but not part
#: of the paper-figure grids; the headline benchmark adds them explicitly.
WORKLOAD_ORDER = ("ismt", "gemv", "trmv", "spmv", "prank", "sssp")


def make_workload(name: str, size: int = 64, **kwargs) -> Workload:
    """Instantiate a benchmark by name.

    ``size`` is the matrix dimension for the dense (strided) workloads and
    the row count for the sparse (indirect) ones; further keyword arguments
    are forwarded to the workload constructor.
    """
    if name not in WORKLOADS:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        )
    return WORKLOADS[name](size=size, **kwargs)
