"""Workload registry: build any of the paper's kernels (and extras) by name."""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import WorkloadError
from repro.workloads.base import Workload
from repro.workloads.csr_spmv_stream import CsrSpmvStreamWorkload
from repro.workloads.gemv import GemvWorkload
from repro.workloads.ismt import IsmtWorkload
from repro.workloads.pagerank import PageRankWorkload
from repro.workloads.spmv import SpmvWorkload
from repro.workloads.sssp import SsspWorkload
from repro.workloads.trmv import TrmvWorkload


def _make_ismt(size: int = 64, **kwargs) -> Workload:
    return IsmtWorkload(n=size, **kwargs)


def _make_gemv(size: int = 64, **kwargs) -> Workload:
    return GemvWorkload(n=size, **kwargs)


def _make_trmv(size: int = 64, **kwargs) -> Workload:
    return TrmvWorkload(n=size, **kwargs)


def _make_spmv(size: int = 64, **kwargs) -> Workload:
    return SpmvWorkload(num_rows=size, **kwargs)


def _make_prank(size: int = 64, **kwargs) -> Workload:
    return PageRankWorkload(num_rows=size, **kwargs)


def _make_sssp(size: int = 64, **kwargs) -> Workload:
    return SsspWorkload(num_rows=size, **kwargs)


def _make_csrspmv(size: int = 64, **kwargs) -> Workload:
    return CsrSpmvStreamWorkload(num_rows=size, **kwargs)


#: Factory for each registered benchmark: the paper's six plus extras.
WORKLOADS: Dict[str, Callable[..., Workload]] = {
    "ismt": _make_ismt,
    "gemv": _make_gemv,
    "trmv": _make_trmv,
    "spmv": _make_spmv,
    "prank": _make_prank,
    "sssp": _make_sssp,
    "csrspmv": _make_csrspmv,
}

#: The order the paper's figures list the benchmarks in.  This tuple drives
#: the figure grids and the sweep drivers, so it deliberately contains only
#: the paper's six kernels — growing it would silently change every figure.
WORKLOAD_ORDER = ("ismt", "gemv", "trmv", "spmv", "prank", "sssp")

#: Registered benchmarks that are *not* part of the paper-figure grids.
#: ``csrspmv`` is the streaming (row-pointer-walking) CSR SpMV variant kept
#: for headline comparisons; tools that want "everything" should iterate
#: ``WORKLOAD_ORDER + EXTRA_WORKLOADS``, never ``WORKLOADS`` directly.
EXTRA_WORKLOADS = ("csrspmv",)

if set(WORKLOADS) != set(WORKLOAD_ORDER) | set(EXTRA_WORKLOADS):
    raise WorkloadError(
        "workload registry out of sync: WORKLOADS keys must equal "
        "WORKLOAD_ORDER + EXTRA_WORKLOADS; register new workloads in "
        f"exactly one of the two tuples (registry has {sorted(WORKLOADS)})"
    )


def all_workload_names() -> tuple:
    """Every registered workload: figure-grid names first, then extras."""
    return WORKLOAD_ORDER + EXTRA_WORKLOADS


def make_workload(name: str, size: int = 64, **kwargs) -> Workload:
    """Instantiate a benchmark by name.

    ``size`` is the matrix dimension for the dense (strided) workloads and
    the row count for the sparse (indirect) ones; further keyword arguments
    are forwarded to the workload constructor.
    """
    if name not in WORKLOADS:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        )
    return WORKLOADS[name](size=size, **kwargs)
