"""Streaming CSR SpMV: one whole-matrix gather pass plus a row-reduce pass.

The classic row-wise ``spmv`` kernel (:mod:`repro.workloads.spmv`) issues one
short indirect gather per row, so its index streams are bounded by the row
length.  This variant computes the same ``y = A @ x`` in two passes:

1. **Stream pass** — strip-mine over *all* ``nnz`` stored elements at once:
   load ``values`` contiguously, gather ``x[col_idx[...]]`` through the
   indirect-read path in maximum-length chunks (on PACK the indices stay in
   memory and are resolved by the controller's index stage), multiply, and
   store the products contiguously to a scratch array.
2. **Reduce pass** — per row, load the row's product segment contiguously
   and reduce it to ``y[row]``.

The long irregular index streams of pass 1 are exactly the traffic shape the
batch datapath's indexed-beat kernels see least of elsewhere in the headline
grid, which is why this workload rides in it (PR 4).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.mem.storage import MemoryStorage
from repro.vector.builder import AraProgramBuilder, Program
from repro.vector.config import LoweringMode, VectorEngineConfig
from repro.workloads.base import MemoryLayout, Workload
from repro.workloads.dense import random_vector
from repro.workloads.sparse import CsrMatrix, heart1_like


class CsrSpmvStreamWorkload(Workload):
    """``y = A @ x`` via a full-nnz gather stream and per-row reductions."""

    name = "csrspmv"
    category = "indirect"

    def __init__(self, matrix: Optional[CsrMatrix] = None, num_rows: int = 64,
                 avg_nnz_per_row: Optional[float] = None, seed: int = 7,
                 scalar_overhead: int = 4) -> None:
        if matrix is None:
            if avg_nnz_per_row is None:
                matrix = heart1_like(num_rows=num_rows, seed=seed)
            else:
                from repro.workloads.sparse import random_csr

                matrix = random_csr(num_rows, num_rows,
                                    avg_nnz_per_row=avg_nnz_per_row, seed=seed)
        self.matrix = matrix
        self.x = random_vector(matrix.num_cols, seed + 1)
        self.scalar_overhead = scalar_overhead
        self.layout = MemoryLayout()
        self.addr_values = self.layout.place("values", self.matrix.values.nbytes)
        self.addr_col_idx = self.layout.place("col_idx", self.matrix.col_idx.nbytes)
        self.addr_x = self.layout.place("x", self.x.nbytes)
        self.addr_products = self.layout.place(
            "products", max(4, self.matrix.nnz * 4)
        )
        self.addr_y = self.layout.place("y", self.matrix.num_rows * 4)

    # ------------------------------------------------------------------ data
    def initialize(self, storage: MemoryStorage) -> None:
        storage.write_array(self.addr_values, self.matrix.values)
        storage.write_array(self.addr_col_idx, self.matrix.col_idx)
        storage.write_array(self.addr_x, self.x)
        storage.write_array(self.addr_products,
                            np.zeros(max(1, self.matrix.nnz), dtype=np.float32))
        storage.write_array(self.addr_y,
                            np.zeros(self.matrix.num_rows, dtype=np.float32))

    # --------------------------------------------------------------- program
    def build_program(self, mode: LoweringMode,
                      config: VectorEngineConfig) -> Program:
        return self.build_program_rows(mode, config, 0, self.matrix.num_rows)

    def shard_rows(self) -> int:
        return self.matrix.num_rows

    def build_program_rows(self, mode: LoweringMode,
                           config: VectorEngineConfig,
                           row_lo: int, row_hi: int) -> Program:
        builder = AraProgramBuilder(self.name, mode, config)
        matrix = self.matrix
        # A shard streams the nonzeros of its own rows (contiguous in CSR)
        # and reduces its own row segments; the ordered store at the end of
        # its pass 1 fences only its own pass 2, which is sufficient because
        # a shard never reads another shard's products.
        nnz_lo = int(matrix.row_ptr[row_lo])
        nnz_hi = int(matrix.row_ptr[row_hi])
        nnz = nnz_hi - nnz_lo
        # Pass 1: stream the shard's nonzero range through the gather path.
        if nnz:
            offset = nnz_lo
            for chunk in builder.strip_mine(nnz):
                values_addr = self.addr_values + offset * 4
                idx_addr = self.addr_col_idx + offset * 4
                builder.vle32("v1", values_addr, chunk,
                              label=f"values[{offset}:{offset + chunk}]")
                if mode.has_axi_pack:
                    builder.vlimxei32("v2", self.addr_x, idx_addr, chunk,
                                      label=f"gather x (in-memory idx) @{offset}")
                else:
                    builder.vle32("v9", idx_addr, chunk, kind="index",
                                  dtype="uint32", label=f"col_idx @{offset}")
                    builder.vluxei32("v2", self.addr_x, "v9", chunk,
                                     index_base=idx_addr,
                                     label=f"gather x (register idx) @{offset}")
                builder.vfmul("v3", "v1", "v2", chunk,
                              label=f"products @{offset}")
                # The reduce pass reads the products back from memory, a RAW
                # hazard the builder's register tracking cannot see; the
                # final store is ordered so it fences pass 2 behind every
                # product store (same mechanism as ismt's in-place stores).
                last_chunk = offset + chunk >= nnz_hi
                builder.vse32("v3", self.addr_products + offset * 4, chunk,
                              ordered=last_chunk,
                              label=f"store products @{offset}")
                offset += chunk
        # Pass 2: reduce each row's product segment to y[row].
        for row in range(row_lo, row_hi):
            start = int(matrix.row_ptr[row])
            end = int(matrix.row_ptr[row + 1])
            row_nnz = end - start
            builder.scalar(self.scalar_overhead, label=f"row {row} bookkeeping")
            if row_nnz == 0:
                builder.vmv_vx("vzero", 0.0, 1, label=f"row {row} empty")
                builder.vse32("vzero", self.addr_y + row * 4, 1,
                              label=f"store y[{row}]")
                continue
            partials: List[str] = []
            offset = 0
            for chunk_index, chunk in enumerate(builder.strip_mine(row_nnz)):
                seg_addr = self.addr_products + (start + offset) * 4
                builder.vle32("v4", seg_addr, chunk,
                              label=f"row {row} products")
                partial = f"vr{chunk_index}"
                builder.vfredsum(partial, "v4", chunk,
                                 label=f"row {row} reduce")
                partials.append(partial)
                offset += chunk
            result = partials[0]
            for other in partials[1:]:
                merged = f"{result}_{other}"
                builder.vfadd(merged, result, other, 1, label="merge partials")
                result = merged
            builder.vse32(result, self.addr_y + row * 4, 1,
                          label=f"store y[{row}]")
        return builder.build()

    # ---------------------------------------------------------------- verify
    def reference(self) -> np.ndarray:
        """Expected output vector."""
        return self.matrix.multiply(self.x)

    def verify(self, storage: MemoryStorage) -> bool:
        result = storage.read_array(self.addr_y, self.matrix.num_rows, np.float32)
        return self._allclose(result, self.reference())
