"""Sparse matrix-vector multiply (spmv) — the canonical indirect workload."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.mem.storage import MemoryStorage
from repro.vector.builder import AraProgramBuilder, Program
from repro.vector.config import LoweringMode, VectorEngineConfig
from repro.workloads.base import MemoryLayout, Workload
from repro.workloads.csr_kernel import CsrKernelSpec, build_csr_rowwise
from repro.workloads.dense import random_vector
from repro.workloads.sparse import CsrMatrix, heart1_like


class SpmvWorkload(Workload):
    """``y = A @ x`` for a CSR matrix, walking rows and gathering ``x``."""

    name = "spmv"
    category = "indirect"

    def __init__(self, matrix: Optional[CsrMatrix] = None, num_rows: int = 64,
                 avg_nnz_per_row: Optional[float] = None, seed: int = 5,
                 scalar_overhead: int = 4) -> None:
        if matrix is None:
            if avg_nnz_per_row is None:
                matrix = heart1_like(num_rows=num_rows, seed=seed)
            else:
                from repro.workloads.sparse import random_csr

                matrix = random_csr(num_rows, num_rows,
                                    avg_nnz_per_row=avg_nnz_per_row, seed=seed)
        self.matrix = matrix
        self.x = random_vector(matrix.num_cols, seed + 1)
        self.scalar_overhead = scalar_overhead
        self.layout = MemoryLayout()
        self.addr_values = self.layout.place("values", self.matrix.values.nbytes)
        self.addr_col_idx = self.layout.place("col_idx", self.matrix.col_idx.nbytes)
        self.addr_row_ptr = self.layout.place("row_ptr", self.matrix.row_ptr.nbytes)
        self.addr_x = self.layout.place("x", self.x.nbytes)
        self.addr_y = self.layout.place("y", self.matrix.num_rows * 4)

    # ------------------------------------------------------------------ data
    def initialize(self, storage: MemoryStorage) -> None:
        storage.write_array(self.addr_values, self.matrix.values)
        storage.write_array(self.addr_col_idx, self.matrix.col_idx)
        storage.write_array(self.addr_row_ptr, self.matrix.row_ptr)
        storage.write_array(self.addr_x, self.x)
        storage.write_array(self.addr_y,
                            np.zeros(self.matrix.num_rows, dtype=np.float32))

    # --------------------------------------------------------------- program
    def build_program(self, mode: LoweringMode,
                      config: VectorEngineConfig) -> Program:
        return self.build_program_rows(mode, config, 0, self.matrix.num_rows)

    def shard_rows(self) -> int:
        return self.matrix.num_rows

    def build_program_rows(self, mode: LoweringMode,
                           config: VectorEngineConfig,
                           row_lo: int, row_hi: int) -> Program:
        builder = AraProgramBuilder(self.name, mode, config)
        spec = CsrKernelSpec(combine="mul", reduce="sum",
                             scalar_overhead=self.scalar_overhead)
        build_csr_rowwise(builder, self.matrix, self.addr_values,
                          self.addr_col_idx, self.addr_x, self.addr_y, spec,
                          row_lo=row_lo, row_hi=row_hi)
        return builder.build()

    # ---------------------------------------------------------------- verify
    def reference(self) -> np.ndarray:
        """Expected output vector."""
        return self.matrix.multiply(self.x)

    def verify(self, storage: MemoryStorage) -> bool:
        result = storage.read_array(self.addr_y, self.matrix.num_rows, np.float32)
        return self._allclose(result, self.reference())
