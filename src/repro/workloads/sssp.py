"""Single-source shortest path: one Bellman-Ford relaxation sweep.

The graph is a weighted, directed sparse matrix in CSR form (entry ``(u, v)``
is the weight of the edge ``v -> u`` so a row gathers a node's in-edges, as
the paper's PageRank formulation does).  One sweep computes

    dist'[u] = min(dist[u], min over in-edges (dist[v] + w(v, u)))

which is a gather of ``dist[col_idx]``, an element-wise add with the edge
weights, and a min-reduction — the same memory behaviour as SpMV with the
multiply/sum replaced by add/min.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.mem.storage import MemoryStorage
from repro.vector.builder import AraProgramBuilder, Program
from repro.vector.config import LoweringMode, VectorEngineConfig
from repro.vector.isa import Mnemonic
from repro.workloads.base import MemoryLayout, Workload
from repro.workloads.csr_kernel import CsrKernelSpec, build_csr_rowwise
from repro.workloads.sparse import CsrMatrix, heart1_like

#: Distance used for "unreached" nodes (large but finite to keep FP math tame).
UNREACHED = np.float32(1.0e30)


class SsspWorkload(Workload):
    """One relaxation sweep of Bellman-Ford on a CSR graph."""

    name = "sssp"
    category = "indirect"

    def __init__(self, matrix: Optional[CsrMatrix] = None, num_rows: int = 64,
                 avg_nnz_per_row: Optional[float] = None, source: int = 0,
                 seed: int = 8, scalar_overhead: int = 4) -> None:
        if matrix is None:
            if avg_nnz_per_row is None:
                matrix = heart1_like(num_rows=num_rows, seed=seed)
            else:
                from repro.workloads.sparse import random_csr

                matrix = random_csr(num_rows, num_rows,
                                    avg_nnz_per_row=avg_nnz_per_row, seed=seed)
        # Edge weights must be positive for a meaningful shortest path.
        matrix = CsrMatrix(
            matrix.num_rows, matrix.num_cols, matrix.row_ptr, matrix.col_idx,
            np.abs(matrix.values) + np.float32(0.1),
        )
        self.matrix = matrix
        self.source = int(source) % matrix.num_rows
        self.scalar_overhead = scalar_overhead
        self.dist = np.full(matrix.num_cols, UNREACHED, dtype=np.float32)
        self.dist[self.source] = np.float32(0.0)
        self.layout = MemoryLayout()
        self.addr_weights = self.layout.place("weights", matrix.values.nbytes)
        self.addr_col_idx = self.layout.place("col_idx", matrix.col_idx.nbytes)
        self.addr_row_ptr = self.layout.place("row_ptr", matrix.row_ptr.nbytes)
        self.addr_dist = self.layout.place("dist", self.dist.nbytes)
        self.addr_dist_out = self.layout.place("dist_out", self.dist.nbytes)

    # ------------------------------------------------------------------ data
    def initialize(self, storage: MemoryStorage) -> None:
        storage.write_array(self.addr_weights, self.matrix.values)
        storage.write_array(self.addr_col_idx, self.matrix.col_idx)
        storage.write_array(self.addr_row_ptr, self.matrix.row_ptr)
        storage.write_array(self.addr_dist, self.dist)
        storage.write_array(self.addr_dist_out,
                            np.full(self.matrix.num_rows, UNREACHED, dtype=np.float32))

    # --------------------------------------------------------------- program
    def build_program(self, mode: LoweringMode,
                      config: VectorEngineConfig) -> Program:
        return self.build_program_rows(mode, config, 0, self.matrix.num_rows)

    def shard_rows(self) -> int:
        return self.matrix.num_rows

    def build_program_rows(self, mode: LoweringMode,
                           config: VectorEngineConfig,
                           row_lo: int, row_hi: int) -> Program:
        builder = AraProgramBuilder(self.name, mode, config)
        dist = self.dist

        def clamp_with_current(prog_builder: AraProgramBuilder, row: int,
                               result: str) -> str:
            current = np.float32(dist[row])
            dest = f"{result}_m"
            prog_builder.compute(
                Mnemonic.VFMIN, dest, (result,), 1,
                fn=lambda candidate: np.minimum(candidate, current).astype(np.float32),
                label=f"row {row} keep current distance if shorter",
            )
            return dest

        spec = CsrKernelSpec(combine="add", reduce="min",
                             scalar_overhead=self.scalar_overhead,
                             post_row=clamp_with_current)
        build_csr_rowwise(builder, self.matrix, self.addr_weights,
                          self.addr_col_idx, self.addr_dist, self.addr_dist_out,
                          spec, row_lo=row_lo, row_hi=row_hi)
        return builder.build()

    # ---------------------------------------------------------------- verify
    def reference(self) -> np.ndarray:
        """Expected distances after one relaxation sweep."""
        out = np.empty(self.matrix.num_rows, dtype=np.float32)
        for row in range(self.matrix.num_rows):
            sl = self.matrix.row_slice(row)
            if sl.stop > sl.start:
                candidates = self.dist[self.matrix.col_idx[sl]] + self.matrix.values[sl]
                best = np.float32(np.min(candidates))
            else:
                best = np.float32(np.finfo(np.float32).max)
            out[row] = min(np.float32(self.dist[row]), best)
        return out

    def verify(self, storage: MemoryStorage) -> bool:
        result = storage.read_array(self.addr_dist_out, self.matrix.num_rows, np.float32)
        return self._allclose(result, self.reference())
