"""The paper's six evaluation kernels and their data generators (§III-A).

Strided workloads (dense, randomly generated square matrices):

* :class:`~repro.workloads.ismt.IsmtWorkload` — in-situ matrix transpose;
* :class:`~repro.workloads.gemv.GemvWorkload` — dense matrix-vector multiply
  with row- and column-wise dataflows;
* :class:`~repro.workloads.trmv.TrmvWorkload` — upper-triangular
  matrix-vector multiply.

Indirect workloads (synthetic CSR matrices standing in for SuiteSparse):

* :class:`~repro.workloads.spmv.SpmvWorkload` — sparse matrix-vector multiply;
* :class:`~repro.workloads.pagerank.PageRankWorkload` — one PageRank sweep;
* :class:`~repro.workloads.sssp.SsspWorkload` — one Bellman-Ford relaxation
  sweep of single-source shortest paths.
"""

from repro.workloads.base import MemoryLayout, Workload
from repro.workloads.dense import random_matrix, random_vector
from repro.workloads.sparse import CsrMatrix, heart1_like, random_csr
from repro.workloads.ismt import IsmtWorkload
from repro.workloads.gemv import GemvWorkload
from repro.workloads.trmv import TrmvWorkload
from repro.workloads.spmv import SpmvWorkload
from repro.workloads.pagerank import PageRankWorkload
from repro.workloads.sssp import SsspWorkload
from repro.workloads.registry import WORKLOADS, make_workload

__all__ = [
    "Workload",
    "MemoryLayout",
    "random_matrix",
    "random_vector",
    "CsrMatrix",
    "random_csr",
    "heart1_like",
    "IsmtWorkload",
    "GemvWorkload",
    "TrmvWorkload",
    "SpmvWorkload",
    "PageRankWorkload",
    "SsspWorkload",
    "WORKLOADS",
    "make_workload",
]
