"""Upper-triangular matrix-vector multiply (trmv).

Identical in spirit to :mod:`repro.workloads.gemv` but only the nonzero
(upper-triangular) elements are streamed, so rows and columns have varying
lengths — short streams near one end of the matrix, long ones near the other
(paper: "incurring bursts of varying lengths").
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import WorkloadError
from repro.mem.storage import MemoryStorage
from repro.vector.builder import AraProgramBuilder, Program
from repro.vector.config import LoweringMode, VectorEngineConfig
from repro.vector.isa import Mnemonic
from repro.workloads.base import MemoryLayout, Workload
from repro.workloads.dense import random_matrix, random_vector, upper_triangular


class TrmvWorkload(Workload):
    """``y = triu(A) @ x`` for a dense row-major ``n x n`` FP32 matrix."""

    name = "trmv"
    category = "strided"

    def __init__(self, n: int = 64, seed: int = 2, dataflow: str = "auto",
                 scalar_overhead: int = 3) -> None:
        if dataflow not in ("auto", "row", "col"):
            raise WorkloadError("dataflow must be 'auto', 'row' or 'col'")
        self.n = n
        self.dataflow = dataflow
        self.scalar_overhead = scalar_overhead
        self.matrix = upper_triangular(random_matrix(n, seed))
        self.x = random_vector(n, seed + 1)
        self.layout = MemoryLayout()
        self.addr_a = self.layout.place("A", self.matrix.nbytes)
        self.addr_x = self.layout.place("x", self.x.nbytes)
        self.addr_y = self.layout.place("y", self.x.nbytes)

    # ------------------------------------------------------------------ data
    def initialize(self, storage: MemoryStorage) -> None:
        storage.write_array(self.addr_a, self.matrix)
        storage.write_array(self.addr_x, self.x)
        storage.write_array(self.addr_y, np.zeros(self.n, dtype=np.float32))

    # --------------------------------------------------------------- program
    def chosen_dataflow(self, mode: LoweringMode) -> str:
        """Resolve ``auto``: row-wise on BASE, column-wise otherwise."""
        if self.dataflow != "auto":
            return self.dataflow
        return "row" if mode is LoweringMode.BASE else "col"

    def build_program(self, mode: LoweringMode,
                      config: VectorEngineConfig) -> Program:
        return self.build_program_rows(mode, config, 0, self.n)

    def shard_rows(self) -> int:
        return self.n

    def build_program_rows(self, mode: LoweringMode,
                           config: VectorEngineConfig,
                           row_lo: int, row_hi: int) -> Program:
        if self.chosen_dataflow(mode) == "row":
            return self._build_rowwise(mode, config, row_lo, row_hi)
        return self._build_colwise(mode, config, row_lo, row_hi)

    def _build_rowwise(self, mode: LoweringMode, config: VectorEngineConfig,
                       row_lo: int, row_hi: int) -> Program:
        n = self.n
        builder = AraProgramBuilder(f"{self.name}-row", mode, config)
        if row_hi <= row_lo:
            return builder.build()
        # x is preloaded once and kept in registers across all rows (it fits a
        # register group); each row multiplies against the matching slice.
        x_regs = []
        x_offset = 0
        for index, chunk in enumerate(builder.strip_mine(n)):
            reg = f"vx{index}"
            builder.vle32(reg, self.addr_x + x_offset * 4, chunk,
                          label=f"preload x chunk {index}")
            x_regs.append((reg, x_offset, chunk))
            x_offset += chunk
        for i in range(row_lo, row_hi):
            length = n - i
            builder.scalar(self.scalar_overhead, label=f"row {i} bookkeeping")
            partials: List[str] = []
            offset = 0
            for chunk_index, chunk in enumerate(builder.strip_mine(length)):
                row_addr = self.addr_a + (i * n + i + offset) * 4
                builder.vle32("v1", row_addr, chunk, label=f"row {i} nonzeros")
                x_reg = self._x_reg_for(x_regs, i + offset)
                x_lo = i + offset - x_reg[1]
                builder.compute(
                    Mnemonic.VFMUL, "v3", ("v1", x_reg[0]), chunk,
                    fn=self._slice_multiply(x_lo, chunk),
                    label=f"row {i} multiply with x slice",
                )
                partial = f"v5{chunk_index}"
                builder.vfredsum(partial, "v3", chunk, label=f"row {i} reduce")
                partials.append(partial)
                offset += chunk
            result = partials[0]
            for other in partials[1:]:
                combined = f"{result}_{other}"
                builder.vfadd(combined, result, other, 1, label="combine partials")
                result = combined
            builder.vse32(result, self.addr_y + i * 4, 1, label=f"store y[{i}]")
        return builder.build()

    def _build_colwise(self, mode: LoweringMode, config: VectorEngineConfig,
                       row_lo: int, row_hi: int) -> Program:
        n = self.n
        builder = AraProgramBuilder(f"{self.name}-col", mode, config)
        max_vl = builder.max_vl
        # Process y in chunks of rows; column j only contributes to rows <= j.
        row_start = row_lo
        while row_start < row_hi:
            chunk = min(max_vl, row_hi - row_start)
            builder.scalar(self.scalar_overhead, label="y chunk setup")
            builder.vmv_vx("v4", 0.0, chunk, label="clear accumulator")
            for j in range(row_start, n):
                # Rows row_start .. min(j, row_start+chunk-1) hold nonzeros.
                rows = min(j - row_start + 1, chunk)
                col_addr = self.addr_a + (row_start * n + j) * 4
                # Alternate column registers (software double-buffering) so
                # back-to-back strided loads keep the bus streaming.
                col_reg = "v1" if j % 2 == 0 else "v2"
                builder.scalar(1, label=f"column {j} pointer/x update")
                builder.vlse32(col_reg, col_addr, rows, stride_elems=n,
                               label=f"column {j} nonzeros")
                x_j = float(self.x[j])
                builder.compute(
                    Mnemonic.VFMACC_VF, "v4", (col_reg,), rows,
                    fn=self._partial_accumulate(rows, x_j, chunk),
                    dest_is_src=True, label=f"column {j} accumulate",
                )
            builder.vse32("v4", self.addr_y + row_start * 4, chunk,
                          label="store y chunk")
            row_start += chunk
        return builder.build()

    @staticmethod
    def _x_reg_for(x_regs, element_index: int):
        """Find the preloaded x register chunk covering ``element_index``."""
        for reg in x_regs:
            if reg[1] <= element_index < reg[1] + reg[2]:
                return reg
        return x_regs[-1]

    @staticmethod
    def _slice_multiply(x_lo: int, chunk: int):
        """Multiply a row's nonzeros by the matching slice of the x register."""
        def fn(row_vals: np.ndarray, x_full: np.ndarray) -> np.ndarray:
            return (row_vals[:chunk] * x_full[x_lo:x_lo + chunk]).astype(np.float32)
        return fn

    @staticmethod
    def _partial_accumulate(rows: int, x_j: float, chunk: int):
        """Accumulate a ``rows``-long column into the first rows of the chunk."""
        def fn(column: np.ndarray, acc: np.ndarray) -> np.ndarray:
            out = acc.astype(np.float32).copy()
            out[:rows] = out[:rows] + column[:rows] * np.float32(x_j)
            return out
        return fn

    # ---------------------------------------------------------------- verify
    def reference(self) -> np.ndarray:
        """Expected output vector."""
        return (self.matrix.astype(np.float64) @ self.x.astype(np.float64)).astype(
            np.float32
        )

    def verify(self, storage: MemoryStorage) -> bool:
        result = storage.read_array(self.addr_y, self.n, np.float32)
        return self._allclose(result, self.reference())
