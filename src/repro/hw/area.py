"""Adapter area model (paper Fig. 4a/4b).

The adapter's area is dominated by datapath structures that replicate per
word lane (beat packers, decoupling queues, request generators), so each
component's area is modelled as ``base + slope * n`` where ``n`` is the
number of 32-bit word lanes (2, 4 and 8 for 64-, 128- and 256-bit buses).
Coefficients are calibrated so that the 1 GHz areas match the paper exactly:
69, 130 and 257 kGE totals and the Fig. 4b per-converter breakdown.

Pushing the clock constraint below 1 ns costs extra area (larger drivers,
more aggressive logic duplication); relaxing it recovers a little.  The knee
behaviour is modelled with a smooth penalty that reaches roughly +10 % at the
minimum achievable period reported in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.errors import ConfigurationError
from repro.hw.timing import TimingModel

#: Component areas in kGE for the 256-bit (8-lane) adapter at 1 GHz (Fig. 4b).
COMPONENT_AREA_256B_KGE: Mapping[str, float] = {
    "axi_demux": 3.0,
    "memory_mux": 9.0,
    "axi4_converter": 26.0,
    "strided_read_converter": 36.0,
    "strided_write_converter": 37.0,
    "indirect_read_converter": 73.0,
    "indirect_write_converter": 74.0,
}

#: Fraction of each component's area that does not scale with lane count.
_FIXED_FRACTION = 6.33 / 257.0

#: Area penalty reached at the minimum achievable clock period.
_MAX_TIGHT_CLOCK_PENALTY = 0.10

#: Mild area recovery when the clock is relaxed beyond 1 ns.
_RELAXED_CLOCK_RECOVERY = 0.03


@dataclass
class AreaBreakdown:
    """Per-component adapter area in kGE."""

    components: Dict[str, float]

    @property
    def total_kge(self) -> float:
        """Total adapter area in kGE."""
        return sum(self.components.values())

    def fraction(self, name: str) -> float:
        """Fraction of the total contributed by one component."""
        return self.components[name] / self.total_kge

    def as_rows(self):
        """(name, kGE, share) rows sorted by decreasing area."""
        rows = [
            (name, area, area / self.total_kge)
            for name, area in self.components.items()
        ]
        return sorted(rows, key=lambda row: row[1], reverse=True)


class AdapterAreaModel:
    """Area of the AXI-Pack adapter versus bus width and clock constraint."""

    def __init__(self, word_bits: int = 32,
                 timing: TimingModel | None = None) -> None:
        if word_bits <= 0:
            raise ConfigurationError("word width must be positive")
        self.word_bits = word_bits
        self.timing = timing or TimingModel()

    # ------------------------------------------------------------ geometry
    def lanes_for_bus(self, bus_bits: int) -> int:
        """Number of word lanes for a bus width in bits."""
        if bus_bits % self.word_bits != 0:
            raise ConfigurationError(
                f"bus width {bus_bits} is not a multiple of the word width"
            )
        return bus_bits // self.word_bits

    # ------------------------------------------------------------ components
    def component_area_kge(self, name: str, bus_bits: int,
                           clock_ps: float = 1000.0) -> float:
        """Area of one adapter component in kGE."""
        if name not in COMPONENT_AREA_256B_KGE:
            raise ConfigurationError(f"unknown adapter component {name!r}")
        lanes = self.lanes_for_bus(bus_bits)
        at_256 = COMPONENT_AREA_256B_KGE[name]
        fixed = at_256 * _FIXED_FRACTION
        slope = at_256 * (1.0 - _FIXED_FRACTION) / 8.0
        nominal = fixed + slope * lanes
        return nominal * self._clock_scale(bus_bits, clock_ps)

    def breakdown(self, bus_bits: int = 256, clock_ps: float = 1000.0) -> AreaBreakdown:
        """Per-component areas (Fig. 4b is the 256-bit, 1 GHz case)."""
        return AreaBreakdown(
            {
                name: self.component_area_kge(name, bus_bits, clock_ps)
                for name in COMPONENT_AREA_256B_KGE
            }
        )

    def total_area_kge(self, bus_bits: int, clock_ps: float = 1000.0) -> float:
        """Total adapter area in kGE (Fig. 4a's y-axis)."""
        return self.breakdown(bus_bits, clock_ps).total_kge

    def fraction_of_ara(self, bus_bits: int = 256, clock_ps: float = 1000.0,
                        ara_area_kge: float = 4150.0) -> float:
        """Adapter area as a fraction of Ara (the paper reports 6.2 %)."""
        return self.total_area_kge(bus_bits, clock_ps) / ara_area_kge

    # ------------------------------------------------------------ clock knee
    def _clock_scale(self, bus_bits: int, clock_ps: float) -> float:
        minimum = self.timing.min_period_ps(bus_bits)
        if clock_ps < minimum:
            raise ConfigurationError(
                f"clock period {clock_ps} ps is below the minimum achievable "
                f"{minimum} ps for a {bus_bits}-bit adapter"
            )
        if clock_ps >= 1000.0:
            relaxed = min(clock_ps, 3000.0)
            return 1.0 - _RELAXED_CLOCK_RECOVERY * (relaxed - 1000.0) / 2000.0
        tightness = (1000.0 - clock_ps) / (1000.0 - minimum)
        return 1.0 + _MAX_TIGHT_CLOCK_PENALTY * tightness ** 2
