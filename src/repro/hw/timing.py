"""Adapter timing model: minimum achievable clock period per bus width.

The paper reports minimum periods of 787, 800 and 839 ps for 64-, 128- and
256-bit adapters in GF 22FDX (SSG corner, 0.72 V).  The critical path runs
through the beat packer's lane multiplexing, which deepens logarithmically
with the lane count; the model interpolates accordingly for other widths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Published minimum clock periods (ps) per bus width in bits.
PUBLISHED_MIN_PERIOD_PS = {64: 787.0, 128: 800.0, 256: 839.0}


@dataclass
class TimingModel:
    """Minimum clock period and achievable frequency of the adapter."""

    word_bits: int = 32
    base_period_ps: float = 774.0
    per_level_ps: float = 13.0

    def min_period_ps(self, bus_bits: int) -> float:
        """Minimum achievable clock period for a given bus width."""
        if bus_bits in PUBLISHED_MIN_PERIOD_PS:
            return PUBLISHED_MIN_PERIOD_PS[bus_bits]
        lanes = bus_bits / self.word_bits
        if lanes < 1:
            raise ConfigurationError("bus must be at least one word wide")
        return self.base_period_ps + self.per_level_ps * math.log2(lanes)

    def max_frequency_ghz(self, bus_bits: int) -> float:
        """Maximum achievable clock frequency in GHz."""
        return 1000.0 / self.min_period_ps(bus_bits)

    def meets_target(self, bus_bits: int, target_period_ps: float) -> bool:
        """True if the adapter closes timing at the requested period."""
        return target_period_ps >= self.min_period_ps(bus_bits)
