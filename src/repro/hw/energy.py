"""Power and energy-efficiency model (paper Fig. 4c).

The model splits system power into a static part and parts proportional to
the activities the simulator measures: arithmetic throughput (lanes), memory
traffic (beats per cycle on the R and W channels) and, for the PACK system,
the AXI-Pack adapter's own switching.  Coefficients are calibrated so the
resulting benchmark powers land in the paper's 100-300 mW range, PACK draws
at most ~30 % more power than BASE, and the energy-efficiency improvements
(speedup x power ratio) peak near the published 5.3x / 2.1x values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.errors import ConfigurationError
from repro.hw.technology import GF22FDX, TechnologyParams
from repro.system.config import SystemKind
from repro.system.results import SystemRunResult


@dataclass
class PowerParams:
    """Calibrated power coefficients (mW at 1 GHz, TT corner).

    The split is deliberately static-heavy: CVA6, Ara's lanes and the
    interconnect burn most of their power simply by being clocked, which is
    why the paper measures at most a ~31 % power increase for PACK despite
    its much higher activity.
    """

    static_mw: float = 190.0            #: CVA6 + Ara clock tree, leakage, idle lanes
    lane_active_mw: float = 50.0        #: extra power of lanes at full FP32 throughput
    memory_traffic_mw: float = 35.0     #: bus + banks at one beat per cycle
    adapter_static_mw: float = 2.0      #: AXI-Pack adapter idle power
    adapter_traffic_mw: float = 12.0    #: AXI-Pack adapter at one beat per cycle


@dataclass
class BenchmarkEnergyResult:
    """Power/energy comparison of one workload on BASE and PACK."""

    workload: str
    base_power_mw: float
    pack_power_mw: float
    base_cycles: int
    pack_cycles: int

    @property
    def speedup(self) -> float:
        """PACK speedup over BASE."""
        return self.base_cycles / self.pack_cycles if self.pack_cycles else 0.0

    @property
    def power_increase(self) -> float:
        """Relative PACK power increase over BASE (paper: at most ~31 %)."""
        return self.pack_power_mw / self.base_power_mw - 1.0 if self.base_power_mw else 0.0

    @property
    def base_energy(self) -> float:
        """BASE energy in mW x cycles (arbitrary but consistent units)."""
        return self.base_power_mw * self.base_cycles

    @property
    def pack_energy(self) -> float:
        """PACK energy in mW x cycles."""
        return self.pack_power_mw * self.pack_cycles

    @property
    def energy_efficiency_improvement(self) -> float:
        """How much less energy PACK uses for the same work (paper's metric)."""
        return self.base_energy / self.pack_energy if self.pack_energy else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary for reporting."""
        return {
            "workload": self.workload,
            "base_power_mw": self.base_power_mw,
            "pack_power_mw": self.pack_power_mw,
            "power_increase": self.power_increase,
            "speedup": self.speedup,
            "energy_efficiency_improvement": self.energy_efficiency_improvement,
        }


class EnergyModel:
    """Estimates benchmark power from simulated activity."""

    def __init__(self, params: Optional[PowerParams] = None,
                 technology: TechnologyParams = GF22FDX) -> None:
        self.params = params or PowerParams()
        self.technology = technology

    # ------------------------------------------------------------------ power
    def system_power_mw(self, result: SystemRunResult) -> float:
        """Average power of one benchmark run on one system."""
        params = self.params
        cycles = max(1, result.cycles)
        engine = result.engine
        beats_per_cycle = (engine.r_beats + engine.w_beats) / cycles
        # Arithmetic activity: elements moved per cycle relative to the lane
        # throughput is a good proxy for functional-unit utilization in these
        # streaming kernels (one FLOP per loaded element).
        elems_per_cycle = (engine.r_data_bytes + engine.w_useful_bytes) / 4 / cycles
        lanes = engine.bus_bytes // 4
        lane_activity = min(1.0, elems_per_cycle / lanes)
        power = params.static_mw
        power += params.lane_active_mw * lane_activity
        power += params.memory_traffic_mw * min(1.0, beats_per_cycle)
        if result.kind is SystemKind.PACK:
            power += params.adapter_static_mw
            power += params.adapter_traffic_mw * min(1.0, beats_per_cycle)
        return power

    def topology_power_mw(
        self,
        result: SystemRunResult,
        num_engines: int = 1,
        num_channels: int = 1,
        channel_beats_per_cycle: Optional[Sequence[float]] = None,
    ) -> float:
        """Average power of one run on an N-engine × M-channel topology.

        Scales the same calibrated coefficients by the instantiated
        hardware: every engine pays its static and lane-activity power
        (``result.engine`` aggregates traffic across engines, so lane
        activity is normalized by the *total* lane count), and every memory
        channel pays its traffic power for the beats it actually carried.
        ``channel_beats_per_cycle`` supplies the measured per-channel beat
        rates (from the ``chan{j}.``-prefixed stats); when omitted, the
        aggregate traffic is assumed perfectly balanced across channels.
        PACK systems additionally pay one adapter (static + traffic) per
        channel.  With ``num_engines == num_channels == 1`` this reduces
        exactly to :meth:`system_power_mw`.
        """
        if num_engines < 1 or num_channels < 1:
            raise ConfigurationError("topology needs >= 1 engine and channel")
        params = self.params
        cycles = max(1, result.cycles)
        engine = result.engine
        beats_per_cycle = (engine.r_beats + engine.w_beats) / cycles
        if channel_beats_per_cycle is None:
            channel_beats = [beats_per_cycle / num_channels] * num_channels
        else:
            channel_beats = list(channel_beats_per_cycle)
            if len(channel_beats) != num_channels:
                raise ConfigurationError(
                    f"got {len(channel_beats)} channel beat rates for "
                    f"{num_channels} channels"
                )
        elems_per_cycle = (engine.r_data_bytes + engine.w_useful_bytes) / 4 / cycles
        lanes = engine.bus_bytes // 4
        lane_activity = min(1.0, elems_per_cycle / (lanes * num_engines))
        # Each channel saturates at one beat per cycle, like the single bus
        # in system_power_mw.
        traffic_activity = sum(min(1.0, beats) for beats in channel_beats)
        power = params.static_mw * num_engines
        power += params.lane_active_mw * num_engines * lane_activity
        power += params.memory_traffic_mw * traffic_activity
        if result.kind is SystemKind.PACK:
            power += params.adapter_static_mw * num_channels
            power += params.adapter_traffic_mw * traffic_activity
        return power

    # ----------------------------------------------------------------- energy
    def compare(self, base: SystemRunResult, pack: SystemRunResult) -> BenchmarkEnergyResult:
        """Build the Fig. 4c comparison for one workload."""
        return BenchmarkEnergyResult(
            workload=base.workload,
            base_power_mw=self.system_power_mw(base),
            pack_power_mw=self.system_power_mw(pack),
            base_cycles=base.cycles,
            pack_cycles=pack.cycles,
        )
