"""Calibrated hardware cost models: area, timing, power and energy.

Python cannot run logic synthesis, so these models are analytic: their
functional forms follow the structure of the RTL (component areas scale with
the number of word lanes, prime-banked crossbars add modulo/divide units,
power splits into a static part and activity-proportional parts) and their
coefficients are calibrated to the numbers published in the paper (Fig. 4 and
Fig. 5c).  They are driven by the activity statistics the simulator produces,
so relative results (breakdowns, scaling trends, energy-efficiency ratios)
are meaningful even though absolute silicon numbers are inherited from the
paper rather than measured.
"""

from repro.hw.technology import TechnologyParams, GF22FDX
from repro.hw.area import AdapterAreaModel, AreaBreakdown
from repro.hw.crossbar_area import BankCrossbarAreaModel, CrossbarAreaBreakdown
from repro.hw.timing import TimingModel
from repro.hw.energy import EnergyModel, BenchmarkEnergyResult

__all__ = [
    "TechnologyParams",
    "GF22FDX",
    "AdapterAreaModel",
    "AreaBreakdown",
    "BankCrossbarAreaModel",
    "CrossbarAreaBreakdown",
    "TimingModel",
    "EnergyModel",
    "BenchmarkEnergyResult",
]
