"""Bank crossbar area model (paper Fig. 5c).

The word-port-to-bank crossbar grows with the port x bank product; prime
bank counts additionally need modulo units (bank selection) and dividers
(row address) per port, which power-of-two counts get for free as bit
slices.  The paper highlights that this overhead shrinks *relative to* the
crossbar as the bank count grows, making 17 banks an attractive design point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError
from repro.utils.math import is_prime


@dataclass
class CrossbarAreaBreakdown:
    """Crossbar, modulo and divider area in kGE for one bank count."""

    num_banks: int
    crossbar_kge: float
    modulo_kge: float
    divider_kge: float

    @property
    def total_kge(self) -> float:
        """Total area in kGE."""
        return self.crossbar_kge + self.modulo_kge + self.divider_kge

    @property
    def prime_overhead_fraction(self) -> float:
        """Fraction of the total spent on prime-count address hardware."""
        total = self.total_kge
        return (self.modulo_kge + self.divider_kge) / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary for reporting."""
        return {
            "banks": self.num_banks,
            "crossbar": self.crossbar_kge,
            "modulo": self.modulo_kge,
            "divider": self.divider_kge,
            "total": self.total_kge,
        }


class BankCrossbarAreaModel:
    """Area of the n-port x m-bank word crossbar and its address units."""

    def __init__(self, num_ports: int = 8, word_bits: int = 32) -> None:
        if num_ports <= 0 or word_bits <= 0:
            raise ConfigurationError("ports and word width must be positive")
        self.num_ports = num_ports
        self.word_bits = word_bits
        # Calibrated so that the 8-port, 32-bank point lands near the paper's
        # ~30 kGE crossbar and the prime address units add a handful of kGE.
        self._kge_per_crosspoint = 0.105
        self._kge_per_bank_fixed = 0.16
        self._modulo_kge_per_port = 0.72
        self._divider_kge_per_port = 1.05

    def breakdown(self, num_banks: int) -> CrossbarAreaBreakdown:
        """Area breakdown for one bank count."""
        if num_banks <= 0:
            raise ConfigurationError("bank count must be positive")
        crossbar = (
            self._kge_per_crosspoint * self.num_ports * num_banks
            + self._kge_per_bank_fixed * num_banks
        )
        if is_prime(num_banks):
            # Modulo/divide complexity grows weakly with the operand width,
            # which itself shrinks as more banks mean fewer rows per bank.
            width_factor = max(0.75, 1.1 - 0.01 * num_banks)
            modulo = self._modulo_kge_per_port * self.num_ports * width_factor
            divider = self._divider_kge_per_port * self.num_ports * width_factor
        else:
            modulo = 0.0
            divider = 0.0
        return CrossbarAreaBreakdown(num_banks, crossbar, modulo, divider)

    def total_kge(self, num_banks: int) -> float:
        """Total crossbar area for one bank count."""
        return self.breakdown(num_banks).total_kge

    def sweep(self, bank_counts=(8, 11, 16, 17, 31, 32)) -> Dict[int, CrossbarAreaBreakdown]:
        """Breakdown for every bank count of the paper's sweep."""
        return {banks: self.breakdown(banks) for banks in bank_counts}
