"""Technology parameters used by the analytic hardware models."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TechnologyParams:
    """Parameters describing the implementation technology.

    The paper implements its systems in GlobalFoundries' 22 nm FD-SOI (22FDX)
    at 0.72 V using low-Vt cells; the models only need a handful of derived
    quantities.
    """

    name: str = "GF 22FDX"
    #: nominal clock frequency of the evaluation systems (Hz)
    nominal_clock_hz: float = 1.0e9
    #: supply voltage used for the synthesis corner (V)
    supply_volts: float = 0.72
    #: area of Ara (the 8-lane vector processor) in kGE, used as the yardstick
    #: for the "adapter is 6.2 % of Ara" headline
    ara_area_kge: float = 4150.0
    #: energy per gate-equivalent per toggle, arbitrary calibrated unit
    energy_per_ge_toggle: float = 1.0e-6


#: Default technology: the paper's GlobalFoundries 22FDX setup.
GF22FDX = TechnologyParams()
