"""Generic read/write word-access pipelines shared by all converters.

A converter is, structurally, the combination of

* a *planner* that turns a burst into per-beat word-access plans
  (:mod:`repro.controller.planners`),
* a :class:`ReadPipe` or :class:`WritePipe` that issues those word accesses
  to the banks in order, subject to the request regulator, collects the
  responses, and re-packs (reads) or unpacks (writes) beats, and
* converter-specific glue (the index stage of the indirect converters).

Keeping the pipes generic means the strided, indirect and base converters
share one well-tested engine and differ only in their planners — mirroring
how the RTL converters share the beat packer / info queue structure.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Iterator, List, Optional, Set, Tuple

from repro.axi.signals import BBeat, RBeat
from repro.axi.transaction import BusRequest
from repro.axi.types import Resp
from repro.controller.context import AdapterConfig
from repro.controller.plans import BeatPlan, ReadBeatState, WordSlot, WriteBeatState
from repro.controller.regulator import RequestRegulator
from repro.errors import SimulationError
from repro.mem.words import WordRequest
from repro.sim.policy import DataPolicy
from repro.sim.stats import StatsRegistry

#: Prebound default: checked once per word response on the hot path.
_RESP_OKAY = Resp.OKAY


class ReadPipe:
    """Issues word reads beat by beat and re-packs the returned words.

    Beats are issued and completed strictly in order, which keeps the R
    channel ordering rules trivially satisfied and matches the info-queue
    discipline of the RTL beat packer.

    Under ``DataPolicy.ELIDE`` no payload buffers exist: word responses only
    decrement the beat's completion count, and completed beats emit empty
    payloads with their geometry (``useful_bytes``) intact.
    """

    def __init__(
        self,
        name: str,
        config: AdapterConfig,
        stats: StatsRegistry,
        data_policy: DataPolicy = DataPolicy.FULL,
    ) -> None:
        self.name = name
        self.config = config
        self.stats = stats
        self._elide = data_policy.elides_data
        #: beat-state factory bound once: payload-carrying or timing-only
        self._make_state = (
            ReadBeatState.from_plan_elided if self._elide else ReadBeatState.from_plan
        )
        self.regulator = RequestRegulator(config.bus_words, config.queue_depth)
        self._beats: Deque[Tuple[ReadBeatState, BusRequest]] = deque()
        #: beats with unissued slots, oldest first: [state, next_slot_index]
        self._unissued: Deque[List] = deque()
        self._accepted_bursts = 0

    # -------------------------------------------------------------- planning
    def add_plans(
        self,
        request: BusRequest,
        plans: Iterable[BeatPlan],
        resp: Resp = _RESP_OKAY,
    ) -> None:
        """Queue pre-computed beat plans belonging to ``request``.

        ``resp`` pre-poisons every queued beat: the indirect converters use
        it to taint element beats planned from a poisoned index fetch.
        """
        make_state = self._make_state
        for plan in plans:
            state = make_state(plan)
            if resp is not _RESP_OKAY:
                state.resp = resp
            self._beats.append((state, request))
            if plan.slots:
                self._unissued.append([state, 0])

    def accept(self, request: BusRequest, plans: Iterable[BeatPlan]) -> None:
        """Accept a burst whose beats are fully described by ``plans``."""
        self._accepted_bursts += 1
        self.add_plans(request, plans)

    # --------------------------------------------------------------- issuing
    def issue(self, free_ports: Set[int], out: List[WordRequest]) -> None:
        """Issue word reads in order, using only ``free_ports``.

        Ports used are removed from ``free_ports`` so other pipes sharing the
        memory ports this cycle cannot double-book them.  Issue stops at the
        first slot whose port is unavailable or regulator-blocked, preserving
        the in-order request discipline of the RTL request generator.
        """
        unissued = self._unissued
        regulator = self.regulator
        in_flight = regulator._in_flight
        limit = regulator.limit
        while unissued:
            entry = unissued[0]
            state = entry[0]
            slots = state.plan.slots
            next_slot = entry[1]
            while next_slot < len(slots):
                slot = slots[next_slot]
                port = slot.port
                if port not in free_ports or in_flight[port] >= limit:
                    entry[1] = next_slot
                    return
                free_ports.discard(port)
                in_flight[port] += 1
                out.append(
                    WordRequest(
                        port=port,
                        word_addr=slot.word_addr,
                        is_write=False,
                        tag=(self, state, slot),
                    )
                )
                next_slot += 1
            unissued.popleft()

    def has_unissued(self) -> bool:
        """True if any planned word read has not been issued yet (O(1))."""
        return bool(self._unissued)

    # ------------------------------------------------------------- responses
    def take_response(self, state: ReadBeatState, slot: WordSlot, data: bytes) -> None:
        """Deliver one returned word to its beat."""
        # Inlined ReadBeatState.fill + RequestRegulator.note_retire: this runs
        # once per word access, the hottest path in the controller model.
        if state.data is not None:
            shift = slot.byte_shift
            offset = slot.offset
            nbytes = slot.nbytes
            state.data[offset : offset + nbytes] = data[shift : shift + nbytes]
        state.remaining -= 1
        in_flight = self.regulator._in_flight
        port = slot.port
        if in_flight[port] <= 0:
            raise SimulationError(f"regulator underflow on port {port}")
        in_flight[port] -= 1

    def take_error_response(
        self, state: ReadBeatState, slot: WordSlot, resp: Resp
    ) -> None:
        """Deliver one errored word: no data, the beat is poisoned instead."""
        if resp.value > state.resp.value:
            state.resp = resp
        state.remaining -= 1
        in_flight = self.regulator._in_flight
        port = slot.port
        if in_flight[port] <= 0:
            raise SimulationError(f"regulator underflow on port {port}")
        in_flight[port] -= 1

    # --------------------------------------------------------------- packing
    def pop_ready_beat(self) -> Optional[Tuple[BeatPlan, bytes, BusRequest, Resp]]:
        """Return the oldest beat if it is complete, removing it from the pipe."""
        if not self._beats:
            return None
        state, request = self._beats[0]
        if state.remaining:
            return None
        self._beats.popleft()
        if self._unissued and self._unissued[0][0] is state:
            # A beat with word accesses cannot complete before they were issued.
            raise SimulationError(
                f"{self.name}: beat completed before all slots were issued"
            )
        data = b"" if state.data is None else bytes(state.data)
        return state.plan, data, request, state.resp

    def pop_ready_r_beat(self) -> Optional[RBeat]:
        """Like :meth:`pop_ready_beat` but wrapped as an R-channel beat."""
        ready = self.pop_ready_beat()
        if ready is None:
            return None
        plan, data, _request, resp = ready
        return RBeat(
            txn_id=plan.txn_id,
            data=data,
            useful_bytes=plan.useful_bytes,
            last=plan.last,
            resp=resp,
        )

    # ------------------------------------------------------------------ state
    def busy(self) -> bool:
        """True while any beat is pending issue, in flight or awaiting packing."""
        return bool(self._beats)

    def pending_beats(self) -> int:
        """Number of beats currently tracked by the pipe."""
        return len(self._beats)

    def reset(self) -> None:
        """Drop all state (component reset)."""
        self._beats.clear()
        self._unissued.clear()
        self.regulator.reset()


class _ActiveWriteBurst:
    """Book-keeping for one write burst travelling through a WritePipe.

    ``resp`` accumulates the worst response of the burst's retired beats
    and becomes the B response when the burst completes.
    """

    def __init__(self, request: BusRequest, planner: Optional[Iterator[BeatPlan]]) -> None:
        self.request = request
        self.planner = planner
        self.w_beats_received = 0
        self.beats_completed = 0
        self.resp = _RESP_OKAY

    @property
    def all_w_received(self) -> bool:
        return self.w_beats_received >= self.request.num_beats

    @property
    def complete(self) -> bool:
        return self.beats_completed >= self.request.num_beats


class WritePipe:
    """Unpacks W beats into word writes and tracks their acknowledgements."""

    def __init__(
        self,
        name: str,
        config: AdapterConfig,
        stats: StatsRegistry,
        data_policy: DataPolicy = DataPolicy.FULL,
    ) -> None:
        self.name = name
        self.config = config
        self.stats = stats
        self._elide = data_policy.elides_data
        self.regulator = RequestRegulator(config.bus_words, config.queue_depth)
        self._bursts: Deque[_ActiveWriteBurst] = deque()
        self._beats: Deque[Tuple[WriteBeatState, _ActiveWriteBurst]] = deque()
        #: beat states with unissued slots, oldest first
        self._unissued: Deque[WriteBeatState] = deque()

    # -------------------------------------------------------------- planning
    def accept(
        self, request: BusRequest, planner: Optional[Iterator[BeatPlan]]
    ) -> _ActiveWriteBurst:
        """Accept a write burst and return its tracking record.

        ``planner`` yields one plan per W beat as the data arrives; indirect
        converters pass ``None`` and add beats explicitly once the indices
        are known (see :meth:`add_beat`).
        """
        burst = _ActiveWriteBurst(request, planner)
        self._bursts.append(burst)
        return burst

    def expecting_w_data(self) -> bool:
        """True if some accepted burst still waits for W beats."""
        return any(not burst.all_w_received for burst in self._bursts)

    def take_w_beat(self, payload: bytes) -> Optional[_ActiveWriteBurst]:
        """Deliver one W data beat to the oldest burst still expecting data.

        For planner-driven bursts the beat plan is materialized immediately;
        bursts without a planner (indirect) record the payload via the caller,
        which must call :meth:`add_beat` itself.  Returns the burst the beat
        belongs to, or None if no burst expected data.
        """
        for burst in self._bursts:
            if not burst.all_w_received:
                burst.w_beats_received += 1
                if burst.planner is not None:
                    plan = next(burst.planner)
                    self.add_beat(plan, payload, burst)
                return burst
        return None

    def add_beat(
        self,
        plan: BeatPlan,
        payload: bytes,
        burst: _ActiveWriteBurst,
        resp: Resp = _RESP_OKAY,
    ) -> None:
        """Queue one fully planned write beat with its payload.

        ``resp`` pre-poisons the beat (indirect writes whose index fetch
        errored taint the element beats planned from substituted indices).
        """
        state = WriteBeatState(
            plan=plan, payload=None if self._elide else bytes(payload)
        )
        if resp is not _RESP_OKAY:
            state.resp = resp
        self._beats.append((state, burst))
        if plan.slots:
            self._unissued.append(state)

    # --------------------------------------------------------------- issuing
    def issue(self, free_ports: Set[int], out: List[WordRequest]) -> None:
        """Issue word writes in order, using only ``free_ports``."""
        unissued = self._unissued
        regulator = self.regulator
        in_flight = regulator._in_flight
        limit = regulator.limit
        while unissued:
            state = unissued[0]
            slots = state.plan.slots
            while state.next_slot < len(slots):
                slot = slots[state.next_slot]
                port = slot.port
                if port not in free_ports or in_flight[port] >= limit:
                    return
                free_ports.discard(port)
                in_flight[port] += 1
                out.append(
                    WordRequest(
                        port=port,
                        word_addr=slot.word_addr,
                        is_write=True,
                        data=self._word_write_data(state, slot),
                        tag=(self, state, slot),
                    )
                )
                state.next_slot += 1
                state.acks_pending += 1
            unissued.popleft()

    def has_unissued(self) -> bool:
        """True if any planned word write has not been issued yet (O(1))."""
        return bool(self._unissued)

    def _word_write_data(self, state: WriteBeatState, slot: WordSlot):
        """Full word of write data for one slot (partial words are rejected)."""
        if slot.nbytes != self.config.word_bytes or slot.byte_shift != 0:
            # Geometry-only check: kept under ELIDE too, so both policies
            # reject the same malformed plans at the same point.
            raise SimulationError(
                f"{self.name}: partial-word write at word {slot.word_addr:#x} — "
                "the model requires word-aligned write payloads"
            )
        if state.payload is None:
            return None
        return state.slot_data(slot)

    # ------------------------------------------------------------- responses
    def take_ack(self, state: WriteBeatState, slot: WordSlot) -> None:
        """Deliver one word-write acknowledgement."""
        state.acks_pending -= 1
        in_flight = self.regulator._in_flight
        port = slot.port
        if in_flight[port] <= 0:
            raise SimulationError(f"regulator underflow on port {port}")
        in_flight[port] -= 1

    def take_error_ack(
        self, state: WriteBeatState, slot: WordSlot, resp: Resp
    ) -> None:
        """Deliver one errored word-write acknowledgement (poisons the beat)."""
        if resp.value > state.resp.value:
            state.resp = resp
        state.acks_pending -= 1
        in_flight = self.regulator._in_flight
        port = slot.port
        if in_flight[port] <= 0:
            raise SimulationError(f"regulator underflow on port {port}")
        in_flight[port] -= 1

    # -------------------------------------------------------------- emission
    def pop_ready_b_beat(self) -> Optional[BBeat]:
        """Return a B beat once the oldest burst's writes are all complete."""
        self._retire_completed_beats()
        if not self._bursts:
            return None
        burst = self._bursts[0]
        if burst.all_w_received and burst.complete:
            self._bursts.popleft()
            return BBeat(txn_id=burst.request.txn_id, resp=burst.resp)
        return None

    def _retire_completed_beats(self) -> None:
        while self._beats:
            state, burst = self._beats[0]
            if not state.complete:
                break
            self._beats.popleft()
            burst.beats_completed += 1
            resp = state.resp
            if resp is not _RESP_OKAY and resp.value > burst.resp.value:
                burst.resp = resp

    # ------------------------------------------------------------------ state
    def busy(self) -> bool:
        """True while any burst or beat is still in progress."""
        return bool(self._bursts) or bool(self._beats)

    def reset(self) -> None:
        """Drop all state (component reset)."""
        self._bursts.clear()
        self._beats.clear()
        self._unissued.clear()
        self.regulator.reset()
