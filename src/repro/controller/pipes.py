"""Generic read/write word-access pipelines shared by all converters.

A converter is, structurally, the combination of

* a *planner* that turns a burst into per-beat word-access plans
  (:mod:`repro.controller.planners`),
* a :class:`ReadPipe` or :class:`WritePipe` that issues those word accesses
  to the banks in order, subject to the request regulator, collects the
  responses, and re-packs (reads) or unpacks (writes) beats, and
* converter-specific glue (the index stage of the indirect converters).

Keeping the pipes generic means the strided, indirect and base converters
share one well-tested engine and differ only in their planners — mirroring
how the RTL converters share the beat packer / info queue structure.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Iterator, List, Optional, Set, Tuple

from repro.axi.signals import BBeat, RBeat
from repro.axi.transaction import BusRequest
from repro.controller.context import AdapterConfig
from repro.controller.plans import BeatPlan, ReadBeatState, WordSlot, WriteBeatState
from repro.controller.regulator import RequestRegulator
from repro.errors import SimulationError
from repro.mem.words import WordRequest
from repro.sim.stats import StatsRegistry


class ReadPipe:
    """Issues word reads beat by beat and re-packs the returned words.

    Beats are issued and completed strictly in order, which keeps the R
    channel ordering rules trivially satisfied and matches the info-queue
    discipline of the RTL beat packer.
    """

    def __init__(self, name: str, config: AdapterConfig, stats: StatsRegistry) -> None:
        self.name = name
        self.config = config
        self.stats = stats
        self.regulator = RequestRegulator(config.bus_words, config.queue_depth)
        self._beats: Deque[Tuple[ReadBeatState, BusRequest]] = deque()
        self._issue_cursor = 0  # index into _beats of the first beat with unissued slots
        self._next_slot = 0  # next slot to issue within that beat
        self._accepted_bursts = 0

    # -------------------------------------------------------------- planning
    def add_plans(self, request: BusRequest, plans: Iterable[BeatPlan]) -> None:
        """Queue pre-computed beat plans belonging to ``request``."""
        for plan in plans:
            self._beats.append((ReadBeatState.from_plan(plan), request))

    def accept(self, request: BusRequest, plans: Iterable[BeatPlan]) -> None:
        """Accept a burst whose beats are fully described by ``plans``."""
        self._accepted_bursts += 1
        self.add_plans(request, plans)

    # --------------------------------------------------------------- issuing
    def issue(self, free_ports: Set[int], out: List[WordRequest]) -> None:
        """Issue word reads in order, using only ``free_ports``.

        Ports used are removed from ``free_ports`` so other pipes sharing the
        memory ports this cycle cannot double-book them.  Issue stops at the
        first slot whose port is unavailable or regulator-blocked, preserving
        the in-order request discipline of the RTL request generator.
        """
        while self._issue_cursor < len(self._beats):
            state, _request = self._beats[self._issue_cursor]
            slots = state.plan.slots
            while self._next_slot < len(slots):
                slot = slots[self._next_slot]
                if slot.port not in free_ports or not self.regulator.can_issue(slot.port):
                    return
                free_ports.discard(slot.port)
                self.regulator.note_issue(slot.port)
                out.append(
                    WordRequest(
                        port=slot.port,
                        word_addr=slot.word_addr,
                        is_write=False,
                        tag=(self, state, slot),
                    )
                )
                self._next_slot += 1
            self._issue_cursor += 1
            self._next_slot = 0

    # ------------------------------------------------------------- responses
    def take_response(self, state: ReadBeatState, slot: WordSlot, data: bytes) -> None:
        """Deliver one returned word to its beat."""
        state.fill(slot, bytes(data))
        self.regulator.note_retire(slot.port)

    # --------------------------------------------------------------- packing
    def pop_ready_beat(self) -> Optional[Tuple[BeatPlan, bytes, BusRequest]]:
        """Return the oldest beat if it is complete, removing it from the pipe."""
        if not self._beats:
            return None
        state, request = self._beats[0]
        if not state.complete:
            return None
        self._beats.popleft()
        if self._issue_cursor > 0:
            self._issue_cursor -= 1
        elif state.plan.slots:
            # A beat with word accesses cannot complete before they were issued.
            raise SimulationError(
                f"{self.name}: beat completed before all slots were issued"
            )
        return state.plan, bytes(state.data), request

    def pop_ready_r_beat(self) -> Optional[RBeat]:
        """Like :meth:`pop_ready_beat` but wrapped as an R-channel beat."""
        ready = self.pop_ready_beat()
        if ready is None:
            return None
        plan, data, _request = ready
        return RBeat(
            txn_id=plan.txn_id,
            data=data,
            useful_bytes=plan.useful_bytes,
            last=plan.last,
        )

    # ------------------------------------------------------------------ state
    def busy(self) -> bool:
        """True while any beat is pending issue, in flight or awaiting packing."""
        return bool(self._beats)

    def pending_beats(self) -> int:
        """Number of beats currently tracked by the pipe."""
        return len(self._beats)

    def reset(self) -> None:
        """Drop all state (component reset)."""
        self._beats.clear()
        self._issue_cursor = 0
        self._next_slot = 0
        self.regulator.reset()


class _ActiveWriteBurst:
    """Book-keeping for one write burst travelling through a WritePipe."""

    def __init__(self, request: BusRequest, planner: Optional[Iterator[BeatPlan]]) -> None:
        self.request = request
        self.planner = planner
        self.w_beats_received = 0
        self.beats_completed = 0

    @property
    def all_w_received(self) -> bool:
        return self.w_beats_received >= self.request.num_beats

    @property
    def complete(self) -> bool:
        return self.beats_completed >= self.request.num_beats


class WritePipe:
    """Unpacks W beats into word writes and tracks their acknowledgements."""

    def __init__(self, name: str, config: AdapterConfig, stats: StatsRegistry) -> None:
        self.name = name
        self.config = config
        self.stats = stats
        self.regulator = RequestRegulator(config.bus_words, config.queue_depth)
        self._bursts: Deque[_ActiveWriteBurst] = deque()
        self._beats: Deque[Tuple[WriteBeatState, _ActiveWriteBurst]] = deque()
        self._issue_index = 0  # index of first beat with unissued slots

    # -------------------------------------------------------------- planning
    def accept(
        self, request: BusRequest, planner: Optional[Iterator[BeatPlan]]
    ) -> _ActiveWriteBurst:
        """Accept a write burst and return its tracking record.

        ``planner`` yields one plan per W beat as the data arrives; indirect
        converters pass ``None`` and add beats explicitly once the indices
        are known (see :meth:`add_beat`).
        """
        burst = _ActiveWriteBurst(request, planner)
        self._bursts.append(burst)
        return burst

    def expecting_w_data(self) -> bool:
        """True if some accepted burst still waits for W beats."""
        return any(not burst.all_w_received for burst in self._bursts)

    def take_w_beat(self, payload: bytes) -> Optional[_ActiveWriteBurst]:
        """Deliver one W data beat to the oldest burst still expecting data.

        For planner-driven bursts the beat plan is materialized immediately;
        bursts without a planner (indirect) record the payload via the caller,
        which must call :meth:`add_beat` itself.  Returns the burst the beat
        belongs to, or None if no burst expected data.
        """
        for burst in self._bursts:
            if not burst.all_w_received:
                burst.w_beats_received += 1
                if burst.planner is not None:
                    plan = next(burst.planner)
                    self.add_beat(plan, payload, burst)
                return burst
        return None

    def add_beat(self, plan: BeatPlan, payload: bytes, burst: _ActiveWriteBurst) -> None:
        """Queue one fully planned write beat with its payload."""
        state = WriteBeatState(plan=plan, payload=bytes(payload))
        self._beats.append((state, burst))

    # --------------------------------------------------------------- issuing
    def issue(self, free_ports: Set[int], out: List[WordRequest]) -> None:
        """Issue word writes in order, using only ``free_ports``."""
        while self._issue_index < len(self._beats):
            state, _burst = self._beats[self._issue_index]
            slots = state.plan.slots
            while state.next_slot < len(slots):
                slot = slots[state.next_slot]
                if slot.port not in free_ports or not self.regulator.can_issue(slot.port):
                    return
                free_ports.discard(slot.port)
                self.regulator.note_issue(slot.port)
                out.append(
                    WordRequest(
                        port=slot.port,
                        word_addr=slot.word_addr,
                        is_write=True,
                        data=self._word_write_data(state, slot),
                        tag=(self, state, slot),
                    )
                )
                state.next_slot += 1
                state.acks_pending += 1
            self._issue_index += 1

    def _word_write_data(self, state: WriteBeatState, slot: WordSlot):
        """Full word of write data for one slot (partial words are rejected)."""
        if slot.nbytes != self.config.word_bytes or slot.byte_shift != 0:
            raise SimulationError(
                f"{self.name}: partial-word write at word {slot.word_addr:#x} — "
                "the model requires word-aligned write payloads"
            )
        return state.slot_data(slot)

    # ------------------------------------------------------------- responses
    def take_ack(self, state: WriteBeatState, slot: WordSlot) -> None:
        """Deliver one word-write acknowledgement."""
        state.acks_pending -= 1
        self.regulator.note_retire(slot.port)

    # -------------------------------------------------------------- emission
    def pop_ready_b_beat(self) -> Optional[BBeat]:
        """Return a B beat once the oldest burst's writes are all complete."""
        self._retire_completed_beats()
        if not self._bursts:
            return None
        burst = self._bursts[0]
        if burst.all_w_received and burst.complete:
            self._bursts.popleft()
            return BBeat(txn_id=burst.request.txn_id)
        return None

    def _retire_completed_beats(self) -> None:
        while self._beats:
            state, burst = self._beats[0]
            if not state.complete:
                break
            self._beats.popleft()
            if self._issue_index > 0:
                self._issue_index -= 1
            burst.beats_completed += 1

    # ------------------------------------------------------------------ state
    def busy(self) -> bool:
        """True while any burst or beat is still in progress."""
        return bool(self._bursts) or bool(self._beats)

    def reset(self) -> None:
        """Drop all state (component reset)."""
        self._bursts.clear()
        self._beats.clear()
        self._issue_index = 0
        self.regulator.reset()
