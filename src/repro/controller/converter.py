"""Common converter interface used by the adapter."""

from __future__ import annotations

import abc
from typing import List, Optional, Set, Tuple

from repro.axi.signals import BBeat, RBeat
from repro.axi.transaction import BusRequest
from repro.controller.context import AdapterContext
from repro.mem.words import WordRequest


class Converter(abc.ABC):
    """One of the adapter's five burst converters.

    Converters are not simulation components on their own; the adapter owns
    them and calls into them during its tick.  All port usage, R/B emission
    and W-data routing is mediated by the adapter so that the shared
    resources (one beat per channel per cycle, one access per word port per
    cycle) are arbitrated in a single place — the "bank port mux" of Fig. 2b.
    """

    def __init__(self, name: str, ctx: AdapterContext) -> None:
        self.name = name
        self.ctx = ctx

    # ------------------------------------------------------------ acceptance
    def can_accept_read(self, request: BusRequest) -> bool:
        """True if the converter can take this read burst now."""
        return False

    def accept_read(self, request: BusRequest) -> None:
        """Take ownership of a read burst."""
        raise NotImplementedError(f"{self.name} does not handle reads")

    def can_accept_write(self, request: BusRequest) -> bool:
        """True if the converter can take this write burst now."""
        return False

    def accept_write(self, request: BusRequest) -> None:
        """Take ownership of a write burst."""
        raise NotImplementedError(f"{self.name} does not handle writes")

    def take_w_beat(self, payload: bytes) -> None:
        """Deliver one W data beat for the oldest accepted write burst."""
        raise NotImplementedError(f"{self.name} does not consume W data")

    # ----------------------------------------------------------------- cycle
    def step(self, cycle: int) -> None:
        """Internal per-cycle housekeeping (index extraction, planning)."""

    @abc.abstractmethod
    def issue(self, free_ports: Set[int], out: List[WordRequest]) -> None:
        """Issue word accesses this cycle using only the given free ports."""

    def has_unissued(self) -> bool:
        """True if the converter holds planned word accesses not yet issued.

        The adapter uses this O(1) check to skip the issue scan on cycles
        where no converter has anything to send to the banks.  The default is
        conservative (True); converters override it with the exact check.
        """
        return True

    # --------------------------------------------------- adapter fast tables
    #
    # The adapter prebinds per-converter container tuples at construction so
    # its per-cycle scans read deque truth values instead of paying method
    # calls.  Converters expose their hot containers through the hooks below
    # (the returned deques must be stable objects: cleared in place on
    # reset, never reassigned).

    def unissued_deques(self) -> Tuple:
        """Stable containers that are non-empty iff :meth:`has_unissued`."""
        raise NotImplementedError(f"{self.name} does not expose issue state")

    def r_beat_deques(self) -> Optional[Tuple]:
        """Containers gating :meth:`pop_ready_r_beat`, or None if the
        converter can never emit an R beat."""
        return None

    def b_beat_deques(self) -> Optional[Tuple]:
        """Containers gating :meth:`pop_ready_b_beat`, or None if the
        converter can never emit a B response."""
        return None

    def pop_ready_r_beat(self) -> Optional[RBeat]:
        """Return a packed R beat if one is ready for the bus."""
        return None

    def pop_ready_b_beat(self) -> Optional[BBeat]:
        """Return a B response if a write burst has fully completed."""
        return None

    # ----------------------------------------------------------------- state
    @abc.abstractmethod
    def busy(self) -> bool:
        """True while the converter holds any unfinished burst."""

    def reset(self) -> None:
        """Drop all in-flight state."""
