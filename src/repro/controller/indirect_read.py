"""Indirect read converter (paper Fig. 2d).

Two stages share the word request ports:

* the **index stage** fetches the burst's index array from memory one
  bus-wide line at a time (contiguous word reads) and extracts individual
  indices from the returned lines;
* the **element stage** shifts each index by the element size, adds the base
  address, fetches the scattered elements, and packs them into R beats.

The element stage has priority for the ports; the index stage fills the
cycles the element stage leaves idle (it runs ahead exactly one line in
steady state, which is what bounds the ideal utilization at ``r / (r + 1)``
for an element-to-index size ratio of ``r`` — see paper §III-E).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set

import numpy as np

from repro.axi.pack import PackMode
from repro.axi.signals import RBeat
from repro.axi.transaction import BusRequest
from repro.axi.types import Resp
from repro.controller.context import AdapterContext
from repro.controller.converter import Converter
from repro.controller.lanes import (
    LaneReadPipe,
    batch_index_fetch,
    batch_indexed_beat,
)
from repro.controller.pipes import ReadPipe
from repro.controller.planners import plan_index_fetch_beats, plan_indexed_beat
from repro.errors import SimulationError
from repro.mem.words import WordRequest

_INDEX_DTYPES = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}

#: Prebound: compared once per completed index line.
_RESP_OKAY = Resp.OKAY


def read_index_oracle(ctx: AdapterContext, request: BusRequest) -> np.ndarray:
    """Resolve a burst's index values functionally.

    Under ELIDE the index fetch beats carry no bytes, but the index *values*
    still determine the element addresses — and therefore the bank conflicts
    and cycle count.  They are read once from the backing storage the
    workload initialized; the per-line fetch timing is still simulated by
    the index pipe, values are just consumed from this oracle instead of the
    returned line payloads.  FULL mode falls back to the oracle for
    *poisoned* index lines, so both policies resolve identical element
    addresses under faults.

    Index elements that fall outside the storage resolve to zero — the bus
    reports the error in band (the fetch words answer ``SLVERR``), so the
    oracle must yield deterministic values instead of raising.
    """
    if ctx.storage is None:
        raise SimulationError(
            "DataPolicy.ELIDE needs the adapter context to carry the backing "
            "storage to resolve indirect-burst indices"
        )
    index_bytes = request.pack.index_bytes
    dtype = _INDEX_DTYPES[index_bytes]
    num = request.num_elements
    base = request.index_base
    size = ctx.storage.size_bytes
    if 0 <= base and base + num * index_bytes <= size:
        return ctx.storage.read_array(base, num, dtype)
    values = np.zeros(num, dtype=dtype)
    if 0 <= base < size:
        avail = min(num, (size - base) // index_bytes)
        if avail > 0:
            values[:avail] = ctx.storage.read_array(base, avail, dtype)
    return values


def index_line_values(active, plan, data, request: BusRequest,
                      elide: bool, resp: Resp = _RESP_OKAY) -> np.ndarray:
    """The index values carried by one completed index-fetch line.

    In FULL mode they are decoded from the line's payload bytes; under
    ``DataPolicy.ELIDE`` — and for *poisoned* lines in FULL mode, whose
    payload bytes are invalid — the next ``useful_bytes // index_bytes``
    values are consumed from the burst's oracle (see
    :func:`read_index_oracle`).  ``oracle_pos`` advances for every line in
    both policies so a mid-burst fault slices the oracle at the right
    position.  Shared by the indirect read and write converters so the two
    stay in lock-step.
    """
    count = plan.useful_bytes // request.pack.index_bytes
    pos = active.oracle_pos
    active.oracle_pos = pos + count
    if elide or resp is not _RESP_OKAY:
        return active.index_oracle[pos : pos + count]
    dtype = _INDEX_DTYPES[request.pack.index_bytes]
    return np.frombuffer(data, dtype=dtype)


def index_line_values_batch(active, useful_bytes: int, data, request: BusRequest,
                            elide: bool, resp: Resp = _RESP_OKAY) -> list:
    """Batch-datapath twin of :func:`index_line_values`: plain int list.

    The lane pipes report a completed line as ``(useful_bytes, data,
    request, resp)`` rather than a plan object; the decoded values are
    returned as a Python list so the element planner slices them without
    per-element ``int()`` boxing.
    """
    count = useful_bytes // request.pack.index_bytes
    pos = active.oracle_pos
    active.oracle_pos = pos + count
    if elide or resp is not _RESP_OKAY:
        return active.index_oracle[pos : pos + count].tolist()
    dtype = _INDEX_DTYPES[request.pack.index_bytes]
    return np.frombuffer(data, dtype=dtype).tolist()


class _ActiveIndirectRead:
    """Per-burst progress of the two-stage indirect read.

    The scalar datapath buffers extracted indices in ``index_buffer`` (a
    deque popped one element at a time); the batch datapath appends decoded
    lines to ``index_list`` and consumes them by slice via ``index_pos``.
    """

    __slots__ = (
        "request",
        "index_buffer",
        "index_list",
        "index_pos",
        "elements_planned",
        "next_beat",
        "index_oracle",
        "oracle_pos",
        "index_resp",
    )

    def __init__(self, request: BusRequest) -> None:
        self.request = request
        self.index_buffer: Deque[int] = deque()
        self.index_list: List[int] = []
        self.index_pos = 0
        self.elements_planned = 0
        self.next_beat = 0
        #: ELIDE always; FULL materializes it lazily on a poisoned line
        self.index_oracle: Optional[np.ndarray] = None
        self.oracle_pos = 0
        #: worst response over the burst's index-fetch lines so far; element
        #: beats planned after a fault inherit it
        self.index_resp = _RESP_OKAY

    @property
    def fully_planned(self) -> bool:
        return self.elements_planned >= self.request.num_elements


class IndirectReadConverter(Converter):
    """Serves AXI-Pack indirect read bursts with bank-side indirection."""

    def __init__(self, name: str, ctx: AdapterContext) -> None:
        super().__init__(name, ctx)
        self._elide = ctx.data_policy.elides_data
        self._batch = ctx.datapath.is_batch
        pipe_cls = LaneReadPipe if self._batch else ReadPipe
        self._index_pipe = pipe_cls(
            f"{name}.index", ctx.config, ctx.stats, ctx.data_policy
        )
        self._element_pipe = pipe_cls(
            f"{name}.element", ctx.config, ctx.stats, ctx.data_policy
        )
        self._bursts: Deque[_ActiveIndirectRead] = deque()
        self._by_txn: Dict[int, _ActiveIndirectRead] = {}
        self._seq = 0
        # Prebound hot-path counters (see repro.sim.stats).
        self._c_bursts = ctx.stats.counter("controller.indirect_read.bursts")
        self._c_index_lines = ctx.stats.counter("controller.indirect_read.index_lines")

    # ------------------------------------------------------------ acceptance
    def can_accept_read(self, request: BusRequest) -> bool:
        if request.mode is not PackMode.INDIRECT or request.is_write:
            return False
        return len(self._bursts) < self.ctx.config.max_pipelined_bursts

    def accept_read(self, request: BusRequest) -> None:
        active = _ActiveIndirectRead(request)
        if self._elide:
            active.index_oracle = read_index_oracle(self.ctx, request)
        self._bursts.append(active)
        self._by_txn[request.txn_id] = active
        config = self.ctx.config
        if self._batch:
            index_plans = batch_index_fetch(
                request, config.bus_bytes, config.word_bytes, config.bus_words
            )
        else:
            index_plans = plan_index_fetch_beats(
                index_base=request.index_base,
                num_indices=request.num_elements,
                index_bytes=request.pack.index_bytes,
                bus_bytes=config.bus_bytes,
                word_bytes=config.word_bytes,
                bus_words=config.bus_words,
                txn_id=request.txn_id,
                burst_seq=self._seq,
            )
        self._seq += 1
        self._index_pipe.accept(request, index_plans)
        self._c_bursts.value += 1

    # ----------------------------------------------------------------- cycle
    def step(self, cycle: int) -> None:
        if self._batch:
            self._extract_indices_batch()
            self._plan_element_beats_batch()
        else:
            self._extract_indices()
            self._plan_element_beats()

    def _extract_indices(self) -> None:
        """Offsets extraction: turn returned index lines into index values."""
        while True:
            ready = self._index_pipe.pop_ready_beat()
            if ready is None:
                return
            plan, data, request, resp = ready
            active = self._by_txn.get(request.txn_id)
            if active is not None:
                if resp is not _RESP_OKAY:
                    self._note_index_fault(active, resp)
                values = index_line_values(
                    active, plan, data, request, self._elide, resp
                )
                active.index_buffer.extend(int(i) for i in values)
            self._c_index_lines.value += 1

    def _extract_indices_batch(self) -> None:
        """Batch-datapath index extraction: decode whole lines into lists."""
        pipe = self._index_pipe
        elide = self._elide
        while True:
            ready = pipe.pop_ready_beat()
            if ready is None:
                return
            useful, data, request, resp = ready
            active = self._by_txn.get(request.txn_id)
            if active is not None:
                if resp is not _RESP_OKAY:
                    self._note_index_fault(active, resp)
                active.index_list.extend(
                    index_line_values_batch(
                        active, useful, data, request, elide, resp
                    )
                )
            self._c_index_lines.value += 1

    def _note_index_fault(self, active: _ActiveIndirectRead, resp: Resp) -> None:
        """A poisoned index line: fall back to oracle values, taint the burst."""
        if active.index_oracle is None:
            active.index_oracle = read_index_oracle(self.ctx, active.request)
        if resp.value > active.index_resp.value:
            active.index_resp = resp

    def _plan_element_beats(self) -> None:
        """Element request generation for the oldest incompletely planned burst."""
        for active in self._bursts:
            if active.fully_planned:
                continue
            request = active.request
            elems_per_beat = request.bus_bytes // request.elem_bytes
            while not active.fully_planned:
                remaining = request.num_elements - active.elements_planned
                beat_elems = min(elems_per_beat, remaining)
                if len(active.index_buffer) < beat_elems:
                    return  # wait for more indices before planning further
                offsets = [active.index_buffer.popleft() for _ in range(beat_elems)]
                plan = plan_indexed_beat(
                    request=request,
                    beat=active.next_beat,
                    element_offsets=offsets,
                    word_bytes=self.ctx.config.word_bytes,
                    bus_words=self.ctx.config.bus_words,
                    burst_seq=0,
                )
                self._element_pipe.add_plans(request, [plan], active.index_resp)
                active.elements_planned += beat_elems
                active.next_beat += 1
            return  # keep burst order: never plan burst k+1 before k is done

    def _plan_element_beats_batch(self) -> None:
        """Element planning over the list-backed index buffer (batch mode)."""
        config = self.ctx.config
        word_bytes = config.word_bytes
        bus_words = config.bus_words
        for active in self._bursts:
            if active.fully_planned:
                continue
            request = active.request
            elems_per_beat = request.bus_bytes // request.elem_bytes
            index_list = active.index_list
            pipe = self._element_pipe
            while not active.fully_planned:
                remaining = request.num_elements - active.elements_planned
                beat_elems = min(elems_per_beat, remaining)
                pos = active.index_pos
                if len(index_list) - pos < beat_elems:
                    return  # wait for more indices before planning further
                offsets = index_list[pos : pos + beat_elems]
                active.index_pos = pos + beat_elems
                pipe.add_batch(
                    request,
                    batch_indexed_beat(
                        request, active.next_beat, offsets, word_bytes, bus_words
                    ),
                    active.index_resp,
                )
                active.elements_planned += beat_elems
                active.next_beat += 1
            return  # keep burst order: never plan burst k+1 before k is done

    def issue(self, free_ports: Set[int], out: List[WordRequest]) -> None:
        # Element fetches have priority; index fetches use the leftover ports.
        self._element_pipe.issue(free_ports, out)
        self._index_pipe.issue(free_ports, out)

    def has_unissued(self) -> bool:
        return bool(self._element_pipe._unissued) or bool(self._index_pipe._unissued)

    def unissued_deques(self):
        return (self._element_pipe._unissued, self._index_pipe._unissued)

    def r_beat_deques(self):
        return (self._element_pipe._beats,)

    def pop_ready_r_beat(self) -> Optional[RBeat]:
        beat = self._element_pipe.pop_ready_r_beat()
        if beat is not None:
            self._retire_finished_bursts()
        return beat

    def _retire_finished_bursts(self) -> None:
        while self._bursts and self._bursts[0].fully_planned:
            # A burst record is only needed until all its beats are planned;
            # emission is tracked by the element pipe itself.
            finished = self._bursts.popleft()
            self._by_txn.pop(finished.request.txn_id, None)

    # ----------------------------------------------------------------- state
    def busy(self) -> bool:
        # Inlined pipe checks: this runs several times per adapter cycle.
        return bool(
            self._bursts or self._index_pipe._beats or self._element_pipe._beats
        )

    def reset(self) -> None:
        self._bursts.clear()
        self._by_txn.clear()
        self._index_pipe.reset()
        self._element_pipe.reset()
