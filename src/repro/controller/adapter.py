"""AXI-Pack adapter top level (paper Fig. 2b).

The adapter is the single simulation component that owns the five burst
converters.  Per cycle it:

1. routes word responses from the banked memory back to the converter that
   issued them;
2. runs each converter's internal housekeeping (index extraction, planning);
3. demultiplexes at most one AR and one AW request onto the right converter;
4. routes at most one W data beat to the write converter expecting it;
5. lets the converters issue word accesses onto the free memory ports (the
   bank port mux: each port carries at most one access per cycle);
6. multiplexes at most one R beat and one B response per cycle back onto the
   AXI port — the R channel is a single physical bus, and this one-beat-per-
   cycle rule is what every utilization number in the paper is measured
   against.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Set, Tuple

from repro.axi.monitor import ChannelMonitor
from repro.axi.port import AxiPort
from repro.axi.transaction import BusRequest
from repro.controller.base_converter import BaseAxi4Converter
from repro.controller.context import AdapterConfig, AdapterContext
from repro.controller.converter import Converter
from repro.controller.indirect_read import IndirectReadConverter
from repro.controller.indirect_write import IndirectWriteConverter
from repro.controller.pipes import ReadPipe, WritePipe
from repro.controller.strided_read import StridedReadConverter
from repro.controller.strided_write import StridedWriteConverter
from repro.errors import ProtocolError, SimulationError
from repro.mem.banked import BankedMemory
from repro.sim.component import Component
from repro.sim.stats import StatsRegistry


class AxiPackAdapter(Component):
    """Translates AXI / AXI-Pack bursts into banked word accesses."""

    def __init__(
        self,
        name: str,
        port: AxiPort,
        memory: BankedMemory,
        config: Optional[AdapterConfig] = None,
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        super().__init__(name)
        self.port = port
        self.memory = memory
        self.config = config or AdapterConfig(bus_bytes=port.bus_bytes)
        if self.config.bus_bytes != port.bus_bytes:
            raise ProtocolError(
                f"adapter bus width {self.config.bus_bytes}B does not match the "
                f"AXI port width {port.bus_bytes}B"
            )
        if self.config.word_bytes != memory.config.word_bytes:
            raise ProtocolError(
                "adapter word width must match the banked memory word width"
            )
        if self.config.bus_words > memory.config.num_ports:
            raise ProtocolError(
                f"adapter needs {self.config.bus_words} word ports but the "
                f"memory provides only {memory.config.num_ports}"
            )
        self.stats = stats if stats is not None else StatsRegistry()
        self.ctx = AdapterContext(self.config, self.stats)
        self.r_monitor = ChannelMonitor("R", self.config.bus_bytes)
        self.w_monitor = ChannelMonitor("W", self.config.bus_bytes)

        self.base = BaseAxi4Converter(f"{name}.base", self.ctx)
        self.strided_read = StridedReadConverter(f"{name}.strided_read", self.ctx)
        self.strided_write = StridedWriteConverter(f"{name}.strided_write", self.ctx)
        self.indirect_read = IndirectReadConverter(f"{name}.indirect_read", self.ctx)
        self.indirect_write = IndirectWriteConverter(f"{name}.indirect_write", self.ctx)
        self.converters: List[Converter] = [
            self.base,
            self.strided_read,
            self.strided_write,
            self.indirect_read,
            self.indirect_write,
        ]
        #: write converters in AW-acceptance order still owed W beats
        self._w_routing: Deque[Tuple[Converter, int]] = deque()
        self._issue_rr = 0
        self._emit_rr = 0

    # ------------------------------------------------------------ conversion
    def _read_converter_for(self, request: BusRequest) -> Converter:
        if request.mode.is_packed:
            if request.mode.name == "STRIDED":
                return self.strided_read
            return self.indirect_read
        return self.base

    def _write_converter_for(self, request: BusRequest) -> Converter:
        if request.mode.is_packed:
            if request.mode.name == "STRIDED":
                return self.strided_write
            return self.indirect_write
        return self.base

    # ------------------------------------------------------------------ tick
    def tick(self, cycle: int) -> None:
        self._route_memory_responses()
        for converter in self.converters:
            converter.step(cycle)
        self._demux_requests()
        self._route_w_data()
        self._issue_word_requests()
        self._emit_r_beat()
        self._emit_b_beat()

    # -------------------------------------------------------------- responses
    def _route_memory_responses(self) -> None:
        for queue in self.memory.response_queues:
            if not queue.can_pop():
                continue
            response = queue.pop()
            pipe, state, slot = response.tag
            if response.is_write:
                pipe.take_ack(state, slot)
            else:
                pipe.take_response(state, slot, response.data.tobytes())

    # ---------------------------------------------------------------- demux
    def _demux_requests(self) -> None:
        if self.port.ar.can_pop():
            request = self.port.ar.peek()
            converter = self._read_converter_for(request)
            if converter.can_accept_read(request):
                converter.accept_read(self.port.ar.pop())
                self.stats.add("adapter.ar_accepted")
        if self.port.aw.can_pop():
            request = self.port.aw.peek()
            converter = self._write_converter_for(request)
            if converter.can_accept_write(request):
                converter.accept_write(self.port.aw.pop())
                self._w_routing.append((converter, request.num_beats))
                self.stats.add("adapter.aw_accepted")

    def _route_w_data(self) -> None:
        if not self._w_routing or not self.port.w.can_pop():
            return
        converter, beats_left = self._w_routing[0]
        beat = self.port.w.pop()
        converter.take_w_beat(beat.data)
        self.w_monitor.record_beat(beat.useful_bytes)
        self.stats.add("adapter.w_beats")
        if beats_left - 1 == 0:
            self._w_routing.popleft()
        else:
            self._w_routing[0] = (converter, beats_left - 1)

    # ----------------------------------------------------------------- issue
    def _issue_word_requests(self) -> None:
        free_ports: Set[int] = {
            port
            for port in range(self.config.bus_words)
            if self.memory.request_queues[port].can_push()
        }
        if not free_ports:
            return
        requests = []
        order = range(len(self.converters))
        for offset in order:
            converter = self.converters[(self._issue_rr + offset) % len(self.converters)]
            converter.issue(free_ports, requests)
            if not free_ports:
                break
        self._issue_rr = (self._issue_rr + 1) % len(self.converters)
        for request in requests:
            self.memory.request_queues[request.port].push(request)
            self.stats.add("adapter.word_requests")

    # ------------------------------------------------------------------ emit
    def _emit_r_beat(self) -> None:
        if not self.port.r.can_push():
            return
        for offset in range(len(self.converters)):
            converter = self.converters[(self._emit_rr + offset) % len(self.converters)]
            beat = converter.pop_ready_r_beat()
            if beat is not None:
                self.port.r.push(beat)
                self.r_monitor.record_beat(beat.useful_bytes)
                self.stats.add("adapter.r_beats")
                self.stats.add("adapter.r_useful_bytes", beat.useful_bytes)
                self._emit_rr = (self._emit_rr + 1) % len(self.converters)
                return

    def _emit_b_beat(self) -> None:
        if not self.port.b.can_push():
            return
        for converter in self.converters:
            beat = converter.pop_ready_b_beat()
            if beat is not None:
                self.port.b.push(beat)
                self.stats.add("adapter.b_beats")
                return

    # ----------------------------------------------------------------- state
    def busy(self) -> bool:
        return any(converter.busy() for converter in self.converters) or bool(
            self._w_routing
        )

    def reset(self) -> None:
        for converter in self.converters:
            converter.reset()
        self._w_routing.clear()
        self.ctx.reset()
        self.r_monitor.reset()
        self.w_monitor.reset()
        self._issue_rr = 0
        self._emit_rr = 0
