"""AXI-Pack adapter top level (paper Fig. 2b).

The adapter is the single simulation component that owns the five burst
converters.  Per cycle it:

1. routes word responses from the banked memory back to the converter that
   issued them;
2. runs each converter's internal housekeeping (index extraction, planning);
3. demultiplexes at most one AR and one AW request onto the right converter;
4. routes at most one W data beat to the write converter expecting it;
5. lets the converters issue word accesses onto the free memory ports (the
   bank port mux: each port carries at most one access per cycle);
6. multiplexes at most one R beat and one B response per cycle back onto the
   AXI port — the R channel is a single physical bus, and this one-beat-per-
   cycle rule is what every utilization number in the paper is measured
   against.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Set, Tuple

from repro.axi.monitor import ChannelMonitor
from repro.axi.port import AxiPort
from repro.axi.transaction import BusRequest
from repro.axi.types import Resp
from repro.controller.base_converter import BaseAxi4Converter
from repro.controller.context import AdapterConfig, AdapterContext
from repro.controller.converter import Converter
from repro.controller.indirect_read import IndirectReadConverter
from repro.controller.indirect_write import IndirectWriteConverter
from repro.controller.strided_read import StridedReadConverter
from repro.controller.strided_write import StridedWriteConverter
from repro.errors import ProtocolError
from repro.mem.banked import BankedMemory
from repro.sim.component import IDLE, Component, WakeHint
from repro.sim.datapath import DatapathMode
from repro.sim.policy import DataPolicy
from repro.sim.stats import StatsRegistry

#: Prebound: compared per word response on the hottest routing path.
_RESP_OKAY = Resp.OKAY


class AxiPackAdapter(Component):
    """Translates AXI / AXI-Pack bursts into banked word accesses."""

    def __init__(
        self,
        name: str,
        port: AxiPort,
        memory: BankedMemory,
        config: Optional[AdapterConfig] = None,
        stats: Optional[StatsRegistry] = None,
        data_policy: DataPolicy = DataPolicy.FULL,
        datapath: Optional[DatapathMode] = None,
    ) -> None:
        super().__init__(name)
        self.port = port
        self.memory = memory
        self.data_policy = data_policy
        self.config = config or AdapterConfig(bus_bytes=port.bus_bytes)
        if self.config.bus_bytes != port.bus_bytes:
            raise ProtocolError(
                f"adapter bus width {self.config.bus_bytes}B does not match the "
                f"AXI port width {port.bus_bytes}B"
            )
        if self.config.word_bytes != memory.config.word_bytes:
            raise ProtocolError(
                "adapter word width must match the banked memory word width"
            )
        if self.config.bus_words > memory.config.num_ports:
            raise ProtocolError(
                f"adapter needs {self.config.bus_words} word ports but the "
                f"memory provides only {memory.config.num_ports}"
            )
        self.stats = stats if stats is not None else StatsRegistry()
        self.ctx = AdapterContext(
            self.config, self.stats, data_policy=data_policy,
            storage=memory.storage, datapath=datapath,
        )
        self.datapath = self.ctx.datapath
        self.r_monitor = ChannelMonitor("R", self.config.bus_bytes)
        self.w_monitor = ChannelMonitor("W", self.config.bus_bytes)

        self.base = BaseAxi4Converter(f"{name}.base", self.ctx)
        self.strided_read = StridedReadConverter(f"{name}.strided_read", self.ctx)
        self.strided_write = StridedWriteConverter(f"{name}.strided_write", self.ctx)
        self.indirect_read = IndirectReadConverter(f"{name}.indirect_read", self.ctx)
        self.indirect_write = IndirectWriteConverter(f"{name}.indirect_write", self.ctx)
        self.converters: List[Converter] = [
            self.base,
            self.strided_read,
            self.strided_write,
            self.indirect_read,
            self.indirect_write,
        ]
        #: converters that override Converter.step (per-cycle housekeeping)
        self._stepping: List[Converter] = [
            converter
            for converter in self.converters
            if type(converter).step is not Converter.step
        ]
        #: converters that can ever emit a B response (write-capable)
        self._write_converters: List[Converter] = [
            converter
            for converter in self.converters
            if type(converter).pop_ready_b_beat is not Converter.pop_ready_b_beat
        ]
        # Prebound per-converter scan tables, derived from the converters
        # themselves (see Converter.unissued_deques/r_beat_deques/
        # b_beat_deques) so they can never desynchronize from the converter
        # list.  Reading the deques' truth values directly is behaviourally
        # identical to the has_unissued()/busy()/pop_ready_*() scans (a pop
        # attempt with nothing ready is a side-effect-free None) but avoids
        # two method calls per converter per cycle.
        #: unissued-slot deques, in self.converters order
        self._conv_unissued: List[Tuple] = [
            converter.unissued_deques() for converter in self.converters
        ]
        #: R-emission table aligned to self.converters: None for converters
        #: that can never emit an R beat, else (pop_ready_r_beat, deques)
        self._conv_r_emitters: List[Optional[Tuple]] = [
            None
            if converter.r_beat_deques() is None
            else (converter.pop_ready_r_beat, converter.r_beat_deques())
            for converter in self.converters
        ]
        #: B-emission table: (pop_ready_b_beat, deques) per write converter.
        #: Fail fast at construction if a converter overrides
        #: pop_ready_b_beat without exposing its gating containers — a None
        #: here would otherwise only surface mid-simulation.
        self._conv_b_emitters: List[Tuple] = []
        for converter in self._write_converters:
            b_deques = converter.b_beat_deques()
            if b_deques is None:
                raise ProtocolError(
                    f"{converter.name} overrides pop_ready_b_beat but "
                    "b_beat_deques() returned None; write-capable converters "
                    "must expose their B-gating containers"
                )
            self._conv_b_emitters.append((converter.pop_ready_b_beat, b_deques))
        #: (prebound step, active-burst deque) for the stepping converters
        self._stepping_info: List[Tuple] = [
            (converter.step, converter._bursts) for converter in self._stepping
        ]
        #: write converters in AW-acceptance order still owed W beats
        self._w_routing: Deque[Tuple[Converter, int]] = deque()
        self._issue_rr = 0
        self._emit_rr = 0
        self._last_tick: Optional[int] = None
        self._outstanding_words = 0  #: word accesses issued, responses pending
        #: accepted read bursts whose final (last) R beat is still pending —
        #: gates the R emission scan on cycles with nothing to emit
        self._open_read_bursts = 0
        #: accepted write bursts whose B response is still pending
        self._open_write_bursts = 0
        #: whether any word port could accept a request at the end of the
        #: last tick's issue phase — the state every slept-through cycle
        #: observes (see the rotation replay in :meth:`tick`)
        self._ports_free_after_issue = True
        # Prebound hot-path containers and counters (see repro.sim.stats).
        self._request_queues = memory.request_queues
        self._response_queues = memory.response_queues
        self._ar = port.ar
        self._aw = port.aw
        self._w = port.w
        self._r = port.r
        self._b = port.b
        self._issue_buffer: List = []  #: reused per-cycle word-request list
        self._c_word_requests = self.stats.counter("adapter.word_requests")
        self._c_r_beats = self.stats.counter("adapter.r_beats")
        self._c_r_useful = self.stats.counter("adapter.r_useful_bytes")
        self._c_w_beats = self.stats.counter("adapter.w_beats")
        self._c_ar_accepted = self.stats.counter("adapter.ar_accepted")
        self._c_aw_accepted = self.stats.counter("adapter.aw_accepted")
        self._c_b_beats = self.stats.counter("adapter.b_beats")

    # ------------------------------------------------------------ conversion
    def _read_converter_for(self, request: BusRequest) -> Converter:
        if request.mode.is_packed:
            if request.mode.name == "STRIDED":
                return self.strided_read
            return self.indirect_read
        return self.base

    def _write_converter_for(self, request: BusRequest) -> Converter:
        if request.mode.is_packed:
            if request.mode.name == "STRIDED":
                return self.strided_write
            return self.indirect_write
        return self.base

    # ------------------------------------------------------------------ tick
    def tick(self, cycle: int) -> WakeHint:
        if self._last_tick is not None and cycle - self._last_tick > 1:
            # The adapter slept since ``_last_tick``.  In the tick-every-cycle
            # engine those cycles would each have rotated the issue
            # round-robin pointer — provided at least one word port was free
            # (``_issue_word_requests`` returns before the rotation when every
            # request queue is full).  The adapter sleeps only while none of
            # its subscribed queues see activity, and the adapter ticks
            # before the memory within a cycle, so every slept-through cycle
            # observes the request-queue occupancy as it stood at the end of
            # the last tick's issue phase (a pop that frees a port wakes the
            # adapter for the *next* cycle and is never visible to the
            # skipped tick of its own cycle).  Replaying from that captured
            # state reconstructs the seed behaviour exactly.
            if self._ports_free_after_issue:
                skipped = cycle - self._last_tick - 1
                self._issue_rr = (self._issue_rr + skipped) % len(self.converters)
        self._last_tick = cycle
        if self._outstanding_words:
            self._route_memory_responses()
        for step, bursts in self._stepping_info:
            # Only the indirect converters do per-cycle housekeeping (index
            # extraction, planning); the others' step is a no-op, and an
            # indirect converter with no active burst has nothing to do.
            if bursts:
                step(cycle)
        self._demux_requests()
        if self._w_routing:
            self._route_w_data()
        self._issue_word_requests()
        if self._open_read_bursts:
            self._emit_r_beat()
        if self._open_write_bursts:
            self._emit_b_beat()
        # Every state transition of the adapter and its converters is driven
        # by queue events it is subscribed to: bursts arrive on AR/AW/W,
        # word responses arrive on the memory response queues, back-pressure
        # clears when R/B or the memory request queues are popped, and any
        # progress the adapter itself made this cycle touched a queue (its
        # own pushes/pops), which re-wakes it next cycle automatically.  The
        # only per-cycle state, the issue rotation, is replayed on wake-up.
        return IDLE

    def wake_queues(self):
        return [*self.port.all_queues(), *self.memory.all_queues()]

    # -------------------------------------------------------------- responses
    def _route_memory_responses(self) -> None:
        outstanding = self._outstanding_words
        for queue in self._response_queues:
            storage = queue._storage
            if not storage:
                continue
            # Inlined DecoupledQueue.pop (one response per port per cycle).
            queue.total_popped += 1
            queue._count -= 1
            engine = queue._engine
            if engine is not None:
                engine._activity += 1
                if not queue._touched:
                    queue._touched = True
                    engine._touched_queues.append(queue)
            response = storage.popleft()
            pipe, state, slot = response.tag
            if response.resp is _RESP_OKAY:
                if response.is_write:
                    pipe.take_ack(state, slot)
                else:
                    pipe.take_response(state, slot, response.data)
            elif response.is_write:
                # Errored word access: the payload (if any) is invalid; the
                # beat is poisoned instead of filled.
                pipe.take_error_ack(state, slot, response.resp)
            else:
                pipe.take_error_response(state, slot, response.resp)
            outstanding -= 1
        self._outstanding_words = outstanding

    # ---------------------------------------------------------------- demux
    def _demux_requests(self) -> None:
        ar = self._ar
        if ar._storage:
            request = ar._storage[0]
            converter = self._read_converter_for(request)
            if converter.can_accept_read(request):
                converter.accept_read(ar.pop())
                self._open_read_bursts += 1
                self._c_ar_accepted.value += 1
        aw = self._aw
        if aw._storage:
            request = aw._storage[0]
            converter = self._write_converter_for(request)
            if converter.can_accept_write(request):
                converter.accept_write(aw.pop())
                self._w_routing.append((converter, request.num_beats))
                self._open_write_bursts += 1
                self._c_aw_accepted.value += 1

    def _route_w_data(self) -> None:
        if not self._w_routing or not self._w._storage:
            return
        converter, beats_left = self._w_routing[0]
        beat = self._w.pop()
        converter.take_w_beat(beat.data)
        self.w_monitor.record_beat(beat.useful_bytes)
        self._c_w_beats.value += 1
        if beats_left - 1 == 0:
            self._w_routing.popleft()
        else:
            self._w_routing[0] = (converter, beats_left - 1)

    # ----------------------------------------------------------------- issue
    def _issue_word_requests(self) -> None:
        queues = self._request_queues
        converters = self.converters
        conv_unissued = self._conv_unissued
        count = len(converters)
        # A converter has work iff one of its pipes' unissued deques is
        # non-empty; `dqs[0] or dqs[-1]` covers both the one- and two-pipe
        # tuples without a loop.
        for dqs in conv_unissued:
            if dqs[0] or dqs[-1]:
                break
        else:
            # Nothing to issue: the seed engine still rotated the round-robin
            # pointer whenever at least one word port was free.
            for queue in queues:
                if queue._count < queue.depth:
                    self._issue_rr = (self._issue_rr + 1) % count
                    self._ports_free_after_issue = True
                    return
            self._ports_free_after_issue = False
            return
        free_ports: Set[int] = set()
        for port, queue in enumerate(queues):
            if queue._count < queue.depth:
                free_ports.add(port)
        self._ports_free_after_issue = bool(free_ports)
        if not free_ports:
            return
        requests = self._issue_buffer
        rr = self._issue_rr
        for offset in range(count):
            index = rr + offset
            if index >= count:
                index -= count
            dqs = conv_unissued[index]
            # An idle converter has no slots to issue; skip the call.
            if dqs[0] or dqs[-1]:
                converters[index].issue(free_ports, requests)
                if not free_ports:
                    break
        self._issue_rr = (rr + 1) % count
        if requests:
            self._outstanding_words += len(requests)
            self._c_word_requests.value += len(requests)
            for request in requests:
                # Inlined DecoupledQueue.push; space is guaranteed because
                # ports leave free_ports the moment their queue fills.
                queue = queues[request.port]
                queue._incoming.append(request)
                queue._count += 1
                queue.total_pushed += 1
                engine = queue._engine
                if engine is not None:
                    engine._activity += 1
                    if not queue._touched:
                        queue._touched = True
                        engine._touched_queues.append(queue)
            del requests[:]
            # This tick's pushes may have filled the last free port; slept
            # cycles must observe the post-push occupancy.
            for queue in queues:
                if queue._count < queue.depth:
                    self._ports_free_after_issue = True
                    break
            else:
                self._ports_free_after_issue = False

    # ------------------------------------------------------------------ emit
    def _emit_r_beat(self) -> None:
        r = self._r
        if r._count >= r.depth:
            return
        emitters = self._conv_r_emitters
        count = len(emitters)
        rr = self._emit_rr
        for offset in range(count):
            index = rr + offset
            if index >= count:
                index -= count
            emitter = emitters[index]
            if emitter is None:
                # Write-only converter: can never produce an R beat.
                continue
            for beats in emitter[1]:
                if beats:
                    break
            else:
                continue
            beat = emitter[0]()
            if beat is not None:
                r.push(beat)
                useful = beat.useful_bytes
                self.r_monitor.record_beat(useful)
                self._c_r_beats.value += 1
                self._c_r_useful.value += useful
                self._emit_rr = (rr + 1) % count
                if beat.last:
                    self._open_read_bursts -= 1
                return

    def _emit_b_beat(self) -> None:
        b = self._b
        if b._count >= b.depth:
            return
        for pop_b, deques in self._conv_b_emitters:
            for container in deques:
                if container:
                    break
            else:
                continue
            beat = pop_b()
            if beat is not None:
                b.push(beat)
                self._open_write_bursts -= 1
                self._c_b_beats.value += 1
                return

    # ----------------------------------------------------------------- state
    def busy(self) -> bool:
        return any(converter.busy() for converter in self.converters) or bool(
            self._w_routing
        )

    def reset(self) -> None:
        for converter in self.converters:
            converter.reset()
        self._w_routing.clear()
        self.ctx.reset()
        self.r_monitor.reset()
        self.w_monitor.reset()
        self._issue_rr = 0
        self._emit_rr = 0
        self._last_tick = None
        self._outstanding_words = 0
        self._open_read_bursts = 0
        self._open_write_bursts = 0
        self._ports_free_after_issue = True
