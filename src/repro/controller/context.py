"""Shared configuration and context for the adapter and its converters."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.sim.datapath import DatapathMode, resolve_datapath_mode
from repro.sim.policy import DataPolicy
from repro.sim.stats import StatsRegistry
from repro.utils.bitutils import is_power_of_two
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class AdapterConfig:
    """Static parameters of the AXI-Pack adapter.

    Attributes
    ----------
    bus_bytes:
        Width of the AXI data buses (R and W) in bytes.
    word_bytes:
        Width of one memory bank word; this is the smallest element size the
        controller handles efficiently (paper: 32 bit).
    queue_depth:
        Depth of the per-word-lane decoupling queues; the request regulator
        never allows more than this many word accesses in flight per lane
        (paper default 4; raised to 32 for the §III-E sensitivity study).
    max_pipelined_bursts:
        How many accepted-but-unfinished bursts a converter may hold; lets
        back-to-back bursts keep the word lanes busy.
    """

    bus_bytes: int = 32
    word_bytes: int = 4
    queue_depth: int = 4
    max_pipelined_bursts: int = 4

    def __post_init__(self) -> None:
        if not is_power_of_two(self.bus_bytes) or not is_power_of_two(self.word_bytes):
            raise ConfigurationError("bus and word widths must be powers of two")
        if self.bus_bytes % self.word_bytes != 0:
            raise ConfigurationError(
                f"bus width {self.bus_bytes}B must be a multiple of the word "
                f"width {self.word_bytes}B"
            )
        check_positive("queue_depth", self.queue_depth)
        check_positive("max_pipelined_bursts", self.max_pipelined_bursts)

    @property
    def bus_words(self) -> int:
        """Number of word lanes (``n = D / W`` in the paper)."""
        return self.bus_bytes // self.word_bytes


class AdapterContext:
    """Mutable state shared between the adapter and its converters.

    The context tracks, per word lane, how many word accesses are currently
    in flight.  This is the *request regulator* of Fig. 2c: it prevents the
    decoupling queues from overflowing by refusing to issue more requests
    than the queues can absorb.

    It also carries the adapter-wide :class:`~repro.sim.policy.DataPolicy`
    and, under ``ELIDE``, a handle to the backing storage so the indirect
    converters can resolve index values functionally (address-forming data
    still determines timing) while all payload movement is skipped.

    ``datapath`` selects the converter pipes' representation (see
    :mod:`repro.sim.datapath`): ``BATCH`` plans with the struct-of-arrays
    numpy lane kernels, ``SCALAR`` with the seed per-object planners.  Both
    produce bit-identical cycles and statistics; ``None`` resolves the
    ``$REPRO_SIM_DATAPATH`` environment default.
    """

    def __init__(
        self,
        config: AdapterConfig,
        stats: Optional[StatsRegistry] = None,
        data_policy: DataPolicy = DataPolicy.FULL,
        storage=None,
        datapath: Optional[DatapathMode] = None,
    ) -> None:
        self.config = config
        self.stats = stats if stats is not None else StatsRegistry()
        self.data_policy = data_policy
        self.storage = storage
        self.datapath = resolve_datapath_mode(datapath)
        self._in_flight = [0] * config.bus_words

    # ----------------------------------------------------------- regulation
    def can_issue(self, port: int) -> bool:
        """True if the regulator allows another word access on ``port``."""
        return self._in_flight[port] < self.config.queue_depth

    def note_issue(self, port: int) -> None:
        """Record that a word access was issued on ``port``."""
        self._in_flight[port] += 1

    def note_retire(self, port: int) -> None:
        """Record that a word access on ``port`` completed."""
        if self._in_flight[port] <= 0:
            raise ConfigurationError(
                f"request regulator underflow on port {port}"
            )
        self._in_flight[port] -= 1

    def in_flight(self, port: int) -> int:
        """Number of word accesses currently in flight on ``port``."""
        return self._in_flight[port]

    def reset(self) -> None:
        """Clear all in-flight counters."""
        self._in_flight = [0] * self.config.bus_words
