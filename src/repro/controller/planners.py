"""Beat planners: turn a burst request into per-beat word-access plans.

Planners are pure functions (generators) so they can be unit tested in
isolation from the cycle-level machinery.  Each converter pairs one planner
with the generic read/write pipe from :mod:`repro.controller.pipes`.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

from repro.axi.transaction import BusRequest
from repro.controller.plans import BeatPlan, WordSlot
from repro.errors import ProtocolError
from repro.utils.math import ceil_div


def _element_word_slots(
    element_addr: int,
    elem_bytes: int,
    word_bytes: int,
    bus_words: int,
    payload_offset: int,
    lane_base: int,
) -> List[WordSlot]:
    """Word slots covering one element starting at ``element_addr``.

    Elements are at least one word wide (the controller's efficiency
    granularity), so each covers ``elem_bytes // word_bytes`` full words.
    ``lane_base`` fixes which word lane the element's first word uses; in the
    RTL the packed position of the element inside the beat determines this.
    """
    if elem_bytes % word_bytes != 0:
        raise ProtocolError(
            f"element size {elem_bytes}B must be a multiple of the "
            f"{word_bytes}B bank word for packed handling"
        )
    if element_addr % word_bytes != 0:
        raise ProtocolError(
            f"packed element address {element_addr:#x} is not word aligned"
        )
    words_per_elem = elem_bytes // word_bytes
    slots = []
    for word in range(words_per_elem):
        slots.append(
            WordSlot(
                port=(lane_base + word) % bus_words,
                word_addr=(element_addr + word * word_bytes) // word_bytes,
                offset=payload_offset + word * word_bytes,
                nbytes=word_bytes,
            )
        )
    return slots


def plan_strided_beats(
    request: BusRequest, word_bytes: int, bus_words: int, burst_seq: int
) -> Iterator[BeatPlan]:
    """Plan the beats of an AXI-Pack strided burst.

    Beat *b* packs elements ``b*epb .. (b+1)*epb - 1`` (``epb`` elements per
    beat); element *e* lives at ``addr + e * stride * elem_bytes``.
    """
    elem_bytes = request.elem_bytes
    stride_bytes = request.pack.stride_elems * elem_bytes
    elems_per_beat = request.bus_bytes // elem_bytes
    words_per_elem = elem_bytes // word_bytes
    for beat in range(request.num_beats):
        first, last_excl = request.beat_elements(beat)
        slots: List[WordSlot] = []
        for local, elem in enumerate(range(first, last_excl)):
            slots.extend(
                _element_word_slots(
                    element_addr=request.addr + elem * stride_bytes,
                    elem_bytes=elem_bytes,
                    word_bytes=word_bytes,
                    bus_words=bus_words,
                    payload_offset=local * elem_bytes,
                    lane_base=local * words_per_elem,
                )
            )
        yield BeatPlan(
            burst_seq=burst_seq,
            beat_index=beat,
            txn_id=request.txn_id,
            useful_bytes=(last_excl - first) * elem_bytes,
            last=beat == request.num_beats - 1,
            slots=slots,
        )


def plan_indexed_beat(
    request: BusRequest,
    beat: int,
    element_offsets: Sequence[int],
    word_bytes: int,
    bus_words: int,
    burst_seq: int,
) -> BeatPlan:
    """Plan one beat of an indirect burst once its indices are known.

    ``element_offsets`` are the resolved index values for the beat's
    elements, in stream order; the element address is
    ``addr + index * elem_bytes`` (the "shift and add" of Fig. 2d).
    """
    elem_bytes = request.elem_bytes
    words_per_elem = elem_bytes // word_bytes
    slots: List[WordSlot] = []
    for local, index in enumerate(element_offsets):
        slots.extend(
            _element_word_slots(
                element_addr=request.addr + int(index) * elem_bytes,
                elem_bytes=elem_bytes,
                word_bytes=word_bytes,
                bus_words=bus_words,
                payload_offset=local * elem_bytes,
                lane_base=local * words_per_elem,
            )
        )
    return BeatPlan(
        burst_seq=burst_seq,
        beat_index=beat,
        txn_id=request.txn_id,
        useful_bytes=len(element_offsets) * elem_bytes,
        last=beat == request.num_beats - 1,
        slots=slots,
    )


def plan_contiguous_beats(
    request: BusRequest, word_bytes: int, bus_words: int, burst_seq: int
) -> Iterator[BeatPlan]:
    """Plan the beats of a plain full-width AXI4 INCR burst."""
    for beat in range(request.num_beats):
        start, end = request.beat_byte_range(beat)
        slots: List[WordSlot] = []
        offset = 0
        addr = start
        while addr < end:
            word_addr = addr // word_bytes
            byte_shift = addr - word_addr * word_bytes
            nbytes = min(word_bytes - byte_shift, end - addr)
            slots.append(
                WordSlot(
                    port=word_addr % bus_words,
                    word_addr=word_addr,
                    offset=offset,
                    nbytes=nbytes,
                    byte_shift=byte_shift,
                )
            )
            offset += nbytes
            addr += nbytes
        yield BeatPlan(
            burst_seq=burst_seq,
            beat_index=beat,
            txn_id=request.txn_id,
            useful_bytes=end - start,
            last=beat == request.num_beats - 1,
            slots=slots,
        )


def plan_narrow_beats(
    request: BusRequest, word_bytes: int, bus_words: int, burst_seq: int
) -> Iterator[BeatPlan]:
    """Plan the beats of a narrow (element-per-beat) plain AXI4 burst.

    This is the BASE system's strided/indexed fallback: every beat carries a
    single element, so the plan has one element's worth of word accesses per
    beat no matter how wide the bus is.
    """
    elem_bytes = request.elem_bytes
    for beat in range(request.num_beats):
        element_addr = request.addr + beat * elem_bytes
        slots: List[WordSlot] = []
        offset = 0
        addr = element_addr
        end = element_addr + elem_bytes
        while addr < end:
            word_addr = addr // word_bytes
            byte_shift = addr - word_addr * word_bytes
            nbytes = min(word_bytes - byte_shift, end - addr)
            slots.append(
                WordSlot(
                    port=word_addr % bus_words,
                    word_addr=word_addr,
                    offset=offset,
                    nbytes=nbytes,
                    byte_shift=byte_shift,
                )
            )
            offset += nbytes
            addr += nbytes
        yield BeatPlan(
            burst_seq=burst_seq,
            beat_index=beat,
            txn_id=request.txn_id,
            useful_bytes=elem_bytes,
            last=beat == request.num_beats - 1,
            slots=slots,
        )


def plan_index_fetch_beats(
    index_base: int,
    num_indices: int,
    index_bytes: int,
    bus_bytes: int,
    word_bytes: int,
    bus_words: int,
    txn_id: int,
    burst_seq: int,
) -> Iterator[BeatPlan]:
    """Plan the contiguous word fetches of an indirect burst's index stage.

    The index stage reads the index array one bus-wide line at a time (the
    paper fetches "indices as whole bus lines"); each line is ``bus_words``
    consecutive word accesses.  The plans produced here never reach the R
    channel — they feed the offsets-extraction logic of the converter.
    """
    total_bytes = num_indices * index_bytes
    num_lines = ceil_div(index_base % bus_bytes + total_bytes, bus_bytes)
    line_base = (index_base // bus_bytes) * bus_bytes
    for line in range(num_lines):
        start = max(index_base, line_base + line * bus_bytes)
        end = min(index_base + total_bytes, line_base + (line + 1) * bus_bytes)
        slots: List[WordSlot] = []
        offset = 0
        addr = start
        while addr < end:
            word_addr = addr // word_bytes
            byte_shift = addr - word_addr * word_bytes
            nbytes = min(word_bytes - byte_shift, end - addr)
            slots.append(
                WordSlot(
                    port=word_addr % bus_words,
                    word_addr=word_addr,
                    offset=offset,
                    nbytes=nbytes,
                    byte_shift=byte_shift,
                )
            )
            offset += nbytes
            addr += nbytes
        yield BeatPlan(
            burst_seq=burst_seq,
            beat_index=line,
            txn_id=txn_id,
            useful_bytes=end - start,
            last=line == num_lines - 1,
            slots=slots,
        )
