"""Stand-alone controller testbench with an ideal requestor.

This is the setup of the paper's parameter-sensitivity study (§III-E): the
AXI-Pack controller and banked memory driven by an *ideal requestor* that
issues a stream of burst requests back to back and consumes one R beat per
cycle.  The same harness backs most controller unit/integration tests, so
everything measured in Fig. 5 is measured with the same code path the tests
verify.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

from repro.axi.monitor import ChannelMonitor
from repro.axi.port import AxiPort, AxiPortConfig
from repro.axi.signals import WBeat
from repro.axi.transaction import BusRequest
from repro.controller.adapter import AxiPackAdapter
from repro.controller.context import AdapterConfig
from repro.errors import SimulationError
from repro.mem.banked import BankedMemory, BankedMemoryConfig
from repro.mem.storage import MemoryStorage
from repro.sim.component import IDLE, Component, WakeHint
from repro.sim.datapath import DatapathMode
from repro.sim.engine import Engine
from repro.sim.policy import DataPolicy
from repro.sim.stats import StatsRegistry


@dataclass
class RequestOutcome:
    """What the requestor observed for one burst."""

    request: BusRequest
    issue_cycle: int = -1
    complete_cycle: int = -1
    beats_received: int = 0
    payload: bytes = b""

    @property
    def latency(self) -> int:
        """Cycles from issue to completion."""
        return self.complete_cycle - self.issue_cycle


class IdealRequestor(Component):
    """Issues a fixed list of bursts as fast as the port allows.

    Reads: one AR per cycle (as long as the outstanding limit allows), one R
    beat consumed per cycle.  Writes: one AW per cycle, then one W beat per
    cycle with the payload provided in ``write_payloads``.
    """

    def __init__(
        self,
        name: str,
        port: AxiPort,
        requests: Sequence[BusRequest],
        write_payloads: Optional[Dict[int, bytes]] = None,
        max_outstanding: int = 8,
    ) -> None:
        super().__init__(name)
        self.port = port
        self.pending: Deque[BusRequest] = deque(requests)
        self.write_payloads = write_payloads or {}
        self.max_outstanding = max_outstanding
        self.outcomes: Dict[int, RequestOutcome] = {
            request.txn_id: RequestOutcome(request) for request in requests
        }
        self._outstanding_reads: Deque[int] = deque()
        self._outstanding_writes: Deque[int] = deque()
        self._w_backlog: Deque[tuple] = deque()  # (txn_id, beat_index)
        self._read_payload_chunks: Dict[int, List[bytes]] = {}
        self.r_monitor = ChannelMonitor("R", port.bus_bytes)

    # ------------------------------------------------------------------ tick
    def tick(self, cycle: int) -> WakeHint:
        self._consume_r(cycle)
        self._consume_b(cycle)
        self._send_w()
        self._issue(cycle)
        # Everything the requestor does is gated on the port queues (its own
        # pushes included), so queue subscriptions cover every wake-up.
        return IDLE

    def wake_queues(self):
        return self.port.all_queues()

    def _issue(self, cycle: int) -> None:
        if not self.pending:
            return
        outstanding = len(self._outstanding_reads) + len(self._outstanding_writes)
        if outstanding >= self.max_outstanding:
            return
        request = self.pending[0]
        if request.is_write:
            if not self.port.aw.can_push():
                return
            self.port.aw.push(request)
            self._outstanding_writes.append(request.txn_id)
            for beat in range(request.num_beats):
                self._w_backlog.append((request, beat))
        else:
            if not self.port.ar.can_push():
                return
            self.port.ar.push(request)
            self._outstanding_reads.append(request.txn_id)
            self._read_payload_chunks[request.txn_id] = []
        self.pending.popleft()
        self.outcomes[request.txn_id].issue_cycle = cycle

    def _send_w(self) -> None:
        if not self._w_backlog or not self.port.w.can_push():
            return
        request, beat = self._w_backlog[0]
        payload = self.write_payloads.get(request.txn_id)
        if payload is None:
            raise SimulationError(
                f"no write payload registered for transaction {request.txn_id}"
            )
        start = beat * request.bus_bytes
        chunk = payload[start : start + request.bus_bytes]
        useful = request.beat_useful_bytes(beat)
        self.port.w.push(
            WBeat(data=bytes(chunk), useful_bytes=useful, last=beat == request.num_beats - 1)
        )
        self._w_backlog.popleft()

    def _consume_r(self, cycle: int) -> None:
        if not self.port.r.can_pop():
            return
        beat = self.port.r.pop()
        self.r_monitor.record_beat(beat.useful_bytes)
        outcome = self.outcomes[beat.txn_id]
        outcome.beats_received += 1
        self._read_payload_chunks[beat.txn_id].append(bytes(beat.data))
        if beat.last:
            outcome.complete_cycle = cycle
            outcome.payload = b"".join(self._read_payload_chunks.pop(beat.txn_id))
            if self._outstanding_reads and self._outstanding_reads[0] == beat.txn_id:
                self._outstanding_reads.popleft()
            else:
                self._outstanding_reads.remove(beat.txn_id)

    def _consume_b(self, cycle: int) -> None:
        if not self.port.b.can_pop():
            return
        beat = self.port.b.pop()
        outcome = self.outcomes[beat.txn_id]
        outcome.complete_cycle = cycle
        if self._outstanding_writes and self._outstanding_writes[0] == beat.txn_id:
            self._outstanding_writes.popleft()
        else:
            self._outstanding_writes.remove(beat.txn_id)

    # ----------------------------------------------------------------- state
    def busy(self) -> bool:
        return bool(
            self.pending
            or self._outstanding_reads
            or self._outstanding_writes
            or self._w_backlog
        )

    def done(self) -> bool:
        """True once every request has been issued and completed."""
        return not self.busy()


@dataclass
class TestbenchResult:
    """Aggregate measurements of one testbench run."""

    cycles: int
    r_beats: int
    r_useful_bytes: int
    r_utilization: float
    bank_conflicts: float
    outcomes: Dict[int, RequestOutcome] = field(default_factory=dict)


class ControllerTestbench:
    """Wires storage, banked memory, adapter and an ideal requestor together."""

    def __init__(
        self,
        adapter_config: Optional[AdapterConfig] = None,
        memory_config: Optional[BankedMemoryConfig] = None,
        memory_bytes: int = 1 << 22,
        port_config: Optional[AxiPortConfig] = None,
        data_policy: DataPolicy = DataPolicy.FULL,
        datapath: Optional[DatapathMode] = None,
    ) -> None:
        self.adapter_config = adapter_config or AdapterConfig()
        self.memory_config = memory_config or BankedMemoryConfig(
            num_ports=self.adapter_config.bus_words
        )
        self.storage = MemoryStorage(memory_bytes)
        self.stats = StatsRegistry()
        self.data_policy = data_policy
        self.port = AxiPort("tb", self.adapter_config.bus_bytes, port_config)
        self.memory = BankedMemory(
            "mem", self.memory_config, self.storage, self.stats,
            data_policy=data_policy,
        )
        self.adapter = AxiPackAdapter(
            "adapter", self.port, self.memory, self.adapter_config, self.stats,
            data_policy=data_policy, datapath=datapath,
        )

    def run(
        self,
        requests: Sequence[BusRequest],
        write_payloads: Optional[Dict[int, bytes]] = None,
        max_outstanding: int = 8,
        max_cycles: int = 5_000_000,
        event_driven: Optional[bool] = None,
    ) -> TestbenchResult:
        """Drive the given requests to completion and return measurements.

        ``event_driven`` selects the engine mode (None = the
        ``REPRO_SIM_ENGINE`` environment default); both modes produce
        identical measurements.
        """
        engine = Engine(event_driven=event_driven)
        requestor = IdealRequestor(
            "requestor", self.port, requests, write_payloads, max_outstanding
        )
        engine.add_component(requestor)
        engine.add_component(self.adapter)
        engine.add_component(self.memory)
        for queue in self.port.all_queues():
            engine.add_queue(queue)
        for queue in self.memory.all_queues():
            engine.add_queue(queue)
        cycles = engine.run_until(requestor.done, max_cycles=max_cycles)
        # Drain a few extra cycles so late statistics settle.
        return TestbenchResult(
            cycles=cycles,
            r_beats=requestor.r_monitor.beats,
            r_useful_bytes=requestor.r_monitor.useful_bytes,
            r_utilization=requestor.r_monitor.utilization(cycles),
            bank_conflicts=self.stats.get("mem.bank_conflicts"),
            outcomes=requestor.outcomes,
        )
