"""Struct-of-arrays lane buffers and numpy plan kernels (batch datapath).

This is the :data:`~repro.sim.datapath.DatapathMode.BATCH` implementation of
the converter pipes.  Where the scalar datapath builds one
:class:`~repro.controller.plans.BeatPlan` object per beat holding one
:class:`~repro.controller.plans.WordSlot` object per word access, the batch
datapath plans a whole burst (or, for the indirect element stage, a whole
beat) in one vectorized numpy kernel and stores the result as a
:class:`SlotBatch`: flat parallel arrays of ports, word addresses, payload
offsets, byte counts and shifts, converted once to plain Python lists so the
per-cycle issue/response loops index integers instead of dereferencing
objects.

Equivalence contract
--------------------
The slot sequence of a :class:`SlotBatch` is *defined* to be exactly the
concatenated ``plan.slots`` of the scalar planners in
:mod:`repro.controller.planners`, in beat order — same ports, same word
addresses, same payload offsets, same issue order, same regulator
interaction.  ``tests/test_datapath_parity.py`` pins this property directly
(kernel vs generator output) and end to end (identical cycle counts and
statistics through the full testbench and SoC grids).

Payload movement under ``DataPolicy.FULL`` intentionally stays scalar: the
per-beat byte scatter/gather of :meth:`LaneReadPipe.take_response` and
:meth:`LaneWritePipe.issue` is the same slice-assignment the scalar pipes
perform, just indexed through the flat arrays.  Only the *geometry* work
(planning, issue bookkeeping, completion tracking) is batched.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.axi.signals import BBeat, RBeat
from repro.axi.transaction import BusRequest
from repro.axi.types import Resp
from repro.controller.context import AdapterConfig
from repro.controller.pipes import _ActiveWriteBurst
from repro.controller.regulator import RequestRegulator
from repro.errors import ProtocolError, SimulationError
from repro.mem.words import WordRequest
from repro.sim.policy import DataPolicy
from repro.sim.stats import StatsRegistry

#: Prebound default: checked once per word response on the hot path.
_RESP_OKAY = Resp.OKAY


class SlotBatch:
    """All word accesses of one planning unit, as parallel flat arrays.

    A batch covers a whole burst (contiguous/narrow/strided planning, index
    fetches) or a single beat (indirect element planning, where indices
    arrive incrementally).  The flat arrays are plain Python lists of ints
    (converted from the numpy kernel output once) because the per-cycle
    loops index single elements, which is faster on lists than on arrays.
    """

    __slots__ = (
        "ports",
        "words",
        "offsets",
        "nbytes",
        "shifts",
        "beat_of",
        "beat_start",
        "beat_useful",
        "beat_last",
        "beat_remaining",
        "beat_acks",
        "beat_data",
        "beat_payload",
        "beat_resp",
        "num_beats",
        "num_slots",
        "all_full_words",
    )

    def __init__(
        self,
        ports: List[int],
        words: List[int],
        offsets: List[int],
        nbytes: List[int],
        shifts: List[int],
        beat_of: List[int],
        beat_start: List[int],
        beat_useful: List[int],
        beat_last: List[bool],
        all_full_words: bool,
    ) -> None:
        self.ports = ports
        self.words = words
        self.offsets = offsets
        self.nbytes = nbytes
        self.shifts = shifts
        self.beat_of = beat_of
        self.beat_start = beat_start  #: slot-index prefix, len num_beats + 1
        self.beat_useful = beat_useful
        self.beat_last = beat_last
        self.num_beats = len(beat_useful)
        self.num_slots = len(ports)
        #: per-beat outstanding word count (reads) / unissued+unacked (writes)
        self.beat_remaining = [
            b - a for a, b in zip(beat_start, beat_start[1:])
        ]
        self.beat_acks: Optional[List[int]] = None  #: write pipes only
        self.beat_data: Optional[List[bytearray]] = None  #: FULL reads only
        self.beat_payload: Optional[List[Optional[bytes]]] = None  #: writes
        #: per-beat worst response — None until a beat is first poisoned, so
        #: the fault-free hot path pays one attribute check, no list
        self.beat_resp: Optional[List[Resp]] = None
        self.all_full_words = all_full_words

    def poison_beat(self, beat: int, resp: Resp) -> None:
        """Merge an error response into one beat (lazy table materialize)."""
        table = self.beat_resp
        if table is None:
            table = [_RESP_OKAY] * self.num_beats
            self.beat_resp = table
        if resp.value > table[beat].value:
            table[beat] = resp

    def alloc_read_buffers(self) -> None:
        """Allocate per-beat payload assembly buffers (FULL policy reads)."""
        self.beat_data = [bytearray(useful) for useful in self.beat_useful]

    def init_write_state(self) -> None:
        """Switch the per-beat counters to write-pipe semantics."""
        # For writes ``beat_remaining`` counts unissued slots and
        # ``beat_acks`` counts issued-but-unacknowledged ones; a beat is
        # complete when both reach zero (mirrors WriteBeatState.complete).
        self.beat_acks = [0] * self.num_beats
        self.beat_payload = [None] * self.num_beats


# --------------------------------------------------------------------------
# numpy plan kernels
#
# Each kernel is the vectorized twin of one generator planner in
# repro.controller.planners and produces the identical flat slot sequence.
# --------------------------------------------------------------------------


def _batch_from_ranges(
    starts: List[int],
    ends: List[int],
    word_bytes: int,
    bus_words: int,
    beat_useful: List[int],
    beat_last: List[bool],
) -> SlotBatch:
    """Split per-beat byte ranges at word boundaries into a slot batch.

    ``starts[k] .. ends[k]`` is beat *k*'s absolute byte range; payload
    offsets restart at zero for every beat, exactly like the scalar
    contiguous/narrow/index-fetch planners.  Word-aligned ranges (the
    overwhelmingly common case) take a fast path built entirely from
    C-level ``range``/``extend`` operations; misaligned edges fall back to
    the generic splitter.
    """
    ports: List[int] = []
    words: List[int] = []
    offsets: List[int] = []
    nbytes: List[int] = []
    shifts: List[int] = []
    beat_of: List[int] = []
    n_beats = len(beat_useful)
    beat_start = [0] * (n_beats + 1)
    aligned = True
    for k in range(n_beats):
        start = starts[k]
        end = ends[k]
        if start % word_bytes == 0 and end % word_bytes == 0:
            count = (end - start) // word_bytes
            first = start // word_bytes
            word_range = range(first, first + count)
            words.extend(word_range)
            ports.extend(w % bus_words for w in word_range)
            offsets.extend(range(0, count * word_bytes, word_bytes))
            nbytes.extend([word_bytes] * count)
            shifts.extend([0] * count)
            beat_of.extend([k] * count)
        else:
            aligned = False
            addr = start
            while addr < end:
                word, shift = divmod(addr, word_bytes)
                seg = word_bytes - shift
                left = end - addr
                if seg > left:
                    seg = left
                ports.append(word % bus_words)
                words.append(word)
                offsets.append(addr - start)
                nbytes.append(seg)
                shifts.append(shift)
                beat_of.append(k)
                addr += seg
        beat_start[k + 1] = len(words)
    return SlotBatch(
        ports=ports,
        words=words,
        offsets=offsets,
        nbytes=nbytes,
        shifts=shifts,
        beat_of=beat_of,
        beat_start=beat_start,
        beat_useful=beat_useful,
        beat_last=beat_last,
        all_full_words=aligned,
    )


def batch_contiguous(
    request: BusRequest, word_bytes: int, bus_words: int
) -> SlotBatch:
    """Batch twin of :func:`~repro.controller.planners.plan_contiguous_beats`."""
    num_beats = request.num_beats
    addr = request.addr
    bus_bytes = request.bus_bytes
    payload_end = addr + request.payload_bytes
    line0 = (addr // bus_bytes) * bus_bytes
    starts = []
    ends = []
    line = line0
    for _ in range(num_beats):
        starts.append(addr if addr > line else line)
        line += bus_bytes
        ends.append(payload_end if payload_end < line else line)
    beat_useful = [e - s for s, e in zip(starts, ends)]
    beat_last = [False] * num_beats
    beat_last[-1] = True
    return _batch_from_ranges(starts, ends, word_bytes, bus_words,
                              beat_useful, beat_last)


def batch_narrow(
    request: BusRequest, word_bytes: int, bus_words: int
) -> SlotBatch:
    """Batch twin of :func:`~repro.controller.planners.plan_narrow_beats`."""
    num_beats = request.num_beats
    elem_bytes = request.elem_bytes
    addr = request.addr
    beat_last = [False] * num_beats
    beat_last[-1] = True
    if elem_bytes == word_bytes and addr % word_bytes == 0:
        # One full-word slot per beat: every array is a C-level construction.
        first = addr // word_bytes
        word_range = range(first, first + num_beats)
        return SlotBatch(
            ports=[w % bus_words for w in word_range],
            words=list(word_range),
            offsets=[0] * num_beats,
            nbytes=[word_bytes] * num_beats,
            shifts=[0] * num_beats,
            beat_of=list(range(num_beats)),
            beat_start=list(range(num_beats + 1)),
            beat_useful=[elem_bytes] * num_beats,
            beat_last=beat_last,
            all_full_words=True,
        )
    starts = [addr + k * elem_bytes for k in range(num_beats)]
    ends = [s + elem_bytes for s in starts]
    return _batch_from_ranges(starts, ends, word_bytes, bus_words,
                              [elem_bytes] * num_beats, beat_last)


def batch_index_fetch(
    request: BusRequest,
    bus_bytes: int,
    word_bytes: int,
    bus_words: int,
) -> SlotBatch:
    """Batch twin of :func:`~repro.controller.planners.plan_index_fetch_beats`."""
    index_base = request.index_base
    total_bytes = request.num_elements * request.pack.index_bytes
    num_lines = -(-(index_base % bus_bytes + total_bytes) // bus_bytes)
    line_base = (index_base // bus_bytes) * bus_bytes
    total_end = index_base + total_bytes
    starts = []
    ends = []
    line = line_base
    for _ in range(num_lines):
        starts.append(index_base if index_base > line else line)
        line += bus_bytes
        ends.append(total_end if total_end < line else line)
    beat_last = [False] * num_lines
    beat_last[-1] = True
    return _batch_from_ranges(starts, ends, word_bytes, bus_words,
                              [e - s for s, e in zip(starts, ends)], beat_last)


def _packed_element_batch(
    element_addrs: np.ndarray,
    locals_: np.ndarray,
    beat_of_elem: np.ndarray,
    beat_useful: List[int],
    beat_last: List[bool],
    elem_bytes: int,
    word_bytes: int,
    bus_words: int,
) -> SlotBatch:
    """Expand word-aligned packed elements into a slot batch.

    Mirrors :func:`~repro.controller.planners._element_word_slots` over every
    element at once: element ``e`` contributes ``elem_bytes // word_bytes``
    full-word slots on lanes ``(local(e) * wpe + w) % bus_words``.
    """
    if elem_bytes % word_bytes != 0:
        raise ProtocolError(
            f"element size {elem_bytes}B must be a multiple of the "
            f"{word_bytes}B bank word for packed handling"
        )
    misaligned = element_addrs % word_bytes
    if misaligned.any():
        bad = int(element_addrs[np.argmax(misaligned != 0)])
        raise ProtocolError(
            f"packed element address {bad:#x} is not word aligned"
        )
    wpe = elem_bytes // word_bytes
    word_steps = np.arange(wpe, dtype=np.int64)
    words = (element_addrs[:, None] + word_steps * word_bytes) // word_bytes
    ports = (locals_[:, None] * wpe + word_steps) % bus_words
    offsets = locals_[:, None] * elem_bytes + word_steps * word_bytes
    n_beats = len(beat_useful)
    counts = np.bincount(beat_of_elem, minlength=n_beats) * wpe
    beat_start = [0] * (n_beats + 1)
    running = 0
    for k, count in enumerate(counts.tolist()):
        running += count
        beat_start[k + 1] = running
    total = element_addrs.size * wpe
    return SlotBatch(
        ports=ports.ravel().tolist(),
        words=words.ravel().tolist(),
        offsets=offsets.ravel().tolist(),
        nbytes=[word_bytes] * total,
        shifts=[0] * total,
        beat_of=np.repeat(beat_of_elem, wpe).tolist(),
        beat_start=beat_start,
        beat_useful=beat_useful,
        beat_last=beat_last,
        all_full_words=True,
    )


def batch_strided(
    request: BusRequest, word_bytes: int, bus_words: int
) -> SlotBatch:
    """Batch twin of :func:`~repro.controller.planners.plan_strided_beats`."""
    elem_bytes = request.elem_bytes
    stride_bytes = request.pack.stride_elems * elem_bytes
    num_elements = request.num_elements
    elems_per_beat = request.bus_bytes // elem_bytes
    num_beats = request.num_beats
    beat_useful = [
        (min(num_elements, (k + 1) * elems_per_beat) - k * elems_per_beat)
        * elem_bytes
        for k in range(num_beats)
    ]
    beat_last = [False] * num_beats
    beat_last[-1] = True
    addr = request.addr
    if (
        elem_bytes == word_bytes
        and addr % word_bytes == 0
        and stride_bytes % word_bytes == 0
    ):
        # Word-sized aligned elements: one slot per element, cyclic lane and
        # offset patterns, everything built from C-level list operations.
        word_stride = stride_bytes // word_bytes
        first = addr // word_bytes
        if word_stride:
            words = list(
                range(first, first + num_elements * word_stride, word_stride)
            )
        else:
            words = [first] * num_elements
        lane_pattern = [local % bus_words for local in range(elems_per_beat)]
        offset_pattern = list(range(0, elems_per_beat * elem_bytes, elem_bytes))
        beat_of: List[int] = []
        for k in range(num_beats):
            beat_of.extend([k] * (beat_useful[k] // elem_bytes))
        return SlotBatch(
            ports=(lane_pattern * num_beats)[:num_elements],
            words=words,
            offsets=(offset_pattern * num_beats)[:num_elements],
            nbytes=[word_bytes] * num_elements,
            shifts=[0] * num_elements,
            beat_of=beat_of,
            beat_start=[
                min(num_elements, k * elems_per_beat)
                for k in range(num_beats + 1)
            ],
            beat_useful=beat_useful,
            beat_last=beat_last,
            all_full_words=True,
        )
    elems = np.arange(num_elements, dtype=np.int64)
    return _packed_element_batch(
        element_addrs=addr + elems * stride_bytes,
        locals_=elems % elems_per_beat,
        beat_of_elem=elems // elems_per_beat,
        beat_useful=beat_useful,
        beat_last=beat_last,
        elem_bytes=elem_bytes,
        word_bytes=word_bytes,
        bus_words=bus_words,
    )


def batch_indexed_beat(
    request: BusRequest,
    beat: int,
    element_offsets: Sequence[int],
    word_bytes: int,
    bus_words: int,
) -> SlotBatch:
    """Vectorized twin of :func:`~repro.controller.planners.plan_indexed_beat`.

    One single-beat batch per call, because the indirect converters only
    learn a beat's indices once its index-line fetches complete.  The common
    word-sized-element case takes a scalar fast path: for a handful of
    elements plain list arithmetic beats the numpy call overhead.
    """
    elem_bytes = request.elem_bytes
    count = len(element_offsets)
    useful = [count * elem_bytes]
    last = [beat == request.num_beats - 1]
    if elem_bytes == word_bytes:
        addr = request.addr
        words = []
        bad = -1
        for index in element_offsets:
            byte_addr = addr + index * elem_bytes
            word, rem = divmod(byte_addr, word_bytes)
            if rem:
                bad = byte_addr
                break
            words.append(word)
        if bad < 0:
            return SlotBatch(
                ports=[local % bus_words for local in range(count)],
                words=words,
                offsets=list(range(0, count * elem_bytes, elem_bytes)),
                nbytes=[word_bytes] * count,
                shifts=[0] * count,
                beat_of=[0] * count,
                beat_start=[0, count],
                beat_useful=useful,
                beat_last=last,
                all_full_words=True,
            )
        raise ProtocolError(
            f"packed element address {bad:#x} is not word aligned"
        )
    offsets = np.asarray(element_offsets, dtype=np.int64)
    return _packed_element_batch(
        element_addrs=request.addr + offsets * elem_bytes,
        locals_=np.arange(count, dtype=np.int64),
        beat_of_elem=np.zeros(count, dtype=np.int64),
        beat_useful=useful,
        beat_last=last,
        elem_bytes=elem_bytes,
        word_bytes=word_bytes,
        bus_words=bus_words,
    )


# --------------------------------------------------------------------------
# lane pipes
# --------------------------------------------------------------------------


class LaneReadPipe:
    """Batch-datapath twin of :class:`~repro.controller.pipes.ReadPipe`.

    Issue, regulation, completion and emission follow the scalar pipe's
    discipline slot for slot; the difference is purely representational
    (flat arrays + integer cursors instead of per-object dispatch).
    """

    __slots__ = ("name", "config", "stats", "_elide", "regulator",
                 "_beats", "_unissued", "_accepted_bursts")

    def __init__(
        self,
        name: str,
        config: AdapterConfig,
        stats: StatsRegistry,
        data_policy: DataPolicy = DataPolicy.FULL,
    ) -> None:
        self.name = name
        self.config = config
        self.stats = stats
        self._elide = data_policy.elides_data
        self.regulator = RequestRegulator(config.bus_words, config.queue_depth)
        #: (batch, beat index, request) in plan order, oldest first
        self._beats: Deque[Tuple[SlotBatch, int, BusRequest]] = deque()
        #: batches with unissued slots, oldest first: [batch, flat cursor]
        self._unissued: Deque[List] = deque()
        self._accepted_bursts = 0

    # -------------------------------------------------------------- planning
    def add_batch(
        self,
        request: BusRequest,
        batch: SlotBatch,
        resp: Resp = _RESP_OKAY,
    ) -> None:
        """Queue one planned slot batch belonging to ``request``.

        ``resp`` pre-poisons every beat of the batch (element beats planned
        from a poisoned index fetch).
        """
        if not self._elide:
            batch.alloc_read_buffers()
        if resp is not _RESP_OKAY:
            batch.beat_resp = [resp] * batch.num_beats
        beats = self._beats
        for k in range(batch.num_beats):
            beats.append((batch, k, request))
        if batch.num_slots:
            self._unissued.append([batch, 0])

    def accept(self, request: BusRequest, batch: SlotBatch) -> None:
        """Accept a burst whose beats are fully described by ``batch``."""
        self._accepted_bursts += 1
        self.add_batch(request, batch)

    # --------------------------------------------------------------- issuing
    def issue(self, free_ports: Set[int], out: List[WordRequest]) -> None:
        """Issue word reads in order, using only ``free_ports``.

        Same in-order discipline as the scalar pipe: stop at the first slot
        whose port is unavailable or regulator-blocked.
        """
        unissued = self._unissued
        regulator = self.regulator
        in_flight = regulator._in_flight
        limit = regulator.limit
        while unissued:
            entry = unissued[0]
            batch = entry[0]
            ports = batch.ports
            words = batch.words
            i = entry[1]
            end = batch.num_slots
            while i < end:
                port = ports[i]
                if port not in free_ports or in_flight[port] >= limit:
                    entry[1] = i
                    return
                free_ports.discard(port)
                in_flight[port] += 1
                out.append(
                    WordRequest(
                        port=port,
                        word_addr=words[i],
                        is_write=False,
                        tag=(self, batch, i),
                    )
                )
                i += 1
            unissued.popleft()

    def has_unissued(self) -> bool:
        """True if any planned word read has not been issued yet (O(1))."""
        return bool(self._unissued)

    # ------------------------------------------------------------- responses
    def take_response(self, batch: SlotBatch, i: int, data: bytes) -> None:
        """Deliver one returned word to its beat (hot path)."""
        beat = batch.beat_of[i]
        buffers = batch.beat_data
        if buffers is not None:
            shift = batch.shifts[i]
            nbytes = batch.nbytes[i]
            buffers[beat][
                batch.offsets[i] : batch.offsets[i] + nbytes
            ] = data[shift : shift + nbytes]
        batch.beat_remaining[beat] -= 1
        in_flight = self.regulator._in_flight
        port = batch.ports[i]
        if in_flight[port] <= 0:
            raise SimulationError(f"regulator underflow on port {port}")
        in_flight[port] -= 1

    def take_error_response(self, batch: SlotBatch, i: int, resp: Resp) -> None:
        """Deliver one errored word: no data, the beat is poisoned instead."""
        batch.poison_beat(batch.beat_of[i], resp)
        batch.beat_remaining[batch.beat_of[i]] -= 1
        in_flight = self.regulator._in_flight
        port = batch.ports[i]
        if in_flight[port] <= 0:
            raise SimulationError(f"regulator underflow on port {port}")
        in_flight[port] -= 1

    def _check_issued(self, batch: SlotBatch, k: int) -> None:
        """Same consistency guard as the scalar pipe: a beat with word
        accesses cannot complete before all of them were issued."""
        unissued = self._unissued
        if (
            unissued
            and unissued[0][0] is batch
            and unissued[0][1] < batch.beat_start[k + 1]
        ):
            raise SimulationError(
                f"{self.name}: beat completed before all slots were issued"
            )

    # --------------------------------------------------------------- packing
    def pop_ready_beat(self) -> Optional[Tuple[int, bytes, BusRequest, Resp]]:
        """Return ``(useful_bytes, data, request, resp)`` for the oldest beat
        if complete, removing it from the pipe."""
        beats = self._beats
        if not beats:
            return None
        batch, k, request = beats[0]
        if batch.beat_remaining[k]:
            return None
        beats.popleft()
        self._check_issued(batch, k)
        buffers = batch.beat_data
        # The assembly buffer is complete and never written again, so it is
        # handed out without a defensive copy.
        data = b"" if buffers is None else buffers[k]
        resps = batch.beat_resp
        return (
            batch.beat_useful[k],
            data,
            request,
            _RESP_OKAY if resps is None else resps[k],
        )

    def pop_ready_r_beat(self) -> Optional[RBeat]:
        """Like :meth:`pop_ready_beat` but wrapped as an R-channel beat."""
        beats = self._beats
        if not beats:
            return None
        batch, k, request = beats[0]
        if batch.beat_remaining[k]:
            return None
        beats.popleft()
        self._check_issued(batch, k)
        buffers = batch.beat_data
        # Complete and never written again — no defensive copy.
        data = b"" if buffers is None else buffers[k]
        resps = batch.beat_resp
        return RBeat(
            txn_id=request.txn_id,
            data=data,
            useful_bytes=batch.beat_useful[k],
            last=batch.beat_last[k],
            resp=_RESP_OKAY if resps is None else resps[k],
        )

    # ------------------------------------------------------------------ state
    def busy(self) -> bool:
        """True while any beat is pending issue, in flight or awaiting packing."""
        return bool(self._beats)

    def pending_beats(self) -> int:
        """Number of beats currently tracked by the pipe."""
        return len(self._beats)

    def reset(self) -> None:
        """Drop all state (component reset)."""
        self._beats.clear()
        self._unissued.clear()
        self.regulator.reset()


class LaneWritePipe:
    """Batch-datapath twin of :class:`~repro.controller.pipes.WritePipe`.

    Planner-driven bursts (strided / contiguous / narrow) carry one
    whole-burst :class:`SlotBatch` built at acceptance; each beat is *armed*
    when its W data arrives, which is when its slot range joins the issue
    queue — the same point the scalar pipe materializes the beat's plan.
    Indirect bursts pass ``batch=None`` and add armed single-beat batches
    explicitly once indices and payload are both known.
    """

    __slots__ = ("name", "config", "stats", "_elide", "regulator",
                 "_bursts", "_beats", "_unissued", "_burst_batches")

    def __init__(
        self,
        name: str,
        config: AdapterConfig,
        stats: StatsRegistry,
        data_policy: DataPolicy = DataPolicy.FULL,
    ) -> None:
        self.name = name
        self.config = config
        self.stats = stats
        self._elide = data_policy.elides_data
        self.regulator = RequestRegulator(config.bus_words, config.queue_depth)
        self._bursts: Deque[_ActiveWriteBurst] = deque()
        #: (batch, beat index, burst) in arming order, oldest first
        self._beats: Deque[Tuple[SlotBatch, int, _ActiveWriteBurst]] = deque()
        #: armed beats with unissued slots: [batch, cursor, end, beat index]
        self._unissued: Deque[List] = deque()
        #: whole-burst batches of planner-driven bursts, by burst identity
        self._burst_batches: dict = {}

    # -------------------------------------------------------------- planning
    def accept(
        self, request: BusRequest, batch: Optional[SlotBatch]
    ) -> _ActiveWriteBurst:
        """Accept a write burst; ``batch`` covers it fully or is None."""
        burst = _ActiveWriteBurst(request, planner=None)
        self._bursts.append(burst)
        if batch is not None:
            batch.init_write_state()
            self._burst_batches[id(burst)] = batch
        return burst

    def expecting_w_data(self) -> bool:
        """True if some accepted burst still waits for W beats."""
        return any(not burst.all_w_received for burst in self._bursts)

    def take_w_beat(self, payload: bytes) -> Optional[_ActiveWriteBurst]:
        """Deliver one W data beat to the oldest burst still expecting data."""
        for burst in self._bursts:
            if not burst.all_w_received:
                beat = burst.w_beats_received
                burst.w_beats_received = beat + 1
                batch = self._burst_batches.get(id(burst))
                if batch is not None:
                    self._arm_beat(batch, beat, payload, burst)
                return burst
        return None

    def add_beat_batch(
        self,
        batch: SlotBatch,
        payload: bytes,
        burst: _ActiveWriteBurst,
        resp: Resp = _RESP_OKAY,
    ) -> None:
        """Queue one explicitly planned single-beat batch (indirect writes).

        ``resp`` pre-poisons the beat (indices substituted after an errored
        index fetch).
        """
        batch.init_write_state()
        if resp is not _RESP_OKAY:
            batch.beat_resp = [resp] * batch.num_beats
        self._arm_beat(batch, 0, payload, burst)

    def _arm_beat(
        self, batch: SlotBatch, beat: int, payload: bytes, burst: _ActiveWriteBurst
    ) -> None:
        if not self._elide:
            batch.beat_payload[beat] = bytes(payload)
        self._beats.append((batch, beat, burst))
        start = batch.beat_start[beat]
        end = batch.beat_start[beat + 1]
        if end > start:
            self._unissued.append([batch, start, end, beat])

    # --------------------------------------------------------------- issuing
    def issue(self, free_ports: Set[int], out: List[WordRequest]) -> None:
        """Issue word writes in order, using only ``free_ports``."""
        unissued = self._unissued
        regulator = self.regulator
        in_flight = regulator._in_flight
        limit = regulator.limit
        word_bytes = self.config.word_bytes
        while unissued:
            entry = unissued[0]
            batch = entry[0]
            ports = batch.ports
            words = batch.words
            offsets = batch.offsets
            i = entry[1]
            end = entry[2]
            beat = entry[3]
            payload = None if batch.beat_payload is None else batch.beat_payload[beat]
            check_partial = not batch.all_full_words
            remaining = batch.beat_remaining
            acks = batch.beat_acks
            while i < end:
                port = ports[i]
                if port not in free_ports or in_flight[port] >= limit:
                    entry[1] = i
                    return
                if check_partial and (
                    batch.nbytes[i] != word_bytes or batch.shifts[i] != 0
                ):
                    # Same geometry guard (and message) as the scalar pipe,
                    # raised when the offending slot reaches the issue stage.
                    raise SimulationError(
                        f"{self.name}: partial-word write at word "
                        f"{words[i]:#x} — the model requires word-aligned "
                        "write payloads"
                    )
                free_ports.discard(port)
                in_flight[port] += 1
                if payload is None:
                    data = None
                else:
                    offset = offsets[i]
                    data = payload[offset : offset + word_bytes]
                out.append(
                    WordRequest(
                        port=port,
                        word_addr=words[i],
                        is_write=True,
                        data=data,
                        tag=(self, batch, i),
                    )
                )
                remaining[beat] -= 1
                acks[beat] += 1
                i += 1
            unissued.popleft()

    def has_unissued(self) -> bool:
        """True if any planned word write has not been issued yet (O(1))."""
        return bool(self._unissued)

    # ------------------------------------------------------------- responses
    def take_ack(self, batch: SlotBatch, i: int) -> None:
        """Deliver one word-write acknowledgement."""
        batch.beat_acks[batch.beat_of[i]] -= 1
        in_flight = self.regulator._in_flight
        port = batch.ports[i]
        if in_flight[port] <= 0:
            raise SimulationError(f"regulator underflow on port {port}")
        in_flight[port] -= 1

    def take_error_ack(self, batch: SlotBatch, i: int, resp: Resp) -> None:
        """Deliver one errored word-write acknowledgement (poisons the beat)."""
        batch.poison_beat(batch.beat_of[i], resp)
        batch.beat_acks[batch.beat_of[i]] -= 1
        in_flight = self.regulator._in_flight
        port = batch.ports[i]
        if in_flight[port] <= 0:
            raise SimulationError(f"regulator underflow on port {port}")
        in_flight[port] -= 1

    # -------------------------------------------------------------- emission
    def pop_ready_b_beat(self) -> Optional[BBeat]:
        """Return a B beat once the oldest burst's writes are all complete."""
        self._retire_completed_beats()
        if not self._bursts:
            return None
        burst = self._bursts[0]
        if burst.all_w_received and burst.complete:
            self._bursts.popleft()
            self._burst_batches.pop(id(burst), None)
            return BBeat(txn_id=burst.request.txn_id, resp=burst.resp)
        return None

    def _retire_completed_beats(self) -> None:
        beats = self._beats
        while beats:
            batch, beat, burst = beats[0]
            if batch.beat_remaining[beat] or batch.beat_acks[beat]:
                break
            beats.popleft()
            burst.beats_completed += 1
            resps = batch.beat_resp
            if resps is not None:
                resp = resps[beat]
                if resp.value > burst.resp.value:
                    burst.resp = resp

    # ------------------------------------------------------------------ state
    def busy(self) -> bool:
        """True while any burst or beat is still in progress."""
        return bool(self._bursts) or bool(self._beats)

    def reset(self) -> None:
        """Drop all state (component reset)."""
        self._bursts.clear()
        self._beats.clear()
        self._unissued.clear()
        self._burst_batches.clear()
        self.regulator.reset()
