"""Base AXI4 converter: serves regular (non-packed) bursts.

This converter is what makes the controller a drop-in replacement for a
plain AXI4 memory controller: contiguous INCR bursts are striped across the
word lanes at one full-width beat per cycle, and narrow (element-per-beat)
transfers — the BASE system's strided/indexed fallback — are served one
element at a time.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.axi.signals import BBeat, RBeat
from repro.axi.transaction import BusRequest
from repro.controller.context import AdapterContext
from repro.controller.converter import Converter
from repro.controller.lanes import (
    LaneReadPipe,
    LaneWritePipe,
    batch_contiguous,
    batch_narrow,
)
from repro.controller.pipes import ReadPipe, WritePipe
from repro.controller.planners import plan_contiguous_beats, plan_narrow_beats
from repro.mem.words import WordRequest

#: Upper bound on beats buffered in the read pipe before new bursts stall.
_MAX_PENDING_READ_BEATS = 512


class BaseAxi4Converter(Converter):
    """Backward-compatible converter for plain AXI4 read and write bursts."""

    def __init__(self, name: str, ctx: AdapterContext) -> None:
        super().__init__(name, ctx)
        self._batch = ctx.datapath.is_batch
        read_cls = LaneReadPipe if self._batch else ReadPipe
        write_cls = LaneWritePipe if self._batch else WritePipe
        self._reads = read_cls(f"{name}.read", ctx.config, ctx.stats, ctx.data_policy)
        self._writes = write_cls(f"{name}.write", ctx.config, ctx.stats, ctx.data_policy)
        self._read_seq = 0
        self._write_seq = 0
        # Prebound hot-path counters (see repro.sim.stats).
        self._c_read_bursts = ctx.stats.counter("controller.base.read_bursts")
        self._c_write_bursts = ctx.stats.counter("controller.base.write_bursts")

    # ------------------------------------------------------------ acceptance
    def can_accept_read(self, request: BusRequest) -> bool:
        if request.is_packed:
            return False
        return self._reads.pending_beats() + request.num_beats <= _MAX_PENDING_READ_BEATS

    def accept_read(self, request: BusRequest) -> None:
        config = self.ctx.config
        if self._batch:
            kernel = batch_contiguous if request.contiguous else batch_narrow
            self._reads.accept(
                request, kernel(request, config.word_bytes, config.bus_words)
            )
        else:
            planner = plan_contiguous_beats if request.contiguous else plan_narrow_beats
            plans = planner(
                request, config.word_bytes, config.bus_words, self._read_seq
            )
            self._reads.accept(request, plans)
        self._read_seq += 1
        self._c_read_bursts.value += 1

    def can_accept_write(self, request: BusRequest) -> bool:
        if request.is_packed:
            return False
        return len(self._writes._bursts) < self.ctx.config.max_pipelined_bursts

    def accept_write(self, request: BusRequest) -> None:
        config = self.ctx.config
        if self._batch:
            kernel = batch_contiguous if request.contiguous else batch_narrow
            self._writes.accept(
                request, kernel(request, config.word_bytes, config.bus_words)
            )
        else:
            planner = plan_contiguous_beats if request.contiguous else plan_narrow_beats
            plans = planner(
                request, config.word_bytes, config.bus_words, self._write_seq
            )
            self._writes.accept(request, iter(plans))
        self._write_seq += 1
        self._c_write_bursts.value += 1

    def take_w_beat(self, payload: bytes) -> None:
        self._writes.take_w_beat(payload)

    # ----------------------------------------------------------------- cycle
    def issue(self, free_ports: Set[int], out: List[WordRequest]) -> None:
        self._reads.issue(free_ports, out)
        self._writes.issue(free_ports, out)

    def has_unissued(self) -> bool:
        return bool(self._reads._unissued) or bool(self._writes._unissued)

    def unissued_deques(self):
        return (self._reads._unissued, self._writes._unissued)

    def r_beat_deques(self):
        return (self._reads._beats,)

    def b_beat_deques(self):
        return (self._writes._bursts, self._writes._beats)

    def pop_ready_r_beat(self) -> Optional[RBeat]:
        return self._reads.pop_ready_r_beat()

    def pop_ready_b_beat(self) -> Optional[BBeat]:
        return self._writes.pop_ready_b_beat()

    # ----------------------------------------------------------------- state
    def busy(self) -> bool:
        # Inlined pipe checks: this runs several times per adapter cycle.
        return bool(self._reads._beats or self._writes._bursts or self._writes._beats)

    def reset(self) -> None:
        self._reads.reset()
        self._writes.reset()
