"""Base AXI4 converter: serves regular (non-packed) bursts.

This converter is what makes the controller a drop-in replacement for a
plain AXI4 memory controller: contiguous INCR bursts are striped across the
word lanes at one full-width beat per cycle, and narrow (element-per-beat)
transfers — the BASE system's strided/indexed fallback — are served one
element at a time.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.axi.signals import BBeat, RBeat
from repro.axi.transaction import BusRequest
from repro.controller.context import AdapterContext
from repro.controller.converter import Converter
from repro.controller.pipes import ReadPipe, WritePipe
from repro.controller.planners import plan_contiguous_beats, plan_narrow_beats
from repro.mem.words import WordRequest

#: Upper bound on beats buffered in the read pipe before new bursts stall.
_MAX_PENDING_READ_BEATS = 512


class BaseAxi4Converter(Converter):
    """Backward-compatible converter for plain AXI4 read and write bursts."""

    def __init__(self, name: str, ctx: AdapterContext) -> None:
        super().__init__(name, ctx)
        self._reads = ReadPipe(f"{name}.read", ctx.config, ctx.stats, ctx.data_policy)
        self._writes = WritePipe(f"{name}.write", ctx.config, ctx.stats, ctx.data_policy)
        self._read_seq = 0
        self._write_seq = 0

    # ------------------------------------------------------------ acceptance
    def can_accept_read(self, request: BusRequest) -> bool:
        if request.is_packed:
            return False
        return self._reads.pending_beats() + request.num_beats <= _MAX_PENDING_READ_BEATS

    def accept_read(self, request: BusRequest) -> None:
        planner = plan_contiguous_beats if request.contiguous else plan_narrow_beats
        plans = planner(
            request,
            self.ctx.config.word_bytes,
            self.ctx.config.bus_words,
            self._read_seq,
        )
        self._read_seq += 1
        self._reads.accept(request, plans)
        self.ctx.stats.add("controller.base.read_bursts")

    def can_accept_write(self, request: BusRequest) -> bool:
        if request.is_packed:
            return False
        return len(self._writes._bursts) < self.ctx.config.max_pipelined_bursts

    def accept_write(self, request: BusRequest) -> None:
        planner = plan_contiguous_beats if request.contiguous else plan_narrow_beats
        plans = planner(
            request,
            self.ctx.config.word_bytes,
            self.ctx.config.bus_words,
            self._write_seq,
        )
        self._write_seq += 1
        self._writes.accept(request, iter(plans))
        self.ctx.stats.add("controller.base.write_bursts")

    def take_w_beat(self, payload: bytes) -> None:
        self._writes.take_w_beat(payload)

    # ----------------------------------------------------------------- cycle
    def issue(self, free_ports: Set[int], out: List[WordRequest]) -> None:
        self._reads.issue(free_ports, out)
        self._writes.issue(free_ports, out)

    def has_unissued(self) -> bool:
        return bool(self._reads._unissued) or bool(self._writes._unissued)

    def pop_ready_r_beat(self) -> Optional[RBeat]:
        return self._reads.pop_ready_r_beat()

    def pop_ready_b_beat(self) -> Optional[BBeat]:
        return self._writes.pop_ready_b_beat()

    # ----------------------------------------------------------------- state
    def busy(self) -> bool:
        # Inlined pipe checks: this runs several times per adapter cycle.
        return bool(self._reads._beats or self._writes._bursts or self._writes._beats)

    def reset(self) -> None:
        self._reads.reset()
        self._writes.reset()
