"""Beat plans: the metadata the converters push through their info queues.

A *beat plan* records, for one beat of one burst, which word accesses must be
performed and where each word's bytes sit inside the (packed) beat payload.
For reads this is the metadata the beat packer consumes; for writes it drives
the beat unpacker.

These records are created once per beat (plans, states) or once per word
access (slots) on the simulator's hottest paths, so they are plain
``__slots__`` classes rather than dataclasses — constructor cost matters
more than generated niceties here.  Treat them as immutable once built.
"""

from __future__ import annotations

from typing import List, Optional

from repro.axi.types import Resp

#: Prebound default: beat states are built once per beat on the hot path.
_RESP_OKAY = Resp.OKAY


class WordSlot:
    """One word access belonging to a beat.

    Attributes
    ----------
    port:
        Word lane the access is issued on (0 .. n-1).
    word_addr:
        Target word address (byte address // word size).
    offset:
        Byte offset of this word's data inside the beat payload.
    nbytes:
        Number of bytes of this word that belong to the payload (normally the
        full word; smaller only for unaligned contiguous edges).
    byte_shift:
        Offset inside the memory word where the payload bytes start (non-zero
        only for unaligned contiguous edges).
    """

    __slots__ = ("port", "word_addr", "offset", "nbytes", "byte_shift")

    def __init__(
        self,
        port: int,
        word_addr: int,
        offset: int,
        nbytes: int,
        byte_shift: int = 0,
    ) -> None:
        self.port = port
        self.word_addr = word_addr
        self.offset = offset
        self.nbytes = nbytes
        self.byte_shift = byte_shift

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WordSlot(port={self.port}, word_addr={self.word_addr:#x}, "
            f"offset={self.offset}, nbytes={self.nbytes}, "
            f"byte_shift={self.byte_shift})"
        )


class BeatPlan:
    """All word accesses of one beat plus packing bookkeeping."""

    __slots__ = ("burst_seq", "beat_index", "txn_id", "useful_bytes", "last", "slots")

    def __init__(
        self,
        burst_seq: int,
        beat_index: int,
        txn_id: int,
        useful_bytes: int,
        last: bool,
        slots: Optional[List[WordSlot]] = None,
    ) -> None:
        self.burst_seq = burst_seq
        self.beat_index = beat_index
        self.txn_id = txn_id
        self.useful_bytes = useful_bytes
        self.last = last
        self.slots = slots if slots is not None else []

    @property
    def num_words(self) -> int:
        """Number of word accesses the beat requires."""
        return len(self.slots)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BeatPlan(burst_seq={self.burst_seq}, beat_index={self.beat_index}, "
            f"txn_id={self.txn_id}, useful_bytes={self.useful_bytes}, "
            f"last={self.last}, slots={self.slots!r})"
        )


class ReadBeatState:
    """In-flight tracking of a read beat: collected words and completion.

    ``data`` is the packed beat payload under assembly — or ``None`` under
    ``DataPolicy.ELIDE``, where only the completion count is tracked.
    ``resp`` is the worst response of the beat's word accesses so far: a
    poisoned word slot taints its whole beat (and the R beat built from it).
    """

    __slots__ = ("plan", "remaining", "data", "resp")

    def __init__(self, plan: BeatPlan, remaining: int, data: bytearray) -> None:
        self.plan = plan
        self.remaining = remaining
        self.data = data
        self.resp = _RESP_OKAY

    @classmethod
    def from_plan(cls, plan: BeatPlan) -> "ReadBeatState":
        """Create fresh tracking state for a planned beat."""
        return cls(plan=plan, remaining=plan.num_words, data=bytearray(plan.useful_bytes))

    @classmethod
    def from_plan_elided(cls, plan: BeatPlan) -> "ReadBeatState":
        """Tracking state for a timing-only beat: no payload buffer at all."""
        return cls(plan=plan, remaining=plan.num_words, data=None)

    def fill(self, slot: WordSlot, word_data: bytes) -> None:
        """Place one returned word into the packed beat payload."""
        chunk = word_data[slot.byte_shift : slot.byte_shift + slot.nbytes]
        self.data[slot.offset : slot.offset + slot.nbytes] = chunk
        self.remaining -= 1

    @property
    def complete(self) -> bool:
        """True once every word of the beat has returned."""
        return self.remaining == 0


class WriteBeatState:
    """In-flight tracking of a write beat: issued words and acknowledgements.

    ``payload`` is ``None`` under ``DataPolicy.ELIDE`` (word writes are
    issued and acknowledged with their geometry only).  ``resp`` is the
    worst response among the beat's word acknowledgements; the write pipe
    merges it into the burst's B response when the beat retires.
    """

    __slots__ = ("plan", "payload", "next_slot", "acks_pending", "resp")

    def __init__(
        self,
        plan: BeatPlan,
        payload: bytes,
        next_slot: int = 0,
        acks_pending: int = 0,
    ) -> None:
        self.plan = plan
        self.payload = payload
        self.next_slot = next_slot
        self.acks_pending = acks_pending
        self.resp = _RESP_OKAY

    @property
    def all_issued(self) -> bool:
        """True once every word write of the beat has been issued."""
        return self.next_slot >= len(self.plan.slots)

    @property
    def complete(self) -> bool:
        """True once every word write has been issued and acknowledged."""
        return self.next_slot >= len(self.plan.slots) and self.acks_pending == 0

    def slot_data(self, slot: WordSlot) -> bytes:
        """Extract the bytes of the payload that belong to one word slot."""
        return bytes(self.payload[slot.offset : slot.offset + slot.nbytes])
