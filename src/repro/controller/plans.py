"""Beat plans: the metadata the converters push through their info queues.

A *beat plan* records, for one beat of one burst, which word accesses must be
performed and where each word's bytes sit inside the (packed) beat payload.
For reads this is the metadata the beat packer consumes; for writes it drives
the beat unpacker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class WordSlot:
    """One word access belonging to a beat.

    Attributes
    ----------
    port:
        Word lane the access is issued on (0 .. n-1).
    word_addr:
        Target word address (byte address // word size).
    offset:
        Byte offset of this word's data inside the beat payload.
    nbytes:
        Number of bytes of this word that belong to the payload (normally the
        full word; smaller only for unaligned contiguous edges).
    byte_shift:
        Offset inside the memory word where the payload bytes start (non-zero
        only for unaligned contiguous edges).
    """

    port: int
    word_addr: int
    offset: int
    nbytes: int
    byte_shift: int = 0


@dataclass
class BeatPlan:
    """All word accesses of one beat plus packing bookkeeping."""

    burst_seq: int
    beat_index: int
    txn_id: int
    useful_bytes: int
    last: bool
    slots: List[WordSlot] = field(default_factory=list)

    @property
    def num_words(self) -> int:
        """Number of word accesses the beat requires."""
        return len(self.slots)


@dataclass
class ReadBeatState:
    """In-flight tracking of a read beat: collected words and completion."""

    plan: BeatPlan
    remaining: int
    data: bytearray

    @classmethod
    def from_plan(cls, plan: BeatPlan) -> "ReadBeatState":
        """Create fresh tracking state for a planned beat."""
        return cls(plan=plan, remaining=plan.num_words, data=bytearray(plan.useful_bytes))

    def fill(self, slot: WordSlot, word_data: bytes) -> None:
        """Place one returned word into the packed beat payload."""
        chunk = word_data[slot.byte_shift : slot.byte_shift + slot.nbytes]
        self.data[slot.offset : slot.offset + slot.nbytes] = chunk
        self.remaining -= 1

    @property
    def complete(self) -> bool:
        """True once every word of the beat has returned."""
        return self.remaining == 0


@dataclass
class WriteBeatState:
    """In-flight tracking of a write beat: issued words and acknowledgements."""

    plan: BeatPlan
    payload: bytes
    next_slot: int = 0
    acks_pending: int = 0

    @property
    def all_issued(self) -> bool:
        """True once every word write of the beat has been issued."""
        return self.next_slot >= len(self.plan.slots)

    @property
    def complete(self) -> bool:
        """True once every word write has been issued and acknowledged."""
        return self.all_issued and self.acks_pending == 0

    def slot_data(self, slot: WordSlot) -> bytes:
        """Extract the bytes of the payload that belong to one word slot."""
        return bytes(self.payload[slot.offset : slot.offset + slot.nbytes])
