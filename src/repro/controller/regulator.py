"""Per-converter request regulator (paper Fig. 2c, "req regu").

Each converter owns decoupling queues between the banks and its beat packer
(or unpacker).  The regulator bounds the number of word accesses in flight on
each word lane so those queues can never overflow, which is what allows the
rest of the converter to be simple elastic logic.
"""

from __future__ import annotations

from typing import List

from repro.errors import SimulationError
from repro.utils.validation import check_positive


class RequestRegulator:
    """Counts in-flight word accesses per word lane and enforces a limit."""

    def __init__(self, num_ports: int, limit: int) -> None:
        self.num_ports = check_positive("num_ports", num_ports)
        self.limit = check_positive("regulator limit", limit)
        self._in_flight: List[int] = [0] * num_ports

    def can_issue(self, port: int) -> bool:
        """True if another access may be issued on ``port`` this cycle."""
        return self._in_flight[port] < self.limit

    def note_issue(self, port: int) -> None:
        """Record an issued word access."""
        if self._in_flight[port] >= self.limit:
            raise SimulationError(
                f"regulator limit exceeded on port {port}: converter issued "
                "more requests than its decoupling queue can hold"
            )
        self._in_flight[port] += 1

    def note_retire(self, port: int) -> None:
        """Record a completed word access."""
        if self._in_flight[port] <= 0:
            raise SimulationError(f"regulator underflow on port {port}")
        self._in_flight[port] -= 1

    def in_flight(self, port: int) -> int:
        """Number of accesses currently outstanding on ``port``."""
        return self._in_flight[port]

    def total_in_flight(self) -> int:
        """Total outstanding accesses across all lanes."""
        return sum(self._in_flight)

    def reset(self) -> None:
        """Clear all counters."""
        self._in_flight = [0] * self.num_ports
