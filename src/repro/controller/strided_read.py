"""Strided read converter (paper Fig. 2c).

For every beat of a packed strided burst, the request generator issues the
parallel word reads of the elements to be packed; the info queue (modelled by
the ordered beat states inside :class:`~repro.controller.pipes.ReadPipe`)
remembers how to pack them; the beat packer assembles full R beats as the
words return from the banks.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.axi.pack import PackMode
from repro.axi.signals import RBeat
from repro.axi.transaction import BusRequest
from repro.controller.context import AdapterContext
from repro.controller.converter import Converter
from repro.controller.lanes import LaneReadPipe, batch_strided
from repro.controller.pipes import ReadPipe
from repro.controller.planners import plan_strided_beats
from repro.mem.words import WordRequest

#: Upper bound on beats buffered in the pipe before new bursts stall.
_MAX_PENDING_BEATS = 1024


class StridedReadConverter(Converter):
    """Serves AXI-Pack strided read bursts."""

    def __init__(self, name: str, ctx: AdapterContext) -> None:
        super().__init__(name, ctx)
        self._batch = ctx.datapath.is_batch
        pipe_cls = LaneReadPipe if self._batch else ReadPipe
        self._pipe = pipe_cls(name, ctx.config, ctx.stats, ctx.data_policy)
        self._seq = 0
        self._c_bursts = ctx.stats.counter("controller.strided_read.bursts")

    def can_accept_read(self, request: BusRequest) -> bool:
        if request.mode is not PackMode.STRIDED or request.is_write:
            return False
        return self._pipe.pending_beats() + request.num_beats <= _MAX_PENDING_BEATS

    def accept_read(self, request: BusRequest) -> None:
        config = self.ctx.config
        if self._batch:
            plans = batch_strided(request, config.word_bytes, config.bus_words)
        else:
            plans = plan_strided_beats(
                request, config.word_bytes, config.bus_words, self._seq
            )
        self._seq += 1
        self._pipe.accept(request, plans)
        self._c_bursts.value += 1

    def issue(self, free_ports: Set[int], out: List[WordRequest]) -> None:
        self._pipe.issue(free_ports, out)

    def has_unissued(self) -> bool:
        return bool(self._pipe._unissued)

    def unissued_deques(self):
        return (self._pipe._unissued,)

    def r_beat_deques(self):
        return (self._pipe._beats,)

    def pop_ready_r_beat(self) -> Optional[RBeat]:
        return self._pipe.pop_ready_r_beat()

    def busy(self) -> bool:
        return bool(self._pipe._beats)

    def reset(self) -> None:
        self._pipe.reset()
