"""Banked AXI-Pack memory controller (paper §II-C, Fig. 2b-d).

The controller sits between an AXI/AXI-Pack port and the multi-banked SRAM.
Its *adapter* decodes incoming bursts and hands them to one of five
converters:

* :class:`~repro.controller.base_converter.BaseAxi4Converter` — regular AXI4
  bursts (full backward compatibility);
* :class:`~repro.controller.strided_read.StridedReadConverter` and
  :class:`~repro.controller.strided_write.StridedWriteConverter` — AXI-Pack
  strided bursts;
* :class:`~repro.controller.indirect_read.IndirectReadConverter` and
  :class:`~repro.controller.indirect_write.IndirectWriteConverter` — AXI-Pack
  indirect bursts, with the index stage performing the indirection bank-side.

Each converter breaks beats into parallel word accesses, regulated so the
decoupling queues never overflow, and re-packs (or unpacks) bus-wide beats.
"""

from repro.controller.context import AdapterConfig, AdapterContext
from repro.controller.adapter import AxiPackAdapter
from repro.controller.base_converter import BaseAxi4Converter
from repro.controller.strided_read import StridedReadConverter
from repro.controller.strided_write import StridedWriteConverter
from repro.controller.indirect_read import IndirectReadConverter
from repro.controller.indirect_write import IndirectWriteConverter

__all__ = [
    "AdapterConfig",
    "AdapterContext",
    "AxiPackAdapter",
    "BaseAxi4Converter",
    "StridedReadConverter",
    "StridedWriteConverter",
    "IndirectReadConverter",
    "IndirectWriteConverter",
]
