"""Indirect write converter.

Like the indirect read converter, but the element stage is a beat *unpacker*:
once the indices of a W beat's elements are known, the packed write data is
scattered to the indexed addresses as parallel word writes.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set

import numpy as np

from repro.axi.pack import PackMode
from repro.axi.signals import BBeat
from repro.axi.transaction import BusRequest
from repro.axi.types import Resp
from repro.controller.context import AdapterContext
from repro.controller.converter import Converter
from repro.controller.indirect_read import (
    index_line_values,
    index_line_values_batch,
    read_index_oracle,
)
from repro.controller.lanes import (
    LaneReadPipe,
    LaneWritePipe,
    batch_index_fetch,
    batch_indexed_beat,
)
from repro.controller.pipes import ReadPipe, WritePipe
from repro.controller.planners import plan_index_fetch_beats, plan_indexed_beat
from repro.mem.words import WordRequest

#: Prebound: compared once per completed index line.
_RESP_OKAY = Resp.OKAY


class _ActiveIndirectWrite:
    """Per-burst progress of the two-stage indirect write.

    Like the read side, the scalar datapath pops indices one at a time from
    ``index_buffer`` while the batch datapath slices ``index_list`` via
    ``index_pos``.
    """

    __slots__ = (
        "request",
        "wpipe_burst",
        "index_buffer",
        "index_list",
        "index_pos",
        "payloads",
        "elements_planned",
        "next_beat",
        "index_oracle",
        "oracle_pos",
        "index_resp",
    )

    def __init__(self, request: BusRequest, wpipe_burst) -> None:
        self.request = request
        self.wpipe_burst = wpipe_burst
        self.index_buffer: Deque[int] = deque()
        self.index_list: List[int] = []
        self.index_pos = 0
        self.payloads: Deque[bytes] = deque()
        self.elements_planned = 0
        self.next_beat = 0
        #: ELIDE always; FULL materializes it lazily on a poisoned line
        self.index_oracle: Optional[np.ndarray] = None
        self.oracle_pos = 0
        #: worst response over the burst's index-fetch lines so far
        self.index_resp = _RESP_OKAY

    @property
    def fully_planned(self) -> bool:
        return self.elements_planned >= self.request.num_elements


class IndirectWriteConverter(Converter):
    """Serves AXI-Pack indirect write bursts with bank-side indirection."""

    def __init__(self, name: str, ctx: AdapterContext) -> None:
        super().__init__(name, ctx)
        self._elide = ctx.data_policy.elides_data
        self._batch = ctx.datapath.is_batch
        self._index_pipe = (LaneReadPipe if self._batch else ReadPipe)(
            f"{name}.index", ctx.config, ctx.stats, ctx.data_policy
        )
        self._write_pipe = (LaneWritePipe if self._batch else WritePipe)(
            f"{name}.element", ctx.config, ctx.stats, ctx.data_policy
        )
        self._bursts: Deque[_ActiveIndirectWrite] = deque()
        self._by_txn: Dict[int, _ActiveIndirectWrite] = {}
        self._seq = 0
        # Prebound hot-path counters (see repro.sim.stats).
        self._c_bursts = ctx.stats.counter("controller.indirect_write.bursts")
        self._c_index_lines = ctx.stats.counter("controller.indirect_write.index_lines")

    # ------------------------------------------------------------ acceptance
    def can_accept_write(self, request: BusRequest) -> bool:
        if request.mode is not PackMode.INDIRECT or not request.is_write:
            return False
        return len(self._bursts) < self.ctx.config.max_pipelined_bursts

    def accept_write(self, request: BusRequest) -> None:
        if self._batch:
            wpipe_burst = self._write_pipe.accept(request, None)
        else:
            wpipe_burst = self._write_pipe.accept(request, planner=None)
        active = _ActiveIndirectWrite(request, wpipe_burst)
        if self._elide:
            active.index_oracle = read_index_oracle(self.ctx, request)
        self._bursts.append(active)
        self._by_txn[request.txn_id] = active
        config = self.ctx.config
        if self._batch:
            index_plans = batch_index_fetch(
                request, config.bus_bytes, config.word_bytes, config.bus_words
            )
        else:
            index_plans = plan_index_fetch_beats(
                index_base=request.index_base,
                num_indices=request.num_elements,
                index_bytes=request.pack.index_bytes,
                bus_bytes=config.bus_bytes,
                word_bytes=config.word_bytes,
                bus_words=config.bus_words,
                txn_id=request.txn_id,
                burst_seq=self._seq,
            )
        self._seq += 1
        self._index_pipe.accept(request, index_plans)
        self._c_bursts.value += 1

    def take_w_beat(self, payload: bytes) -> None:
        burst = self._write_pipe.take_w_beat(payload)
        for active in self._bursts:
            if active.wpipe_burst is burst:
                # Under ELIDE the payload is empty; it is still queued so
                # `_plan_write_beats` sees the W beat's arrival (planning is
                # gated on data presence, which is a timing property).
                active.payloads.append(b"" if self._elide else bytes(payload))
                return

    # ----------------------------------------------------------------- cycle
    def step(self, cycle: int) -> None:
        if self._batch:
            self._extract_indices_batch()
            self._plan_write_beats_batch()
        else:
            self._extract_indices()
            self._plan_write_beats()

    def _extract_indices(self) -> None:
        while True:
            ready = self._index_pipe.pop_ready_beat()
            if ready is None:
                return
            plan, data, request, resp = ready
            active = self._by_txn.get(request.txn_id)
            if active is not None:
                if resp is not _RESP_OKAY:
                    self._note_index_fault(active, resp)
                values = index_line_values(
                    active, plan, data, request, self._elide, resp
                )
                active.index_buffer.extend(int(i) for i in values)
            self._c_index_lines.value += 1

    def _extract_indices_batch(self) -> None:
        pipe = self._index_pipe
        elide = self._elide
        while True:
            ready = pipe.pop_ready_beat()
            if ready is None:
                return
            useful, data, request, resp = ready
            active = self._by_txn.get(request.txn_id)
            if active is not None:
                if resp is not _RESP_OKAY:
                    self._note_index_fault(active, resp)
                active.index_list.extend(
                    index_line_values_batch(
                        active, useful, data, request, elide, resp
                    )
                )
            self._c_index_lines.value += 1

    def _note_index_fault(self, active: _ActiveIndirectWrite, resp: Resp) -> None:
        """A poisoned index line: fall back to oracle values, taint the burst."""
        if active.index_oracle is None:
            active.index_oracle = read_index_oracle(self.ctx, active.request)
        if resp.value > active.index_resp.value:
            active.index_resp = resp

    def _plan_write_beats(self) -> None:
        for active in self._bursts:
            if active.fully_planned:
                continue
            request = active.request
            elems_per_beat = request.bus_bytes // request.elem_bytes
            while not active.fully_planned:
                remaining = request.num_elements - active.elements_planned
                beat_elems = min(elems_per_beat, remaining)
                if len(active.index_buffer) < beat_elems or not active.payloads:
                    return
                offsets = [active.index_buffer.popleft() for _ in range(beat_elems)]
                plan = plan_indexed_beat(
                    request=request,
                    beat=active.next_beat,
                    element_offsets=offsets,
                    word_bytes=self.ctx.config.word_bytes,
                    bus_words=self.ctx.config.bus_words,
                    burst_seq=0,
                )
                payload = active.payloads.popleft()
                self._write_pipe.add_beat(
                    plan, payload, active.wpipe_burst, active.index_resp
                )
                active.elements_planned += beat_elems
                active.next_beat += 1
            return

    def _plan_write_beats_batch(self) -> None:
        config = self.ctx.config
        word_bytes = config.word_bytes
        bus_words = config.bus_words
        for active in self._bursts:
            if active.fully_planned:
                continue
            request = active.request
            elems_per_beat = request.bus_bytes // request.elem_bytes
            index_list = active.index_list
            pipe = self._write_pipe
            while not active.fully_planned:
                remaining = request.num_elements - active.elements_planned
                beat_elems = min(elems_per_beat, remaining)
                pos = active.index_pos
                if len(index_list) - pos < beat_elems or not active.payloads:
                    return
                offsets = index_list[pos : pos + beat_elems]
                active.index_pos = pos + beat_elems
                payload = active.payloads.popleft()
                pipe.add_beat_batch(
                    batch_indexed_beat(
                        request, active.next_beat, offsets, word_bytes, bus_words
                    ),
                    payload,
                    active.wpipe_burst,
                    active.index_resp,
                )
                active.elements_planned += beat_elems
                active.next_beat += 1
            return

    def issue(self, free_ports: Set[int], out: List[WordRequest]) -> None:
        self._write_pipe.issue(free_ports, out)
        self._index_pipe.issue(free_ports, out)

    def has_unissued(self) -> bool:
        return bool(self._write_pipe._unissued) or bool(self._index_pipe._unissued)

    def unissued_deques(self):
        return (self._write_pipe._unissued, self._index_pipe._unissued)

    def b_beat_deques(self):
        return (self._write_pipe._bursts, self._write_pipe._beats)

    def pop_ready_b_beat(self) -> Optional[BBeat]:
        beat = self._write_pipe.pop_ready_b_beat()
        if beat is not None:
            self._retire_finished_bursts()
        return beat

    def _retire_finished_bursts(self) -> None:
        while self._bursts and self._bursts[0].fully_planned and self._bursts[0].wpipe_burst.complete:
            finished = self._bursts.popleft()
            self._by_txn.pop(finished.request.txn_id, None)

    # ----------------------------------------------------------------- state
    def busy(self) -> bool:
        # Inlined pipe checks: this runs several times per adapter cycle.
        return bool(
            self._bursts
            or self._index_pipe._beats
            or self._write_pipe._bursts
            or self._write_pipe._beats
        )

    def reset(self) -> None:
        self._bursts.clear()
        self._by_txn.clear()
        self._index_pipe.reset()
        self._write_pipe.reset()
