"""Strided write converter.

Mirror image of the strided read converter: a beat *unpacker* splits each
incoming W beat into its scattered word writes (paper §II-C: the write
converters "differ only in the direction of the datapath").
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.axi.pack import PackMode
from repro.axi.signals import BBeat
from repro.axi.transaction import BusRequest
from repro.controller.context import AdapterContext
from repro.controller.converter import Converter
from repro.controller.lanes import LaneWritePipe, batch_strided
from repro.controller.pipes import WritePipe
from repro.controller.planners import plan_strided_beats
from repro.mem.words import WordRequest


class StridedWriteConverter(Converter):
    """Serves AXI-Pack strided write bursts."""

    def __init__(self, name: str, ctx: AdapterContext) -> None:
        super().__init__(name, ctx)
        self._batch = ctx.datapath.is_batch
        pipe_cls = LaneWritePipe if self._batch else WritePipe
        self._pipe = pipe_cls(name, ctx.config, ctx.stats, ctx.data_policy)
        self._c_bursts = ctx.stats.counter("controller.strided_write.bursts")

    def can_accept_write(self, request: BusRequest) -> bool:
        if request.mode is not PackMode.STRIDED or not request.is_write:
            return False
        return len(self._pipe._bursts) < self.ctx.config.max_pipelined_bursts

    def accept_write(self, request: BusRequest) -> None:
        config = self.ctx.config
        if self._batch:
            self._pipe.accept(
                request, batch_strided(request, config.word_bytes, config.bus_words)
            )
        else:
            plans = plan_strided_beats(
                request, config.word_bytes, config.bus_words, burst_seq=0
            )
            self._pipe.accept(request, iter(plans))
        self._c_bursts.value += 1

    def take_w_beat(self, payload: bytes) -> None:
        self._pipe.take_w_beat(payload)

    def issue(self, free_ports: Set[int], out: List[WordRequest]) -> None:
        self._pipe.issue(free_ports, out)

    def has_unissued(self) -> bool:
        return bool(self._pipe._unissued)

    def unissued_deques(self):
        return (self._pipe._unissued,)

    def b_beat_deques(self):
        return (self._pipe._bursts, self._pipe._beats)

    def pop_ready_b_beat(self) -> Optional[BBeat]:
        return self._pipe.pop_ready_b_beat()

    def busy(self) -> bool:
        return bool(self._pipe._bursts or self._pipe._beats)

    def reset(self) -> None:
        self._pipe.reset()
