"""Functional (zero-time) burst execution against the backing store.

These helpers compute, for any :class:`~repro.axi.transaction.BusRequest`,
the exact payload bytes the burst should move.  They serve three purposes:

* the :class:`~repro.mem.ideal.IdealMemoryEndpoint` uses them to answer
  requests with perfect packing;
* the test suite uses them as the golden reference the cycle-level
  controller must match byte for byte;
* the fast analytic model uses them when it needs functional results
  without paying for the cycle-level simulation.
"""

from __future__ import annotations

import numpy as np

from typing import Optional

from repro.axi.pack import PackMode
from repro.axi.stream import IndirectStream, Stream
from repro.axi.transaction import BusRequest
from repro.errors import MemoryAccessError, ProtocolError
from repro.mem.storage import MemoryStorage


def stream_element_addresses(storage: MemoryStorage,
                             stream: Stream) -> np.ndarray:
    """Return the byte address of every element an access stream touches.

    The stream-level twin of :func:`element_addresses`: it answers before any
    lowering to bus requests has happened, so the functional oracle can
    resolve a whole vector load/store in one step.  Indirect streams read
    their index array from ``storage`` — the oracle therefore sees the same
    indices the cycle-level controller (or the engine's register file, for
    register-indexed ops on the BASE system) resolves.
    """
    if isinstance(stream, IndirectStream):
        index_dtype = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}[
            stream.index_bytes
        ]
        indices = storage.read_array(
            stream.index_base, stream.num_elements, index_dtype
        )
        return stream.element_addresses(indices)
    return stream.element_addresses()


def element_addresses(storage: MemoryStorage, request: BusRequest) -> np.ndarray:
    """Return the byte address of every element the burst touches.

    For indirect bursts the index array is read from ``storage`` — the same
    indirection the controller's index stage performs bank-side.
    """
    if request.mode is PackMode.STRIDED:
        stride_bytes = request.pack.stride_elems * request.elem_bytes
        return request.addr + np.arange(request.num_elements, dtype=np.int64) * stride_bytes
    if request.mode is PackMode.INDIRECT:
        index_dtype = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}[
            request.pack.index_bytes
        ]
        indices = storage.read_array(
            request.index_base, request.num_elements, index_dtype
        ).astype(np.int64)
        return request.addr + indices * request.elem_bytes
    if request.contiguous or request.is_narrow:
        return request.addr + np.arange(request.num_elements, dtype=np.int64) * request.elem_bytes
    raise ProtocolError(f"cannot compute addresses for {request.describe()}")


def burst_fault_address(storage: MemoryStorage,
                        request: BusRequest) -> Optional[int]:
    """First byte address the burst touches outside ``storage``, or None.

    The cycle-level endpoints use this *before* moving any data to decide
    whether a burst completes with ``SLVERR`` instead of raising — the
    check is purely functional (element addresses only), so it gives the
    same verdict under ``DataPolicy.ELIDE``, where no payload exists to
    trip over.  An indirect burst whose index array itself lies outside
    memory faults at its ``index_base``.
    """
    size = storage.size_bytes
    if request.contiguous and not request.is_packed:
        if request.addr < 0:
            return request.addr
        end = request.addr + request.payload_bytes
        if end > size:
            return max(request.addr, size)
        return None
    try:
        addresses = element_addresses(storage, request)
    except MemoryAccessError:
        return request.index_base
    bad = np.nonzero((addresses < 0) | (addresses + request.elem_bytes > size))[0]
    if len(bad):
        return int(addresses[bad[0]])
    return None


def read_burst_payload(storage: MemoryStorage, request: BusRequest) -> np.ndarray:
    """Return the packed payload bytes a read burst delivers to the requestor.

    The result has ``request.payload_bytes`` bytes: element 0 first, tightly
    packed, exactly as AXI-Pack places them on the R channel (and as a plain
    contiguous burst would deliver them).
    """
    if request.is_write:
        raise ProtocolError("read_burst_payload called with a write request")
    if request.contiguous and not request.is_packed:
        return storage.read(request.addr, request.payload_bytes)
    addresses = element_addresses(storage, request)
    return storage.read_scattered(addresses, request.elem_bytes)


def write_burst_payload(
    storage: MemoryStorage, request: BusRequest, payload: np.ndarray
) -> None:
    """Apply a write burst's packed payload to the backing store."""
    if not request.is_write:
        raise ProtocolError("write_burst_payload called with a read request")
    if isinstance(payload, (bytes, bytearray, memoryview)):
        payload = np.frombuffer(payload, dtype=np.uint8)
    else:
        payload = np.asarray(payload, dtype=np.uint8).ravel()
    if len(payload) != request.payload_bytes:
        raise ProtocolError(
            f"write payload of {len(payload)} bytes does not match the "
            f"{request.payload_bytes}-byte burst"
        )
    if request.contiguous and not request.is_packed:
        storage.write(request.addr, payload)
        return
    addresses = element_addresses(storage, request)
    storage.write_scattered(addresses, payload, request.elem_bytes)
