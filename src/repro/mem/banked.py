"""Cycle-level multi-banked SRAM with a port-to-bank crossbar.

This models the memory the AXI-Pack controller sits in front of (paper
§II-C): ``num_ports`` word-wide request ports connected through an
``n x m`` crossbar to ``num_banks`` single-ported SRAM banks.  Each bank
serves one word access per cycle; when several ports target the same bank in
the same cycle, all but one stall — those stalls are the bank conflicts that
limit the utilization curves of Fig. 5.

Arbitration is *batched*: every cycle the head-of-line requests of all ports
are gathered into claim lists, their banks computed in one pass, and winners
picked per bank from the precomputed bank list.  The grants are exactly
those of the scalar reference arbiter: per bank, the claimant with the
smallest ``(port - last_grant - 1) % num_ports`` wins (all claimants win
under ``conflict_free``), and since each port contributes at most one
request per cycle, per-port state is independent of the order banks are
resolved in.  Array-side formulations (``BankAddressMap.banks_of_words``
over the claim words, or a full lexsort on ``(bank, rotated priority)`` plus
first-of-run masking) compute the same winners but were measured slower
than plain modulo over claim lists bounded by ``num_ports``; the property
test in ``tests/test_data_policy.py`` pins the equivalence.  Granted
requests double as their own responses (FULL reads deposit the word into
the request's ``data`` field), and response delivery advances the engine's
activity counter by the exact batch size per port.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from repro.axi.faults import BusFaultPlan
from repro.axi.types import Resp, worst_resp
from repro.errors import ConfigurationError
from repro.mem.storage import MemoryStorage
from repro.mem.words import BankAddressMap, WordRequest, WordResponse
from repro.sim.component import IDLE, Component, WakeHint
from repro.sim.policy import DataPolicy
from repro.sim.queue import DecoupledQueue
from repro.sim.stats import StatsRegistry
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class BankedMemoryConfig:
    """Static parameters of the banked memory.

    The paper's evaluation systems use eight 32-bit word ports backed by 17
    banks with single-cycle access latency.
    """

    num_ports: int = 8
    num_banks: int = 17
    word_bytes: int = 4
    latency: int = 1
    request_queue_depth: int = 4
    response_queue_depth: int = 4
    conflict_free: bool = False  #: True models the "ideal" memory of Fig. 5

    def __post_init__(self) -> None:
        check_positive("num_ports", self.num_ports)
        check_positive("num_banks", self.num_banks)
        check_positive("word_bytes", self.word_bytes)
        check_positive("latency", self.latency)

    @property
    def address_map(self) -> BankAddressMap:
        """The word-to-bank mapping implied by this configuration."""
        return BankAddressMap(num_banks=self.num_banks, word_bytes=self.word_bytes)


class BankedMemory(Component):
    """The banked SRAM endpoint with per-port request/response queues.

    Converters push :class:`~repro.mem.words.WordRequest` items into
    ``request_queues[port]`` and receive :class:`WordResponse` items from
    ``response_queues[port]``.  Responses on one port always return in
    request order (fixed bank latency plus in-order issue per port).

    Under ``DataPolicy.ELIDE`` the banks never touch the backing
    :class:`MemoryStorage`: accesses are granted, counted and timed exactly
    as in FULL mode, but read responses carry no bytes and writes discard
    their (absent) payloads.
    """

    def __init__(
        self,
        name: str,
        config: BankedMemoryConfig,
        storage: MemoryStorage,
        stats: Optional[StatsRegistry] = None,
        data_policy: DataPolicy = DataPolicy.FULL,
        bus_faults: Optional[BusFaultPlan] = None,
    ) -> None:
        super().__init__(name)
        self.config = config
        self.storage = storage
        self.stats = stats if stats is not None else StatsRegistry()
        self.data_policy = data_policy
        self._elide = data_policy.elides_data
        # Fault-injection choke point: prefiltered by port name so the plan
        # is consulted per *granted word* only when it could ever fire here.
        self._fault_plan = (
            bus_faults if bus_faults is not None
            and bus_faults.touches_port(name) else None
        )
        self.address_map = config.address_map
        self.request_queues: List[DecoupledQueue[WordRequest]] = [
            DecoupledQueue(f"{name}.req[{port}]", config.request_queue_depth)
            for port in range(config.num_ports)
        ]
        self.response_queues: List[DecoupledQueue[WordResponse]] = [
            DecoupledQueue(f"{name}.rsp[{port}]", config.response_queue_depth)
            for port in range(config.num_ports)
        ]
        # In-flight accesses: (ready_cycle, response) kept in issue order per port.
        self._in_flight: List[Deque[Tuple[int, WordResponse]]] = [
            deque() for _ in range(config.num_ports)
        ]
        self._flight_count = 0  #: total in-flight accesses across all ports
        #: prebound (request queue, in-flight deque) per port for the
        #: gather scan (both containers are stable across reset)
        self._port_pairs = list(zip(self.request_queues, self._in_flight))
        self._bank_last_grant: List[int] = [config.num_ports - 1] * config.num_banks
        #: writable view of the memory image for single-word accesses — the
        #: FULL-policy word read/write fast path (aliases storage._data)
        self._mem_view = storage._data.data
        self._mem_size = storage.size_bytes
        #: number of whole words in the image — the word-granular range
        #: check is two integer compares, policy-independent by design
        self._num_words = storage.size_bytes // config.word_bytes
        # Prebound hot-path counters (see repro.sim.stats).
        self._c_conflicts = self.stats.counter("mem.bank_conflicts")
        self._c_accesses = self.stats.counter("mem.bank_accesses")
        self._c_writes = self.stats.counter("mem.word_writes")
        self._c_reads = self.stats.counter("mem.word_reads")

    # ----------------------------------------------------------------- wiring
    def all_queues(self) -> List[DecoupledQueue]:
        """Every queue owned by the memory (for engine registration)."""
        return [*self.request_queues, *self.response_queues]

    # ------------------------------------------------------------------ tick
    def tick(self, cycle: int) -> WakeHint:
        if self._flight_count:
            self._deliver_responses(cycle)
        self._accept_requests(cycle)
        # New requests and response-queue back-pressure wake us through the
        # queue subscriptions; the only time-gated event is an in-flight
        # access maturing after the bank latency.
        if not self._flight_count:
            return IDLE
        wake = IDLE
        for in_flight in self._in_flight:
            if in_flight:
                ready = in_flight[0][0]
                if ready > cycle and ready < wake:
                    wake = ready
        return wake

    def wake_queues(self):
        return self.all_queues()

    def _deliver_responses(self, cycle: int) -> None:
        # Batched delivery: all of a port's matured responses land through
        # one DecoupledQueue.push_many call, which advances the engine's
        # activity counter by the exact item count while marking the dirty
        # list once per queue.
        delivered = 0
        response_queues = self.response_queues
        batch: List = []
        for port, in_flight in enumerate(self._in_flight):
            if not in_flight:
                continue
            queue = response_queues[port]
            room = queue.depth - queue._count
            while room > 0 and in_flight and in_flight[0][0] <= cycle:
                batch.append(in_flight.popleft()[1])
                room -= 1
            if batch:
                queue.push_many(batch)
                delivered += len(batch)
                del batch[:]
        self._flight_count -= delivered

    def _accept_requests(self, cycle: int) -> None:
        config = self.config
        in_flight_limit = 4 * config.response_queue_depth
        request_queues = self.request_queues
        all_in_flight = self._in_flight
        # Gather this cycle's head-of-line claimants.  The single-claimant
        # case (the majority of cycles) stays on plain scalars; two or more
        # claimants are batched into the claim lists below.
        first_port = -1
        first_word = 0
        batch_ports = None
        batch_words = None
        for port, (queue, flight) in enumerate(self._port_pairs):
            storage = queue._storage
            if not storage:
                continue
            # Hold issue if the response path is saturated to bound in-flight state.
            if len(flight) >= in_flight_limit:
                continue
            if first_port < 0:
                first_port = port
                first_word = storage[0].word_addr
            elif batch_ports is None:
                batch_ports = [first_port, port]
                batch_words = [first_word, storage[0].word_addr]
            else:
                batch_ports.append(port)
                batch_words.append(storage[0].word_addr)
        if first_port < 0:
            return
        conflict_free = config.conflict_free
        if batch_ports is None:
            if not conflict_free:
                self._bank_last_grant[first_word % config.num_banks] = first_port
            granted = (first_port,)
        elif conflict_free:
            # The ideal crossbar grants every claimant; no conflicts, no
            # round-robin state.  Port order matches the scalar arbiter's
            # claim-list order (claimants were gathered in port order).
            granted = batch_ports
        else:
            # One batched bank computation for the whole claim list; the
            # winner-per-bank pick then runs over the precomputed bank list.
            # (Both the numpy `banks_of_words` call and a full array-side
            # selection — lexsort on (bank, rotated priority) +
            # first-of-run masking — were measured slower than plain modulo
            # over a claim list bounded by num_ports; see
            # tests/test_data_policy.py for the equivalence property test.)
            num_banks = config.num_banks
            banks = [word % num_banks for word in batch_words]
            last_grant = self._bank_last_grant
            num_ports = config.num_ports
            claims: dict = {}
            for index, bank in enumerate(banks):
                prev = claims.get(bank)
                if prev is None:
                    claims[bank] = index
                elif prev.__class__ is int:
                    claims[bank] = [prev, index]
                else:
                    prev.append(index)
            granted = []
            # Bank keys are unique and per-port state is independent, so any
            # grant order is behaviour-identical — but iterate in sorted bank
            # order anyway so the walk itself is deterministic by
            # construction, not by insertion-order accident (reprolint ORD01).
            for bank, entry in sorted(claims.items()):
                if entry.__class__ is int:
                    port = batch_ports[entry]
                else:
                    # Round-robin pick: the claimant round-robin-closest
                    # after the bank's last grant wins (distinct keys, so
                    # the minimum is unique and order-independent).
                    last = last_grant[bank]
                    port = min(
                        (batch_ports[i] for i in entry),
                        key=lambda p, _last=last: (p - _last - 1) % num_ports,
                    )
                    self._c_conflicts.value += len(entry) - 1
                last_grant[bank] = port
                granted.append(port)
        # Grant phase: pop each winner's request and start the bank access.
        # Per-port state is independent, so grant order across banks cannot
        # affect simulated behaviour.  The request object doubles as its own
        # response in both policies (it already carries the port, routing
        # tag and is_write flag; FULL reads deposit their word into its
        # ``data`` field), and single-word storage accesses go straight
        # through a cached writable view of the memory image — the same
        # bytes `storage.read_bytes`/`storage.write` would touch, minus the
        # per-call layers.
        elide = self._elide
        latency = config.latency
        word_bytes = config.word_bytes
        num_words = self._num_words
        fault_plan = self._fault_plan
        name = self.name
        view = self._mem_view
        writes = 0
        lost = 0
        ready = cycle + latency
        for port in granted:
            # Inlined DecoupledQueue.pop (one grant per port per cycle).
            queue = request_queues[port]
            queue.total_popped += 1
            queue._count -= 1
            engine = queue._engine
            if engine is not None:
                engine._activity += 1
                if not queue._touched:
                    queue._touched = True
                    engine._touched_queues.append(queue)
            request = queue._storage.popleft()
            # Word-granular range check in *both* policies (two integer
            # compares): a bad address completes with SLVERR in-band and
            # never touches the storage, so FULL and ELIDE stay bit-equal
            # on faulting programs too.
            serve = 0 <= request.word_addr < num_words
            if not serve:
                request.resp = Resp.SLVERR
            port_ready = ready
            if fault_plan is not None:
                # Injection choke point (consulted before the storage
                # access: an injected error means the bank did *not*
                # perform the access).  Word accesses carry no txn serial,
                # so plans targeting this path key by address range.
                fault = fault_plan.first_match(
                    name, None, request.word_addr * word_bytes
                )
                if fault is not None:
                    kind = fault.kind
                    if kind == "lost":
                        lost += 1
                        if request.is_write:
                            writes += 1
                        continue  # the response simply never comes back
                    if kind == "stall":
                        port_ready = ready + fault.stall_cycles
                    else:
                        request.resp = worst_resp(request.resp, fault.resp)
                        serve = False
            if elide:
                # Timing-only fast path: no storage access at all.
                if request.is_write:
                    writes += 1
            else:
                if request.is_write:
                    data = request.data
                    if data is None:
                        raise ConfigurationError("write word request without data")
                    if serve:
                        byte_addr = request.word_addr * word_bytes
                        end = byte_addr + word_bytes
                        if isinstance(data, (bytes, bytearray, memoryview)):
                            view[byte_addr:end] = data
                        else:
                            self.storage.write(byte_addr, data)
                    writes += 1
                elif serve:
                    byte_addr = request.word_addr * word_bytes
                    request.data = view[byte_addr : byte_addr + word_bytes].tobytes()
            all_in_flight[port].append((port_ready, request))
        self._flight_count += len(granted) - lost
        self._c_accesses.value += len(granted)
        self._c_writes.value += writes
        self._c_reads.value += len(granted) - writes

    def _perform_access(self, request: WordRequest, word_bytes: int) -> WordResponse:
        """Single word access against the backing storage (reference path).

        The grant loop above inlines this logic; this method is kept for
        unit tests and subclasses that exercise one access at a time.
        """
        byte_addr = request.word_addr * word_bytes
        if request.is_write:
            if request.data is None:
                raise ConfigurationError("write word request without data")
            self.storage.write(byte_addr, request.data)
            return WordResponse(port=request.port, tag=request.tag, is_write=True)
        data = self.storage.read_bytes(byte_addr, word_bytes)
        return WordResponse(port=request.port, tag=request.tag, data=data)

    # ------------------------------------------------------------------ state
    def busy(self) -> bool:
        if self._flight_count:
            return True
        if any(not queue.is_empty() for queue in self.request_queues):
            return True
        return any(not queue.is_empty() for queue in self.response_queues)

    def reset(self) -> None:
        for flight in self._in_flight:
            flight.clear()
        self._flight_count = 0
        for queue in self.request_queues:
            queue.clear()
        for queue in self.response_queues:
            queue.clear()
        self._bank_last_grant = [self.config.num_ports - 1] * self.config.num_banks
