"""Word-level memory requests and the bank address mapping.

The controller's converters break every burst into *word* accesses — a word
being the width of one memory bank (32 bit in the paper's systems).  The
:class:`BankAddressMap` decides which bank a word lives in; the paper
evaluates both power-of-two bank counts (cheap addressing, conflict-prone on
even strides) and prime bank counts (need modulo/divide hardware, spread
strided accesses evenly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.axi.types import Resp
from repro.errors import ConfigurationError
from repro.utils.bitutils import is_power_of_two
from repro.utils.validation import check_positive

#: Module-level constant: WordRequest construction is the simulator's
#: hottest allocation site, so the default resp is bound once here.
_RESP_OKAY = Resp.OKAY


@dataclass(frozen=True)
class BankAddressMap:  # reprolint: disable=HOT01: frozen dataclass with a field default; __slots__ would clash with the default's class attribute on py3.9, and maps are built once per system, not per beat
    """Interleaved word-to-bank mapping.

    Word address ``w = byte_addr // word_bytes`` maps to bank ``w % num_banks``
    and row ``w // num_banks``.  For power-of-two bank counts this is a simple
    bit slice; for prime counts the hardware needs a modulo and a divider,
    which is exactly the area overhead Fig. 5c quantifies.
    """

    num_banks: int
    word_bytes: int = 4

    def __post_init__(self) -> None:
        check_positive("num_banks", self.num_banks)
        if not is_power_of_two(self.word_bytes):
            raise ConfigurationError(
                f"word size must be a power of two, got {self.word_bytes}"
            )

    @property
    def is_power_of_two(self) -> bool:
        """True if the bank count is a power of two (cheap addressing)."""
        return is_power_of_two(self.num_banks)

    def word_of(self, byte_addr: int) -> int:
        """Word address containing a byte address."""
        return byte_addr // self.word_bytes

    def bank_of(self, byte_addr: int) -> int:
        """Bank holding the word that contains ``byte_addr``."""
        return self.word_of(byte_addr) % self.num_banks

    def row_of(self, byte_addr: int) -> int:
        """Row within the bank holding ``byte_addr``."""
        return self.word_of(byte_addr) // self.num_banks

    def decompose(self, byte_addr: int) -> Tuple[int, int]:
        """Return ``(bank, row)`` for a byte address."""
        word = self.word_of(byte_addr)
        return word % self.num_banks, word // self.num_banks

    def banks_of_words(self, word_addrs: np.ndarray) -> np.ndarray:
        """Vectorized bank computation for an array of word addresses."""
        return np.asarray(word_addrs, dtype=np.int64) % self.num_banks


class WordRequest:
    """One word-wide access from a controller port to the banked memory.

    A plain ``__slots__`` record: word accesses are created at bus-width rate
    on the simulator's hottest path, so constructor cost matters.

    Attributes
    ----------
    port:
        Index of the word port issuing the request (0 .. n-1).
    word_addr:
        Word address (byte address // word size).
    is_write:
        True for a write access.
    data:
        Word payload for writes (``word_bytes`` bytes as ``bytes`` or a
        numpy byte array), None for reads.
    tag:
        Opaque routing tag used by the issuing converter to match responses
        (converter id, beat number, slot within the beat, ...).
    resp:
        Response code filled in by the memory when the access completes
        (the request object doubles as its own response on the banked
        path).  ``Resp.OKAY`` unless the word fell outside the memory or a
        fault plan targeted it.
    """

    __slots__ = ("port", "word_addr", "is_write", "data", "tag", "resp")

    def __init__(
        self,
        port: int,
        word_addr: int,
        is_write: bool,
        data: Optional[object] = None,
        tag: Optional[object] = None,
    ) -> None:
        self.port = port
        self.word_addr = word_addr
        self.is_write = is_write
        self.data = data
        self.tag = tag
        self.resp = _RESP_OKAY

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "write" if self.is_write else "read"
        return f"WordRequest({kind} port={self.port} word={self.word_addr:#x})"


class WordResponse:
    """Response to a :class:`WordRequest` after the bank access completes.

    ``data`` carries the word payload for reads (``bytes``), None for write
    acknowledgements.  ``resp`` reports the access outcome (OKAY unless
    the word faulted).
    """

    __slots__ = ("port", "tag", "data", "is_write", "resp")

    def __init__(
        self,
        port: int,
        tag: object,
        data: Optional[object] = None,
        is_write: bool = False,
        resp: Optional[object] = None,
    ) -> None:
        self.port = port
        self.tag = tag
        self.data = data
        self.is_write = is_write
        self.resp = _RESP_OKAY if resp is None else resp

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "write" if self.is_write else "read"
        return f"WordResponse({kind} port={self.port})"
