"""Idealized memory endpoint used by the IDEAL reference system.

The IDEAL system of the paper (§III-A) connects the vector unit to "an
exclusive, idealized memory with one port per lane, serving data with ideal
packing, bandwidth, and latency".  This endpoint therefore serves any burst
at one full-width beat per cycle, with a fixed (small) latency, perfect
packing and no bank conflicts.  It gives the upper bound that the PACK
system is compared against.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

import numpy as np

from repro.axi.port import AxiPort
from repro.axi.signals import BBeat, RBeat
from repro.axi.transaction import BusRequest
from repro.errors import ProtocolError
from repro.mem.functional import read_burst_payload, write_burst_payload
from repro.mem.storage import MemoryStorage
from repro.sim.component import IDLE, Component, WakeHint
from repro.sim.policy import DataPolicy
from repro.sim.stats import StatsRegistry


class IdealMemoryEndpoint(Component):
    """Serves AXI/AXI-Pack bursts at one fully packed beat per cycle.

    Under ``DataPolicy.ELIDE`` the endpoint never touches the backing
    storage: read beats carry empty payloads with the exact ``useful_bytes``
    geometry of FULL mode, and write bursts are consumed and acknowledged
    without applying their (absent) payloads.
    """

    def __init__(
        self,
        name: str,
        port: AxiPort,
        storage: MemoryStorage,
        latency: int = 2,
        stats: Optional[StatsRegistry] = None,
        data_policy: DataPolicy = DataPolicy.FULL,
    ) -> None:
        super().__init__(name)
        self.port = port
        self.storage = storage
        self.latency = max(1, latency)
        self.stats = stats if stats is not None else StatsRegistry()
        self.data_policy = data_policy
        self._elide = data_policy.elides_data
        # Active read: [request, payload bytes | None, next beat index,
        # ready cycle, per-beat useful-byte table (ELIDE only)]
        self._read: Optional[list] = None
        self._read_backlog: Deque[BusRequest] = deque()
        # Active write: (request, collected payload bytes, beats received)
        self._write: Optional[list] = None

    # ------------------------------------------------------------------ tick
    def tick(self, cycle: int) -> WakeHint:
        self._serve_reads(cycle)
        self._serve_writes(cycle)
        # Every transition except a read waiting out its latency is gated on
        # port-queue activity (AR/AW/W arrivals, R/B back-pressure), which
        # re-wakes us via the subscriptions; streaming reads self-wake through
        # their own R pushes.
        if self._read is not None and self._read[3] > cycle:
            return self._read[3]
        return IDLE

    def wake_queues(self):
        return self.port.all_queues()

    # ------------------------------------------------------------------ reads
    def _serve_reads(self, cycle: int) -> None:
        # Accept new read bursts eagerly so back-to-back bursts stream with no
        # bubble — the IDEAL memory has perfect bandwidth and latency.
        while self.port.ar.can_pop() and len(self._read_backlog) < 8:
            self._read_backlog.append(self.port.ar.pop())
        if self._read is None and self._read_backlog:
            self._start_read(self._read_backlog.popleft(), cycle)
        if self._read is None:
            return
        request, payload, beat_index, ready_cycle, usefuls = self._read
        if cycle < ready_cycle or not self.port.r.can_push():
            return
        bus_bytes = request.bus_bytes
        start = beat_index * bus_bytes
        if payload is None:
            # Timing-only: geometry of the beat without the bytes, from the
            # per-burst useful-byte table precomputed at burst start.
            chunk = b""
            useful = usefuls[beat_index]
        else:
            chunk = payload[start : start + bus_bytes]
            useful = len(chunk)
        last = beat_index == request.num_beats - 1
        self.port.r.push(
            RBeat(
                txn_id=request.txn_id,
                data=chunk,
                useful_bytes=useful,
                last=last,
            )
        )
        self.stats.add("ideal.r_beats")
        self.stats.add("ideal.r_useful_bytes", useful)
        if last:
            self._read = None
            if self._read_backlog:
                # Start the next burst immediately; its data is ready the very
                # next cycle (single-cycle idealized latency between bursts).
                self._start_read(self._read_backlog.popleft(), cycle + 1 - self.latency)
        else:
            self._read[2] = beat_index + 1

    def _start_read(self, request: BusRequest, cycle: int) -> None:
        if request.is_write:
            raise ProtocolError("write request arrived on the AR channel")
        if self._elide:
            # Batch geometry precompute: the whole burst's per-beat
            # useful-byte counts in one pass (they match the FULL-mode
            # payload slices exactly — a misaligned contiguous burst's
            # trailing beats can slice past the payload end, yielding empty
            # FULL-mode chunks, hence the clamp to zero).
            payload = None
            bus_bytes = request.bus_bytes
            payload_bytes = request.payload_bytes
            usefuls = [
                min(bus_bytes, max(0, payload_bytes - beat * bus_bytes))
                for beat in range(request.num_beats)
            ]
        else:
            payload = read_burst_payload(self.storage, request)
            usefuls = None
        self._read = [request, payload, 0, cycle + self.latency, usefuls]

    # ----------------------------------------------------------------- writes
    def _serve_writes(self, cycle: int) -> None:
        if self._write is None and self.port.aw.can_pop():
            request = self.port.aw.pop()
            if not request.is_write:
                raise ProtocolError("read request arrived on the AW channel")
            self._write = [request, [], 0]
        if self._write is None:
            return
        request, chunks, beats = self._write
        # Consume at most one W beat per cycle (one bus width of bandwidth).
        if beats < request.num_beats and self.port.w.can_pop():
            beat = self.port.w.pop()
            if not self._elide:
                data = beat.data
                if isinstance(data, (bytes, bytearray, memoryview)):
                    chunk = np.frombuffer(data, dtype=np.uint8)[: beat.useful_bytes]
                else:
                    chunk = np.asarray(data, dtype=np.uint8)[: beat.useful_bytes]
                chunks.append(chunk)
            beats += 1
            self._write[2] = beats
            self.stats.add("ideal.w_beats")
            self.stats.add("ideal.w_useful_bytes", beat.useful_bytes)
        if beats == request.num_beats and self.port.b.can_push():
            if not self._elide:
                payload = np.concatenate(chunks)[: request.payload_bytes]
                write_burst_payload(self.storage, request, payload)
            self.port.b.push(BBeat(txn_id=request.txn_id))
            self._write = None

    # ------------------------------------------------------------------ state
    def busy(self) -> bool:
        return self._read is not None or self._write is not None or bool(self._read_backlog)

    def reset(self) -> None:
        self._read = None
        self._write = None
        self._read_backlog.clear()
